"""Property test: the Argo backend round trip is semantics-preserving.

For random IRs with artifacts, resources and retry strategies, compiling
to an Argo manifest and parsing it back must produce exactly the same
executable workflow as direct lowering — the invariant that makes the
backend path trustworthy for every experiment.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.argo import ArgoBackend
from repro.engine.spec import parse_argo_manifest
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import ArtifactDecl, IRNode, OpKind, SimHint
from repro.k8s.resources import ResourceQuantity


@st.composite
def random_irs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    ir = WorkflowIR(name="roundtrip")
    produced: list = []
    for index in range(n):
        name = f"n{index}"
        outputs = []
        if draw(st.booleans()):
            outputs.append(
                ArtifactDecl(
                    name="out",
                    size_bytes=draw(st.integers(1, 2**30)),
                    uid=f"roundtrip/{name}/out",
                )
            )
        inputs = []
        if produced and draw(st.booleans()):
            inputs.append(draw(st.sampled_from(produced)))
        retries = draw(st.one_of(st.none(), st.integers(0, 5)))
        op = draw(st.sampled_from([OpKind.CONTAINER, OpKind.SCRIPT]))
        ir.add_node(
            IRNode(
                name=name,
                op=op,
                image=draw(st.sampled_from(["a:v1", "b:v2", "trainer:v3"])),
                source="print('x')" if op == OpKind.SCRIPT else None,
                resources=ResourceQuantity(
                    cpu=draw(st.sampled_from([0.5, 1.0, 2.0, 4.0])),
                    memory=draw(st.sampled_from([2**20, 2**30])),
                    gpu=draw(st.integers(0, 2)),
                ),
                inputs=inputs,
                outputs=outputs,
                retries=retries,
                sim=SimHint(
                    duration_s=draw(st.floats(0.0, 1000.0)),
                    failure_rate=draw(st.floats(0.0, 1.0)),
                    uses_gpu=draw(st.booleans()),
                ),
            )
        )
        for artifact in outputs:
            produced.append(artifact)
        if index > 0 and draw(st.booleans()):
            parent = draw(st.integers(0, index - 1))
            ir.add_edge(f"n{parent}", name)
    return ir


@given(random_irs())
@settings(max_examples=50, deadline=None)
def test_argo_round_trip_equals_direct_lowering(ir):
    direct = ir.to_executable()
    via_manifest = parse_argo_manifest(ArgoBackend().compile(ir))
    assert set(via_manifest.steps) == set(direct.steps)
    for name, direct_step in direct.steps.items():
        manifest_step = via_manifest.steps[name]
        assert manifest_step.duration_s == direct_step.duration_s
        assert manifest_step.dependencies == direct_step.dependencies
        assert manifest_step.retry_limit == direct_step.retry_limit
        assert manifest_step.uses_gpu == direct_step.uses_gpu
        assert manifest_step.failure.rate == direct_step.failure.rate
        assert [a.uid for a in manifest_step.inputs] == [
            a.uid for a in direct_step.inputs
        ]
        assert [(a.uid, a.size_bytes) for a in manifest_step.outputs] == [
            (a.uid, a.size_bytes) for a in direct_step.outputs
        ]
        assert manifest_step.requests.cpu == direct_step.requests.cpu
        assert manifest_step.requests.gpu == direct_step.requests.gpu
