"""Unit tests for the runtime cache manager."""


from repro.caching.manager import CacheManager
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow

GB = 2**30
MB = 2**20


def _artifact(uid: str, size: int = 100 * MB) -> ArtifactSpec:
    return ArtifactSpec(uid=uid, size_bytes=size)


class TestFetch:
    def test_miss_then_hit_via_read_through(self):
        manager = CacheManager(policy="lru", capacity_bytes=GB)
        artifact = _artifact("x")
        first_seconds, first_hit = manager.fetch(artifact, now=0.0)
        second_seconds, second_hit = manager.fetch(artifact, now=1.0)
        assert not first_hit and second_hit
        assert second_seconds < first_seconds

    def test_no_policy_disables_read_through(self):
        manager = CacheManager(policy="no", capacity_bytes=GB)
        artifact = _artifact("x")
        manager.fetch(artifact, now=0.0)
        _, hit = manager.fetch(artifact, now=1.0)
        assert not hit

    def test_produced_artifact_hits_immediately(self):
        manager = CacheManager(policy="all", capacity_bytes=None)
        artifact = _artifact("y")
        manager.on_artifact_produced(artifact, now=0.0)
        _, hit = manager.fetch(artifact, now=1.0)
        assert hit

    def test_distance_scales_remote_reads(self):
        near = CacheManager(policy="no", capacity_bytes=0, distance=1.0)
        far = CacheManager(policy="no", capacity_bytes=0, distance=3.0)
        artifact = _artifact("z", size=GB)
        near_seconds, _ = near.fetch(artifact)
        far_seconds, _ = far.fetch(artifact)
        assert far_seconds > 2.5 * near_seconds


class TestReporting:
    def test_report_fields(self):
        manager = CacheManager(policy="couler", capacity_bytes=GB)
        wf = ExecutableWorkflow(name="w")
        artifact = _artifact("w/s/out")
        wf.add_step(ExecutableStep(name="s", duration_s=1, outputs=[artifact]))
        manager.register_workflow(wf)
        manager.on_artifact_produced(artifact, now=0.0)
        manager.fetch(artifact, now=1.0)
        report = manager.report()
        assert report["policy"] == "couler"
        assert report["entries"] == 1
        assert report["hits"] == 1
        assert manager.hit_ratio() == 1.0

    def test_step_finished_updates_index(self):
        manager = CacheManager(policy="couler", capacity_bytes=GB)
        wf = ExecutableWorkflow(name="w")
        out = _artifact("w/p/out")
        wf.add_step(ExecutableStep(name="p", duration_s=1, outputs=[out]))
        wf.add_step(
            ExecutableStep(name="c", duration_s=1, dependencies=["p"], inputs=[out])
        )
        manager.register_workflow(wf)
        assert manager.scorer.reuse_value("w/p/out") > 0
        manager.on_step_finished("w/c")
        assert manager.scorer.reuse_value("w/p/out") == 0.0
