"""SQLFlow parser/translator edge cases beyond the paper examples."""

import pytest

from repro.sqlflow import (
    PredictStatement,
    SQLFlowSyntaxError,
    TrainStatement,
    parse,
    parse_many,
    sql_script_to_irs,
    sql_to_ir,
)

TRAIN_SQL = """SELECT *
FROM iris.train
TO TRAIN DNNClassifier
WITH model.n_classes = 3
COLUMN sepal_len, sepal_width
LABEL class
INTO sqlflow_models.my_dnn_model;"""

PREDICT_SQL = """SELECT *
FROM iris.test
TO PREDICT iris.predict.class
USING sqlflow_models.my_dnn_model;"""


class TestQuotedIdentifiers:
    def test_quoted_select_columns_survive(self):
        statement = parse(
            'SELECT "order", \'select\', plain FROM t TO TRAIN M INTO m;'
        )
        assert statement.select_columns == ["order", "select", "plain"]

    def test_quoted_feature_columns_survive(self):
        statement = parse(
            "SELECT * FROM t TO TRAIN M COLUMN \"weird col\", basic INTO m;"
        )
        assert statement.feature_columns == ["weird col", "basic"]

    def test_quoted_table_and_model_names(self):
        statement = parse('SELECT * FROM "my table" TO TRAIN M INTO "my model";')
        assert statement.table == "my table"
        assert statement.into == "my model"

    def test_quoted_label(self):
        statement = parse('SELECT * FROM t TO TRAIN M LABEL "the label";')
        assert statement.label == "the label"

    def test_quoted_predict_targets(self):
        statement = parse(
            "SELECT * FROM t TO PREDICT 'out.tbl' USING 'a model';"
        )
        assert statement.result_table == "out.tbl"
        assert statement.model == "a model"


class TestMalformedStatements:
    def test_missing_to_clause(self):
        with pytest.raises(SQLFlowSyntaxError, match="expected TO"):
            parse("SELECT * FROM t WHERE x = 1")

    def test_truncated_after_from(self):
        with pytest.raises(SQLFlowSyntaxError, match="unexpected end"):
            parse("SELECT * FROM t")

    def test_missing_train_keyword(self):
        with pytest.raises(SQLFlowSyntaxError, match="TRAIN or PREDICT"):
            parse("SELECT * FROM t TO FIT M")

    def test_punctuation_is_not_a_table_name(self):
        with pytest.raises(SQLFlowSyntaxError, match="table name"):
            parse("SELECT * FROM = TO TRAIN M")

    def test_number_in_column_list_rejected(self):
        with pytest.raises(SQLFlowSyntaxError, match="column list"):
            parse("SELECT 42 FROM t TO TRAIN M")

    def test_attribute_without_equals(self):
        with pytest.raises(SQLFlowSyntaxError, match="expected '='"):
            parse("SELECT * FROM t TO TRAIN M WITH key 3")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLFlowSyntaxError, match="trailing input"):
            parse("SELECT * FROM t TO TRAIN M INTO m; extra tokens")

    def test_two_statements_rejected_by_parse(self):
        with pytest.raises(SQLFlowSyntaxError, match="parse_many"):
            parse(TRAIN_SQL + "\n" + PREDICT_SQL)

    def test_empty_input(self):
        with pytest.raises(SQLFlowSyntaxError):
            parse("")


class TestMultiStatement:
    def test_train_then_predict_script(self):
        statements = parse_many(TRAIN_SQL + "\n" + PREDICT_SQL)
        assert len(statements) == 2
        assert isinstance(statements[0], TrainStatement)
        assert isinstance(statements[1], PredictStatement)
        assert statements[0].into == statements[1].model

    def test_single_statement_with_and_without_semicolon(self):
        assert len(parse_many(TRAIN_SQL)) == 1
        assert len(parse_many(TRAIN_SQL.rstrip().rstrip(";"))) == 1

    def test_empty_script(self):
        assert parse_many("") == []

    def test_script_lowers_to_one_ir_per_statement(self):
        irs = sql_script_to_irs(TRAIN_SQL + "\n" + PREDICT_SQL)
        assert len(irs) == 2
        assert irs[0].name == "sqlflow-train-dnnclassifier"
        assert irs[1].name == "sqlflow-predict"
        assert all(ir.nodes for ir in irs)


class TestCommentsAndBlankStatements:
    """Parser gaps the scenario-corpus generator hits: SQL line comments
    and blank statements between ``;`` separators."""

    def test_line_comment_before_statement(self):
        statement = parse("-- train the iris model\n" + TRAIN_SQL)
        assert isinstance(statement, TrainStatement)
        assert statement.estimator == "DNNClassifier"

    def test_line_comment_between_clauses(self):
        statement = parse(
            "SELECT * FROM iris.train  -- full table scan\n"
            "TO TRAIN DNNClassifier -- the paper's estimator\n"
            "LABEL class INTO m;"
        )
        assert statement.label == "class"
        assert statement.into == "m"

    def test_trailing_comment_after_semicolon(self):
        statement = parse(TRAIN_SQL + "\n-- done")
        assert isinstance(statement, TrainStatement)

    def test_comment_does_not_swallow_next_line(self):
        statements = parse_many(
            "-- first statement\n" + TRAIN_SQL + "\n-- second\n" + PREDICT_SQL
        )
        assert len(statements) == 2

    def test_comment_only_script_is_empty(self):
        assert parse_many("-- nothing here\n-- at all\n") == []

    def test_dashes_inside_strings_are_not_comments(self):
        statement = parse("SELECT * FROM t TO TRAIN M INTO '--not-a-comment';")
        assert statement.into == "--not-a-comment"

    def test_blank_statement_between_semicolons(self):
        statements = parse_many(TRAIN_SQL + "\n;\n" + PREDICT_SQL)
        assert len(statements) == 2
        assert isinstance(statements[0], TrainStatement)
        assert isinstance(statements[1], PredictStatement)

    def test_consecutive_semicolon_runs(self):
        statements = parse_many(";;\n" + TRAIN_SQL + ";;;" + PREDICT_SQL + ";;")
        assert len(statements) == 2

    def test_blank_statement_with_comment_inside(self):
        statements = parse_many(
            TRAIN_SQL + "\n; -- intentionally left blank\n;" + PREDICT_SQL
        )
        assert len(statements) == 2

    def test_semicolons_only_script_is_empty(self):
        assert parse_many(";;;") == []

    def test_script_with_comments_lowers_like_plain_script(self):
        plain = sql_script_to_irs(TRAIN_SQL + "\n" + PREDICT_SQL)
        noisy = sql_script_to_irs(
            "-- feature pipeline\n" + TRAIN_SQL + "\n;\n-- scoring\n" + PREDICT_SQL
        )
        assert [ir.name for ir in plain] == [ir.name for ir in noisy]

    def test_parse_still_rejects_second_statement_after_blank(self):
        with pytest.raises(SQLFlowSyntaxError, match="parse_many"):
            parse(TRAIN_SQL + " SELECT")


class TestTranslateEdges:
    def test_train_without_into_skips_save_step(self):
        ir = sql_to_ir("SELECT * FROM t TO TRAIN M LABEL y")
        assert "save-model" not in ir.nodes
        assert any(name.startswith("train-") for name in ir.nodes)

    def test_train_without_columns_selects_star(self):
        ir = sql_to_ir("SELECT * FROM db.t TO TRAIN M INTO m;")
        extract = ir.nodes["extract-db-t"]
        assert "--query=SELECT * FROM db.t" in extract.args

    def test_explicit_workflow_name_wins(self):
        ir = sql_to_ir(PREDICT_SQL, workflow_name="custom")
        assert ir.name == "custom"

    def test_predict_wiring(self):
        ir = sql_to_ir(PREDICT_SQL)
        assert ("extract-iris-test", "predict") in ir.edges
        assert ("predict", "write-results") in ir.edges
