"""Tests for the DOT visualization."""

from repro.core.submitter import default_environment
from repro.engine.retry import FailureInjector
from repro.engine.status import StepStatus, WorkflowRecord
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.ir.visualize import to_dot


def _diamond() -> WorkflowIR:
    ir = WorkflowIR(name="viz")
    for name in "abcd":
        ir.add_node(IRNode(name=name, op=OpKind.CONTAINER, image=f"{name}:v1"))
    ir.add_edge("a", "b")
    ir.add_edge("a", "c")
    ir.add_edge("b", "d")
    ir.add_edge("c", "d")
    return ir


class TestToDot:
    def test_structure_rendered(self):
        dot = to_dot(_diamond())
        assert dot.startswith('digraph "viz"')
        assert '"a" -> "b";' in dot
        assert '"c" -> "d";' in dot
        assert dot.count("->") == 4
        assert dot.rstrip().endswith("}")

    def test_conditions_in_labels(self):
        ir = _diamond()
        ir.nodes["b"].when = "{{a.result}} == heads"
        dot = to_dot(ir)
        assert "when: {{a.result}} == heads" in dot

    def test_status_overlay(self):
        ir = _diamond()
        record = WorkflowRecord(name="viz")
        record.step("a").status = StepStatus.SUCCEEDED
        failed = record.step("b")
        failed.status = StepStatus.FAILED
        failed.attempts = 3
        failed.last_error = "PodCrashErr"
        dot = to_dot(ir, record=record)
        assert "#c8e6c9" in dot  # succeeded fill
        assert "#ffcdd2" in dot  # failed fill
        assert "attempts=3" in dot
        assert "PodCrashErr" in dot

    def test_quotes_escaped(self):
        ir = WorkflowIR(name="esc")
        ir.add_node(
            IRNode(name="s", op=OpKind.CONTAINER, image='img"quoted"')
        )
        dot = to_dot(ir)
        assert '\\"quoted\\"' in dot

    def test_real_failed_run_renders(self):
        ir = _diamond()
        ir.nodes["b"].sim = SimHint(duration_s=10, failure_rate=1.0)
        operator = default_environment()
        operator.failure_injector = FailureInjector(seed=0, retryable_fraction=0.0)
        record = operator.submit(ir.to_executable())
        operator.run_to_completion()
        dot = to_dot(ir, record=record)
        assert "Failed" in dot and "Succeeded" in dot
