"""Sharded multi-replica fleet: equivalence, kill/replay, wakeups."""

import pytest

from repro.engine.journal import Journal
from repro.engine.operator import WorkflowOperator
from repro.engine.replicas import ShardedOperatorFleet, shard_of
from repro.engine.simclock import SimClock
from repro.engine.status import StepStatus, WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.verify.generator import generate_ir
from repro.verify.oracles import DETERMINISTIC_CONFIG

GB = 2**30


def _cluster(cpu: float = 24.0) -> Cluster:
    return Cluster.uniform(
        "fleet", 1, cpu_per_node=cpu, memory_per_node=64 * GB, gpu_per_node=6
    )


def _workloads(seed: int, count: int = 4):
    return [
        generate_ir(seed * 1000 + 501 + index, DETERMINISTIC_CONFIG).to_executable()
        for index in range(count)
    ]


def _outputs(records_by_name):
    return sorted(
        (
            name,
            record.phase.value,
            tuple(
                (step, rec.status.value)
                for step, rec in sorted(record.steps.items())
            ),
            tuple(sorted(record.results.items())),
        )
        for name, record in records_by_name.items()
    )


class TestSharding:
    def test_shard_of_is_stable_and_in_range(self):
        for replicas in (1, 2, 3, 7):
            for name in ("wf-a", "wf-b", "verify-1234"):
                index = shard_of(name, replicas)
                assert 0 <= index < replicas
                assert shard_of(name, replicas) == index  # no salted hash

    def test_fleet_routes_by_shard(self):
        fleet = ShardedOperatorFleet(SimClock(), _cluster(), replicas=3)
        for wf in _workloads(1):
            fleet.submit(wf)
            expected = fleet.replicas[shard_of(wf.name, 3)]
            assert wf.name in expected.active_workflows()
        fleet.run_to_completion()
        assert fleet.active_workflows() == []

    def test_at_least_one_replica_required(self):
        with pytest.raises(ValueError):
            ShardedOperatorFleet(SimClock(), _cluster(), replicas=0)


class TestEquivalence:
    def _run(self, replicas: int, seed: int = 5):
        fleet = ShardedOperatorFleet(
            SimClock(), _cluster(), replicas=replicas, journal=Journal(), seed=seed
        )
        for wf in _workloads(seed):
            fleet.submit(wf)
        fleet.run_to_completion()
        return fleet

    @pytest.mark.parametrize("replicas", [2, 3, 5])
    def test_fleet_outputs_equal_single_operator(self, replicas):
        """N stateless replicas ≡ one in-memory operator (outputs view)."""
        single = self._run(replicas=1)
        fleet = self._run(replicas=replicas)
        assert _outputs(fleet.records_by_name()) == _outputs(
            single.records_by_name()
        )

    def test_cross_replica_wakeup_prevents_starvation(self):
        """On one contended cluster, replica B's queued work can only
        start when replica A's completions wake B's drain pass — without
        ``peer_wakeup`` this deadlocks with work parked forever."""
        fleet = self._run(replicas=3)
        for record in fleet.records_by_name().values():
            assert record.phase.is_terminal()
        assert fleet.active_workflows() == []


class TestKillReplay:
    def _stormy(self, seed: int = 7, kill_at: float = 40.0):
        fleet = ShardedOperatorFleet(
            SimClock(), _cluster(), replicas=3, journal=Journal(), seed=seed
        )
        workloads = _workloads(seed)
        for wf in workloads:
            fleet.submit(wf)
        fleet.run_to_completion(until=kill_at)
        victim = next(
            index
            for index, operator in enumerate(fleet.replicas)
            if operator.active_workflows()
        )
        killed = fleet.kill_replica(victim)
        resumed = fleet.resume_replica(victim)
        fleet.run_to_completion()
        return fleet, workloads, killed, resumed

    def test_killed_replica_recovers_by_replay(self):
        fleet, workloads, killed, resumed = self._stormy()
        assert killed  # the kill actually hit live work
        assert set(resumed) == set(killed)
        records = fleet.records_by_name()
        for wf in workloads:
            assert records[wf.name].phase == WorkflowPhase.SUCCEEDED

    def test_kill_replay_preserves_outputs(self):
        calm = ShardedOperatorFleet(
            SimClock(), _cluster(), replicas=3, journal=Journal(), seed=7
        )
        for wf in _workloads(7):
            calm.submit(wf)
        calm.run_to_completion()
        stormy, _, _, _ = self._stormy(seed=7)
        assert _outputs(stormy.records_by_name()) == _outputs(
            calm.records_by_name()
        )

    def test_kill_replay_is_deterministic(self):
        first, _, _, _ = self._stormy()
        second, _, _, _ = self._stormy()
        assert [r.to_json() for r in first.journal.records()] == [
            r.to_json() for r in second.journal.records()
        ]

    def test_dead_replica_slot_ignores_stale_events(self):
        """Until resumed, the dead operator stays in its slot so stale
        clock callbacks hit ``_is_live`` guards and no-op."""
        fleet = ShardedOperatorFleet(
            SimClock(), _cluster(), replicas=2, journal=Journal(), seed=3
        )
        for wf in _workloads(3):
            fleet.submit(wf)
        fleet.run_to_completion(until=30.0)
        victim = next(
            index
            for index, operator in enumerate(fleet.replicas)
            if operator.active_workflows()
        )
        dead = fleet.replicas[victim]
        fleet.kill_replica(victim)
        assert dead.active_workflows() == []
        # Drain every already-scheduled stale event before resuming.
        fleet.run_to_completion()
        assert dead.active_workflows() == []
        resumed = fleet.resume_replica(victim)
        fleet.run_to_completion()
        records = fleet.records_by_name()
        for name in resumed:
            assert records[name].phase == WorkflowPhase.SUCCEEDED

    def test_mid_journal_prefix_materializes_resumable(self):
        fleet, workloads, _, _ = self._stormy()
        journal = fleet.journal
        for n in (len(journal) // 3, len(journal) // 2, len(journal)):
            prefix = journal.prefix(n)
            for stream in prefix.streams():
                record = prefix.materialize(stream)
                if record is None:
                    continue
                assert not any(
                    step.status == StepStatus.RUNNING
                    for step in record.steps.values()
                )


class TestHardKill:
    def test_hard_kill_releases_cluster_resources(self):
        clock = SimClock()
        cluster = _cluster()
        operator = WorkflowOperator(clock, cluster, seed=0, journal=Journal())
        operator.submit(_workloads(9, count=1)[0])
        clock.run(until=20.0)
        operator.hard_kill()
        for node in cluster.nodes:
            assert node.allocated.cpu == 0.0
            assert node.allocated.gpu == 0
