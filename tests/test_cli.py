"""Tests for the command-line interface."""


from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestVersion:
    def test_prints_version_and_paper(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "Couler" in out
        assert "1.0.0" in out


class TestRun:
    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "couler" in out

    def test_runs_multiple(self, capsys):
        assert main(["run", "fig17", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 17a" in out and "Table IV" in out


class TestRegistry:
    def test_every_entry_importable_with_run_and_report(self):
        import importlib

        for name, (module_path, _desc) in EXPERIMENTS.items():
            module = importlib.import_module(module_path)
            assert callable(module.run), name
            assert callable(module.report), name
