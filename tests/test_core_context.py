"""Tests for the workflow-building context itself."""

from repro import core as couler
from repro.core.context import WorkflowContext, get_context, reset_context, workflow


class TestContextLifecycle:
    def test_get_context_creates_on_first_use(self):
        reset_context()
        ctx = get_context()
        assert isinstance(ctx, WorkflowContext)
        assert get_context() is ctx  # same instance until reset

    def test_reset_installs_fresh_context(self):
        first = get_context()
        second = reset_context("named")
        assert second is not first
        assert second.ir.name == "named"
        assert get_context() is second

    def test_workflow_context_manager_scopes_name(self):
        with workflow("scoped-flow") as ctx:
            couler.run_container(image="x", step_name="inside")
            assert ctx.ir.name == "scoped-flow"
        # Definition survives the block so couler.run() can consume it.
        ir = couler.workflow_ir(optimize=False)
        assert ir.name == "scoped-flow"
        assert "inside" in ir.nodes


class TestUniqueNames:
    def test_first_use_keeps_base(self):
        ctx = reset_context()
        assert ctx.unique_name("step") == "step"

    def test_collisions_get_suffixes(self):
        couler.reset_context()
        names = [
            couler.run_container(image="x", step_name="train").step_name
            for _ in range(3)
        ]
        assert names[0] == "train"
        assert len(set(names)) == 3
        assert all(n.startswith("train") for n in names)

    def test_sanitization_of_image_derived_names(self):
        couler.reset_context()
        out = couler.run_container(image="docker.io/org/whalesay:latest")
        assert out.step_name == "whalesay"


class TestThreadIsolation:
    def test_contexts_are_per_thread(self):
        import threading

        reset_context("main-thread")
        seen = {}

        def worker():
            ctx = reset_context("worker-thread")
            seen["worker"] = ctx.ir.name

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["worker"] == "worker-thread"
        assert get_context().ir.name == "main-thread"
