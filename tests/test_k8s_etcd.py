"""Unit tests for the etcd stand-in: quota, revisions, fault injection."""

import pytest

from repro.k8s.etcd import (
    EtcdStore,
    ExceededQuotaErr,
    KeyNotFoundError,
    RevisionConflictError,
)


class TestBasicOps:
    def test_put_get(self):
        store = EtcdStore()
        store.put("a", b"hello")
        assert store.get("a") == b"hello"

    def test_get_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            EtcdStore().get("missing")

    def test_delete(self):
        store = EtcdStore()
        store.put("a", b"x")
        store.delete("a")
        assert not store.contains("a")
        with pytest.raises(KeyNotFoundError):
            store.delete("a")

    def test_keys_prefix_sorted(self):
        store = EtcdStore()
        for key in ("b/2", "a/1", "b/1"):
            store.put(key, b"v")
        assert list(store.keys("b/")) == ["b/1", "b/2"]


class TestRevisions:
    def test_revisions_monotonic(self):
        store = EtcdStore()
        r1 = store.put("a", b"1")
        r2 = store.put("a", b"2")
        assert r2 > r1

    def test_compare_and_put(self):
        store = EtcdStore()
        rev = store.put("a", b"1")
        store.compare_and_put("a", b"2", expected_revision=rev)
        with pytest.raises(RevisionConflictError):
            store.compare_and_put("a", b"3", expected_revision=rev)

    def test_cas_on_new_key_uses_zero(self):
        store = EtcdStore()
        store.compare_and_put("new", b"v", expected_revision=0)
        assert store.get("new") == b"v"


class TestQuota:
    def test_quota_exceeded(self):
        store = EtcdStore(quota_bytes=10)
        store.put("a", b"12345")
        with pytest.raises(ExceededQuotaErr):
            store.put("b", b"1234567")

    def test_overwrite_frees_old_bytes(self):
        store = EtcdStore(quota_bytes=10)
        store.put("a", b"1234567890")
        # Replacing with a same-size value must not double-count.
        store.put("a", b"abcdefghij")
        assert store.used_bytes == 10

    def test_delete_frees_quota(self):
        store = EtcdStore(quota_bytes=10)
        store.put("a", b"1234567890")
        store.delete("a")
        assert store.used_bytes == 0
        store.put("b", b"1234567890")


class TestFaultInjection:
    def test_injector_raises_configured_error(self):
        def inject(op, key):
            if op == "put" and key == "boom":
                return ExceededQuotaErr("injected")
            return None

        store = EtcdStore(fault_injector=inject)
        store.put("ok", b"v")
        with pytest.raises(ExceededQuotaErr):
            store.put("boom", b"v")
