"""The scenario corpus: determinism, persona mixes, frontend round-trips.

The corpus is the substrate for determinism gates, the corpus-backed
verify fuzzer and the e2e benchmark — so the tests here pin exactly the
properties those consumers rely on: same seed => byte-identical corpus
(scripts, IR dicts, arrival schedules), persona mix ratios, frontend
round-trips, rerun artifact sharing, and chained admission submission.
"""

import pytest

from repro.caching.manager import CacheManager
from repro.engine.config import EngineConfig
from repro.ir.serialize import ir_from_dict, ir_to_dict
from repro.llm.codelake import dataset_entries, expand_code_lake
from repro.nl2wf import build_task
from repro.sqlflow import TrainStatement, parse_many
from repro.workloads.corpus import (
    PERSONAS,
    CorpusSpec,
    SchemaCatalog,
    build_corpus,
    clone_ir,
    submit_corpus,
)
from repro.workloads.fleetgen import build_pipeline

SPEC = CorpusSpec(seed=11, size=24)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(SPEC)


@pytest.fixture(scope="module")
def corpus_again():
    return build_corpus(CorpusSpec(seed=11, size=24))


class TestDeterminism:
    def test_same_seed_same_digest(self, corpus, corpus_again):
        assert corpus.digest() == corpus_again.digest()

    def test_sources_byte_identical(self, corpus, corpus_again):
        assert [e.source for e in corpus.entries] == [
            e.source for e in corpus_again.entries
        ]

    def test_ir_dicts_byte_identical(self, corpus, corpus_again):
        first = [ir_to_dict(ir) for _, ir in corpus.workflows()]
        second = [ir_to_dict(ir) for _, ir in corpus_again.workflows()]
        assert first == second

    def test_arrival_schedules_identical(self, corpus, corpus_again):
        first = [(e.arrival, e.name, e.user, e.priority) for e in corpus.entries]
        second = [
            (e.arrival, e.name, e.user, e.priority) for e in corpus_again.entries
        ]
        assert first == second

    def test_different_seed_different_corpus(self, corpus):
        other = build_corpus(CorpusSpec(seed=12, size=24))
        assert other.digest() != corpus.digest()

    def test_arrivals_sorted_and_nonnegative(self, corpus):
        arrivals = [e.arrival for e in corpus.entries]
        assert arrivals == sorted(arrivals)
        assert all(at >= 0 for at in arrivals)


class TestPersonaMix:
    def test_all_personas_present(self, corpus):
        assert {e.persona for e in corpus.entries} == set(SPEC.personas)

    def test_entry_counts_match_shares(self, corpus):
        total_share = sum(PERSONAS[p].share for p in SPEC.personas)
        for persona, entries in corpus.by_persona().items():
            expected = SPEC.size * PERSONAS[persona].share / total_share
            assert abs(len(entries) - expected) <= 1.0

    def test_sql_nl_mix_tracks_profile(self):
        # A bigger corpus so per-persona kind fractions stabilize.
        big = build_corpus(CorpusSpec(seed=5, size=80))
        for persona, entries in big.by_persona().items():
            fresh = [e for e in entries if not e.rerun_of]
            if len(fresh) < 8:
                continue
            sql_fraction = sum(1 for e in fresh if e.kind == "sql") / len(fresh)
            assert abs(sql_fraction - PERSONAS[persona].sql_fraction) < 0.35

    def test_slo_and_user_follow_persona(self, corpus):
        for entry in corpus.entries:
            profile = PERSONAS[entry.persona]
            assert entry.user == entry.persona
            assert entry.slo_class == profile.slo_class
            low, high = profile.priorities
            assert low <= entry.priority <= high

    def test_reruns_reference_earlier_same_persona_entries(self, corpus):
        by_name = {e.name: e for e in corpus.entries}
        reruns = [e for e in corpus.entries if e.rerun_of]
        assert reruns, "corpus of 24 should contain reruns"
        for entry in reruns:
            base = by_name[entry.rerun_of]
            assert base.persona == entry.persona
            assert base.arrival <= entry.arrival


class TestFrontendRoundTrips:
    def test_sql_sources_parse_to_statement_count(self, corpus):
        for entry in corpus.entries:
            if entry.kind != "sql" or entry.rerun_of:
                continue
            statements = parse_many(entry.source)
            assert len(statements) == len(entry.irs)

    def test_sql_pipeline_statements_chain(self, corpus):
        # Each non-scoring script ends with predicts USING the train INTO.
        for entry in corpus.entries:
            if entry.kind != "sql" or entry.rerun_of:
                continue
            statements = parse_many(entry.source)
            trains = [s for s in statements if isinstance(s, TrainStatement)]
            if not trains:  # scoring-style script (serving persona)
                assert entry.persona == "serving"
                continue
            predicts = [s for s in statements if not isinstance(s, TrainStatement)]
            for predict in predicts:
                assert predict.model == trains[-1].into
            # Feature stages feed forward: statement N+1 reads N's INTO.
            for first, second in zip(trains, trains[1:]):
                assert second.table == first.into

    def test_every_ir_roundtrips_serialization(self, corpus):
        for _entry, ir in corpus.workflows():
            data = ir_to_dict(ir)
            assert ir_to_dict(ir_from_dict(data)) == data

    def test_irs_validate_and_lower(self, corpus):
        for _entry, ir in corpus.workflows():
            ir.validate()
            executable = ir.to_executable()
            assert len(executable.steps) == len(ir.nodes)

    def test_nl_entries_used_code_lake_retrieval(self, corpus):
        nl_entries = [e for e in corpus.entries if e.kind == "nl" and not e.rerun_of]
        assert nl_entries, "corpus of 24 should contain NL entries"
        for entry in nl_entries:
            assert entry.meta["retrieval_hits"] >= 1

    def test_workflow_names_unique_across_corpus(self, corpus):
        names = [ir.name for _, ir in corpus.workflows()]
        assert len(names) == len(set(names))


class TestRerunArtifactSharing:
    def test_rerun_irs_share_artifact_uids(self, corpus):
        by_name = {e.name: e for e in corpus.entries}
        reruns = [e for e in corpus.entries if e.rerun_of]
        for entry in reruns:
            base = by_name[entry.rerun_of]
            for base_ir, rerun_ir in zip(base.irs, entry.irs):
                base_uids = {
                    a.uid
                    for node in base_ir.nodes.values()
                    for a in node.outputs
                }
                rerun_uids = {
                    a.uid
                    for node in rerun_ir.nodes.values()
                    for a in node.outputs
                }
                assert rerun_uids == base_uids
                assert all(uid for uid in rerun_uids)

    def test_clone_preserves_uids_under_new_name(self, corpus):
        entry, ir = next(
            (e, ir) for e in corpus.entries for ir in e.irs if len(ir) > 1
        )
        clone = clone_ir(ir, "some-rerun")
        assert clone.name == "some-rerun"
        clone_exec = clone.to_executable()
        base_exec = ir.to_executable()
        assert {
            name: [a.uid for a in step.outputs]
            for name, step in clone_exec.steps.items()
        } == {
            name: [a.uid for a in step.outputs]
            for name, step in base_exec.steps.items()
        }


class TestCodeLakeExpansion:
    def test_dataset_entries_are_specialised(self):
        entries = dataset_entries("ads-logs")
        assert {e.task_type for e in entries} == {
            "data_loading",
            "data_preprocessing",
            "data_augmentation",
        }
        assert all("ads-logs" in e.code for e in entries)

    def test_expanded_lake_retrieves_dataset_specific_loader(self):
        catalog = SchemaCatalog.default()
        lake = expand_code_lake(catalog.datasets())
        best = lake.best_reference("Load the transactions dataset from remote storage.")
        assert best is not None
        assert best.task_type == "data_loading"
        assert "transactions" in best.code

    def test_build_task_rejects_unknown_module(self):
        with pytest.raises(ValueError, match="unknown module type"):
            build_task(
                name="bad",
                intro="x",
                dataset="d",
                models=["m"],
                sequence=["data_loading", "quantum_annealing"],
            )


class TestChainedSubmission:
    def test_chained_corpus_completes_through_admission(self):
        corpus = build_corpus(CorpusSpec(seed=3, size=8))
        pipeline = build_pipeline(
            corpus.to_fleet_spec(),
            EngineConfig(),
            cache_manager=CacheManager(policy="couler", capacity_bytes=8 * 2**30),
            skip_cached_steps=True,
        )
        records = submit_corpus(pipeline, corpus, chain=True)
        pipeline.run()
        expected = sum(len(e.irs) for e in corpus.entries)
        assert len(records) == expected
        assert all(r.finish_time is not None for r in records)

    def test_chain_orders_statements_by_completion(self):
        corpus = build_corpus(CorpusSpec(seed=3, size=8))
        pipeline = build_pipeline(corpus.to_fleet_spec(), EngineConfig())
        records = submit_corpus(pipeline, corpus, chain=True)
        pipeline.run()
        by_name = {r.workflow_name: r for r in records}
        for entry in corpus.entries:
            if len(entry.irs) < 2:
                continue
            for first, second in zip(entry.irs, entry.irs[1:]):
                upstream = by_name[first.name]
                downstream = by_name[second.name]
                assert downstream.arrival_time >= upstream.finish_time

    def test_unchained_submission_all_arrive_at_entry_time(self):
        corpus = build_corpus(CorpusSpec(seed=3, size=8))
        pipeline = build_pipeline(corpus.to_fleet_spec(), EngineConfig())
        records = submit_corpus(pipeline, corpus, chain=False)
        by_name = {r.workflow_name: r for r in records}
        for entry in corpus.entries:
            for ir in entry.irs:
                assert by_name[ir.name].arrival_time == entry.arrival


@pytest.mark.slow
class TestEndToEndEngineEquivalence:
    """The corpus through caching + splitting + admission, fast vs naive."""

    def test_fast_and_naive_engines_agree(self):
        from repro.experiments import sql_nl_pipeline

        corpus_a = build_corpus(CorpusSpec(seed=2, size=16))
        corpus_b = build_corpus(CorpusSpec(seed=2, size=16))
        fast = sql_nl_pipeline.run(engine="fast", corpus=corpus_a)
        naive = sql_nl_pipeline.run(engine="naive", corpus=corpus_b)
        assert fast.corpus_digest == naive.corpus_digest
        assert fast.fingerprint == naive.fingerprint
        assert fast.workflows_submitted == naive.workflows_submitted
        # Everything admitted and finished on both engines.
        assert all(row[3] for row in fast.fingerprint)
        assert all(row[5] is not None for row in fast.fingerprint)

    def test_split_parts_chain_and_personas_report(self):
        from repro.experiments import sql_nl_pipeline

        result = sql_nl_pipeline.run(seed=4, size=16)
        assert result.split_parts > 0
        assert {p.persona for p in result.personas} == set(SPEC.personas)
        total_hits = sum(p.cache_hits for p in result.personas)
        assert total_hits > 0
