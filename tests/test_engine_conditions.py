"""Tests for runtime condition evaluation (when-expressions + results).

The engine draws a step's ``result`` from its declared options and
evaluates downstream ``when`` expressions against it: the untaken branch
is Skipped, exactly as a real workflow engine resolves paper Code 3's
coin flip and Code 5's recursion.
"""


from repro import core as couler
from repro.core.submitter import ArgoSubmitter, default_environment
from repro.engine.operator import WorkflowOperator, _compare
from repro.engine.simclock import SimClock
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import StepStatus, WorkflowPhase
from repro.ir.nodes import SimHint
from repro.k8s.cluster import Cluster

GB = 2**30


class TestCompare:
    def test_string_equality(self):
        assert _compare("heads", "==", "heads")
        assert not _compare("heads", "==", "tails")
        assert _compare("heads", "!=", "tails")

    def test_numeric_comparisons(self):
        assert _compare("3", ">", "2.5")
        assert _compare("2", "<=", "2")
        assert not _compare("abc", ">", "2")  # non-numeric ordering is false


def _coin_workflow(seed_name: str) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=seed_name)
    wf.add_step(
        ExecutableStep(
            name="flip", duration_s=5, result_options=("heads", "tails")
        )
    )
    wf.add_step(
        ExecutableStep(
            name="heads", duration_s=5, dependencies=["flip"],
            when_expr="{{flip.result}} == heads",
        )
    )
    wf.add_step(
        ExecutableStep(
            name="tails", duration_s=5, dependencies=["flip"],
            when_expr="{{flip.result}} == tails",
        )
    )
    return wf


class TestRuntimeBranching:
    def _run(self, seed: int):
        clock = SimClock()
        cluster = Cluster.uniform("c", 2, cpu_per_node=8, memory_per_node=32 * GB)
        operator = WorkflowOperator(clock, cluster, seed=seed)
        record = operator.submit(_coin_workflow(f"coin-{seed}"))
        operator.run_to_completion()
        return record

    def test_exactly_one_branch_runs(self):
        record = self._run(seed=1)
        assert record.phase == WorkflowPhase.SUCCEEDED
        statuses = {record.steps["heads"].status, record.steps["tails"].status}
        assert statuses == {StepStatus.SUCCEEDED, StepStatus.SKIPPED}

    def test_both_outcomes_reachable_across_seeds(self):
        taken = set()
        for seed in range(12):
            record = self._run(seed)
            taken.add(
                "heads"
                if record.steps["heads"].status == StepStatus.SUCCEEDED
                else "tails"
            )
        assert taken == {"heads", "tails"}

    def test_step_without_result_options_satisfies_conditions(self):
        """A completed step with no declared result keeps the old
        all-branches (upper bound) behaviour."""
        wf = ExecutableWorkflow(name="nores")
        wf.add_step(ExecutableStep(name="a", duration_s=1))
        wf.add_step(
            ExecutableStep(
                name="b", duration_s=1, dependencies=["a"],
                when_expr="{{a.result}} == anything",
            )
        )
        operator = default_environment()
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.steps["b"].status == StepStatus.SUCCEEDED

    def test_skip_cascades_through_chains(self):
        """A condition referencing a Skipped step is false, so unrolled
        exec_while chains stop at the first unmet condition."""
        wf = ExecutableWorkflow(name="cascade")
        wf.add_step(
            ExecutableStep(name="first", duration_s=1, result_options=("stop",))
        )
        wf.add_step(
            ExecutableStep(
                name="second", duration_s=1, dependencies=["first"],
                when_expr="{{first.result}} == go",
                result_options=("go", "stop"),
            )
        )
        wf.add_step(
            ExecutableStep(
                name="third", duration_s=1, dependencies=["second"],
                when_expr="{{second.result}} == go",
            )
        )
        operator = default_environment()
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["second"].status == StepStatus.SKIPPED
        assert record.steps["third"].status == StepStatus.SKIPPED


class TestDslToRuntimeConditions:
    def test_coin_flip_end_to_end_via_manifest(self):
        """Paper Code 3 through the full path: DSL -> Argo -> engine."""
        couler.reset_context("coin-e2e")
        result = couler.run_script(
            image="python:alpine3.6",
            source="print('heads' or 'tails')",
            step_name="flip-coin",
            sim=SimHint(duration_s=5, result_options=("heads", "tails")),
        )
        couler.when(
            couler.equal(result, "heads"),
            lambda: couler.run_container(image="alpine:3.6", step_name="heads"),
        )
        couler.when(
            couler.equal(result, "tails"),
            lambda: couler.run_container(image="alpine:3.6", step_name="tails"),
        )
        record = couler.run(submitter=ArgoSubmitter())
        assert record.phase == WorkflowPhase.SUCCEEDED
        outcomes = {record.steps["heads"].status, record.steps["tails"].status}
        assert outcomes == {StepStatus.SUCCEEDED, StepStatus.SKIPPED}

    def test_exec_while_stops_when_condition_unmet(self):
        """Paper Code 5: iterations beyond the first 'heads' are Skipped."""
        couler.reset_context("loop-e2e")

        def flip():
            return couler.run_script(
                image="alpine3.6",
                source="print('x')",
                step_name="flip-coin",
                sim=SimHint(duration_s=2, result_options=("heads", "tails")),
            )

        couler.exec_while(couler.equal("tails"), flip, max_iterations=6)
        record = couler.run(submitter=ArgoSubmitter())
        assert record.phase == WorkflowPhase.SUCCEEDED
        statuses = [record.steps[name].status for name in sorted(record.steps)]
        ran = [s for s in statuses if s == StepStatus.SUCCEEDED]
        skipped = [s for s in statuses if s == StepStatus.SKIPPED]
        assert len(ran) >= 1
        assert len(ran) + len(skipped) == 6
        # Once an iteration is skipped, all later ones are too.
        first_skip = statuses.index(StepStatus.SKIPPED) if skipped else len(statuses)
        assert all(s == StepStatus.SKIPPED for s in statuses[first_skip:])
