"""Node-deletion shrinking, including the injected-inequivalence demo."""

import pytest

from repro.engine.operator import WorkflowOperator
from repro.verify.generator import generate_ir
from repro.verify.oracles import (
    DETERMINISTIC_CONFIG,
    OracleOutcome,
    check_split,
)
from repro.verify.shrink import delete_node, shrink_failure, shrink_ir


def test_delete_node_drops_node_and_its_edges():
    ir = generate_ir(0, DETERMINISTIC_CONFIG)
    victim = sorted(ir.nodes)[0]
    smaller = delete_node(ir, victim)
    assert victim not in smaller.nodes
    assert set(smaller.nodes) == set(ir.nodes) - {victim}
    assert all(victim not in edge for edge in smaller.edges)
    surviving = {e for e in ir.edges if victim not in e}
    assert smaller.edges == surviving


def test_shrink_to_single_culprit_node():
    """A failure that hinges on one node shrinks to exactly that node."""
    ir = generate_ir(1, DETERMINISTIC_CONFIG)
    culprit = sorted(ir.nodes)[len(ir.nodes) // 2]
    minimal = shrink_ir(ir, lambda candidate: culprit in candidate.nodes)
    assert set(minimal.nodes) == {culprit}


def test_shrink_treats_predicate_exceptions_as_failures():
    ir = generate_ir(1, DETERMINISTIC_CONFIG)

    def explosive(candidate):
        raise RuntimeError("system under test crashed")

    minimal = shrink_ir(ir, explosive)
    assert len(minimal.nodes) == 1


def test_shrink_respects_evaluation_budget():
    ir = generate_ir(1, DETERMINISTIC_CONFIG)
    evaluations = []

    def count(candidate):
        evaluations.append(1)
        return False

    shrink_ir(ir, count, max_evaluations=3)
    assert len(evaluations) == 3


def test_shrink_failure_returns_none_when_not_reproducible():
    phantom = OracleOutcome("backends", 0, False, "never actually failed")
    assert shrink_failure(phantom) is None


def _drop_initial_results(monkeypatch):
    """Inject the pre-fix stitch bug: cross-part step results are not
    forwarded, so ``when`` guards referencing a step in an earlier part
    see no result and skip."""
    original = WorkflowOperator.submit

    def broken(self, workflow, record=None, on_complete=None, initial_results=None):
        return original(
            self, workflow, record=record, on_complete=on_complete,
            initial_results=None,
        )

    monkeypatch.setattr(WorkflowOperator, "submit", broken)


@pytest.mark.slow
def test_injected_split_inequivalence_is_caught_and_shrunk(monkeypatch):
    """Acceptance demo: a deliberately broken cross-part edge handling
    is detected by the split oracle and shrunk to a tiny repro."""
    _drop_initial_results(monkeypatch)
    failing = None
    for seed in range(12):
        ir = generate_ir(seed, DETERMINISTIC_CONFIG)
        outcome = check_split(ir, seed)
        if not outcome.ok:
            failing = (ir, seed, outcome)
            break
    assert failing is not None, "injected bug escaped the split oracle"
    ir, seed, outcome = failing
    assert "split diverged" in outcome.detail

    minimal = shrink_ir(
        ir, lambda candidate: not check_split(candidate, seed).ok
    )
    assert len(minimal.nodes) <= 5
    assert len(minimal.nodes) < len(ir.nodes)
    final = check_split(minimal, seed)
    assert not final.ok
    # The minimal repro must still contain a guarded step — that is the
    # semantic the injected bug breaks.
    assert any(node.when for node in minimal.nodes.values())


@pytest.mark.slow
def test_oracles_are_green_without_the_injection():
    """Control for the demo above: same seeds, healthy code, no alarms."""
    for seed in range(3):
        ir = generate_ir(seed, DETERMINISTIC_CONFIG)
        outcome = check_split(ir, seed)
        assert outcome.ok, outcome.detail
