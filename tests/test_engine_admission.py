"""Tests for the event-driven admission & scheduling pipeline."""

import pytest

from repro.engine.admission import AdmissionError, AdmissionPipeline
from repro.engine.dispatcher import MultiClusterDispatcher
from repro.engine.queue import UserQuota
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _wf(name: str, cpu: float = 8.0, gpu: int = 0, duration: float = 50.0):
    wf = ExecutableWorkflow(name=name)
    wf.add_step(
        ExecutableStep(
            name="work",
            duration_s=duration,
            requests=ResourceQuantity(cpu=cpu, memory=4 * GB, gpu=gpu),
        )
    )
    return wf


def _small_cluster(cpu: float = 8.0):
    return Cluster.uniform("solo", 1, cpu_per_node=cpu, memory_per_node=32 * GB)


class TestArrivals:
    def test_past_arrival_rejected(self):
        pipeline = AdmissionPipeline([_small_cluster()])
        pipeline.submit_at(100.0, _wf("a"))
        pipeline.run()
        assert pipeline.clock.now >= 100.0
        with pytest.raises(AdmissionError):
            pipeline.submit_at(pipeline.clock.now - 1.0, _wf("late"))

    def test_arrival_trace_runs_open_loop(self):
        pipeline = AdmissionPipeline([_small_cluster(cpu=64.0)])
        arrivals = [(float(i) * 10.0, _wf(f"wf{i}", cpu=2.0)) for i in range(5)]
        handles = pipeline.submit_arrivals(arrivals)
        pipeline.run()
        assert [h.arrival_time for h in handles] == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert all(h.record.phase == WorkflowPhase.SUCCEEDED for h in handles)
        # Uncontended fleet: everything places at its own arrival instant.
        assert all(h.queue_latency == 0.0 for h in handles)


class TestIncrementalPlacement:
    def test_completion_triggers_replacement(self):
        """A capacity-deferred workflow starts the moment its blocker ends.

        One 8-cpu cluster, two 8-cpu workflows arriving together: the
        second must wait for the first's completion event — not for a
        retry round or the end of the batch.
        """
        pipeline = AdmissionPipeline([_small_cluster(cpu=8.0)])
        first = pipeline.submit_at(0.0, _wf("first", cpu=8.0, duration=100.0))
        second = pipeline.submit_at(0.0, _wf("second", cpu=8.0, duration=100.0))
        pipeline.run()
        assert first.record.phase == WorkflowPhase.SUCCEEDED
        assert second.record.phase == WorkflowPhase.SUCCEEDED
        assert second.deferrals >= 1
        assert second.place_time == first.finish_time
        assert second.queue_latency == pytest.approx(first.finish_time)

    def test_quota_deferred_replacement_ordering(self):
        """Quota-deferred workflows re-place in priority order on release."""
        quotas = {"alice": UserQuota(user="alice", cpu_limit=8, memory_limit=64 * GB)}
        pipeline = AdmissionPipeline(
            [_small_cluster(cpu=64.0)], quotas=quotas
        )
        running = pipeline.submit_at(0.0, _wf("running", cpu=8.0, duration=60.0), user="alice")
        low = pipeline.submit_at(1.0, _wf("low", cpu=8.0), user="alice", priority=1)
        high = pipeline.submit_at(2.0, _wf("high", cpu=8.0), user="alice", priority=9)
        pipeline.run()
        # Both queued behind alice's 8-cpu grant while "running" held it;
        # on its completion the higher-priority workflow goes first even
        # though it arrived later.
        assert low.deferrals >= 1 and high.deferrals >= 1
        assert running.finish_time == high.place_time
        assert high.place_time < low.place_time
        names = [a.workflow_name for a in pipeline.placed]
        assert names == ["running", "high", "low"]
        assert pipeline.queue.quotas["alice"].cpu_used == 0.0

    def test_starvation_gap_tracks_worst_wait(self):
        pipeline = AdmissionPipeline([_small_cluster(cpu=8.0)])
        pipeline.submit_at(0.0, _wf("a", cpu=8.0, duration=100.0))
        pipeline.submit_at(0.0, _wf("b", cpu=8.0, duration=100.0))
        pipeline.run()
        assert pipeline.starvation_gap() == pytest.approx(100.0)


class TestPriorityAging:
    def _starved_run(self, aging_rate: float) -> float:
        """A low-priority arrival vs a steady high-priority stream.

        Cluster fits exactly one workflow; a fresh priority-5 workflow
        arrives every time the running one finishes, so without aging
        the priority-1 tenant waits out the entire stream.  Aging only
        matters against *later* arrivals — the waiter has accumulated
        age they haven't.  Returns the low workflow's wait.
        """
        pipeline = AdmissionPipeline(
            [_small_cluster(cpu=8.0)], aging_rate=aging_rate
        )
        low = pipeline.submit_at(0.0, _wf("low", cpu=8.0, duration=50.0), priority=1)
        for index in range(10):
            pipeline.submit_at(
                float(index) * 50.0,
                _wf(f"high{index}", cpu=8.0, duration=50.0),
                priority=5,
            )
        pipeline.run()
        assert low.record.phase == WorkflowPhase.SUCCEEDED
        return low.queue_latency

    def test_aging_bounds_starvation(self):
        starved_wait = self._starved_run(aging_rate=0.0)
        aged_wait = self._starved_run(aging_rate=0.1)
        # Without aging the low-priority tenant drains last (10 x 50s
        # of higher-priority work ahead of it); with 0.1 pt/s aging its
        # 50s of queue age outbids the 4-point priority gap at the
        # first completion.
        assert starved_wait == pytest.approx(500.0)
        assert aged_wait == pytest.approx(50.0)

    def test_effective_priority_growth(self):
        pipeline = AdmissionPipeline([_small_cluster()], aging_rate=0.5)
        record = pipeline.submit_at(10.0, _wf("w"))
        assert record.effective_priority(10.0, 0.5) == 0.0
        assert record.effective_priority(30.0, 0.5) == pytest.approx(10.0)


class TestAdmissionControl:
    def test_backpressure_sheds_when_queue_full(self):
        pipeline = AdmissionPipeline([_small_cluster(cpu=8.0)], max_pending=2)
        handles = [
            pipeline.submit_at(0.0, _wf(f"wf{i}", cpu=8.0, duration=1000.0))
            for i in range(5)
        ]
        pipeline.run(until=1.0)
        rejected = [h for h in handles if h.admitted is False]
        # All five arrive in the same instant, before placement fires:
        # two fill the bounded queue, the remaining three are shed.
        assert len(rejected) == 3
        assert all("queue full" in h.reject_reason for h in rejected)
        assert pipeline.metrics.counter("admission_rejected_total").value(
            reason="queue-full"
        ) == 3

    def test_infeasible_gpu_demand_rejected_at_arrival(self):
        pipeline = AdmissionPipeline([_small_cluster()])
        handle = pipeline.submit_at(0.0, _wf("gpu-wf", gpu=2))
        pipeline.run()
        assert handle.admitted is False
        assert "demand" in handle.reject_reason

    def test_oversized_demand_rejected_not_deadlocked(self):
        pipeline = AdmissionPipeline([_small_cluster(cpu=8.0)])
        giant = pipeline.submit_at(0.0, _wf("giant", cpu=100.0))
        normal = pipeline.submit_at(0.0, _wf("normal", cpu=4.0))
        makespan = pipeline.run()
        # The impossible workflow is shed instead of parking the queue.
        assert giant.admitted is False
        assert normal.record.phase == WorkflowPhase.SUCCEEDED
        assert makespan < 10_000

    def test_quota_grant_too_small_rejected(self):
        quotas = {"bob": UserQuota(user="bob", cpu_limit=2, memory_limit=64 * GB)}
        pipeline = AdmissionPipeline([_small_cluster(cpu=64.0)], quotas=quotas)
        handle = pipeline.submit_at(0.0, _wf("big", cpu=8.0), user="bob")
        pipeline.run()
        assert handle.admitted is False
        assert "quota grant" in handle.reject_reason


class TestObservability:
    def test_every_decision_counted(self):
        pipeline = AdmissionPipeline([_small_cluster(cpu=8.0)])
        for i in range(3):
            pipeline.submit_at(0.0, _wf(f"wf{i}", cpu=8.0, duration=10.0))
        pipeline.submit_at(0.0, _wf("gpu-wf", gpu=2))
        pipeline.run()
        events = {
            dict(labels)["event"]: value
            for labels, value in pipeline.metrics.counter(
                "admission_events_total"
            ).series().items()
        }
        assert events["arrival"] == 4
        assert events["admit"] == 3
        assert events["rejection"] == 1
        assert events["placement"] == 3
        assert events["completion"] == 3
        # Serial drain on a one-slot cluster: wf1 and wf2 defer at the
        # first pass, wf2 defers once more before its turn.
        assert events["deferral"] == 3
        assert events["pass"] == 3

    def test_determinism_same_seed(self):
        def fingerprints(seed):
            pipeline = AdmissionPipeline(
                [_small_cluster(cpu=16.0)], seed=seed, aging_rate=0.05
            )
            for i in range(8):
                pipeline.submit_at(float(i) * 5.0, _wf(f"wf{i}", cpu=8.0), priority=i % 3)
            pipeline.run()
            return [
                (a.workflow_name, a.cluster_name, a.place_time, a.finish_time, a.deferrals)
                for a in pipeline.placed
            ]

        assert fingerprints(7) == fingerprints(7)


class TestDispatcherCompat:
    """``dispatch_all()`` keeps the legacy batch semantics on the new path."""

    def _clusters(self):
        return [
            Cluster.uniform("gpu", 2, cpu_per_node=32, memory_per_node=128 * GB, gpu_per_node=4),
            Cluster.uniform("cpu-a", 2, cpu_per_node=32, memory_per_node=128 * GB),
            Cluster.uniform("cpu-b", 2, cpu_per_node=32, memory_per_node=128 * GB),
        ]

    def test_batch_equivalence_priority_order_and_completion(self):
        dispatcher = MultiClusterDispatcher(clusters=self._clusters())
        expected = []
        for index in range(9):
            priority = (index * 7) % 5
            dispatcher.enqueue(_wf(f"wf{index}"), priority=priority)
            expected.append((f"wf{index}", priority))
        results = dispatcher.dispatch_all()
        # Legacy contract: results come back in strict priority order
        # (ties by enqueue order), every workflow completes, and GPU-free
        # work never lands on the GPU cluster's scarce capacity alone.
        expected.sort(key=lambda pair: -pair[1])
        assert [r.workflow_name for r in results] == [name for name, _ in expected]
        assert all(r.record.phase == WorkflowPhase.SUCCEEDED for r in results)

    def test_batch_runs_are_reproducible(self):
        def run_once():
            dispatcher = MultiClusterDispatcher(clusters=self._clusters(), seed=3)
            for index in range(8):
                dispatcher.enqueue(_wf(f"wf{index}", cpu=16.0), priority=index % 4)
            return [
                (r.workflow_name, r.cluster_name, r.record.finish_time)
                for r in dispatcher.dispatch_all()
            ]

        assert run_once() == run_once()

    def test_admission_records_exposed(self):
        dispatcher = MultiClusterDispatcher(clusters=self._clusters())
        dispatcher.enqueue(_wf("only"))
        dispatcher.dispatch_all()
        records = dispatcher.admission_records()
        assert len(records) == 1
        assert records[0].workflow_name == "only"
        assert records[0].queue_latency == 0.0
