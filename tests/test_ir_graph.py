"""Unit tests for the workflow IR graph."""

import pytest

from repro.ir.graph import WorkflowIR
from repro.ir.nodes import ArtifactDecl, IRError, IRNode, OpKind, SimHint


def _node(name: str, duration: float = 10.0, outputs=()) -> IRNode:
    return IRNode(
        name=name,
        op=OpKind.CONTAINER,
        image="img:v1",
        outputs=list(outputs),
        sim=SimHint(duration_s=duration),
    )


def _diamond() -> WorkflowIR:
    ir = WorkflowIR(name="d")
    for name in "abcd":
        ir.add_node(_node(name))
    ir.add_edge("a", "b")
    ir.add_edge("a", "c")
    ir.add_edge("b", "d")
    ir.add_edge("c", "d")
    return ir


class TestStructure:
    def test_duplicate_node_rejected(self):
        ir = WorkflowIR(name="w")
        ir.add_node(_node("a"))
        with pytest.raises(IRError):
            ir.add_node(_node("a"))

    def test_edge_validation(self):
        ir = WorkflowIR(name="w")
        ir.add_node(_node("a"))
        with pytest.raises(IRError):
            ir.add_edge("a", "ghost")
        with pytest.raises(IRError):
            ir.add_edge("a", "a")

    def test_parents_children_roots_leaves(self):
        ir = _diamond()
        assert ir.parents("d") == ["b", "c"]
        assert ir.children("a") == ["b", "c"]
        assert ir.roots() == ["a"]
        assert ir.leaves() == ["d"]

    def test_topological_order(self):
        order = _diamond().topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        ir = WorkflowIR(name="w")
        ir.add_node(_node("a"))
        ir.add_node(_node("b"))
        ir.add_edge("a", "b")
        ir.add_edge("b", "a")
        with pytest.raises(IRError):
            ir.topological_order()

    def test_invalid_workflow_name(self):
        with pytest.raises(IRError):
            WorkflowIR(name="bad name!")


class TestArtifacts:
    def test_finalize_assigns_uids(self):
        ir = WorkflowIR(name="w")
        ir.add_node(_node("a", outputs=[ArtifactDecl(name="out")]))
        ir.finalize_artifacts()
        assert ir.nodes["a"].outputs[0].uid == "w/a/out"

    def test_finalize_preserves_existing_uids(self):
        ir = WorkflowIR(name="w")
        ir.add_node(_node("a", outputs=[ArtifactDecl(name="out", uid="custom/uid")]))
        ir.finalize_artifacts()
        assert ir.nodes["a"].outputs[0].uid == "custom/uid"

    def test_duplicate_output_uid_rejected(self):
        ir = WorkflowIR(name="w")
        shared = ArtifactDecl(name="out", uid="same")
        ir.add_node(_node("a", outputs=[shared]))
        ir.add_node(_node("b", outputs=[shared]))
        with pytest.raises(IRError):
            ir.validate()


class TestSubgraph:
    def test_induced_subgraph(self):
        sub = _diamond().subgraph(["a", "b", "d"], name="sub")
        assert set(sub.nodes) == {"a", "b", "d"}
        assert sub.edges == {("a", "b"), ("b", "d")}

    def test_unknown_node_rejected(self):
        with pytest.raises(IRError):
            _diamond().subgraph(["a", "zz"])


class TestMetrics:
    def test_critical_path(self):
        ir = _diamond()
        # a -> (b|c) -> d, each 10s: critical path 30s.
        assert ir.critical_path_seconds() == pytest.approx(30.0)

    def test_max_parallel_width(self):
        assert _diamond().max_parallel_width() == 2

    def test_stats_keys(self):
        stats = _diamond().stats()
        assert stats["nodes"] == 4
        assert stats["edges"] == 4
        assert stats["max_width"] == 2


class TestLowering:
    def test_to_executable_preserves_structure(self):
        ir = _diamond()
        wf = ir.to_executable()
        assert set(wf.steps) == set(ir.nodes)
        assert wf.steps["d"].dependencies == ["b", "c"]

    def test_to_executable_maps_sim_hints(self):
        ir = WorkflowIR(name="w")
        ir.add_node(
            IRNode(
                name="a",
                op=OpKind.CONTAINER,
                image="i",
                sim=SimHint(duration_s=77, failure_rate=0.5, uses_gpu=True),
            )
        )
        step = ir.to_executable().steps["a"]
        assert step.duration_s == 77
        assert step.failure.rate == 0.5
        assert step.uses_gpu
