"""Unit tests for the step zoo (TensorFlow / XGBoost / LightGBM / PyTorch)."""

from repro import core as couler
from repro.core.step_zoo import Dataset, lightgbm, pytorch, tensorflow, xgboost
from repro.ir.nodes import OpKind


class TestDataset:
    def test_feature_list_parses_csv(self):
        data = Dataset(table_name="t", feature_cols="a, b ,c", label_col="y")
        assert data.feature_list() == ["a", "b", "c"]

    def test_input_artifact_has_stable_uid(self):
        data = Dataset(table_name="pai_telco_demo_data")
        artifact = data.as_input_artifact()
        assert artifact.uid == "external/table/pai_telco_demo_data"


class TestTensorflow:
    def test_train_creates_tfjob(self):
        couler.reset_context("tfz")
        out = tensorflow.train(
            command="python /train_model.py",
            image="wide-deep-model:v1.0",
            num_ps=1,
            num_workers=2,
            input_batch_size=100,
        )
        node = couler.workflow_ir(optimize=False).nodes[out.step_name]
        assert node.op == OpKind.JOB
        assert node.job_params["kind"] == "TFJob"
        assert out.artifact is not None

    def test_model_search_pipeline_matches_paper_code_6(self):
        couler.reset_context("search")
        batch_sizes = [100, 200, 300, 400, 500]
        models = couler.map(
            lambda bs: tensorflow.train(
                command="python /train_model.py",
                image="wide-deep-model:v1.0",
                input_batch_size=bs,
            ),
            batch_sizes,
        )
        couler.map(lambda m: tensorflow.evaluate(m), models)
        ir = couler.workflow_ir(optimize=False)
        assert len(ir.nodes) == 10
        assert len(ir.edges) == 5  # each eval depends on its model only


class TestBoostedTrees:
    def test_automl_pipeline_matches_paper_code_7(self):
        couler.reset_context("automl")
        data = Dataset(
            table_name="pai_telco_demo_data",
            feature_cols="tenure, age, marital, address, ed, employ",
            label_col="churn",
        )

        def train_xgboost():
            return xgboost.train(
                datasource=data,
                model_params={"objective": "binary:logistic"},
                train_params={"num_boost_round": 10, "max_depth": 5},
            )

        def train_lgbm():
            estimator = lightgbm.LightGBMEstimator()
            estimator.set_hyperparameters(num_leaves=63, num_iterations=200)
            estimator.model_path = "lightgbm_model"
            return estimator.fit(data)

        couler.concurrent([train_xgboost, train_lgbm])
        ir = couler.workflow_ir(optimize=False)
        assert set(ir.nodes) == {"xgboost-train", "lightgbm-train"}
        assert not ir.edges  # concurrent -> no inter-dependency
        xgb = ir.nodes["xgboost-train"]
        assert "--num_boost_round=10" in xgb.args
        lgb = ir.nodes["lightgbm-train"]
        assert "--num_leaves=63" in lgb.args


class TestPytorch:
    def test_gpu_training_job(self):
        couler.reset_context("torch")
        out = pytorch.train(command="python train.py", image="vit:v1", num_workers=2)
        node = couler.workflow_ir(optimize=False).nodes[out.step_name]
        assert node.job_params["kind"] == "PyTorchJob"
        assert node.resources.gpu == 2
        assert node.sim.uses_gpu
