"""Additional property-based tests: engine termination under chaos,
canvas translation invariants, SQLFlow round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
)
from repro.engine.status import StepStatus, WorkflowPhase
from repro.gui import Canvas, CanvasNode, NodeKind
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.sqlflow import parse

GB = 2**30


# ------------------------------------------------- chaos termination


@st.composite
def chaotic_workflows(draw):
    """Random chain/fan workflows with random per-step failure rates."""
    n = draw(st.integers(min_value=1, max_value=8))
    rates = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    fan = draw(st.booleans())
    wf = ExecutableWorkflow(name="chaos")
    for index in range(n):
        deps = []
        if index > 0:
            deps = ["s0"] if fan else [f"s{index - 1}"]
        wf.add_step(
            ExecutableStep(
                name=f"s{index}",
                duration_s=1.0,
                requests=ResourceQuantity(cpu=1.0),
                dependencies=deps,
                failure=FailureProfile(rate=rates[index]),
            )
        )
    return wf


@given(chaotic_workflows(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_engine_always_terminates_with_consistent_statuses(wf, seed):
    """Whatever the failure pattern, the run terminates, the workflow
    phase is terminal, and statuses are mutually consistent."""
    clock = SimClock()
    cluster = Cluster.uniform("chaos", 2, cpu_per_node=8, memory_per_node=32 * GB)
    operator = WorkflowOperator(
        clock,
        cluster,
        retry_policy=RetryPolicy(limit=2, backoff_base=1.0),
        failure_injector=FailureInjector(seed=seed),
        seed=seed,
    )
    record = operator.submit(wf)
    operator.run_to_completion()
    assert record.phase.is_terminal()
    statuses = {name: s.status for name, s in record.steps.items()}
    if record.phase == WorkflowPhase.SUCCEEDED:
        assert all(s.counts_as_done() for s in statuses.values())
    else:
        assert any(s == StepStatus.FAILED for s in statuses.values())
    # A step never runs if any of its dependencies did not finish well.
    for step in wf.steps.values():
        if record.steps[step.name].start_time is not None:
            for dep in step.dependencies:
                assert statuses[dep].counts_as_done()


# ------------------------------------------------- canvas translation


@given(
    st.lists(
        st.sampled_from(
            ["logistic-regression", "random-forest", "xgboost", "lightgbm"]
        ),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    st.floats(0.1, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_canvas_translation_invariants(models, fraction):
    canvas = Canvas(name="prop-canvas")
    canvas.add(CanvasNode(id="src", kind=NodeKind.DATA_SOURCE, config={"table": "t"}))
    canvas.add(
        CanvasNode(
            id="split", kind=NodeKind.DATA_SPLIT, config={"train_fraction": fraction}
        )
    )
    canvas.wire("src", "split")
    for model in models:
        canvas.add(CanvasNode(id=f"m-{model}", kind=NodeKind.MODEL, config={"model": model}))
        canvas.wire("split", f"m-{model}")
    canvas.add(CanvasNode(id="eval", kind=NodeKind.EVALUATION))
    for model in models:
        canvas.wire(f"m-{model}", "eval")
    ir = canvas.to_ir()
    # One IR node per canvas node; a valid DAG; all trainers parallel.
    assert len(ir.nodes) == len(canvas.nodes)
    ir.validate()
    assert all(ir.parents(f"m-{model}") == ["split"] for model in models)
    assert sorted(ir.parents("eval")) == sorted(f"m-{m}" for m in models)


# ------------------------------------------------- sqlflow round trip


_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


@given(
    table=_IDENT,
    estimator=st.sampled_from(["DNNClassifier", "XGBoost", "LightGBM"]),
    columns=st.lists(_IDENT, min_size=1, max_size=4, unique=True),
    label=_IDENT,
    n_classes=st.integers(2, 100),
)
@settings(max_examples=40)
def test_sqlflow_parse_reflects_statement(table, estimator, columns, label, n_classes):
    sql = (
        f"SELECT * FROM {table} TO TRAIN {estimator} "
        f"WITH model.n_classes = {n_classes} "
        f"COLUMN {', '.join(columns)} LABEL {label} INTO out_model"
    )
    statement = parse(sql)
    assert statement.table == table
    assert statement.estimator == estimator
    assert statement.feature_columns == columns
    assert statement.label == label
    assert statement.attributes["model.n_classes"] == n_classes
    assert statement.into == "out_model"
