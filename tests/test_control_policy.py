"""PolicyConfig contract: one frozen knob bundle, default == static paper.

Mirrors ``tests/test_engine_config.py`` for the adaptive-policy surface:
construction-time ``SpecError`` validation naming the field, keyword-only
frozen dataclass semantics, subsystem bridges (``ScoreWeights``,
``BudgetModel``, ``RetryPolicy``), dict round-trip for the
AdaptationLog, and the ``CacheManager(policy_config=...)`` entry point
(defaults bit-identical, mixing with ``weights=`` rejected).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import couler
from repro.caching.manager import CacheManager
from repro.caching.score import ScoreWeights
from repro.control import DEFAULT_POLICY, PolicyConfig
from repro.engine.spec import SpecError

GB = 2**30


class TestValidation:
    def test_defaults_are_static_paper_constants(self):
        policy = PolicyConfig()
        assert policy == DEFAULT_POLICY
        assert policy.is_default()
        assert policy.score_alpha == 1.5
        assert policy.score_beta == 1.0
        assert policy.eviction_pressure == 1.0
        assert policy.split_budget_steps is None
        assert policy.aging_rate == 0.0
        assert policy.retry_limit == 3
        assert policy.infra_retry_limit == 32

    @pytest.mark.parametrize(
        ("kwargs", "field_name"),
        [
            ({"score_alpha": -0.1}, "score_alpha"),
            ({"score_beta": -1.0}, "score_beta"),
            ({"eviction_pressure": -2.0}, "eviction_pressure"),
            ({"split_budget_steps": 0}, "split_budget_steps"),
            ({"aging_rate": -0.01}, "aging_rate"),
            ({"retry_limit": -1}, "retry_limit"),
            ({"infra_retry_limit": -1}, "infra_retry_limit"),
        ],
    )
    def test_invalid_value_raises_spec_error_naming_field(
        self, kwargs, field_name
    ):
        with pytest.raises(SpecError) as excinfo:
            PolicyConfig(**kwargs)
        assert field_name in str(excinfo.value)

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            PolicyConfig(2.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PolicyConfig().score_alpha = 2.0

    def test_describe_lists_only_non_defaults(self):
        assert PolicyConfig().describe() == "PolicyConfig()"
        text = PolicyConfig(score_alpha=2.0, aging_rate=0.05).describe()
        assert "score_alpha=2.0" in text and "aging_rate=0.05" in text
        assert "retry_limit" not in text


class TestBridges:
    def test_score_weights_carries_knobs(self):
        weights = PolicyConfig(
            score_alpha=2.0, score_beta=0.5, eviction_pressure=4.0
        ).score_weights()
        assert weights.alpha == 2.0
        assert weights.beta == 0.5
        assert weights.cache_cost_weight == 4.0

    def test_default_score_weights_bit_identical(self):
        assert PolicyConfig().score_weights() == ScoreWeights()

    def test_score_weights_preserves_base_non_knob_fields(self):
        base = ScoreWeights(cache_cost_scale=123.0)
        weights = PolicyConfig(score_alpha=3.0).score_weights(base)
        assert weights.cache_cost_scale == 123.0
        assert weights.alpha == 3.0

    def test_split_budget_resolution(self):
        assert PolicyConfig().split_budget(6) == 6
        assert PolicyConfig().split_budget() is None
        assert PolicyConfig(split_budget_steps=4).split_budget(6) == 4

    def test_budget_model(self):
        model = PolicyConfig(split_budget_steps=4).budget_model()
        assert model.max_steps == 4
        default_model = PolicyConfig().budget_model()
        assert default_model.max_steps == type(default_model)().max_steps

    def test_retry_policy_budgets(self):
        retry = PolicyConfig(retry_limit=5, infra_retry_limit=9).retry_policy()
        assert retry.limit == 5
        assert retry.infra_limit == 9


class TestDictRoundTrip:
    def test_round_trip(self):
        policy = PolicyConfig(score_alpha=2.0, aging_rate=0.05)
        assert PolicyConfig.from_dict(policy.to_dict()) == policy

    def test_unknown_field_rejected(self):
        payload = PolicyConfig().to_dict()
        payload["cache_gb"] = 1.0
        with pytest.raises(SpecError, match="cache_gb"):
            PolicyConfig.from_dict(payload)


class TestCacheManagerEntryPoint:
    def test_default_policy_config_matches_default_weights(self):
        plain = CacheManager(policy="couler", capacity_bytes=GB)
        configured = CacheManager(
            policy="couler", capacity_bytes=GB, policy_config=PolicyConfig()
        )
        assert configured.scorer.weights == plain.scorer.weights

    def test_knobs_reach_the_scorer(self):
        manager = CacheManager(
            policy="couler",
            capacity_bytes=GB,
            policy_config=PolicyConfig(score_alpha=2.0, eviction_pressure=0.5),
        )
        assert manager.scorer.weights.alpha == 2.0
        assert manager.scorer.weights.cache_cost_weight == 0.5

    def test_mixing_with_weights_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            CacheManager(
                policy="couler",
                capacity_bytes=GB,
                weights=ScoreWeights(),
                policy_config=PolicyConfig(),
            )

    def test_non_policy_config_rejected(self):
        with pytest.raises(ValueError, match="PolicyConfig"):
            CacheManager(
                policy="couler", capacity_bytes=GB, policy_config={"alpha": 2.0}
            )


class TestFacade:
    def test_v1_facade_exports_control_surface(self):
        assert couler.PolicyConfig is PolicyConfig
        assert "PolicyConfig" in couler.__all__
        assert "Controller" in couler.__all__
        assert "AdaptationLog" in couler.__all__
        from repro.control.controller import AdaptationLog, Controller

        assert couler.Controller is Controller
        assert couler.AdaptationLog is AdaptationLog
