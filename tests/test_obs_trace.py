"""Tests for the span/event tracer and its Chrome export."""

import json

import pytest

from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import ExecutableStep, ExecutableWorkflow, FailureProfile
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.obs.trace import NullTracer, TraceError, Tracer

GB = 2**30


class TestTracerBasics:
    def test_begin_end_records_interval(self):
        tracer = Tracer()
        span = tracer.begin("wf", "workflow", 5.0)
        assert span.end is None and span.duration is None
        tracer.end(span, 17.5, phase="Succeeded")
        assert span.duration == pytest.approx(12.5)
        assert span.args["phase"] == "Succeeded"

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("s", "step", 0.0)
        tracer.end(span, 10.0, status="first")
        tracer.end(span, 99.0, status="second")
        assert span.end == 10.0
        assert span.args["status"] == "first"

    def test_end_of_none_is_safe(self):
        Tracer().end(None, 1.0)  # must not raise

    def test_end_before_start_raises(self):
        tracer = Tracer()
        span = tracer.begin("s", "step", 10.0)
        with pytest.raises(TraceError):
            tracer.end(span, 5.0)

    def test_add_span_validates_extent(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.add_span("bad", "step", 10.0, 5.0)

    def test_parentage_and_queries(self):
        tracer = Tracer()
        root = tracer.begin("wf", "workflow", 0.0)
        child = tracer.add_span("a", "step", 0.0, 10.0, parent=root)
        grand = tracer.add_span("compute", "compute", 0.0, 10.0, parent=child)
        tracer.end(root, 10.0)
        assert tracer.roots() == [root]
        assert tracer.children(root) == [child]
        assert tracer.children(child) == [grand]
        assert tracer.find("a", cat="step") is child
        assert tracer.find("a", cat="workflow") is None
        assert tracer.spans(cat="compute") == [grand]
        assert len(tracer) == 3
        assert root.contains(child) and child.contains(grand)

    def test_instant_events(self):
        tracer = Tracer()
        step = tracer.begin("s", "step", 0.0)
        event = tracer.instant("retry", "retry", 4.0, parent=step, pattern="X")
        assert tracer.events(cat="retry") == [event]
        assert event.parent_id == step.span_id

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        span = tracer.begin("wf", "workflow", 0.0)
        assert span is None
        tracer.end(span, 1.0)
        assert tracer.add_span("a", "step", 0.0, 1.0) is None
        assert tracer.instant("i", "retry", 0.0) is None
        assert tracer.spans() == [] and tracer.events() == []
        assert tracer.roots() == [] and len(tracer) == 0


class TestChromeExport:
    def _nested_trace(self) -> Tracer:
        tracer = Tracer()
        wf = tracer.begin("wf", "workflow", 0.0)
        a = tracer.add_span("a", "step", 0.0, 10.0, parent=wf)
        b = tracer.add_span("b", "step", 0.0, 12.0, parent=wf)
        tracer.add_span("compute", "compute", 0.0, 10.0, parent=a)
        tracer.add_span("compute", "compute", 0.0, 12.0, parent=b)
        tracer.end(wf, 12.0)
        return tracer

    def test_layout_separates_concurrent_steps(self):
        doc = self._nested_trace().to_chrome()
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for event in complete:
            by_name.setdefault(event["name"], []).append(event)
        # Both steps share the workflow's pid but get distinct tids.
        (a_ev,), (b_ev,) = by_name["a"], by_name["b"]
        assert a_ev["pid"] == b_ev["pid"]
        assert a_ev["tid"] != b_ev["tid"]
        # Phase sub-spans ride on their step's thread.
        tids = sorted(e["tid"] for e in by_name["compute"])
        assert tids == sorted([a_ev["tid"], b_ev["tid"]])

    def test_times_are_microseconds(self):
        doc = self._nested_trace().to_chrome()
        wf = next(e for e in doc["traceEvents"] if e["name"] == "wf")
        assert wf["ts"] == 0.0
        assert wf["dur"] == pytest.approx(12.0 * 1e6)

    def test_metadata_names_processes_and_threads(self):
        doc = self._nested_trace().to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "workflow:wf" in names
        assert {"step:a", "step:b"} <= names

    def test_write_chrome_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._nested_trace().write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestOperatorIntegration:
    def _run_diamond(self, tracer, **operator_kwargs):
        clock = SimClock()
        cluster = Cluster.uniform(
            "t", 4, cpu_per_node=8.0, memory_per_node=32 * GB
        )
        operator = WorkflowOperator(clock, cluster, tracer=tracer, **operator_kwargs)
        wf = ExecutableWorkflow(name="diamond")
        wf.add_step(ExecutableStep(name="a", duration_s=10))
        wf.add_step(ExecutableStep(name="b", duration_s=10, dependencies=["a"]))
        wf.add_step(ExecutableStep(name="c", duration_s=10, dependencies=["a"]))
        wf.add_step(
            ExecutableStep(name="d", duration_s=10, dependencies=["b", "c"])
        )
        record = operator.submit(wf)
        operator.run_to_completion()
        return record

    def test_spans_nest_workflow_step_attempt_compute(self):
        tracer = Tracer()
        record = self._run_diamond(tracer)
        assert record.phase == WorkflowPhase.SUCCEEDED

        wf_span = tracer.find("diamond", cat="workflow")
        assert wf_span is not None and wf_span.args["phase"] == "Succeeded"
        assert wf_span.duration == pytest.approx(record.makespan)

        steps = {s.name: s for s in tracer.children(wf_span)}
        assert set(steps) == {"a", "b", "c", "d"}
        for name, step_span in steps.items():
            assert wf_span.contains(step_span)
            attempts = [
                c for c in tracer.children(step_span) if c.cat == "attempt"
            ]
            assert len(attempts) == 1
            assert step_span.contains(attempts[0])
            computes = [
                c for c in tracer.children(attempts[0]) if c.cat == "compute"
            ]
            assert len(computes) == 1
            assert computes[0].duration == pytest.approx(10.0)

    def test_step_spans_record_dependencies(self):
        tracer = Tracer()
        self._run_diamond(tracer)
        d_span = tracer.find("d", cat="step")
        assert sorted(d_span.args["deps"]) == ["b", "c"]

    def test_queue_wait_span_under_contention(self):
        tracer = Tracer()
        clock = SimClock()
        cluster = Cluster.uniform("tiny", 1, cpu_per_node=1.0, memory_per_node=4 * GB)
        operator = WorkflowOperator(clock, cluster, tracer=tracer)
        wf = ExecutableWorkflow(name="serial")
        for index in range(2):
            wf.add_step(
                ExecutableStep(
                    name=f"s{index}",
                    duration_s=10,
                    requests=ResourceQuantity(cpu=1.0),
                )
            )
        operator.submit(wf)
        operator.run_to_completion()
        queue_spans = tracer.spans(cat="queue")
        # The second step waits 10s for the single core.
        assert any(s.duration == pytest.approx(10.0) for s in queue_spans)

    def test_retry_emits_instant_and_backoff_span(self):
        tracer = Tracer()
        record = self._run_diamond_with_failures(tracer)
        retried = [s for r in [record] for s in r.steps.values() if s.attempts > 1]
        assert retried, "seed must produce at least one retry"
        assert tracer.events(cat="retry")
        backoffs = tracer.spans(cat="backoff")
        assert backoffs and all(s.duration > 0 for s in backoffs)

    def _run_diamond_with_failures(self, tracer):
        clock = SimClock()
        cluster = Cluster.uniform("t", 4, cpu_per_node=8.0, memory_per_node=32 * GB)
        operator = WorkflowOperator(
            clock,
            cluster,
            tracer=tracer,
            retry_policy=RetryPolicy(limit=10),
            failure_injector=FailureInjector(seed=3, retryable_fraction=1.0),
        )
        wf = ExecutableWorkflow(name="flaky")
        wf.add_step(
            ExecutableStep(
                name="bad",
                duration_s=10,
                failure=FailureProfile(rate=0.7, pattern="PodCrashErr"),
            )
        )
        record = operator.submit(wf)
        operator.run_to_completion()
        return record

    def test_untraced_operator_records_nothing(self):
        tracer = NullTracer()
        record = self._run_diamond(tracer)
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert len(tracer) == 0


class TestJournalToTracer:
    def test_journal_renders_as_spans(self):
        from repro.engine.journal import Journal
        from repro.engine.spec import executable_to_dict, ExecutableStep, ExecutableWorkflow
        from repro.obs.trace import journal_to_tracer

        wf = ExecutableWorkflow(name="traced")
        wf.add_step(ExecutableStep(name="a", duration_s=5.0))
        journal = Journal()
        journal.append("traced", "admission-admitted", 0.0, {"user": "u"})
        journal.append("traced", "submitted", 1.0, {"spec": executable_to_dict(wf)})
        journal.append("traced", "attempt-started", 1.0, {"step": "a", "attempt": 1})
        journal.append("traced", "attempt-succeeded", 6.0,
                       {"step": "a", "result": None, "fetch": 0.0,
                        "compute": 5.0, "hits": 0, "misses": 0})
        journal.append("traced", "workflow-finished", 6.0, {"phase": "Succeeded"})
        tracer = journal_to_tracer(journal)
        root = tracer.find("traced", "journal")
        assert root.start == 1.0 and root.end == 6.0
        attempt = tracer.find("traced/a", "journal-attempt")
        assert attempt.start == 1.0 and attempt.end == 6.0
        assert attempt.args["outcome"] == "succeeded"
        assert tracer.events("journal")  # the admission decision instant
        assert tracer.to_chrome()["traceEvents"]

    def test_unfinished_streams_close_at_last_event(self):
        from repro.engine.journal import Journal
        from repro.obs.trace import journal_to_tracer

        journal = Journal()
        journal.append("wf", "submitted", 0.0, {})
        journal.append("wf", "attempt-started", 2.0, {"step": "a", "attempt": 1})
        tracer = journal_to_tracer(journal)
        root = tracer.find("wf", "journal")
        assert root.end == 2.0
        assert root.args["phase"] == "unfinished"
