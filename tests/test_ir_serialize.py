"""Round-trip tests for IR serialization."""

import pytest

from repro.ir.graph import WorkflowIR
from repro.ir.nodes import ArtifactDecl, ArtifactStorage, IRNode, OpKind, SimHint
from repro.ir.serialize import ir_from_dict, ir_from_json, ir_to_dict, ir_to_json
from repro.k8s.resources import ResourceQuantity


def _rich_ir() -> WorkflowIR:
    ir = WorkflowIR(name="rich", config={"owner": "tests"})
    ir.add_node(
        IRNode(
            name="flip",
            op=OpKind.SCRIPT,
            image="python:alpine3.6",
            source="print('heads')",
            resources=ResourceQuantity(cpu=0.5, memory=2**20),
            outputs=[ArtifactDecl(name="result", storage=ArtifactStorage.PARAMETER)],
            sim=SimHint(duration_s=5.0),
        )
    )
    ir.add_node(
        IRNode(
            name="train",
            op=OpKind.JOB,
            image="tf:v1",
            command=["python", "train.py"],
            args=["--epochs", "3"],
            job_params={"kind": "TFJob", "num_ps": 1, "num_workers": 2},
            when="{{flip.result}} == heads",
            sim=SimHint(duration_s=100.0, failure_rate=0.1, uses_gpu=True),
        )
    )
    ir.add_edge("flip", "train")
    ir.finalize_artifacts()
    return ir


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        original = _rich_ir()
        restored = ir_from_dict(ir_to_dict(original))
        assert ir_to_dict(restored) == ir_to_dict(original)

    def test_json_round_trip(self):
        original = _rich_ir()
        restored = ir_from_json(ir_to_json(original))
        assert set(restored.nodes) == set(original.nodes)
        assert restored.edges == original.edges
        assert restored.config == original.config

    def test_node_fields_survive(self):
        restored = ir_from_dict(ir_to_dict(_rich_ir()))
        train = restored.nodes["train"]
        assert train.op == OpKind.JOB
        assert train.job_params["num_workers"] == 2
        assert train.when == "{{flip.result}} == heads"
        assert train.sim.uses_gpu
        flip = restored.nodes["flip"]
        assert flip.source == "print('heads')"
        assert flip.outputs[0].storage == ArtifactStorage.PARAMETER
        assert flip.outputs[0].uid == "rich/flip/result"

    def test_version_check(self):
        data = ir_to_dict(_rich_ir())
        data["version"] = 99
        with pytest.raises(ValueError):
            ir_from_dict(data)
