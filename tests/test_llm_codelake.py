"""Unit tests for the Code Lake corpus and retrieval."""

import pytest

from repro.llm.codelake import (
    CodeLake,
    CodeSnippet,
    TASK_TYPES,
    canonical_code,
    default_entries,
)
from repro.nl2wf.executor import execute_couler_code


class TestCanonicalCode:
    def test_every_task_type_has_a_template(self):
        for task_type in TASK_TYPES:
            code = canonical_code(task_type, {"dataset": "d", "models": ["m1"]})
            assert "couler." in code

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            canonical_code("quantum_annealing")

    def test_parameters_substituted(self):
        code = canonical_code("data_loading", {"dataset": "imagenet"})
        assert "imagenet" in code

    def test_full_pipeline_is_executable(self):
        """Chained canonical snippets execute against the real DSL."""
        params = {"dataset": "d", "models": ["m1", "m2"], "data_var": "clean_data",
                  "ranking_var": "ranking"}
        program = "\n".join(
            canonical_code(t, params)
            for t in (
                "data_loading",
                "data_preprocessing",
                "model_training",
                "model_evaluation",
                "model_comparison",
                "model_selection",
            )
        )
        ir = execute_couler_code(program, workflow_name="lake-test")
        # load, pre, 2 train, 2 eval, compare, select = 8 steps.
        assert len(ir.nodes) == 8
        assert ir.topological_order()


class TestRetrieval:
    def test_canonical_entry_ranked_first_for_its_task(self):
        lake = CodeLake()
        for task_type, query in [
            ("data_loading", "load the dataset from remote storage"),
            ("model_training", "train candidate models on prepared data"),
            ("model_evaluation", "validate each trained model"),
            ("report_generation", "generate a final analysis report"),
        ]:
            best = lake.best_reference(query)
            assert best is not None
            assert best.task_type == task_type, query

    def test_unrelated_query_returns_weak_or_no_match(self):
        lake = CodeLake()
        result = lake.search("zzz qqq xyzzy", top_k=1)
        assert result[0][0] == pytest.approx(0.0, abs=1e-9) or result[0][0] < 0.1

    def test_add_entry_and_retrieve(self):
        lake = CodeLake()
        lake.add(
            CodeSnippet(
                task_type="misc",
                title="Quantum annealing workflow",
                description="quantum annealing qubits optimization",
                code="pass",
            )
        )
        best = lake.best_reference("quantum annealing qubits")
        assert best.title == "Quantum annealing workflow"

    def test_default_entries_include_distractors(self):
        entries = default_entries()
        assert any(e.task_type == "misc" for e in entries)
        assert len(entries) >= len(TASK_TYPES) + 3
