"""The ``repro verify`` CLI gate."""

import pytest

from repro.cli import main


@pytest.mark.slow
def test_verify_passes_and_digest_is_stable(capsys):
    assert main(["verify", "--seeds", "3"]) == 0
    first = capsys.readouterr().out
    assert main(["verify", "--seeds", "3"]) == 0
    second = capsys.readouterr().out
    digest_line = [
        line for line in first.splitlines() if "aggregate fingerprint" in line
    ]
    assert digest_line
    assert digest_line == [
        line for line in second.splitlines() if "aggregate fingerprint" in line
    ]
    assert "all oracles passed" in first


def test_verify_oracle_subset(capsys):
    assert main(["verify", "--seeds", "2", "--oracles", "backends"]) == 0
    out = capsys.readouterr().out
    assert "backends" in out
    assert "split" not in out


def test_verify_unknown_oracle_exits_2(capsys):
    assert main(["verify", "--seeds", "1", "--oracles", "nope"]) == 2
    assert "unknown oracle" in capsys.readouterr().err


def test_verify_seed_base_shifts_sweep(capsys):
    assert main(["verify", "--seeds", "2", "--oracles", "backends"]) == 0
    base0 = capsys.readouterr().out
    assert main(
        ["verify", "--seeds", "2", "--seed-base", "100", "--oracles", "backends"]
    ) == 0
    base100 = capsys.readouterr().out
    digest = lambda text: [
        line for line in text.splitlines() if "aggregate fingerprint" in line
    ]
    assert digest(base0) != digest(base100)


@pytest.mark.slow
def test_verify_failure_prints_shrunk_repro(monkeypatch, capsys):
    """End-to-end: injected bug -> exit 1, FAIL lines, minimal repro JSON."""
    from repro.engine.operator import WorkflowOperator

    original = WorkflowOperator.submit

    def broken(self, workflow, record=None, on_complete=None, initial_results=None):
        return original(
            self, workflow, record=record, on_complete=on_complete,
            initial_results=None,
        )

    monkeypatch.setattr(WorkflowOperator, "submit", broken)
    # Seeds chosen to include one the injected bug is known to trip on.
    code = main(
        ["verify", "--seeds", "4", "--seed-base", "2", "--oracles", "split"]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "FAIL split" in captured.err
    assert "minimal repro for split" in captured.out
    assert '"nodes"' in captured.out
