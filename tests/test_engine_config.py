"""EngineConfig v1 contract: one validated bundle, two equivalent spellings.

Covers the unified-configuration surface:

* construction-time validation raises ``SpecError`` naming the field,
* the legacy kwargs (``journaled=``, ``fairness=``, ``slo_class=``) and
  the ``config=`` spelling are **bit-identical** — same admission logs,
  same journal streams, same full fingerprints — across fuzzer seeds,
* mixing ``config=`` with legacy kwargs is rejected,
* the deprecation bridge warns exactly once per process per kwarg,
* every shipped submitter conforms to the widened ``Submitter``
  protocol (``config`` member included) and is introspectable.
"""

from __future__ import annotations

import warnings

import pytest

from repro import couler
from repro.backends.base import Submitter
from repro.core import submitter as submitter_module
from repro.control.policy import PolicyConfig
from repro.core.submitter import (
    AdmissionSubmitter,
    AirflowSubmitter,
    ArgoSubmitter,
    LocalSubmitter,
    TektonSubmitter,
)
from repro.engine import config as config_module
from repro.engine.config import DEFAULT_CONFIG, EngineConfig
from repro.engine.spec import SpecError
from repro.verify.fingerprint import fingerprint_record
from repro.verify.generator import GeneratorConfig, generate_ir

SEEDS = list(range(10))
DETERMINISTIC = GeneratorConfig(deterministic=True)


def _clear_warned():
    submitter_module._legacy_warned.clear()


# ------------------------------------------------------------- validation


class TestValidation:
    def test_defaults_are_legacy_behaviour(self):
        config = EngineConfig()
        assert config == DEFAULT_CONFIG
        assert config.fast is True
        assert config.journaled is False
        assert config.fairness is None

    @pytest.mark.parametrize(
        ("kwargs", "field_name"),
        [
            ({"engine": "turbo"}, "engine"),
            ({"scorer": "cached"}, "scorer"),
            ({"journaled": "yes"}, "journaled"),
            ({"fairness": "round-robin"}, "fairness"),
            ({"slo_class": ""}, "slo_class"),
            ({"protect_gpu": True}, "protect_gpu"),
            ({"tenant_weights": {"t0": 0.0}}, "tenant_weights"),
            ({"max_pending": 0}, "max_pending"),
            ({"aging_rate": -0.5}, "aging_rate"),
            ({"preemption": True, "max_preemptions": -1}, "max_preemptions"),
            ({"preemption": True, "preempt_cooldown": -1.0}, "preempt_cooldown"),
            ({"max_preemptions": 9}, "preemption"),
        ],
    )
    def test_invalid_combo_raises_spec_error_naming_field(
        self, kwargs, field_name
    ):
        with pytest.raises(SpecError) as excinfo:
            EngineConfig(**kwargs)
        assert field_name in str(excinfo.value)

    def test_protect_gpu_valid_with_fairness(self):
        config = EngineConfig(protect_gpu=True, fairness="weighted-fair")
        assert config.pipeline_kwargs()["protect_gpu"] is True

    def test_pipeline_kwargs_resolve_fairness_default(self):
        assert EngineConfig().pipeline_kwargs()["fairness"] == "strict-priority"
        assert EngineConfig(engine="naive").pipeline_kwargs()["fast"] is False

    def test_describe_lists_only_non_defaults(self):
        assert EngineConfig().describe() == "EngineConfig()"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            text = EngineConfig(engine="naive", aging_rate=0.5).describe()
        assert "engine='naive'" in text and "aging_rate=0.5" in text
        assert "journaled" not in text


# ----------------------------------------------------- spelling equivalence


def _journal_tuples(journal):
    if journal is None:
        return None
    return [
        (r.seq, r.stream, r.kind, r.at, repr(r.payload), r.event_id)
        for r in journal.records()
    ]


def _admission_tuple(admission):
    return (
        admission.workflow_name,
        admission.user,
        admission.priority,
        admission.arrival_time,
        admission.admitted,
        admission.admit_time,
        admission.place_time,
        admission.finish_time,
        admission.cluster_name,
        admission.deferrals,
        admission.slo_class,
    )


def _run_argo(ir, seed, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        sub = ArgoSubmitter(**kwargs)
    record = sub.submit(ir)
    return fingerprint_record(ir, record).data, _journal_tuples(sub.journal)


def _run_admission(ir, seed, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        sub = AdmissionSubmitter(seed=seed, **kwargs)
    record = sub.submit(ir)
    return (
        fingerprint_record(ir, record).data,
        _journal_tuples(sub.journal),
        _admission_tuple(sub.last_admission),
    )


class TestSpellingEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_argo_journaled_spellings_identical(self, seed):
        ir = generate_ir(seed, DETERMINISTIC)
        legacy = _run_argo(ir, seed, journaled=True)
        unified = _run_argo(ir, seed, config=EngineConfig(journaled=True))
        assert legacy == unified
        assert legacy[1], "journaled run produced no journal records"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_admission_spellings_identical(self, seed):
        ir = generate_ir(seed, DETERMINISTIC)
        legacy = _run_admission(
            ir,
            seed,
            fairness="weighted-fair",
            slo_class="serving",
            journaled=True,
        )
        unified = _run_admission(
            ir,
            seed,
            config=EngineConfig(
                fairness="weighted-fair", slo_class="serving", journaled=True
            ),
        )
        assert legacy == unified
        assert legacy[1], "journaled run produced no journal records"

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_naive_engine_matches_fast_engine(self, seed):
        ir = generate_ir(seed, DETERMINISTIC)
        fast = _run_admission(ir, seed, config=EngineConfig(journaled=True))
        naive = _run_admission(
            ir, seed, config=EngineConfig(engine="naive", journaled=True)
        )
        assert fast == naive

    def test_config_reaches_pipeline(self):
        sub = AdmissionSubmitter(config=EngineConfig(engine="naive"))
        assert sub.pipeline.fast is False
        assert AdmissionSubmitter().pipeline.fast is True


# ------------------------------------------------------- deprecation bridge


class TestDeprecationBridge:
    def test_legacy_kwarg_warns_once_per_process(self):
        _clear_warned()
        with pytest.warns(DeprecationWarning, match="journaled"):
            ArgoSubmitter(journaled=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ArgoSubmitter(journaled=True)  # second use: silent

    def test_each_kwarg_warns_independently(self):
        _clear_warned()
        with pytest.warns(DeprecationWarning, match="fairness"):
            AdmissionSubmitter(fairness="drf")
        with pytest.warns(DeprecationWarning, match="slo_class"):
            AdmissionSubmitter(slo_class="serving")

    def test_warning_names_replacement(self):
        _clear_warned()
        with pytest.warns(DeprecationWarning, match=r"config=EngineConfig"):
            LocalSubmitter(journaled=True)

    def test_mixing_config_and_legacy_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            ArgoSubmitter(config=EngineConfig(), journaled=True)
        with pytest.raises(ValueError, match="not both"):
            AdmissionSubmitter(
                config=EngineConfig(), fairness="drf"
            )


# -------------------------------------------------- protocol conformance


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "factory",
        [
            ArgoSubmitter,
            LocalSubmitter,
            AdmissionSubmitter,
            AirflowSubmitter,
            TektonSubmitter,
        ],
    )
    def test_shipped_submitters_carry_config(self, factory):
        submitter = factory()
        assert isinstance(submitter, Submitter)
        assert isinstance(submitter.config, EngineConfig)
        assert submitter.config.describe().startswith("EngineConfig")

    def test_facade_exports_config_surface(self):
        assert couler.EngineConfig is EngineConfig
        assert couler.DEFAULT_CONFIG is DEFAULT_CONFIG
        assert callable(couler.profile_run)


# --------------------------------------------- pairwise mixing rejection

#: Every legacy kwarg AdmissionSubmitter still bridges, with a value.
LEGACY_KWARGS = [
    ("journaled", True),
    ("fairness", "weighted-fair"),
    ("slo_class", "serving"),
]


class TestPairwiseMixingRejection:
    """``config=`` + *any* combination of legacy kwargs is rejected —
    and a rejected call must not consume the once-per-process warning
    budget (the caller never actually used the legacy spelling)."""

    @pytest.mark.parametrize(("kwarg", "value"), LEGACY_KWARGS)
    def test_each_single_legacy_kwarg_with_config(self, kwarg, value):
        with pytest.raises(ValueError, match=f"not both.*|{kwarg}"):
            AdmissionSubmitter(config=EngineConfig(), **{kwarg: value})

    @pytest.mark.parametrize(
        ("first", "second"),
        [
            (LEGACY_KWARGS[0], LEGACY_KWARGS[1]),
            (LEGACY_KWARGS[0], LEGACY_KWARGS[2]),
            (LEGACY_KWARGS[1], LEGACY_KWARGS[2]),
        ],
    )
    def test_each_legacy_pair_with_config(self, first, second):
        kwargs = {first[0]: first[1], second[0]: second[1]}
        with pytest.raises(ValueError) as excinfo:
            AdmissionSubmitter(config=EngineConfig(), **kwargs)
        # The message names every offending kwarg, sorted.
        assert first[0] in str(excinfo.value)
        assert second[0] in str(excinfo.value)

    def test_all_three_with_config(self):
        with pytest.raises(ValueError, match="not both"):
            AdmissionSubmitter(
                config=EngineConfig(),
                journaled=True,
                fairness="drf",
                slo_class="batch",
            )

    @pytest.mark.parametrize(("kwarg", "value"), LEGACY_KWARGS)
    def test_rejected_mix_preserves_warning_budget(self, kwarg, value):
        _clear_warned()
        with warnings.catch_warnings():
            # A rejected mixed call must stay silent ...
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(ValueError):
                AdmissionSubmitter(config=EngineConfig(), **{kwarg: value})
        # ... so the first real legacy use still hears the deprecation.
        with pytest.warns(DeprecationWarning, match=kwarg):
            AdmissionSubmitter(**{kwarg: value})

    def test_warn_once_shared_across_submitter_types(self):
        _clear_warned()
        with pytest.warns(DeprecationWarning, match="journaled"):
            ArgoSubmitter(journaled=True)
        with warnings.catch_warnings():
            # The budget is per process+kwarg, not per submitter class.
            warnings.simplefilter("error", DeprecationWarning)
            LocalSubmitter(journaled=True)
            AdmissionSubmitter(journaled=True)


# ------------------------------------------------ adaptive policy field


class TestPolicyField:
    def test_policy_must_be_policy_config(self):
        with pytest.raises(SpecError, match="policy"):
            EngineConfig(policy="defaults")

    def test_policy_plus_legacy_aging_rejected(self):
        with pytest.raises(SpecError, match="not both"):
            EngineConfig(policy=PolicyConfig(aging_rate=0.01), aging_rate=0.01)

    def test_legacy_aging_rate_warns_once_per_process(self):
        config_module._legacy_warned.discard("EngineConfig.aging_rate")
        with pytest.warns(DeprecationWarning, match="PolicyConfig"):
            EngineConfig(aging_rate=0.01)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EngineConfig(aging_rate=0.01)  # second use: silent

    def test_effective_aging_rate_resolution(self):
        assert EngineConfig().effective_aging_rate == 0.0
        assert (
            EngineConfig(policy=PolicyConfig(aging_rate=0.05)).effective_aging_rate
            == 0.05
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = EngineConfig(aging_rate=0.02)
        assert legacy.effective_aging_rate == 0.02
        assert legacy.effective_policy() == PolicyConfig(aging_rate=0.02)
        assert EngineConfig().effective_policy() == PolicyConfig()

    def test_default_policy_pipeline_kwargs_identical(self):
        assert (
            EngineConfig(policy=PolicyConfig()).pipeline_kwargs()
            == EngineConfig().pipeline_kwargs()
        )
        assert EngineConfig().pipeline_kwargs()["retry_policy"] is None

    def test_custom_retry_budget_threads_through(self):
        kwargs = EngineConfig(
            policy=PolicyConfig(retry_limit=5, infra_retry_limit=7)
        ).pipeline_kwargs()
        retry = kwargs["retry_policy"]
        assert retry is not None
        assert retry.limit == 5
        assert retry.infra_limit == 7

    def test_default_retry_budget_stays_none(self):
        kwargs = EngineConfig(
            policy=PolicyConfig(aging_rate=0.05)
        ).pipeline_kwargs()
        assert kwargs["retry_policy"] is None
        assert kwargs["aging_rate"] == 0.05
