"""End-to-end integration tests across packages.

These pin the full production paths: DSL -> IR -> Argo manifest ->
simulated operator; NL -> generated code -> executed workflow; split ->
staged execution equivalence; caching wired through a real run.
"""


from repro import core as couler
from repro.caching.manager import CacheManager
from repro.core.submitter import ArgoSubmitter, default_environment
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.llm.simulated import GPT4_PROFILE, SimulatedLLM
from repro.nl2wf.corpus import build_corpus
from repro.nl2wf.pipeline import NLToWorkflow
from repro.parallelism import BudgetModel, StagedSubmitter, WorkflowSplitter
from repro.workloads.scenarios import SCENARIOS

GB = 2**30


class TestDslToEngine:
    def test_ml_pipeline_via_argo_manifest(self):
        couler.reset_context("e2e-ml")
        from repro.core.step_zoo import tensorflow as tf

        models = couler.map(
            lambda bs: tf.train(
                command="python /train_model.py",
                image="wide-deep-model:v1.0",
                input_batch_size=bs,
            ),
            [100, 200, 300],
        )
        couler.map(lambda m: tf.evaluate(m), models)
        record = couler.run(submitter=ArgoSubmitter())
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert len(record.steps) == 6

    def test_backend_path_equals_direct_path(self):
        """IR -> manifest -> operator and IR -> executable must agree on
        makespan for a deterministic workflow."""
        def define(name):
            couler.reset_context(name)
            first = couler.run_container(image="a", step_name="s1")
            couler.run_container(image="b", step_name="s2", input=first)
            return couler.workflow_ir()

        via_manifest = ArgoSubmitter().submit(define("path-a"))
        operator = default_environment()
        direct = operator.submit(define("path-b").to_executable())
        operator.run_to_completion()
        assert via_manifest.makespan == direct.makespan


class TestNlToExecution:
    def test_generated_workflow_runs_on_cluster(self):
        tasks = build_corpus()
        llm = SimulatedLLM(GPT4_PROFILE, seed=11)
        pipeline = NLToWorkflow(llm)
        easy = min(tasks, key=lambda t: llm.begin_task(t.description))
        result = pipeline.convert(easy, user_feedback_rounds=3)
        assert result.passed
        operator = default_environment(num_nodes=8, cpu_per_node=32)
        record = operator.submit(result.ir.to_executable())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED


class TestSplitEquivalence:
    def test_split_execution_covers_all_steps_and_succeeds(self):
        ir = SCENARIOS["multimodal"].build(0)
        plan = WorkflowSplitter(BudgetModel(max_steps=10)).split(ir)
        assert plan.num_parts >= 3
        operator = default_environment(num_nodes=12, cpu_per_node=32)
        result = StagedSubmitter(operator).execute(plan)
        assert result.succeeded
        executed = set()
        for record in result.records:
            executed |= set(record.steps)
        assert executed == set(ir.nodes)


class TestCachingThroughEngine:
    def test_second_iteration_faster_with_cache(self):
        spec = SCENARIOS["image-segmentation"]

        def run(policy):
            clock = SimClock()
            cluster = Cluster.uniform("c", 6, cpu_per_node=24,
                                      memory_per_node=96 * GB, gpu_per_node=2)
            manager = CacheManager(policy=policy, capacity_bytes=30 * GB)
            operator = WorkflowOperator(clock, cluster, cache_manager=manager)
            records = []

            def chain(index):
                def done(record):
                    records.append(record)
                    if index == 0:
                        chain(1)
                operator.submit(spec.build(index).to_executable(), on_complete=done)

            chain(0)
            operator.run_to_completion()
            return records

        cached = run("couler")
        uncached = run("no")
        assert all(r.phase == WorkflowPhase.SUCCEEDED for r in cached + uncached)
        # The rerun (iteration 1) benefits from cached data artifacts.
        assert cached[1].makespan < uncached[1].makespan
