"""Structural conformance validators for compiled backend output."""

import copy

import pytest

from repro.backends.argo import ArgoBackend
from repro.backends.tekton import TektonBackend
from repro.verify.backends_conformance import (
    check_ir_roundtrip,
    conformance_problems,
    validate_argo_manifest,
    validate_airflow_source,
    validate_tekton_manifests,
)
from repro.verify.generator import GeneratorConfig, generate_ir


@pytest.fixture()
def ir():
    return generate_ir(5)


def test_generated_workflows_conform(ir):
    for seed in range(8):
        assert conformance_problems(generate_ir(seed)) == []


def test_stochastic_workflows_conform():
    config = GeneratorConfig(deterministic=False)
    for seed in range(8):
        assert conformance_problems(generate_ir(seed, config)) == []


def test_argo_bad_api_version_flagged(ir):
    manifest = ArgoBackend().compile(ir)
    manifest["apiVersion"] = "v1"
    assert any("apiVersion" in p for p in validate_argo_manifest(manifest))


def test_argo_missing_template_flagged(ir):
    manifest = copy.deepcopy(ArgoBackend().compile(ir))
    entry = next(
        t for t in manifest["spec"]["templates"]
        if t["name"] == manifest["spec"]["entrypoint"]
    )
    entry["dag"]["tasks"][0]["template"] = "no-such-template"
    assert any(
        "missing template" in p for p in validate_argo_manifest(manifest)
    )


def test_argo_unknown_dependency_flagged(ir):
    manifest = copy.deepcopy(ArgoBackend().compile(ir))
    entry = next(
        t for t in manifest["spec"]["templates"]
        if t["name"] == manifest["spec"]["entrypoint"]
    )
    entry["dag"]["tasks"][0].setdefault("dependencies", []).append("ghost")
    assert any("unknown task" in p for p in validate_argo_manifest(manifest))


def test_argo_malformed_when_flagged(ir):
    manifest = copy.deepcopy(ArgoBackend().compile(ir))
    entry = next(
        t for t in manifest["spec"]["templates"]
        if t["name"] == manifest["spec"]["entrypoint"]
    )
    entry["dag"]["tasks"][0]["when"] = "{{x.result} == =="
    assert validate_argo_manifest(manifest)


def test_argo_missing_sim_annotation_flagged(ir):
    manifest = copy.deepcopy(ArgoBackend().compile(ir))
    for template in manifest["spec"]["templates"]:
        if template["name"] != manifest["spec"]["entrypoint"]:
            template["metadata"]["annotations"].clear()
            break
    assert any("sim/step-profile" in p for p in validate_argo_manifest(manifest))


def test_airflow_syntax_error_flagged(ir):
    problems = validate_airflow_source("def broken(:", ir)
    assert any("not valid Python" in p for p in problems)


def test_airflow_missing_operator_flagged(ir):
    problems = validate_airflow_source("# empty module\n", ir)
    assert any("no operator" in p for p in problems)


def test_tekton_task_set_mismatch_flagged(ir):
    compiled = copy.deepcopy(TektonBackend().compile(ir))
    compiled["pipeline"]["spec"]["tasks"].pop()
    assert any(
        "!= IR nodes" in p for p in validate_tekton_manifests(compiled, ir)
    )


def test_tekton_dangling_run_after_flagged(ir):
    compiled = copy.deepcopy(TektonBackend().compile(ir))
    compiled["pipeline"]["spec"]["tasks"][0].setdefault(
        "runAfter", []
    ).append("ghost")
    assert any(
        "unknown task" in p for p in validate_tekton_manifests(compiled, ir)
    )


def test_tekton_pipeline_ref_mismatch_flagged(ir):
    compiled = copy.deepcopy(TektonBackend().compile(ir))
    compiled["pipelineRun"]["spec"]["pipelineRef"]["name"] = "other"
    assert any(
        "not the Pipeline" in p for p in validate_tekton_manifests(compiled, ir)
    )


def test_roundtrip_clean_on_generated_irs():
    for seed in range(8):
        assert check_ir_roundtrip(generate_ir(seed)) == []
