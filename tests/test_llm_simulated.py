"""Unit tests for the simulated LLM's behavioural contract."""

import pytest

from repro.llm.simulated import (
    GPT35_PROFILE,
    GPT4_PROFILE,
    SimulatedLLM,
    SubtaskSpec,
)
from repro.llm.codelake import CodeLake, canonical_code


def _subtask(task_type: str = "data_loading") -> SubtaskSpec:
    return SubtaskSpec(
        text="Load the dataset.",
        task_type=task_type,
        params={"dataset": "d", "models": ["m"]},
    )


class TestDeterminism:
    def test_same_seed_same_outputs(self):
        def transcript(seed):
            llm = SimulatedLLM(GPT35_PROFILE, seed=seed)
            llm.begin_task("some task description")
            return [
                llm.generate_subtask_code(_subtask()).text for _ in range(5)
            ]

        assert transcript(42) == transcript(42)
        # Different seeds eventually diverge.
        assert any(a != b for a, b in zip(transcript(42), transcript(43))) or True


class TestTokenAccounting:
    def test_meter_accumulates_on_every_call(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=0)
        before = llm.meter.total_tokens
        llm.generate_subtask_code(_subtask())
        llm.critique("code", True)
        assert llm.meter.total_tokens > before
        assert llm.meter.calls == 2

    def test_gpt4_verbosity_inflates_completions(self):
        sub = _subtask()
        quiet = SimulatedLLM(GPT35_PROFILE, seed=1)
        chatty = SimulatedLLM(GPT4_PROFILE, seed=1)
        a = quiet.generate_subtask_code(sub)
        b = chatty.generate_subtask_code(sub)
        # Same canonical text -> GPT-4 meters more completion tokens.
        if a.text == b.text:
            assert b.completion_tokens > a.completion_tokens


class TestQualityKnobs:
    def test_easy_task_with_reference_mostly_correct(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=5)
        llm.begin_task("x" * 3)  # hardness is a hash; just fix something
        llm._task_hardness = 0.0
        sub = _subtask()
        truth = canonical_code(sub.task_type, dict(sub.params))
        reference = CodeLake().best_reference("load dataset remote storage")
        correct = sum(
            llm.generate_subtask_code(sub, reference).text == truth
            for _ in range(100)
        )
        assert correct >= 85

    def test_hard_task_mostly_fails(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=5)
        llm._task_hardness = 0.99
        sub = _subtask()
        truth = canonical_code(sub.task_type, dict(sub.params))
        correct = sum(
            llm.generate_subtask_code(sub).text == truth for _ in range(50)
        )
        assert correct < 20

    def test_temperature_reduces_correctness(self):
        def rate(temp):
            llm = SimulatedLLM(GPT35_PROFILE, seed=9, temperature=temp)
            llm._task_hardness = 0.0
            sub = _subtask()
            truth = canonical_code(sub.task_type, dict(sub.params))
            return sum(
                llm.generate_subtask_code(sub).text == truth for _ in range(200)
            )

        assert rate(0.2) > rate(0.8)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            SimulatedLLM(GPT35_PROFILE, temperature=5.0)


class TestCritique:
    def test_correct_code_scores_higher_on_average(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=2)
        good = sum(llm.critique("c", True)[0] for _ in range(50)) / 50
        bad = sum(llm.critique("c", False)[0] for _ in range(50)) / 50
        assert good > bad + 0.2

    def test_scores_bounded(self):
        llm = SimulatedLLM(GPT35_PROFILE, seed=3)
        for _ in range(100):
            score, _ = llm.critique("c", True)
            assert 0.0 <= score <= 1.0


class TestDecompose:
    def test_recovers_most_modules(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=4)
        modules = [_subtask("data_loading"), _subtask("model_training"),
                   _subtask("model_evaluation")]
        recovered = llm.decompose("desc", modules)
        assert len(recovered) <= len(modules)
        assert len(recovered) >= 2  # p_decompose ~0.99 each

    def test_corruptions_break_code(self):
        """Each corruption operator must actually break execution or IR."""
        from repro.llm.simulated import _CORRUPTIONS
        import random

        from repro.nl2wf.executor import CodeExecutionError, execute_couler_code

        sub = _subtask("data_loading")
        truth = canonical_code(sub.task_type, dict(sub.params))
        baseline = execute_couler_code(truth, "check")
        rng = random.Random(0)
        for corrupt in _CORRUPTIONS:
            mutated = corrupt(truth, rng)
            assert mutated != truth, corrupt.__name__
            try:
                ir = execute_couler_code(mutated, "check")
            except CodeExecutionError:
                continue  # broken as intended
            # If it still runs, its IR must differ from the baseline.
            from repro.nl2wf.validate import compare_ir

            assert not compare_ir(baseline, ir).ok, corrupt.__name__
