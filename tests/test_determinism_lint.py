"""Determinism lint: no wall-clock or unseeded randomness in the engine.

The whole verification story rests on the engine being a deterministic
function of (workflow, seed).  A single ``time.time()`` or module-level
``random.random()`` silently breaks replay and every differential
oracle, so this test greps the engine and verify packages for the
offending calls.  ``simclock.py`` is the one legitimate time authority
and is exempt.
"""

import re
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Packages that must be wall-clock-free and seeded-RNG-only.
LINTED_PACKAGES = ("engine", "verify")

#: The simulated clock itself may reference real time in docs/comments;
#: it is the boundary the rest of the engine must go through.
EXEMPT_FILES = {"simclock.py"}

_FORBIDDEN = re.compile(
    r"""
      \btime\.time\(
    | \btime\.monotonic\(
    | \btime\.perf_counter\(
    | \bdatetime\.now\(
    | \bdatetime\.utcnow\(
    | \bdate\.today\(
    # Module-level RNG functions share unseeded global state; the
    # engine must draw from an explicit random.Random(seed) instance.
    | \brandom\.(?:random|randint|randrange|choice|choices|sample|shuffle|uniform|gauss)\(
    """,
    re.VERBOSE,
)


def _strip_comments(line: str) -> str:
    return line.split("#", 1)[0]


def _linted_files():
    for package in LINTED_PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            if path.name not in EXEMPT_FILES:
                yield path


def test_linted_packages_exist():
    files = list(_linted_files())
    assert len(files) > 5, "lint scope unexpectedly empty — wrong path?"


@pytest.mark.parametrize(
    "path", list(_linted_files()), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_no_wall_clock_or_unseeded_random(path):
    violations = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FORBIDDEN.search(_strip_comments(line))
        if match:
            violations.append(f"{path.name}:{number}: {match.group().rstrip('(')}")
    assert not violations, (
        "wall-clock / unseeded-random calls in deterministic code "
        f"(route time through SimClock, randomness through random.Random(seed)): "
        f"{violations}"
    )
