"""Unit tests for the utilization recorder."""

import pytest

from repro.engine.metrics import UtilizationRecorder
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def test_sampling_interval_and_stop():
    clock = SimClock()
    cluster = Cluster.uniform("m", 1, cpu_per_node=4, memory_per_node=8 * GB)
    recorder = UtilizationRecorder(clock, cluster, interval_s=10.0)
    recorder.start()
    clock.schedule(35.0, recorder.stop)
    clock.run(until=100.0)
    times = [s.time for s in recorder.samples]
    assert times == [0.0, 10.0, 20.0, 30.0]


def test_utilization_reflects_running_pods():
    clock = SimClock()
    cluster = Cluster.uniform("m", 1, cpu_per_node=4, memory_per_node=8 * GB)
    operator = WorkflowOperator(clock, cluster)
    recorder = UtilizationRecorder(clock, cluster, interval_s=5.0)
    wf = ExecutableWorkflow(name="w")
    wf.add_step(
        ExecutableStep(name="s", duration_s=20, requests=ResourceQuantity(cpu=2.0))
    )
    recorder.start()
    operator.submit(wf, on_complete=lambda record: recorder.stop())
    operator.run_to_completion()
    busy = [s.cpu for s in recorder.samples if 0 < s.time < 20]
    assert busy and all(v == pytest.approx(0.5) for v in busy)
    assert recorder.mean_cpu() > 0.0


def test_series_accessor():
    clock = SimClock()
    cluster = Cluster.uniform("m", 1, cpu_per_node=4, memory_per_node=8 * GB)
    recorder = UtilizationRecorder(clock, cluster, interval_s=1.0)
    recorder.start()
    clock.schedule(2.5, recorder.stop)
    clock.run(until=10)
    series = recorder.series("cpu")
    assert [t for t, _ in series] == [0.0, 1.0, 2.0]
    assert all(v == 0.0 for _, v in series)
