"""Tests for fairness policies, SLO lanes and checkpoint preemption."""

import pytest

from repro.engine.admission import AdmissionPipeline
from repro.engine.fairness import (
    DEFAULT_SLO_CLASS,
    SLO_BATCH,
    SLO_SERVING,
    DRFPolicy,
    FairnessError,
    FairnessPolicy,
    LaneConfig,
    StrictPriorityPolicy,
    TenantShares,
    WeightedFairPolicy,
    default_lanes,
    make_fairness_policy,
)
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import StepStatus, WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _wf(
    name: str,
    cpu: float = 8.0,
    gpu: int = 0,
    duration: float = 50.0,
    steps: int = 1,
):
    wf = ExecutableWorkflow(name=name)
    previous = None
    for index in range(steps):
        step = ExecutableStep(
            name=f"s{index}",
            duration_s=duration,
            requests=ResourceQuantity(cpu=cpu, memory=4 * GB, gpu=gpu),
        )
        if previous is not None:
            step.dependencies.append(previous)
        wf.add_step(step)
        previous = step.name
    return wf


def _cluster(name: str = "solo", cpu: float = 8.0, gpu: int = 0):
    return Cluster.uniform(
        name, 1, cpu_per_node=cpu, memory_per_node=32 * GB, gpu_per_node=gpu
    )


# ----------------------------------------------------------------- policies


class TestPolicyResolution:
    def test_none_is_strict_priority(self):
        assert isinstance(make_fairness_policy(None), StrictPriorityPolicy)

    def test_names_resolve(self):
        assert isinstance(
            make_fairness_policy("strict-priority"), StrictPriorityPolicy
        )
        assert isinstance(make_fairness_policy("weighted-fair"), WeightedFairPolicy)
        assert isinstance(make_fairness_policy("drf"), DRFPolicy)

    def test_instance_passes_through(self):
        policy = DRFPolicy()
        assert make_fairness_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(FairnessError, match="unknown fairness policy"):
            make_fairness_policy("round-robin")

    def test_custom_policy_subclass_plugs_in(self):
        class Newest(FairnessPolicy):
            name = "newest-first"

            def key(self, admission, seq, *, now, aging_rate, shares):
                return (-seq,)

        pipeline = AdmissionPipeline([_cluster(cpu=64.0)], fairness=Newest())
        assert pipeline.fairness.name == "newest-first"


class TestTenantShares:
    def _shares(self, usage, weights=None):
        capacity = ResourceQuantity(cpu=100.0, memory=100 * GB, gpu=10)
        return TenantShares(capacity, lambda user: usage[user], weights)

    def test_fractions_and_dominant_share(self):
        shares = self._shares({"a": (50.0, 10 * GB, 0)})
        cpu_frac, mem_frac, gpu_frac = shares.fractions("a")
        assert cpu_frac == pytest.approx(0.5)
        assert mem_frac == pytest.approx(0.1)
        assert gpu_frac == 0.0
        assert shares.dominant_share("a") == pytest.approx(0.5)

    def test_gpu_can_be_the_dominant_resource(self):
        shares = self._shares({"a": (10.0, 10 * GB, 8)})
        assert shares.dominant_share("a") == pytest.approx(0.8)

    def test_weight_scales_entitlement(self):
        usage = {"heavy": (50.0, 0, 0), "light": (50.0, 0, 0)}
        shares = self._shares(usage, weights={"heavy": 2.0})
        assert shares.dominant_share("heavy") == pytest.approx(0.25)
        assert shares.dominant_share("light") == pytest.approx(0.5)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(FairnessError, match="weight must be > 0"):
            self._shares({"a": (0.0, 0, 0)}, weights={"a": 0.0})

    def test_strict_priority_key_matches_seed_sort(self):
        """The compat policy's key is exactly the pre-fairness sort:
        (-aged priority, arrival sequence)."""
        from repro.engine.admission import AdmissionRecord

        policy = StrictPriorityPolicy()
        admission = AdmissionRecord(
            workflow_name="w", user="u", priority=3, arrival_time=10.0
        )
        shares = self._shares({"u": (0.0, 0, 0)})
        key = policy.key(admission, 7, now=30.0, aging_rate=0.5, shares=shares)
        assert key == (-(3 + 0.5 * 20.0), 7)


# ------------------------------------------------------------------- lanes


class TestLaneConfig:
    def test_default_lanes_shape(self):
        lanes = default_lanes()
        assert set(lanes) == {SLO_SERVING, SLO_BATCH}
        assert lanes[SLO_SERVING].order < lanes[SLO_BATCH].order
        assert lanes[SLO_SERVING].can_preempt
        assert lanes[SLO_BATCH].preemptible
        assert DEFAULT_SLO_CLASS == SLO_BATCH

    def test_bad_lane_params_rejected(self):
        with pytest.raises(FairnessError):
            LaneConfig(name="x", aging_rate=-1.0)
        with pytest.raises(FairnessError):
            LaneConfig(name="x", max_pending=0)

    def test_unknown_slo_class_rejected_at_submit(self):
        from repro.engine.admission import AdmissionError

        pipeline = AdmissionPipeline([_cluster()])
        with pytest.raises(AdmissionError, match="unknown slo_class"):
            pipeline.submit(_wf("a"), slo_class="platinum")

    def test_serving_lane_places_before_batch(self):
        """Same arrival instant, higher batch priority — the serving
        submission still places first because lanes order the pass."""
        pipeline = AdmissionPipeline([_cluster(cpu=8.0)])
        batch = pipeline.submit_at(
            0.0, _wf("batch", cpu=8.0), priority=9, slo_class=SLO_BATCH
        )
        serving = pipeline.submit_at(
            0.0, _wf("serving", cpu=8.0), priority=0, slo_class=SLO_SERVING
        )
        pipeline.run()
        assert serving.place_time == 0.0
        assert batch.place_time > 0.0

    def test_lane_max_pending_sheds_with_lane_full(self):
        lanes = {
            SLO_SERVING: LaneConfig(name=SLO_SERVING, order=0, max_pending=1),
            SLO_BATCH: LaneConfig(name=SLO_BATCH, order=1),
        }
        pipeline = AdmissionPipeline([_cluster(cpu=8.0)], lanes=lanes)
        pipeline.submit_at(0.0, _wf("running", cpu=8.0, duration=100.0))
        pipeline.submit_at(1.0, _wf("queued-1", cpu=8.0), slo_class=SLO_SERVING)
        shed = pipeline.submit_at(1.0, _wf("queued-2", cpu=8.0), slo_class=SLO_SERVING)
        ok_batch = pipeline.submit_at(1.0, _wf("queued-3", cpu=8.0))
        pipeline.run()
        assert shed.admitted is False
        assert "lane full" in shed.reject_reason
        assert ok_batch.admitted is True
        rejected = pipeline.metrics.get("admission_rejected_total")
        assert rejected.value(reason="lane-full") == 1

    def test_per_lane_aging_rate_override(self):
        """A serving-lane aging override outruns the pipeline default:
        the aged serving submission overtakes a higher-priority peer in
        its own lane once the bonus closes the gap."""
        lanes = {
            SLO_SERVING: LaneConfig(name=SLO_SERVING, order=0, aging_rate=1.0),
            SLO_BATCH: LaneConfig(name=SLO_BATCH, order=1),
        }
        pipeline = AdmissionPipeline(
            [_cluster(cpu=8.0)], lanes=lanes, aging_rate=0.0
        )
        pipeline.submit_at(0.0, _wf("running", cpu=8.0, duration=100.0))
        aged = pipeline.submit_at(
            1.0, _wf("aged", cpu=8.0), priority=0, slo_class=SLO_SERVING
        )
        fresh = pipeline.submit_at(
            95.0, _wf("fresh", cpu=8.0), priority=5, slo_class=SLO_SERVING
        )
        pipeline.run()
        # At t=100 the blocker ends; aged has 99 s * 1.0 = 99 effective
        # points vs fresh's 5 + 5. With the default (0.0) rate fresh
        # would have won on base priority.
        assert aged.place_time < fresh.place_time


# ----------------------------------------------------- placement ordering


def _contended_pipeline(fairness, weights=None):
    """One 16-cpu cluster; tenant 'hog' holds 8 cpu, then 'hog' and
    'idle' each queue an 8-cpu workflow at the same instant with 'hog'
    carrying the higher priority."""
    pipeline = AdmissionPipeline(
        [_cluster(cpu=16.0)], fairness=fairness, tenant_weights=weights
    )
    pipeline.submit_at(0.0, _wf("held", cpu=8.0, duration=200.0), user="hog")
    hog = pipeline.submit_at(
        10.0, _wf("hog-next", cpu=8.0, duration=30.0), user="hog", priority=9
    )
    idle = pipeline.submit_at(
        10.0, _wf("idle-first", cpu=8.0, duration=30.0), user="idle", priority=0
    )
    return pipeline, hog, idle


class TestPlacementOrdering:
    def test_strict_priority_favours_the_priority_stream(self):
        pipeline, hog, idle = _contended_pipeline("strict-priority")
        pipeline.run()
        assert hog.place_time < idle.place_time

    def test_weighted_fair_favours_the_low_share_tenant(self):
        pipeline, hog, idle = _contended_pipeline("weighted-fair")
        pipeline.run()
        assert idle.place_time < hog.place_time

    def test_drf_favours_the_low_share_tenant(self):
        pipeline, hog, idle = _contended_pipeline("drf")
        pipeline.run()
        assert idle.place_time < hog.place_time

    def test_weights_restore_the_hog_entitlement(self):
        """With a large enough fairness weight the heavy tenant's
        *normalized* share drops below a lightly-loaded peer's, and
        priority decides again."""
        pipeline = AdmissionPipeline(
            [_cluster(cpu=16.0)],
            fairness="weighted-fair",
            tenant_weights={"hog": 1000.0},
        )
        pipeline.submit_at(0.0, _wf("held", cpu=8.0, duration=200.0), user="hog")
        pipeline.submit_at(0.0, _wf("light", cpu=4.0, duration=200.0), user="idle")
        hog = pipeline.submit_at(
            10.0, _wf("hog-next", cpu=4.0, duration=30.0), user="hog", priority=9
        )
        idle = pipeline.submit_at(
            10.0, _wf("idle-next", cpu=4.0, duration=30.0), user="idle", priority=0
        )
        pipeline.run()
        # 4 cpu free at t=10, so exactly one of the two can place first.
        assert hog.place_time < idle.place_time

    def test_drf_compares_dominant_resources(self):
        """A GPU-saturating tenant is over-share on DRF even when its
        CPU footprint is tiny."""
        cluster = _cluster(cpu=64.0, gpu=4)
        pipeline = AdmissionPipeline([cluster], fairness="drf")
        # gpu-tenant holds all 4 GPUs but barely any CPU.
        pipeline.submit_at(
            0.0, _wf("gpu-held", cpu=2.0, gpu=4, duration=200.0), user="gputeam"
        )
        # cpu-tenant holds 32 of 64 cpus (dominant share 0.5 < 1.0).
        pipeline.submit_at(
            0.0, _wf("cpu-held", cpu=32.0, duration=200.0), user="cputeam"
        )
        late_gpu = pipeline.submit_at(
            10.0, _wf("gpu-next", cpu=2.0, duration=30.0), user="gputeam", priority=9
        )
        late_cpu = pipeline.submit_at(
            10.0, _wf("cpu-next", cpu=2.0, duration=30.0), user="cputeam", priority=0
        )
        pipeline.run()
        # Both fit immediately (plenty of cpu free); ordering happens
        # within one pass, visible through the dispatch history.
        placed_names = [a.workflow_name for a in pipeline.placed]
        assert placed_names.index("cpu-next") < placed_names.index("gpu-next")
        assert late_cpu.admitted and late_gpu.admitted


# ------------------------------------------------- starvation gap metric


class TestStarvationGap:
    def test_pending_waits_count_toward_the_gap(self):
        """Regression: a workflow still waiting in the queue used to be
        invisible to starvation_gap() until it placed."""
        pipeline = AdmissionPipeline([_cluster(cpu=8.0)])
        pipeline.submit_at(0.0, _wf("blocker", cpu=8.0, duration=500.0))
        pipeline.submit_at(10.0, _wf("starving", cpu=8.0))
        pipeline.run(until=300.0)
        # Nothing but the blocker has placed; the starving workflow has
        # waited 290 s and the gap must say so.
        assert pipeline.pending_workflows() == ["starving"]
        assert pipeline.starvation_gap() == pytest.approx(290.0)

    def test_gap_still_reports_placed_latencies(self):
        pipeline = AdmissionPipeline([_cluster(cpu=8.0)])
        pipeline.submit_at(0.0, _wf("a", cpu=8.0, duration=50.0))
        pipeline.submit_at(0.0, _wf("b", cpu=8.0, duration=50.0))
        pipeline.run()
        assert pipeline.starvation_gap() == pytest.approx(50.0)

    def test_per_tenant_gaps(self):
        pipeline = AdmissionPipeline([_cluster(cpu=8.0)])
        pipeline.submit_at(0.0, _wf("a", cpu=8.0, duration=50.0), user="t0")
        pipeline.submit_at(0.0, _wf("b", cpu=8.0, duration=50.0), user="t1")
        pipeline.run()
        gaps = pipeline.tenant_starvation_gaps()
        assert gaps["t0"] == pytest.approx(0.0)
        assert gaps["t1"] == pytest.approx(50.0)
        latencies = pipeline.tenant_queue_latencies()
        assert latencies["t1"] == [pytest.approx(50.0)]


# ------------------------------------------------------------- preemption


def _preemption_pipeline(seed: int = 0):
    """Two clusters; the batch tenant saturates both, then a serving
    submission arrives with nowhere to go."""
    clusters = [_cluster(name="a", cpu=8.0), _cluster(name="b", cpu=8.0)]
    pipeline = AdmissionPipeline(
        clusters, seed=seed, fairness="drf", preemption=True
    )
    # Four sequential 2-cpu steps: peak demand 8 cpu (one full cluster),
    # 400 s of work — long enough to still be running at t=250.
    victims = [
        pipeline.submit_at(
            0.0,
            _wf(f"batch-{index}", cpu=2.0, duration=100.0, steps=4),
            user="batcher",
            slo_class=SLO_BATCH,
        )
        for index in range(2)
    ]
    serving = pipeline.submit_at(
        250.0,
        _wf("latency-job", cpu=8.0, duration=20.0),
        user="frontend",
        slo_class=SLO_SERVING,
    )
    return pipeline, victims, serving


class TestPreemption:
    def test_serving_preempts_over_share_batch(self):
        pipeline, victims, serving = _preemption_pipeline()
        pipeline.run()
        events = pipeline.metrics.get("admission_events_total")
        assert events.value(event="preemption") >= 1
        preempted = [v for v in victims if v.preemptions > 0]
        assert preempted
        # The serving job ran long before the batch work's natural end.
        assert serving.place_time == pytest.approx(250.0)
        assert serving.record.phase == WorkflowPhase.SUCCEEDED

    def test_preempted_workflow_resumes_and_succeeds(self):
        pipeline, victims, serving = _preemption_pipeline()
        pipeline.run()
        for victim in victims:
            assert victim.record.phase == WorkflowPhase.SUCCEEDED
            assert all(
                step.status in (StepStatus.SUCCEEDED, StepStatus.CACHED)
                for step in victim.record.steps.values()
            )

    def test_resume_preserves_completed_steps(self):
        """Checkpoint/restart semantics: steps finished before the
        eviction are not re-executed after resume."""
        pipeline, victims, serving = _preemption_pipeline()
        pipeline.run()
        victim = next(v for v in victims if v.preemptions > 0)
        # Eviction hit at t=250 with 100 s steps: at least two steps
        # had finished, and their records survive with 1 attempt each.
        done_before = [
            step
            for step in victim.record.steps.values()
            if step.finish_time is not None and step.finish_time <= 250.0
        ]
        assert len(done_before) >= 2
        assert all(step.attempts == 1 for step in done_before)

    def test_preemption_is_deterministic(self):
        def history(seed):
            pipeline, _, _ = _preemption_pipeline(seed)
            pipeline.run()
            return (
                [(a.workflow_name, a.place_time) for a in pipeline.placed],
                pipeline.clock.now,
            )

        assert history(7) == history(7)

    def test_preemption_off_by_default(self):
        clusters = [_cluster(name="a", cpu=8.0)]
        pipeline = AdmissionPipeline(clusters, fairness="drf")
        pipeline.submit_at(
            0.0, _wf("batch", cpu=8.0, duration=400.0), user="b", slo_class=SLO_BATCH
        )
        serving = pipeline.submit_at(
            10.0, _wf("serve", cpu=8.0), user="f", slo_class=SLO_SERVING
        )
        pipeline.run()
        events = pipeline.metrics.get("admission_events_total")
        assert events.value(event="preemption") == 0
        assert serving.place_time == pytest.approx(400.0)

    def test_max_preemptions_caps_evictions_per_workflow(self):
        pipeline, victims, serving = _preemption_pipeline()
        pipeline.max_preemptions = 0
        pipeline.run()
        assert all(v.preemptions == 0 for v in victims)
        events = pipeline.metrics.get("admission_events_total")
        assert events.value(event="preemption") == 0

    def test_same_tenant_is_never_preempted_for_itself(self):
        clusters = [_cluster(name="a", cpu=8.0)]
        pipeline = AdmissionPipeline(clusters, fairness="drf", preemption=True)
        pipeline.submit_at(
            0.0, _wf("mine-1", cpu=8.0, duration=300.0), user="me", slo_class=SLO_BATCH
        )
        pipeline.submit_at(
            10.0, _wf("mine-2", cpu=8.0), user="me", slo_class=SLO_SERVING
        )
        pipeline.run()
        events = pipeline.metrics.get("admission_events_total")
        assert events.value(event="preemption") == 0


def _thrash_pipeline(cooldown: float, seed: int = 0):
    """One cluster, one long batch victim, two serving bursts.

    The second burst arrives shortly after the victim was restored from
    its first eviction — inside the cooldown window.  Without the
    cooldown the victim is evicted again before making any progress
    (eviction thrash); with it, the burst waits.
    """
    pipeline = AdmissionPipeline(
        [_cluster(name="a", cpu=8.0)],
        seed=seed,
        fairness="drf",
        preemption=True,
        max_preemptions=4,
        preempt_cooldown=cooldown,
    )
    victim = pipeline.submit_at(
        0.0,
        _wf("batch", cpu=2.0, duration=100.0, steps=4),
        user="batcher",
        slo_class=SLO_BATCH,
    )
    bursts = [
        pipeline.submit_at(
            at, _wf(f"serve-{at:.0f}", cpu=8.0, duration=20.0),
            user="frontend", slo_class=SLO_SERVING,
        )
        for at in (50.0, 90.0)
    ]
    return pipeline, victim, bursts


class TestPreemptCooldown:
    def test_restored_at_stamped_on_resume(self):
        pipeline, victim, _ = _thrash_pipeline(cooldown=60.0)
        pipeline.run()
        assert victim.preemptions >= 1
        assert victim.restored_at is not None

    def test_cooldown_blocks_re_preemption_thrash(self):
        # Without a cooldown the just-restored victim is evicted again
        # by the second burst...
        pipeline, victim, bursts = _thrash_pipeline(cooldown=0.0)
        pipeline.run()
        assert victim.preemptions >= 2
        # ...with the cooldown it keeps running and the burst waits.
        pipeline, victim, bursts = _thrash_pipeline(cooldown=60.0)
        pipeline.run()
        assert victim.preemptions == 1
        assert victim.record.phase == WorkflowPhase.SUCCEEDED
        assert all(b.record.phase == WorkflowPhase.SUCCEEDED for b in bursts)

    def test_cooldown_expires(self):
        # The second burst lands >= cooldown after the restore, so the
        # victim is fair game again: the window protects progress, it
        # does not grant immunity.
        pipeline, victim, _ = _thrash_pipeline(cooldown=10.0)
        pipeline.run()
        assert victim.preemptions >= 2

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            AdmissionPipeline([_cluster()], preempt_cooldown=-1.0)


# -------------------------------------------------------------- v1 facade


class TestFacade:
    def test_couler_exports_fairness_surface(self):
        from repro import couler

        assert couler.SLO_SERVING == "serving"
        assert callable(couler.make_fairness_policy)
        assert "FairnessPolicy" in couler.__all__
        assert "LaneConfig" in couler.__all__

    def test_admission_submitter_fairness_kwargs(self):
        from repro.core.submitter import AdmissionSubmitter
        from repro.ir import IRNode, OpKind, WorkflowIR

        ir = WorkflowIR(name="probe")
        ir.add_node(IRNode(name="only", op=OpKind.CONTAINER, image="img"))
        submitter = AdmissionSubmitter(fairness="drf", slo_class="serving")
        record = submitter.submit(ir)
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert submitter.last_admission.slo_class == "serving"
        assert submitter.pipeline.fairness.name == "drf"

    def test_submitter_rejects_pipeline_plus_fairness(self):
        from repro.core.submitter import AdmissionSubmitter, default_multicluster

        with pytest.raises(ValueError, match="not both"):
            AdmissionSubmitter(pipeline=default_multicluster(), fairness="drf")
