"""The seeded workflow fuzzer: determinism and DSL surface coverage."""

from repro.ir.nodes import ArtifactStorage, OpKind
from repro.ir.serialize import ir_to_dict
from repro.verify.generator import GeneratorConfig, generate_ir

SWEEP = range(40)


def test_same_seed_same_ir():
    for seed in range(10):
        assert ir_to_dict(generate_ir(seed)) == ir_to_dict(generate_ir(seed))


def test_stochastic_mode_is_also_seed_deterministic():
    config = GeneratorConfig(deterministic=False)
    for seed in range(10):
        assert ir_to_dict(generate_ir(seed, config)) == ir_to_dict(
            generate_ir(seed, config)
        )


def test_different_seeds_differ():
    dumps = {repr(ir_to_dict(generate_ir(seed))) for seed in range(10)}
    assert len(dumps) == 10


def test_node_counts_respect_config():
    config = GeneratorConfig(min_nodes=3, max_nodes=12)
    for seed in SWEEP:
        size = len(generate_ir(seed, config).nodes)
        # Control-flow moves (map fan-out, loop unrolling) can overshoot
        # the target by a couple of nodes; never undershoot.
        assert 3 <= size <= 12 + 6


def test_every_op_kind_is_generated():
    ops = {
        node.op for seed in SWEEP for node in generate_ir(seed).nodes.values()
    }
    assert ops == set(OpKind)


def test_every_storage_class_is_generated():
    storages = set()
    for seed in SWEEP:
        for node in generate_ir(seed).nodes.values():
            for artifact in node.inputs + node.outputs:
                storages.add(artifact.storage)
    assert storages == set(ArtifactStorage)


def test_control_flow_surface_is_covered():
    when_guards = 0
    map_seeds = 0
    dag_seeds = 0
    retries = 0
    gpu_steps = 0
    wired_inputs = 0
    for seed in SWEEP:
        ir = generate_ir(seed)
        when_guards += sum(1 for node in ir.nodes.values() if node.when)
        retries += sum(
            1 for node in ir.nodes.values() if node.retries is not None
        )
        gpu_steps += sum(
            1 for node in ir.nodes.values() if node.sim and node.sim.uses_gpu
        )
        wired_inputs += sum(1 for node in ir.nodes.values() if node.inputs)
        if any("-" in name and name[0] == "m" for name in ir.nodes):
            map_seeds += 1
        if all(name[0] == "d" for name in ir.nodes):
            dag_seeds += 1
    assert when_guards > 10
    assert map_seeds > 3
    assert dag_seeds > 3
    assert retries > 10
    assert gpu_steps > 10
    assert wired_inputs > 10


def test_workflows_have_edges():
    assert sum(len(generate_ir(seed).edges) for seed in range(5)) > 0


def test_deterministic_config_forces_outcomes():
    """The oracle mode must yield branch-stable workflows: no failure
    injection, and at most one possible ``result`` per step."""
    for seed in SWEEP:
        for node in generate_ir(seed).nodes.values():
            if node.sim is None:
                continue
            assert node.sim.failure_rate == 0.0
            assert len(node.sim.result_options) <= 1


def test_stochastic_config_exercises_failures_and_branching():
    config = GeneratorConfig(deterministic=False)
    failure_rates = set()
    multi_valued = 0
    for seed in SWEEP:
        for node in generate_ir(seed, config).nodes.values():
            if node.sim is None:
                continue
            failure_rates.add(node.sim.failure_rate)
            if len(node.sim.result_options) >= 2:
                multi_valued += 1
    assert any(rate > 0 for rate in failure_rates)
    assert multi_valued > 10


def test_generated_ir_is_executable():
    for seed in range(10):
        executable = generate_ir(seed).to_executable()
        executable.validate()
        assert executable.steps


def test_config_is_honored():
    config = GeneratorConfig(min_nodes=2, max_nodes=4, artifact_probability=0.0)
    for seed in range(10):
        ir = generate_ir(seed, config)
        assert len(ir.nodes) <= 4 + 6
        # Scripts always declare their implicit ``result`` parameter;
        # with artifact_probability=0 no *data* artifact may appear.
        assert all(
            artifact.name == "result"
            for node in ir.nodes.values()
            for artifact in node.outputs
        )
