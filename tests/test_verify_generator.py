"""The seeded workflow fuzzer: determinism and DSL surface coverage."""

import pytest

from repro.ir.nodes import ArtifactStorage, OpKind
from repro.ir.serialize import ir_to_dict
from repro.verify import CORPUS_ORACLES, corpus_ir, run_seed, run_suite
from repro.verify.generator import GeneratorConfig, generate_ir
from repro.verify.oracles import OracleOutcome
from repro.verify.shrink import shrink_failure, shrink_ir

SWEEP = range(40)


def test_same_seed_same_ir():
    for seed in range(10):
        assert ir_to_dict(generate_ir(seed)) == ir_to_dict(generate_ir(seed))


def test_stochastic_mode_is_also_seed_deterministic():
    config = GeneratorConfig(deterministic=False)
    for seed in range(10):
        assert ir_to_dict(generate_ir(seed, config)) == ir_to_dict(
            generate_ir(seed, config)
        )


def test_different_seeds_differ():
    dumps = {repr(ir_to_dict(generate_ir(seed))) for seed in range(10)}
    assert len(dumps) == 10


def test_node_counts_respect_config():
    config = GeneratorConfig(min_nodes=3, max_nodes=12)
    for seed in SWEEP:
        size = len(generate_ir(seed, config).nodes)
        # Control-flow moves (map fan-out, loop unrolling) can overshoot
        # the target by a couple of nodes; never undershoot.
        assert 3 <= size <= 12 + 6


def test_every_op_kind_is_generated():
    ops = {
        node.op for seed in SWEEP for node in generate_ir(seed).nodes.values()
    }
    assert ops == set(OpKind)


def test_every_storage_class_is_generated():
    storages = set()
    for seed in SWEEP:
        for node in generate_ir(seed).nodes.values():
            for artifact in node.inputs + node.outputs:
                storages.add(artifact.storage)
    assert storages == set(ArtifactStorage)


def test_control_flow_surface_is_covered():
    when_guards = 0
    map_seeds = 0
    dag_seeds = 0
    retries = 0
    gpu_steps = 0
    wired_inputs = 0
    for seed in SWEEP:
        ir = generate_ir(seed)
        when_guards += sum(1 for node in ir.nodes.values() if node.when)
        retries += sum(
            1 for node in ir.nodes.values() if node.retries is not None
        )
        gpu_steps += sum(
            1 for node in ir.nodes.values() if node.sim and node.sim.uses_gpu
        )
        wired_inputs += sum(1 for node in ir.nodes.values() if node.inputs)
        if any("-" in name and name[0] == "m" for name in ir.nodes):
            map_seeds += 1
        if all(name[0] == "d" for name in ir.nodes):
            dag_seeds += 1
    assert when_guards > 10
    assert map_seeds > 3
    assert dag_seeds > 3
    assert retries > 10
    assert gpu_steps > 10
    assert wired_inputs > 10


def test_workflows_have_edges():
    assert sum(len(generate_ir(seed).edges) for seed in range(5)) > 0


def test_deterministic_config_forces_outcomes():
    """The oracle mode must yield branch-stable workflows: no failure
    injection, and at most one possible ``result`` per step."""
    for seed in SWEEP:
        for node in generate_ir(seed).nodes.values():
            if node.sim is None:
                continue
            assert node.sim.failure_rate == 0.0
            assert len(node.sim.result_options) <= 1


def test_stochastic_config_exercises_failures_and_branching():
    config = GeneratorConfig(deterministic=False)
    failure_rates = set()
    multi_valued = 0
    for seed in SWEEP:
        for node in generate_ir(seed, config).nodes.values():
            if node.sim is None:
                continue
            failure_rates.add(node.sim.failure_rate)
            if len(node.sim.result_options) >= 2:
                multi_valued += 1
    assert any(rate > 0 for rate in failure_rates)
    assert multi_valued > 10


def test_generated_ir_is_executable():
    for seed in range(10):
        executable = generate_ir(seed).to_executable()
        executable.validate()
        assert executable.steps


def test_config_is_honored():
    config = GeneratorConfig(min_nodes=2, max_nodes=4, artifact_probability=0.0)
    for seed in range(10):
        ir = generate_ir(seed, config)
        assert len(ir.nodes) <= 4 + 6
        # Scripts always declare their implicit ``result`` parameter;
        # with artifact_probability=0 no *data* artifact may appear.
        assert all(
            artifact.name == "result"
            for node in ir.nodes.values()
            for artifact in node.outputs
        )


class TestCorpusBackedFuzzing:
    """``--source corpus``: oracles over frontend-compiled workflows."""

    def test_corpus_ir_is_seed_deterministic(self):
        for seed in (0, 3, 7):
            assert ir_to_dict(corpus_ir(seed)) == ir_to_dict(corpus_ir(seed))

    def test_seeds_in_a_pool_draw_distinct_workflows(self):
        dumps = {repr(ir_to_dict(corpus_ir(seed))) for seed in range(6)}
        assert len(dumps) > 1

    def test_corpus_mode_defaults_to_corpus_oracle_set(self):
        outcomes = run_seed(2, source="corpus")
        assert [o.oracle for o in outcomes] == list(CORPUS_ORACLES)
        assert all(o.ok for o in outcomes), [o.detail for o in outcomes if not o.ok]

    def test_corpus_mode_rejects_replay_oracle(self):
        with pytest.raises(ValueError, match="cannot run on corpus workflows"):
            run_seed(0, ["replay"], source="corpus")

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown source"):
            run_seed(0, source="weather-balloon")

    def test_corpus_suite_sweep_passes(self):
        report = run_suite(range(4), ["cache", "split"], source="corpus")
        assert not report.failures
        assert report.counts() == {"cache": (4, 4), "split": (4, 4)}

    @pytest.mark.slow
    def test_corpus_suite_full_oracle_sweep(self):
        # The ISSUE acceptance bar: every corpus oracle over >= 25 seeds.
        report = run_suite(range(25), source="corpus")
        assert not report.failures
        assert all(
            passed == total == 25 for passed, total in report.counts().values()
        )


class TestShrinkerOnCorpusWorkflows:
    def test_shrinker_is_one_minimal_on_injected_mutation(self):
        # Inject a failure that needs two specific nodes to co-exist;
        # the 1-minimal repro is exactly that pair.
        ir = corpus_ir(3)
        names = sorted(ir.nodes)
        assert len(names) >= 3, "corpus workflow too small to shrink"
        culprits = {names[0], names[-1]}

        def still_fails(candidate):
            return culprits <= set(candidate.nodes)

        minimal = shrink_ir(ir, still_fails)
        assert set(minimal.nodes) == culprits
        # 1-minimality: removing either remaining node clears the failure.
        from repro.verify.shrink import delete_node

        for name in culprits:
            assert not still_fails(delete_node(minimal, name))

    def test_shrink_failure_corpus_source_detects_non_repro(self):
        # A fabricated failure on a healthy corpus seed must come back
        # None (the corpus IR passes the real check).
        fake = OracleOutcome(oracle="cache", seed=2, ok=False, detail="injected")
        assert shrink_failure(fake, source="corpus") is None
