"""Controller determinism, the halving search, and the objective.

The adaptive controller's contract (pinned CI-side by the ``adaptive``
verify oracle): candidate generation is seeded, evaluation is
virtual-time pure, ties break stably — so one seed produces one
:class:`AdaptationLog`, byte for byte, and ``replay`` re-derives it.
"""

from __future__ import annotations

import pytest

from repro.autotune.tuner import successive_halving
from repro.control.controller import (
    CANDIDATE_GRID,
    AdaptationLog,
    Controller,
    evaluate_policy,
    objective,
)
from repro.control.policy import PolicyConfig
from repro.workloads.corpus import CorpusSpec, build_corpus

#: Smallest search that still exercises every moving part.
TINY = dict(seed=3, corpus_size=6, population=4, rounds=1, cache_gb=0.25)


# ------------------------------------------------------ successive halving


class TestSuccessiveHalving:
    def test_keeps_best_half_and_ranks_best_first(self):
        scores = {"a": 1.0, "b": 3.0, "c": 2.0, "d": 0.0}
        ranked, history = successive_halving(
            list(scores), scores.__getitem__, rounds=1
        )
        assert ranked[0] == ("b", 3.0)
        assert [c for c, _ in ranked][:2] == ["b", "c"]
        assert len(history) == 1
        assert history[0]["survivors"] == ["b", "c"]

    def test_memoizes_across_rounds(self):
        calls = []

        def evaluate(candidate):
            calls.append(candidate)
            return {"a": 2.0, "b": 1.0}[candidate]

        ranked, history = successive_halving(
            ["a", "b"], evaluate, rounds=3, minimum=2
        )
        # Two candidates, three rounds, no refinement: each evaluated once.
        assert sorted(calls) == ["a", "b"]
        assert ranked[0][0] == "a"
        # Later rounds evaluate nothing fresh.
        assert history[1]["evaluated"] == []

    def test_ties_break_toward_earlier_candidates(self):
        ranked, history = successive_halving(
            ["x", "y", "z"], lambda _c: 1.0, rounds=1, minimum=3
        )
        assert [c for c, _ in ranked] == ["x", "y", "z"]
        assert history[0]["survivors"] == ["x", "y", "z"]

    def test_tied_survivor_cut_keeps_earlier_candidate(self):
        ranked, history = successive_halving(
            ["x", "y"], lambda _c: 1.0, rounds=1
        )
        assert history[0]["survivors"] == ["x"]
        assert ranked[0][0] == "x"

    def test_duplicates_deduped(self):
        calls = []

        def evaluate(candidate):
            calls.append(candidate)
            return 0.0

        successive_halving(["a", "a", "b"], evaluate, rounds=1)
        assert sorted(calls) == ["a", "b"]

    def test_refine_expands_survivors(self):
        evaluated = []

        def evaluate(candidate):
            evaluated.append(candidate)
            return len(candidate)

        ranked, history = successive_halving(
            ["aa", "b"],
            evaluate,
            rounds=2,
            refine=lambda c: [c + "!"],
            minimum=1,
        )
        assert "aa!" in evaluated
        assert ranked[0][0] == "aa!"  # longest string wins
        assert history[0]["survivors"] == ["aa"]


# ------------------------------------------------------- candidate space


class TestCandidates:
    def test_population_defaults_first_and_unique(self):
        controller = Controller(
            build_corpus(CorpusSpec(seed=0, size=4)), seed=0, population=6
        )
        candidates = controller.seed_candidates()
        assert candidates[0] == PolicyConfig()
        assert len(candidates) == 6
        assert len(set(candidates)) == 6

    def test_seeded_candidates_reproducible(self):
        corpus = build_corpus(CorpusSpec(seed=0, size=4))
        first = Controller(corpus, seed=11, population=8).seed_candidates()
        second = Controller(corpus, seed=11, population=8).seed_candidates()
        assert first == second

    def test_grid_values_brackets_defaults(self):
        default = PolicyConfig()
        assert default.score_alpha in CANDIDATE_GRID["score_alpha"]
        assert default.aging_rate in CANDIDATE_GRID["aging_rate"]
        assert None in CANDIDATE_GRID["split_budget_steps"]

    def test_refine_introduces_aging_from_zero(self):
        neighbours = Controller.refine(PolicyConfig(score_alpha=2.0))
        rates = {n.aging_rate for n in neighbours if n.aging_rate > 0}
        assert rates == {0.01, 0.05}
        alphas = {n.score_alpha for n in neighbours}
        assert {1.0, 4.0} <= alphas

    def test_refine_halves_doubles_aging(self):
        neighbours = Controller.refine(PolicyConfig(aging_rate=0.02))
        rates = sorted(n.aging_rate for n in neighbours)
        assert rates == [0.01, 0.04]

    def test_refine_clamps_split_budget(self):
        neighbours = Controller.refine(PolicyConfig(split_budget_steps=3))
        steps = {n.split_budget_steps for n in neighbours}
        # 3-2=1 falls below the floor of 2 and is dropped; 3+2=5 kept
        # (aging-introduction neighbours keep the original budget of 3).
        assert steps == {3, 5}

    def test_validation(self):
        with pytest.raises(ValueError, match="population"):
            Controller(build_corpus(CorpusSpec(seed=0, size=4)), population=1)
        with pytest.raises(ValueError, match="rounds"):
            Controller(build_corpus(CorpusSpec(seed=0, size=4)), rounds=0)


# ------------------------------------------------------------- objective


class TestObjective:
    BASELINE = {
        "hit_ratio": 0.8,
        "batch_queue_p99_s": 100.0,
        "starvation_gap_s": 50.0,
        "makespan_s": 1000.0,
    }

    def test_baseline_scores_exactly_zero(self):
        assert objective(self.BASELINE, self.BASELINE) == 0.0

    def test_improvements_score_positive(self):
        better = dict(self.BASELINE, hit_ratio=0.9, batch_queue_p99_s=50.0)
        assert objective(better, self.BASELINE) > 0.0

    def test_regressions_score_negative(self):
        worse = dict(self.BASELINE, hit_ratio=0.6)
        assert objective(worse, self.BASELINE) < 0.0

    def test_zero_baseline_terms_skipped(self):
        flat = dict(self.BASELINE, starvation_gap_s=0.0)
        still_flat = dict(flat, starvation_gap_s=0.0)
        assert objective(still_flat, flat) == 0.0


# ----------------------------------------------------- evaluation + tune


class TestEvaluateAndTune:
    def test_none_policy_identical_to_default_policy(self):
        corpus = build_corpus(CorpusSpec(seed=2, size=4))
        assert evaluate_policy(None, corpus) == evaluate_policy(
            PolicyConfig(), corpus
        )

    def test_tune_deterministic_per_seed(self):
        first = Controller(**TINY).tune()
        second = Controller(**TINY).tune()
        assert first.log.digest() == second.log.digest()
        assert first.policy == second.policy

    def test_replay_rederives_the_log(self):
        result = Controller(**TINY).tune()
        assert Controller(**TINY).replay(result.log)

    def test_replay_rejects_foreign_corpus(self):
        result = Controller(**TINY).tune()
        other = Controller(**dict(TINY, corpus_size=8))
        assert not other.replay(result.log)

    def test_log_json_round_trip(self):
        result = Controller(**TINY).tune()
        log = AdaptationLog.from_json(result.log.to_json())
        assert log.digest() == result.log.digest()
        assert log.winner_policy() == result.policy

    def test_log_records_the_search(self):
        result = Controller(**TINY).tune()
        log = result.log
        assert log.seed == TINY["seed"]
        assert len(log.rounds) == TINY["rounds"]
        assert log.rounds[0]["candidates"], "round 0 evaluated nothing"
        assert log.winner == result.policy.to_dict()
        # The default is candidate zero, so the winner never scores
        # below the static baseline.
        assert log.winner_score >= 0.0
