"""Unit tests for cache policies, including Algorithm 2's mechanics."""

import inspect
import warnings

import pytest

from repro.caching.artifact_store import ArtifactStore
from repro.caching.manager import CacheManager
from repro.caching.policy import (
    CacheAllPolicy,
    CacheDecision,
    CachePolicy,
    CoulerCachePolicy,
    FIFOCachePolicy,
    LRUCachePolicy,
    NoCachePolicy,
    make_policy,
)
from repro.caching.score import ArtifactScorer, WorkflowGraphIndex
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow

GB = 2**30


def _artifact(uid: str, size: int = 10) -> ArtifactSpec:
    return ArtifactSpec(uid=uid, size_bytes=size)


def _scorer_with(consumer_counts: dict) -> ArtifactScorer:
    """A scorer whose artifacts have the given number of future readers."""
    wf = ExecutableWorkflow(name="g")
    artifacts = {uid: _artifact(uid) for uid in consumer_counts}
    for uid, artifact in artifacts.items():
        wf.add_step(
            ExecutableStep(name=f"make-{uid}", duration_s=100, outputs=[artifact])
        )
    for uid, count in consumer_counts.items():
        for index in range(count):
            wf.add_step(
                ExecutableStep(
                    name=f"use-{uid}-{index}",
                    duration_s=10,
                    dependencies=[f"make-{uid}"],
                    inputs=[artifacts[uid]],
                )
            )
    index = WorkflowGraphIndex()
    index.register(wf)
    return ArtifactScorer(index=index)


class TestRegistry:
    def test_make_policy(self):
        assert isinstance(make_policy("couler"), CoulerCachePolicy)
        assert isinstance(make_policy("lru"), LRUCachePolicy)
        with pytest.raises(ValueError):
            make_policy("magic")


class TestNoAndAll:
    def test_no_policy_never_caches(self):
        store = ArtifactStore(capacity_bytes=100)
        assert not NoCachePolicy().admit(_artifact("a"), store, None, 0.0)
        assert len(store) == 0

    def test_all_policy_caches_until_full_without_eviction(self):
        store = ArtifactStore(capacity_bytes=25)
        policy = CacheAllPolicy()
        assert policy.admit(_artifact("a"), store, None, 0.0)
        assert policy.admit(_artifact("b"), store, None, 0.0)
        assert not policy.admit(_artifact("c"), store, None, 0.0)
        assert store.stats.evictions == 0


class TestFifoLru:
    def test_fifo_evicts_oldest(self):
        store = ArtifactStore(capacity_bytes=20)
        policy = FIFOCachePolicy()
        policy.admit(_artifact("old"), store, None, 0.0)
        policy.admit(_artifact("mid"), store, None, 1.0)
        policy.admit(_artifact("new"), store, None, 2.0)
        assert not store.contains("old")
        assert store.contains("mid") and store.contains("new")

    def test_lru_evicts_least_recently_used(self):
        store = ArtifactStore(capacity_bytes=20)
        policy = LRUCachePolicy()
        policy.admit(_artifact("a"), store, None, 0.0)
        policy.admit(_artifact("b"), store, None, 1.0)
        store.record_hit("a", now=5.0)  # refresh a
        policy.admit(_artifact("c"), store, None, 6.0)
        assert store.contains("a")
        assert not store.contains("b")


class TestCoulerPolicy:
    def test_requires_scorer(self):
        with pytest.raises(ValueError):
            CoulerCachePolicy().admit(_artifact("a"), ArtifactStore(100), None, 0.0)

    def test_admits_while_space_remains(self):
        scorer = _scorer_with({"a": 1})
        store = ArtifactStore(capacity_bytes=100)
        assert CoulerCachePolicy().admit(_artifact("a"), store, scorer, 0.0)

    def test_evicts_lower_scored_artifact_under_pressure(self):
        # "hot" has 5 future readers, "cold" has none.
        scorer = _scorer_with({"hot": 5, "cold": 0, "warm": 2})
        store = ArtifactStore(capacity_bytes=20)
        policy = CoulerCachePolicy()
        policy.admit(_artifact("hot"), store, scorer, 0.0)
        policy.admit(_artifact("cold"), store, scorer, 1.0)
        # warm beats cold, so cold is evicted to make room.
        assert policy.admit(_artifact("warm"), store, scorer, 2.0)
        assert store.contains("hot") and store.contains("warm")
        assert not store.contains("cold")

    def test_rejects_newcomer_weaker_than_everything_cached(self):
        scorer = _scorer_with({"hot": 5, "warm": 3, "cold": 0})
        store = ArtifactStore(capacity_bytes=20)
        policy = CoulerCachePolicy()
        policy.admit(_artifact("hot"), store, scorer, 0.0)
        policy.admit(_artifact("warm"), store, scorer, 1.0)
        assert not policy.admit(_artifact("cold"), store, scorer, 2.0)
        assert store.stats.rejected == 1
        assert store.contains("hot") and store.contains("warm")

    def test_oversized_artifact_rejected(self):
        scorer = _scorer_with({"big": 9})
        store = ArtifactStore(capacity_bytes=20)
        assert not CoulerCachePolicy().admit(
            _artifact("big", size=50), store, scorer, 0.0
        )

    def test_idempotent_on_already_cached(self):
        scorer = _scorer_with({"a": 1})
        store = ArtifactStore(capacity_bytes=100)
        policy = CoulerCachePolicy()
        policy.admit(_artifact("a"), store, scorer, 0.0)
        assert policy.admit(_artifact("a"), store, scorer, 1.0)
        assert len(store) == 1


class _LegacyOnlyPolicy(CachePolicy):
    """Old-style subclass: overrides positional admit(), not decide()."""

    name = "legacy-test"

    def admit(self, artifact, store, scorer=None, now=0.0):
        return False


class TestLegacyAdmitBridge:
    """The legacy-``admit`` DeprecationWarning must point at the caller.

    The warning fires deep inside ``CachePolicy.decide``, but the frame
    it names must be *user* code — even when the policy is driven
    through several layers of :class:`CacheManager` internals
    (``fetch`` → ``_decide`` → ``on_external_read`` → ``decide``).
    These tests pin the reported filename (and line) to this file.
    """

    def test_warning_points_at_manager_caller(self):
        CachePolicy._legacy_warned.discard(_LegacyOnlyPolicy)
        manager = CacheManager(policy=_LegacyOnlyPolicy(), capacity_bytes=GB)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            expected_line = inspect.currentframe().f_lineno + 1
            manager.fetch(_artifact("x"), now=0.0)
        legacy = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(legacy) == 1
        assert "_LegacyOnlyPolicy" in str(legacy[0].message)
        assert legacy[0].filename == __file__, (
            f"warning attributed to {legacy[0].filename}, not the caller"
        )
        assert legacy[0].lineno == expected_line

    def test_warning_points_at_direct_caller(self):
        CachePolicy._legacy_warned.discard(_LegacyOnlyPolicy)
        store = ArtifactStore(capacity_bytes=GB)
        decision = CacheDecision(artifact=_artifact("y"), store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            expected_line = inspect.currentframe().f_lineno + 1
            _LegacyOnlyPolicy().decide(decision)
        legacy = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(legacy) == 1
        assert legacy[0].filename == __file__
        assert legacy[0].lineno == expected_line

    def test_warns_once_per_policy_class(self):
        CachePolicy._legacy_warned.discard(_LegacyOnlyPolicy)
        manager = CacheManager(policy=_LegacyOnlyPolicy(), capacity_bytes=GB)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager.fetch(_artifact("x"), now=0.0)
            manager.fetch(_artifact("z"), now=1.0)
        legacy = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(legacy) == 1
