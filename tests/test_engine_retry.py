"""Unit tests for failure patterns and the retry policy."""

from repro.engine.retry import (
    FATAL_PATTERNS,
    FailureInjector,
    RETRYABLE_PATTERNS,
    RetryPolicy,
    is_retryable,
)


class TestPatternCatalogue:
    def test_paper_named_patterns_present(self):
        assert "ExceededQuotaErr" in RETRYABLE_PATTERNS
        assert "TooManyRequestsErr" in RETRYABLE_PATTERNS

    def test_catalogue_size_matches_paper_claim(self):
        # "more than 20 abnormal patterns to retry"
        assert len(RETRYABLE_PATTERNS) > 20

    def test_sets_disjoint(self):
        assert not (RETRYABLE_PATTERNS & FATAL_PATTERNS)

    def test_is_retryable(self):
        assert is_retryable("NetworkTimeoutErr")
        assert not is_retryable("PodCrashErr")
        assert not is_retryable("SomethingNovelErr")


class TestRetryPolicy:
    def test_retry_decisions(self):
        policy = RetryPolicy(limit=2)
        assert policy.should_retry("NetworkTimeoutErr", attempts=1)
        assert policy.should_retry("NetworkTimeoutErr", attempts=2)
        assert not policy.should_retry("NetworkTimeoutErr", attempts=3)
        assert not policy.should_retry("PodCrashErr", attempts=1)

    def test_backoff_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=10, backoff_factor=2, backoff_cap=35)
        assert policy.backoff(1) == 10
        assert policy.backoff(2) == 20
        assert policy.backoff(3) == 35  # capped


class TestFailureInjector:
    def test_zero_rate_never_fails(self):
        injector = FailureInjector(seed=1)
        assert all(
            injector.sample("s", 0.0, "PodCrashErr") is None for _ in range(100)
        )

    def test_rate_one_always_fails(self):
        injector = FailureInjector(seed=1)
        assert all(
            injector.sample("s", 1.0, "PodCrashErr") is not None for _ in range(50)
        )

    def test_deterministic_for_fixed_seed(self):
        a = [FailureInjector(seed=7).sample("s", 0.5, "PodCrashErr") for _ in range(1)]
        b = [FailureInjector(seed=7).sample("s", 0.5, "PodCrashErr") for _ in range(1)]
        assert a == b

    def test_retryable_fraction_respected(self):
        injector = FailureInjector(seed=3, retryable_fraction=1.0)
        patterns = [injector.sample("s", 1.0, "PodCrashErr") for _ in range(50)]
        assert all(p in RETRYABLE_PATTERNS for p in patterns)
