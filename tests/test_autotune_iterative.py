"""Tests for multi-round hyperparameter tuning."""

import pytest

from repro.autotune import (
    AutoTuner,
    HyperparameterSet,
    TrainingSurrogate,
    VIT_CIFAR_DATA,
    VIT_MODEL,
    make_llm_log_predictor,
)


def _tuner(seed: int = 7):
    surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=seed)
    return surrogate, AutoTuner(make_llm_log_predictor(surrogate, seed=seed + 1))


class TestIterativeTuning:
    def test_rounds_validated(self):
        _, tuner = _tuner()
        with pytest.raises(ValueError):
            tuner.tune_iterative(
                VIT_CIFAR_DATA, VIT_MODEL,
                [HyperparameterSet(1e-3, 256)], rounds=0,
            )

    def test_refinement_never_predicts_worse(self):
        """The best predicted score is nondecreasing across rounds."""
        surrogate, tuner = _tuner()
        coarse = [
            HyperparameterSet(lr, 256, epochs=8)
            for lr in (1e-5, 1e-4, 1e-3, 1e-2)
        ]
        single = tuner.tune(VIT_CIFAR_DATA, VIT_MODEL, coarse)
        _, tuner2 = _tuner()  # fresh predictor stream for a fair rerun
        multi = tuner2.tune_iterative(VIT_CIFAR_DATA, VIT_MODEL, coarse, rounds=3)
        assert (
            multi.predicted_scores[multi.best.render()]
            >= single.predicted_scores[single.best.render()] - 1e-9
        )

    def test_refinement_improves_truth_on_coarse_grid(self):
        """A deliberately coarse grid misses the optimum; iterating
        around the winner finds a truly better configuration."""
        surrogate, tuner = _tuner(seed=13)
        # Optimum for ViT @ bs 256 is ~3e-4; the coarse grid brackets it.
        coarse = [
            HyperparameterSet(lr, 256, epochs=10) for lr in (1e-5, 1e-3, 1e-1)
        ]
        single = tuner.tune(VIT_CIFAR_DATA, VIT_MODEL, coarse)
        _, tuner2 = _tuner(seed=13)
        multi = tuner2.tune_iterative(VIT_CIFAR_DATA, VIT_MODEL, coarse, rounds=3)
        truth_single = surrogate.train(single.best).final_accuracy
        truth_multi = surrogate.train(multi.best).final_accuracy
        assert truth_multi >= truth_single

    def test_logs_accumulate_across_rounds(self):
        _, tuner = _tuner()
        coarse = [HyperparameterSet(1e-3, 256, epochs=6)]
        result = tuner.tune_iterative(VIT_CIFAR_DATA, VIT_MODEL, coarse, rounds=2)
        assert len(result.predicted_logs) > len(coarse)
