"""Unit tests for the Dataset CRD and the caching server (Appendix B.C)."""

import pytest

from repro.caching.dataset_crd import CachingServer, Dataset, DatasetKind

GB = 2**30


def _table() -> Dataset:
    return Dataset(
        name="ads-a",
        kind=DatasetKind.ODPS_TABLE,
        total_bytes=2 * GB,
        num_files=4,
        project="ads",
        table="ads_a",
    )


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(name="bad", kind=DatasetKind.OSS_FILES, total_bytes=-1)
        with pytest.raises(ValueError):
            Dataset(name="bad", kind=DatasetKind.OSS_FILES, total_bytes=1, num_files=0)

    def test_to_crd_schema(self):
        crd = _table().to_crd()
        assert crd.kind == "Dataset"
        assert crd.api_version.startswith("io.kubemaker.alipay.com/")
        assert crd.spec["odps"]["table"] == "ads_a"
        assert crd.spec["odps"]["totalBytes"] == 2 * GB


class TestCachingServer:
    def test_read_requires_registration(self):
        with pytest.raises(KeyError):
            CachingServer().read_seconds("ghost", use_cache=False)

    def test_sync_is_idempotent(self):
        server = CachingServer()
        server.register(_table())
        first = server.sync("ads-a")
        second = server.sync("ads-a")
        assert first > 0
        assert second == 0.0
        assert server.sync_count == 1

    def test_local_reads_faster_than_remote(self):
        server = CachingServer()
        dataset = _table()
        server.register(dataset)
        remote = server.remote_read_seconds(dataset)
        local = server.local_read_seconds(dataset)
        assert local < remote / 2

    def test_per_file_overhead_dominates_small_files(self):
        server = CachingServer()
        many = Dataset(name="many", kind=DatasetKind.OSS_FILES,
                       total_bytes=GB, num_files=10_000)
        few = Dataset(name="few", kind=DatasetKind.NAS_FILES,
                      total_bytes=GB, num_files=1)
        server.register(many)
        server.register(few)
        assert server.remote_read_seconds(many) > server.remote_read_seconds(few) + 100

    def test_multi_job_reads_amortize_one_sync(self):
        dataset = _table()
        cached = CachingServer()
        cached.register(dataset)
        times = cached.multi_job_read_seconds("ads-a", 4, use_cache=True)
        # First job pays sync + local read; the rest only local reads.
        assert times[0] > times[1]
        assert times[1] == pytest.approx(times[2]) == pytest.approx(times[3])
        assert cached.sync_count == 1

    def test_throughput_improves_when_ready(self):
        server = CachingServer()
        dataset = _table()
        server.register(dataset)
        before = server.throughput_bps("ads-a", use_cache=True)
        server.sync("ads-a")
        after = server.throughput_bps("ads-a", use_cache=True)
        assert after > before
