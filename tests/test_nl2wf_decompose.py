"""Tests for the rule-based modular decomposition (Step 1's core)."""

import pytest

from repro.llm.codelake import canonical_code
from repro.nl2wf.corpus import build_corpus
from repro.nl2wf.decompose import (
    classify_sentence,
    decompose_description,
    extract_dataset,
    extract_models,
    split_sentences,
)
from repro.nl2wf.executor import execute_couler_code
from repro.nl2wf.validate import compare_ir


class TestClassification:
    @pytest.mark.parametrize(
        "sentence,expected",
        [
            ("Load the imagenet dataset from remote storage.", "data_loading"),
            ("Preprocess and clean the raw data.", "data_preprocessing"),
            ("Augment the training data with synthetic variations.", "data_augmentation"),
            ("Train the candidate models on the prepared data.", "model_training"),
            ("Validate each trained model using the validation data.", "model_evaluation"),
            ("Compare the evaluation metrics across all models.", "model_comparison"),
            ("Select the best-performing model.", "model_selection"),
            ("Deploy the selected model to the serving environment.", "model_deployment"),
            ("Sweep batch sizes to tune the training hyperparameters.", "hyperparameter_tuning"),
            ("Generate a final analysis report of the results.", "report_generation"),
        ],
    )
    def test_every_type_classified(self, sentence, expected):
        assert classify_sentence(sentence) == expected

    def test_deployment_not_confused_with_selection(self):
        # "selected" must not shadow the deployment intent.
        assert classify_sentence("Deploy the selected model.") == "model_deployment"

    def test_finetune_is_training_not_tuning(self):
        assert classify_sentence("Fine-tune the language model.") == "model_training"

    def test_unknown_sentence_returns_none(self):
        assert classify_sentence("The weather is nice today.") is None


class TestParameterExtraction:
    def test_dataset_name(self):
        assert extract_dataset("Load the telco-churn dataset now.") == "telco-churn"
        assert extract_dataset("no dataset mentioned") == "dataset"

    def test_model_list(self):
        text = "Train the candidate models ['resnet', 'vit'] on the data."
        assert extract_models(text) == ["resnet", "vit"]

    def test_model_list_fallback(self):
        assert extract_models("train some models") == ["model-a", "model-b"]

    def test_sentence_splitting(self):
        assert split_sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]


class TestEndToEnd:
    def test_intro_sentence_skipped(self):
        description = (
            "I need to design a workflow to select the optimal model. "
            "Load the d dataset from remote storage. "
            "Train the candidate models ['m'] on the prepared data."
        )
        modules = decompose_description(description)
        types = [m.task_type for m in modules]
        assert types == ["data_loading", "model_training"]

    def test_variable_threading(self):
        description = (
            "Goal statement first. "
            "Load the d dataset. Preprocess and clean the raw d data. "
            "Train the candidate models ['m'] on the prepared data."
        )
        modules = decompose_description(description)
        training = next(m for m in modules if m.task_type == "model_training")
        assert training.params["data_var"] == "clean_data"

    @pytest.mark.parametrize("style", ["default", "alternate"])
    def test_full_corpus_functionally_exact(self, style):
        """The mechanical decomposition reproduces every task's expected
        workflow when rendered through the canonical templates — for the
        default phrasing and for the paraphrased variant."""
        for task in build_corpus(style=style):
            modules = decompose_description(task.description)
            program = "\n".join(
                canonical_code(m.task_type, dict(m.params)) for m in modules
            )
            ir = execute_couler_code(program, workflow_name=task.name)
            report = compare_ir(task.expected_ir(), ir)
            assert report.ok, (task.name, report.problems)
