"""Property-based tests (hypothesis) on core invariants.

Covers: IR acyclicity and topological-order correctness under random
DAG construction; split-plan partition/edge-preservation/budget
invariants; artifact-store capacity conservation; engine scheduling
never violating dependencies; tokenizer/pricing monotonicity; pass@k
estimator bounds; resource arithmetic laws.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.artifact_store import ArtifactStore
from repro.caching.policy import FIFOCachePolicy, LRUCachePolicy
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.engine.status import WorkflowPhase
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.llm.tokenizer import count_tokens
from repro.nl2wf.passk import pass_at_k
from repro.parallelism.budget import BudgetModel
from repro.parallelism.splitter import WorkflowSplitter

GB = 2**30


# --------------------------------------------------------------- strategies

@st.composite
def random_dags(draw, max_nodes: int = 16):
    """A random DAG as (num_nodes, edges) with edges i -> j only for i < j,
    which guarantees acyclicity by construction."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = set()
    for child in range(1, n):
        parents = draw(
            st.lists(st.integers(0, child - 1), max_size=3, unique=True)
        )
        for parent in parents:
            edges.add((parent, child))
    return n, edges


def _build_ir(n: int, edges: set) -> WorkflowIR:
    ir = WorkflowIR(name="prop")
    for index in range(n):
        ir.add_node(
            IRNode(name=f"n{index}", op=OpKind.CONTAINER, image="x",
                   sim=SimHint(duration_s=1.0 + index % 5))
        )
    for parent, child in edges:
        ir.add_edge(f"n{parent}", f"n{child}")
    return ir


# ---------------------------------------------------------------- IR graphs

@given(random_dags())
@settings(max_examples=60)
def test_topological_order_respects_every_edge(dag):
    n, edges = dag
    ir = _build_ir(n, edges)
    order = ir.topological_order()
    assert sorted(order) == sorted(ir.nodes)
    position = {name: i for i, name in enumerate(order)}
    for parent, child in ir.edges:
        assert position[parent] < position[child]


@given(random_dags())
@settings(max_examples=60)
def test_critical_path_bounds_total_duration(dag):
    n, edges = dag
    ir = _build_ir(n, edges)
    critical = ir.critical_path_seconds()
    total = sum(node.sim.duration_s for node in ir.nodes.values())
    longest_single = max(node.sim.duration_s for node in ir.nodes.values())
    assert longest_single <= critical <= total + 1e-9


# ------------------------------------------------------------------ splitter

@given(random_dags(max_nodes=20), st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_split_plan_invariants(dag, max_steps):
    n, edges = dag
    ir = _build_ir(n, edges)
    budget = BudgetModel(max_yaml_bytes=50_000_000, max_steps=max_steps)
    plan = WorkflowSplitter(budget).split(ir)
    # Partition: every node in exactly one part.
    seen = {}
    for index, part in enumerate(plan.parts):
        for name in part.nodes:
            assert name not in seen
            seen[name] = index
    assert set(seen) == set(ir.nodes)
    # Edge preservation: internal + cut edges == original edges.
    internal = set().union(*(part.edges for part in plan.parts)) if plan.parts else set()
    assert internal | plan.cut_edges == ir.edges
    # Budget: every part within the step budget.
    for part in plan.parts:
        assert len(part.nodes) <= max_steps
    # The part dependency graph is acyclic (topological order exists).
    plan.topological_part_order()


# -------------------------------------------------------------- cache store

@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 40)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60)
def test_store_accounting_conserved(operations):
    """Random admissions through FIFO/LRU never exceed capacity and
    used_bytes always equals the sum of resident entry sizes."""
    store = ArtifactStore(capacity_bytes=100)
    fifo = FIFOCachePolicy()
    for step, (uid_index, size) in enumerate(operations):
        artifact = ArtifactSpec(uid=f"u{uid_index}", size_bytes=size)
        fifo.admit(artifact, store, None, float(step))
        assert store.used_bytes <= 100
        assert store.used_bytes == sum(e.size_bytes for e in store.entries())
        assert store.peak_bytes >= store.used_bytes


@given(st.integers(1, 99), st.integers(1, 99))
@settings(max_examples=30)
def test_lru_store_never_loses_bytes(size_a, size_b):
    store = ArtifactStore(capacity_bytes=100)
    policy = LRUCachePolicy()
    policy.admit(ArtifactSpec(uid="a", size_bytes=size_a), store, None, 0.0)
    policy.admit(ArtifactSpec(uid="b", size_bytes=size_b), store, None, 1.0)
    assert store.used_bytes <= 100
    expected = {e.uid for e in store.entries()}
    assert "b" in expected  # newest admission always resident


# ------------------------------------------------------------------- engine

@given(random_dags(max_nodes=10))
@settings(max_examples=25, deadline=None)
def test_engine_never_starts_step_before_parents_finish(dag):
    n, edges = dag
    workflow = ExecutableWorkflow(name="prop")
    for index in range(n):
        deps = sorted({f"s{p}" for p, c in edges if c == index})
        workflow.add_step(
            ExecutableStep(
                name=f"s{index}",
                duration_s=1.0 + (index % 3),
                requests=ResourceQuantity(cpu=1.0),
                dependencies=deps,
            )
        )
    clock = SimClock()
    cluster = Cluster.uniform("p", 2, cpu_per_node=4, memory_per_node=16 * GB)
    operator = WorkflowOperator(clock, cluster)
    record = operator.submit(workflow)
    operator.run_to_completion()
    assert record.phase == WorkflowPhase.SUCCEEDED
    for parent, child in edges:
        parent_record = record.steps[f"s{parent}"]
        child_record = record.steps[f"s{child}"]
        assert parent_record.finish_time <= child_record.start_time + 1e-9


# ----------------------------------------------------------------- tokenizer

@given(st.text(max_size=400), st.text(max_size=400))
@settings(max_examples=80)
def test_token_count_subadditive_under_concatenation(a, b):
    joined = count_tokens(a + " " + b)
    assert joined <= count_tokens(a) + count_tokens(b) + 1
    assert count_tokens(a) >= 0


@given(st.text(min_size=1, max_size=200))
@settings(max_examples=80)
def test_token_count_positive_for_nonspace_text(text):
    if text.strip():
        assert count_tokens(text) >= 1


# -------------------------------------------------------------------- passk

@given(st.integers(1, 30), st.data())
@settings(max_examples=80)
def test_pass_at_k_bounds_and_monotonicity(n, data):
    c = data.draw(st.integers(0, n))
    k = data.draw(st.integers(1, n))
    value = pass_at_k(n, c, k)
    assert 0.0 <= value <= 1.0
    if k < n:
        assert value <= pass_at_k(n, c, k + 1) + 1e-12
    if c == 0:
        assert value == 0.0
    if c == n:
        assert value == 1.0


# ---------------------------------------------------------------- resources

@given(
    st.floats(0, 100, allow_nan=False),
    st.integers(0, 2**40),
    st.integers(0, 8),
    st.floats(0, 100, allow_nan=False),
    st.integers(0, 2**40),
    st.integers(0, 8),
)
@settings(max_examples=60)
def test_resource_addition_commutative_and_fits(c1, m1, g1, c2, m2, g2):
    a = ResourceQuantity(cpu=c1, memory=m1, gpu=g1)
    b = ResourceQuantity(cpu=c2, memory=m2, gpu=g2)
    assert a + b == b + a
    assert a.fits_within(a + b)
    assert b.fits_within(a + b)
