"""Unit tests for the executable workflow model and Argo manifest parsing."""

import pytest

from repro.backends.argo import ArgoBackend
from repro.engine.spec import (
    ArtifactSpec,
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
    SpecError,
    parse_argo_manifest,
)
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import ArtifactDecl, IRNode, OpKind, SimHint
from repro.k8s.resources import ResourceQuantity


class TestArtifactSpec:
    def test_negative_size_rejected(self):
        with pytest.raises(SpecError):
            ArtifactSpec(uid="a", size_bytes=-1)


class TestFailureProfile:
    def test_rate_bounds(self):
        FailureProfile(rate=0.0)
        FailureProfile(rate=1.0)
        with pytest.raises(SpecError):
            FailureProfile(rate=1.5)


class TestExecutableWorkflow:
    def test_duplicate_step_rejected(self):
        workflow = ExecutableWorkflow(name="w")
        workflow.add_step(ExecutableStep(name="a", duration_s=1))
        with pytest.raises(SpecError):
            workflow.add_step(ExecutableStep(name="a", duration_s=1))

    def test_unknown_dependency_rejected(self):
        workflow = ExecutableWorkflow(name="w")
        workflow.add_step(ExecutableStep(name="a", duration_s=1, dependencies=["ghost"]))
        with pytest.raises(SpecError):
            workflow.validate()

    def test_cycle_rejected(self):
        workflow = ExecutableWorkflow(name="w")
        workflow.add_step(ExecutableStep(name="a", duration_s=1, dependencies=["b"]))
        workflow.add_step(ExecutableStep(name="b", duration_s=1, dependencies=["a"]))
        with pytest.raises(SpecError):
            workflow.validate()

    def test_producers_and_artifacts(self):
        workflow = ExecutableWorkflow(name="w")
        artifact = ArtifactSpec(uid="w/a/out", size_bytes=10)
        workflow.add_step(ExecutableStep(name="a", duration_s=1, outputs=[artifact]))
        assert workflow.producers() == {"w/a/out": "a"}
        assert workflow.artifacts()["w/a/out"] is artifact


class TestArgoManifestParsing:
    def _ir(self) -> WorkflowIR:
        ir = WorkflowIR(name="roundtrip")
        ir.add_node(
            IRNode(
                name="prep",
                op=OpKind.CONTAINER,
                image="prep:v1",
                resources=ResourceQuantity(cpu=2.0, memory=2**30),
                outputs=[ArtifactDecl(name="out", size_bytes=512)],
                sim=SimHint(duration_s=42.0, failure_rate=0.1, uses_gpu=True),
            )
        )
        ir.add_node(
            IRNode(
                name="train",
                op=OpKind.CONTAINER,
                image="train:v1",
                inputs=[ArtifactDecl(name="out", size_bytes=512, uid="roundtrip/prep/out")],
                sim=SimHint(duration_s=100.0),
            )
        )
        ir.add_edge("prep", "train")
        return ir

    def test_ir_to_manifest_to_executable_round_trip(self):
        """The backend path and the direct path must agree."""
        ir = self._ir()
        manifest = ArgoBackend().compile(ir)
        via_manifest = parse_argo_manifest(manifest)
        direct = ir.to_executable()
        assert set(via_manifest.steps) == set(direct.steps)
        for name in direct.steps:
            a, b = via_manifest.steps[name], direct.steps[name]
            assert a.duration_s == b.duration_s
            assert a.dependencies == b.dependencies
            assert [o.uid for o in a.outputs] == [o.uid for o in b.outputs]
            assert [i.uid for i in a.inputs] == [i.uid for i in b.inputs]
            assert a.failure.rate == b.failure.rate
            assert a.uses_gpu == b.uses_gpu
            assert a.requests.cpu == b.requests.cpu

    def test_non_workflow_manifest_rejected(self):
        with pytest.raises(SpecError):
            parse_argo_manifest({"kind": "Pod"})

    def test_missing_entrypoint_rejected(self):
        with pytest.raises(SpecError):
            parse_argo_manifest(
                {"kind": "Workflow", "spec": {"entrypoint": "main", "templates": []}}
            )
