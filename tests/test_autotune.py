"""Tests for the automatic hyperparameter tuner (Algorithm 4)."""

import pytest

from repro.autotune import (
    AutoTuner,
    DataCard,
    HyperparameterSet,
    ModelCard,
    NANOGPT_DATA,
    NANOGPT_MODEL,
    TrainingSurrogate,
    VIT_CIFAR_DATA,
    VIT_MODEL,
    default_candidate_grid,
    expert_baseline,
    literature_baseline,
    make_llm_log_predictor,
    parse_training_log,
    render_training_log,
)


class TestCards:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataCard(name="d", modality="image", num_samples=0, num_classes=10)
        with pytest.raises(ValueError):
            ModelCard(name="m", family="vit", num_params=0)
        with pytest.raises(ValueError):
            HyperparameterSet(learning_rate=0, batch_size=32)

    def test_render_contains_fields(self):
        text = VIT_CIFAR_DATA.render()
        assert "Modality: image" in text
        assert "Classes: 1000" in text
        assert "heads=12" in VIT_MODEL.render()


class TestSurrogate:
    def test_deterministic_across_instances(self):
        hp = HyperparameterSet(3e-4, 256, epochs=5)
        a = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=1).train(hp)
        b = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=1).train(hp)
        assert [e.loss for e in a.epochs] == [e.loss for e in b.epochs]

    def test_loss_decreases_with_good_lr(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=0)
        hp = HyperparameterSet(surrogate.optimal_lr(256), 256, epochs=10)
        curve = surrogate.train(hp)
        assert curve.epochs[-1].loss < curve.epochs[0].loss
        assert curve.final_accuracy > 0.4

    def test_extreme_lr_diverges(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=0)
        hp = HyperparameterSet(10.0, 256, epochs=5)
        curve = surrogate.train(hp)
        assert curve.diverged
        assert curve.final_accuracy < 0.05

    def test_response_surface_unimodal_in_log_lr(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=0, noise_scale=0.0)
        best = surrogate.optimal_lr(256)
        accs = [
            surrogate.train(HyperparameterSet(lr, 256, epochs=10)).final_accuracy
            for lr in (best / 100, best, best * 100)
        ]
        assert accs[1] > accs[0] and accs[1] > accs[2]


class TestLogs:
    def test_render_parse_round_trip(self):
        surrogate = TrainingSurrogate(NANOGPT_DATA, NANOGPT_MODEL, seed=2)
        curve = surrogate.train(HyperparameterSet(6e-4, 256, epochs=6))
        text = render_training_log(NANOGPT_DATA, NANOGPT_MODEL, curve)
        parsed = parse_training_log(text)
        assert len(parsed.epochs) == 6
        assert parsed.final_loss == pytest.approx(curve.final_loss, abs=1e-3)
        assert parsed.final_accuracy == pytest.approx(curve.final_accuracy, abs=1e-3)

    def test_diverged_flag_survives(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=0)
        curve = surrogate.train(HyperparameterSet(10.0, 256, epochs=3))
        parsed = parse_training_log(render_training_log(VIT_CIFAR_DATA, VIT_MODEL, curve))
        assert parsed.diverged
        assert parsed.score("accuracy") == float("-inf")

    def test_score_respects_metric(self):
        text = "epoch 1/1 | loss=0.5000 | accuracy=0.8000"
        parsed = parse_training_log(text)
        assert parsed.score("accuracy") == pytest.approx(0.8)
        assert parsed.score("loss") == pytest.approx(-0.5)


class TestTuner:
    def test_empty_candidates_rejected(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL)
        tuner = AutoTuner(make_llm_log_predictor(surrogate))
        with pytest.raises(ValueError):
            tuner.tune(VIT_CIFAR_DATA, VIT_MODEL, [])

    def test_tuner_beats_baselines_cv(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=3)
        tuner = AutoTuner(make_llm_log_predictor(surrogate, seed=5))
        result = tuner.tune(
            VIT_CIFAR_DATA, VIT_MODEL, default_candidate_grid(VIT_MODEL)
        )
        ours = surrogate.train(result.best).final_accuracy
        expert = surrogate.train(expert_baseline(VIT_MODEL)).final_accuracy
        literature = surrogate.train(literature_baseline(VIT_MODEL)).final_accuracy
        assert ours >= expert
        assert ours >= literature

    def test_tuner_beats_baselines_nlp(self):
        surrogate = TrainingSurrogate(NANOGPT_DATA, NANOGPT_MODEL, seed=3)
        tuner = AutoTuner(make_llm_log_predictor(surrogate, seed=5))
        result = tuner.tune(
            NANOGPT_DATA, NANOGPT_MODEL, default_candidate_grid(NANOGPT_MODEL)
        )
        ours = surrogate.train(result.best).final_loss
        assert ours <= surrogate.train(expert_baseline(NANOGPT_MODEL)).final_loss
        assert ours <= surrogate.train(literature_baseline(NANOGPT_MODEL)).final_loss

    def test_result_keeps_logs_for_every_candidate(self):
        surrogate = TrainingSurrogate(VIT_CIFAR_DATA, VIT_MODEL, seed=1)
        tuner = AutoTuner(make_llm_log_predictor(surrogate))
        candidates = default_candidate_grid(VIT_MODEL)[:4]
        result = tuner.tune(VIT_CIFAR_DATA, VIT_MODEL, candidates)
        assert len(result.predicted_logs) == 4
        assert "epoch" in result.log_for(candidates[0])
