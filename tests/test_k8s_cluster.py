"""Unit tests for nodes, clusters and the best-fit scheduler."""

import pytest

from repro.k8s.cluster import Cluster, Node, Scheduler, SchedulingError
from repro.k8s.objects import Pod
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _pod(name: str, cpu: float = 1.0, memory: int = GB, gpu: int = 0) -> Pod:
    return Pod(name, requests=ResourceQuantity(cpu=cpu, memory=memory, gpu=gpu))


class TestNode:
    def test_bind_and_release(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=4, memory=8 * GB))
        pod = _pod("p1", cpu=2)
        node.bind(pod)
        assert node.free.cpu == 2
        assert pod.node_name == "n1"
        node.release(pod)
        assert node.free.cpu == 4

    def test_bind_overflow_raises(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=1, memory=GB))
        node.bind(_pod("p1", cpu=1))
        with pytest.raises(SchedulingError):
            node.bind(_pod("p2", cpu=1))

    def test_release_unknown_pod_is_noop(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=1, memory=GB))
        node.release(_pod("ghost"))


class TestCluster:
    def test_uniform_capacity(self):
        cluster = Cluster.uniform("c", 3, cpu_per_node=8, memory_per_node=GB, gpu_per_node=2)
        assert cluster.capacity.cpu == 24
        assert cluster.capacity.gpu == 6

    def test_utilization(self):
        cluster = Cluster.uniform("c", 2, cpu_per_node=4, memory_per_node=4 * GB)
        Scheduler(cluster).try_schedule(_pod("p", cpu=2, memory=2 * GB))
        util = cluster.utilization()
        assert util["cpu"] == pytest.approx(0.25)
        assert util["memory"] == pytest.approx(0.25)
        assert util["gpu"] == 0.0


class TestScheduler:
    def test_best_fit_prefers_tightest_node(self):
        tight = Node("tight", capacity=ResourceQuantity(cpu=2, memory=4 * GB))
        roomy = Node("roomy", capacity=ResourceQuantity(cpu=16, memory=4 * GB))
        cluster = Cluster(name="c", nodes=[roomy, tight])
        node = Scheduler(cluster).try_schedule(_pod("p", cpu=2))
        assert node is tight

    def test_returns_none_when_full(self):
        cluster = Cluster.uniform("c", 1, cpu_per_node=2, memory_per_node=4 * GB)
        scheduler = Scheduler(cluster)
        assert scheduler.try_schedule(_pod("p1", cpu=2)) is not None
        assert scheduler.try_schedule(_pod("p2", cpu=1)) is None

    def test_infeasible_request_raises(self):
        cluster = Cluster.uniform("c", 2, cpu_per_node=4, memory_per_node=4 * GB)
        with pytest.raises(SchedulingError):
            Scheduler(cluster).try_schedule(_pod("huge", cpu=100))

    def test_release_by_node_name(self):
        cluster = Cluster.uniform("c", 1, cpu_per_node=4, memory_per_node=4 * GB)
        scheduler = Scheduler(cluster)
        pod = _pod("p", cpu=3)
        scheduler.try_schedule(pod)
        scheduler.release(pod)
        assert cluster.allocated.is_zero()
