"""Unit tests for nodes, clusters and the best-fit scheduler."""

import pytest

from repro.k8s.cluster import Cluster, Node, Scheduler, SchedulingError
from repro.k8s.objects import Pod
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _pod(name: str, cpu: float = 1.0, memory: int = GB, gpu: int = 0) -> Pod:
    return Pod(name, requests=ResourceQuantity(cpu=cpu, memory=memory, gpu=gpu))


class TestNode:
    def test_bind_and_release(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=4, memory=8 * GB))
        pod = _pod("p1", cpu=2)
        node.bind(pod)
        assert node.free.cpu == 2
        assert pod.node_name == "n1"
        node.release(pod)
        assert node.free.cpu == 4

    def test_bind_overflow_raises(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=1, memory=GB))
        node.bind(_pod("p1", cpu=1))
        with pytest.raises(SchedulingError):
            node.bind(_pod("p2", cpu=1))

    def test_release_unknown_pod_is_noop(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=1, memory=GB))
        node.release(_pod("ghost"))

    def test_release_clears_stale_binding(self):
        # A pod the node no longer tracks but that still points at the
        # node must have its binding cleared, or it can be "released"
        # against the wrong node later.
        node = Node("n1", capacity=ResourceQuantity(cpu=4, memory=8 * GB))
        pod = _pod("p1", cpu=2)
        node.bind(pod)
        del node.pods[pod.metadata.name]  # simulate drifted bookkeeping
        node.release(pod)
        assert pod.node_name is None

    def test_fail_displaces_all_pods(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=4, memory=8 * GB))
        first, second = _pod("p1", cpu=2), _pod("p2", cpu=1)
        node.bind(first)
        node.bind(second)
        displaced = node.fail()
        assert {pod.metadata.name for pod in displaced} == {"p1", "p2"}
        assert not node.ready
        assert node.pods == {}
        assert node.allocated.is_zero()
        for pod in displaced:
            assert pod.node_name is None
            assert pod.reason == "NodeLost"

    def test_failed_node_rejects_binds_until_recovery(self):
        node = Node("n1", capacity=ResourceQuantity(cpu=4, memory=8 * GB))
        node.fail()
        assert not node.can_fit(ResourceQuantity(cpu=1))
        with pytest.raises(SchedulingError):
            node.bind(_pod("p"))
        node.recover()
        node.bind(_pod("p", cpu=1))
        assert node.allocated.cpu == 1

    def test_evict_clears_binding_and_marks_pod(self):
        from repro.k8s.objects import PodPhase

        node = Node("n1", capacity=ResourceQuantity(cpu=4, memory=8 * GB))
        pod = _pod("p1", cpu=2)
        node.bind(pod)
        node.evict(pod)
        assert node.allocated.is_zero()
        assert pod.node_name is None
        assert pod.phase == PodPhase.FAILED
        assert pod.reason == "Evicted"


class TestCluster:
    def test_uniform_capacity(self):
        cluster = Cluster.uniform("c", 3, cpu_per_node=8, memory_per_node=GB, gpu_per_node=2)
        assert cluster.capacity.cpu == 24
        assert cluster.capacity.gpu == 6

    def test_utilization(self):
        cluster = Cluster.uniform("c", 2, cpu_per_node=4, memory_per_node=4 * GB)
        Scheduler(cluster).try_schedule(_pod("p", cpu=2, memory=2 * GB))
        util = cluster.utilization()
        assert util["cpu"] == pytest.approx(0.25)
        assert util["memory"] == pytest.approx(0.25)
        assert util["gpu"] == 0.0

    def test_node_lookup_tracks_membership(self):
        cluster = Cluster.uniform("c", 2, cpu_per_node=4, memory_per_node=4 * GB)
        assert cluster.node("c-node-1").name == "c-node-1"
        assert cluster.node("nope") is None
        # The lazy index rebuilds when the node list changes.
        cluster.nodes.append(
            Node("late", capacity=ResourceQuantity(cpu=1, memory=GB))
        )
        assert cluster.node("late") is cluster.nodes[-1]

    def test_ready_nodes_excludes_failed(self):
        cluster = Cluster.uniform("c", 3, cpu_per_node=4, memory_per_node=4 * GB)
        cluster.node("c-node-1").fail()
        assert [n.name for n in cluster.ready_nodes()] == ["c-node-0", "c-node-2"]


class TestScheduler:
    def test_best_fit_prefers_tightest_node(self):
        tight = Node("tight", capacity=ResourceQuantity(cpu=2, memory=4 * GB))
        roomy = Node("roomy", capacity=ResourceQuantity(cpu=16, memory=4 * GB))
        cluster = Cluster(name="c", nodes=[roomy, tight])
        node = Scheduler(cluster).try_schedule(_pod("p", cpu=2))
        assert node is tight

    def test_returns_none_when_full(self):
        cluster = Cluster.uniform("c", 1, cpu_per_node=2, memory_per_node=4 * GB)
        scheduler = Scheduler(cluster)
        assert scheduler.try_schedule(_pod("p1", cpu=2)) is not None
        assert scheduler.try_schedule(_pod("p2", cpu=1)) is None

    def test_infeasible_request_raises(self):
        cluster = Cluster.uniform("c", 2, cpu_per_node=4, memory_per_node=4 * GB)
        with pytest.raises(SchedulingError):
            Scheduler(cluster).try_schedule(_pod("huge", cpu=100))

    def test_release_by_node_name(self):
        cluster = Cluster.uniform("c", 1, cpu_per_node=4, memory_per_node=4 * GB)
        scheduler = Scheduler(cluster)
        pod = _pod("p", cpu=3)
        scheduler.try_schedule(pod)
        scheduler.release(pod)
        assert cluster.allocated.is_zero()

    def test_double_release_does_not_underflow(self):
        cluster = Cluster.uniform("c", 2, cpu_per_node=4, memory_per_node=4 * GB)
        scheduler = Scheduler(cluster)
        pod = _pod("p", cpu=3)
        scheduler.try_schedule(pod)
        scheduler.release(pod)
        assert pod.node_name is None
        scheduler.release(pod)  # second release: binding gone, no-op
        assert cluster.allocated.is_zero()
        # Another pod's allocation must survive the double release.
        other = _pod("q", cpu=2)
        scheduler.try_schedule(other)
        scheduler.release(pod)
        assert cluster.allocated.cpu == 2

    def test_not_ready_nodes_pend_instead_of_error(self):
        cluster = Cluster.uniform("c", 1, cpu_per_node=4, memory_per_node=4 * GB)
        scheduler = Scheduler(cluster)
        cluster.node("c-node-0").fail()
        # Capacity-feasible but currently down: the pod waits.
        assert scheduler.try_schedule(_pod("p", cpu=2)) is None
        cluster.node("c-node-0").recover()
        assert scheduler.try_schedule(_pod("p", cpu=2)) is not None
