"""Unit tests for the discrete-event clock."""

import pytest

from repro.engine.simclock import SimClock, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5, lambda: fired.append("b"))
        clock.schedule(1, lambda: fired.append("a"))
        clock.schedule(9, lambda: fired.append("c"))
        clock.run()
        assert fired == ["a", "b", "c"]
        assert clock.now == 9

    def test_simultaneous_events_fire_in_schedule_order(self):
        clock = SimClock()
        fired = []
        for index in range(5):
            clock.schedule(1.0, lambda i=index: fired.append(i))
        clock.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        clock = SimClock()
        seen = []
        clock.schedule_at(7.5, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [7.5]


class TestRun:
    def test_run_until_stops_before_future_events(self):
        clock = SimClock()
        fired = []
        clock.schedule(10, lambda: fired.append("late"))
        clock.run(until=5)
        assert fired == []
        assert clock.now == 5
        clock.run()
        assert fired == ["late"]

    def test_events_scheduled_during_run_are_processed(self):
        clock = SimClock()
        fired = []

        def first():
            fired.append("first")
            clock.schedule(1, lambda: fired.append("second"))

        clock.schedule(0, first)
        clock.run()
        assert fired == ["first", "second"]

    def test_runaway_loop_guard(self):
        clock = SimClock()

        def forever():
            clock.schedule(1, forever)

        clock.schedule(0, forever)
        with pytest.raises(SimulationError):
            clock.run(max_events=100)


class TestDaemonDrainBoundary:
    """Regression: daemon events due at the drain boundary must fire.

    The old loop checked ``_live <= 0`` before popping anything, so a
    daemon event registered after a previous ``run()`` had drained the
    queue was silently never fired in a fresh drain cycle, and a sampler
    tick landing exactly on the makespan fired only if it happened to be
    scheduled with a lower sequence number than the final work event.
    """

    def test_daemon_registered_after_drain_fires_on_next_run(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        clock.run()
        assert clock.now == 1.0
        fired = []
        clock.schedule(0.0, lambda: fired.append(clock.now), daemon=True)
        clock.run()
        assert fired == [1.0]

    def test_boundary_sample_fires_regardless_of_schedule_order(self):
        # A sampler re-arming every 1.0s alongside work that finishes at
        # exactly 3.0: the 3.0 tick must be recorded even though the
        # sampler's re-arm was scheduled after the final work event.
        clock = SimClock()
        samples = []

        def sample():
            samples.append(clock.now)
            clock.schedule(1.0, sample, daemon=True)

        clock.schedule(0.0, sample, daemon=True)
        clock.schedule(3.0, lambda: None)
        clock.run()
        assert samples == [0.0, 1.0, 2.0, 3.0]

    def test_daemon_past_the_boundary_still_does_not_fire(self):
        clock = SimClock()
        fired = []
        clock.schedule(2.0, lambda: None)
        clock.schedule(5.0, lambda: fired.append("late"), daemon=True)
        clock.run()
        assert fired == []
        assert clock.now == 2.0

    def test_boundary_daemon_scheduling_work_resumes_the_loop(self):
        clock = SimClock()
        fired = []

        def daemon():
            fired.append("daemon")
            clock.schedule(1.0, lambda: fired.append("work"))

        clock.schedule(1.0, lambda: fired.append("first"))
        clock.schedule(1.0, daemon, daemon=True)
        clock.run()
        assert fired == ["first", "daemon", "work"]
        assert clock.now == 2.0


class TestHandleRecycling:
    """Event records are pooled; handles must survive recycling."""

    def test_fired_handle_reports_fired_after_reuse(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        clock.run()
        # Churn the pool so the record is reused for new events.
        for _ in range(10):
            clock.schedule(1.0, lambda: None)
        clock.run()
        assert handle.fired is True
        assert handle.cancelled is False
        assert handle.time == 1.0

    def test_cancel_after_reuse_is_a_no_op(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        clock.run()
        live = clock.schedule(1.0, lambda: None)
        handle.cancel()  # must not cancel the new occupant
        assert live.cancelled is False
        assert clock.pending_work() == 1
        clock.run()

    def test_cancelled_handle_keeps_reporting_cancelled(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        handle.cancel()
        for _ in range(10):
            clock.schedule(0.5, lambda: None)
        clock.run()
        assert handle.cancelled is True
        assert handle.fired is False


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1, lambda: fired.append("x"))
        handle.cancel()
        clock.run()
        assert fired == []

    def test_pending_counts_exclude_cancelled(self):
        clock = SimClock()
        keep = clock.schedule(1, lambda: None)
        drop = clock.schedule(2, lambda: None)
        drop.cancel()
        assert clock.pending() == 1
        assert keep.time == 1
