"""Unit tests for the discrete-event clock."""

import pytest

from repro.engine.simclock import SimClock, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5, lambda: fired.append("b"))
        clock.schedule(1, lambda: fired.append("a"))
        clock.schedule(9, lambda: fired.append("c"))
        clock.run()
        assert fired == ["a", "b", "c"]
        assert clock.now == 9

    def test_simultaneous_events_fire_in_schedule_order(self):
        clock = SimClock()
        fired = []
        for index in range(5):
            clock.schedule(1.0, lambda i=index: fired.append(i))
        clock.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        clock = SimClock()
        seen = []
        clock.schedule_at(7.5, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [7.5]


class TestRun:
    def test_run_until_stops_before_future_events(self):
        clock = SimClock()
        fired = []
        clock.schedule(10, lambda: fired.append("late"))
        clock.run(until=5)
        assert fired == []
        assert clock.now == 5
        clock.run()
        assert fired == ["late"]

    def test_events_scheduled_during_run_are_processed(self):
        clock = SimClock()
        fired = []

        def first():
            fired.append("first")
            clock.schedule(1, lambda: fired.append("second"))

        clock.schedule(0, first)
        clock.run()
        assert fired == ["first", "second"]

    def test_runaway_loop_guard(self):
        clock = SimClock()

        def forever():
            clock.schedule(1, forever)

        clock.schedule(0, forever)
        with pytest.raises(SimulationError):
            clock.run(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1, lambda: fired.append("x"))
        handle.cancel()
        clock.run()
        assert fired == []

    def test_pending_counts_exclude_cancelled(self):
        clock = SimClock()
        keep = clock.schedule(1, lambda: None)
        drop = clock.schedule(2, lambda: None)
        drop.cancel()
        assert clock.pending() == 1
        assert keep.time == 1
