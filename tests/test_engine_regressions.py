"""Regression tests for engine bugs fixed alongside the obs layer.

Covers: cache-stat double counting across retries, the pod-name
attempt off-by-one, sampler event leaks in the sim clock, silently
satisfied unparseable `when` clauses, and retry-backoff jitter.
"""

import random

import pytest

from repro.engine.metrics import UtilizationRecorder
from repro.engine.operator import WorkflowOperator, validate_when_expr
from repro.engine.retry import RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ArtifactSpec,
    ExecutableStep,
    ExecutableWorkflow,
    SpecError,
)
from repro.engine.status import WorkflowPhase
from repro.k8s.apiserver import APIServer
from repro.k8s.cluster import Cluster

GB = 2**30


class ScriptedInjector:
    """Fails the first ``failures`` attempts with a retryable pattern."""

    def __init__(self, failures: int = 1, pattern: str = "NetworkTimeoutErr"):
        self.failures = failures
        self.pattern = pattern
        self.calls = 0
        self.injected = {}

    def sample(self, step_name, rate, own_pattern):
        self.calls += 1
        if self.calls <= self.failures:
            self.injected[self.pattern] = self.injected.get(self.pattern, 0) + 1
            return self.pattern
        return None


class ScriptedCache:
    """Fixed fetch time; miss on first read of a uid, hit afterwards."""

    def __init__(self, fetch_seconds: float):
        self.fetch_seconds = fetch_seconds
        self.seen = set()
        self.fetch_calls = 0

    def register_workflow(self, workflow):
        return None

    def fetch(self, artifact, now=0.0):
        self.fetch_calls += 1
        hit = artifact.uid in self.seen
        self.seen.add(artifact.uid)
        return self.fetch_seconds, hit

    def on_artifact_produced(self, artifact, now):
        return None


def _single_input_workflow(duration_s: float) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name="wf")
    wf.add_step(
        ExecutableStep(
            name="s",
            duration_s=duration_s,
            inputs=[ArtifactSpec(uid="raw/in", size_bytes=1 * GB)],
        )
    )
    return wf


def _operator(cache, injector, **kwargs):
    clock = SimClock()
    cluster = Cluster.uniform("t", 2, cpu_per_node=8.0, memory_per_node=32 * GB)
    return WorkflowOperator(
        clock,
        cluster,
        cache_manager=cache,
        failure_injector=injector,
        retry_policy=RetryPolicy(limit=5),
        **kwargs,
    )


class TestCacheStatDoubleCounting:
    """A retried step must count each input fetch exactly once."""

    def test_retry_does_not_recount_completed_fetch(self):
        # Fetch (1s) completes well before any mid-attempt failure point
        # of the 100s timeline, so the first (failed) attempt counts the
        # miss; the successful retry re-reads the input but must not add
        # a second count.  The old per-attempt accounting reported
        # hits=1, misses=1 for this single input.
        cache = ScriptedCache(fetch_seconds=1.0)
        operator = _operator(cache, ScriptedInjector(failures=1))
        record = operator.submit(_single_input_workflow(duration_s=99.0))
        operator.run_to_completion()
        step = record.steps["s"]
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert step.attempts == 2
        assert cache.fetch_calls == 2
        assert step.cache_misses == 1
        assert step.cache_hits == 0
        assert step.cache_hits + step.cache_misses == 1  # one input, one count

    def test_aborted_fetch_not_counted_until_it_completes(self):
        # The attempt dies mid-fetch (failure fraction < 1 of a pure
        # 100s fetch), so the aborted read counts nothing; the retry
        # completes the fetch and contributes the single count.
        cache = ScriptedCache(fetch_seconds=100.0)
        operator = _operator(cache, ScriptedInjector(failures=1))
        record = operator.submit(_single_input_workflow(duration_s=0.0))
        operator.run_to_completion()
        step = record.steps["s"]
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert step.attempts == 2
        assert step.cache_hits + step.cache_misses == 1
        # The scripted cache served the retry from "cache", so the one
        # counted fetch is the completed hit, not the aborted miss.
        assert step.cache_hits == 1
        assert step.cache_misses == 0

    def test_failed_attempt_charges_fetch_then_compute(self):
        # Sequential charging: a mid-fetch death charges only fetch time.
        cache = ScriptedCache(fetch_seconds=100.0)
        operator = _operator(cache, ScriptedInjector(failures=1))
        record = operator.submit(_single_input_workflow(duration_s=0.0))
        operator.run_to_completion()
        step = record.steps["s"]
        # Both attempts were pure fetch; no compute was ever charged.
        assert step.compute_seconds == pytest.approx(0.0)
        assert step.fetch_seconds > 100.0  # aborted partial + full retry


class TestPodAttemptNumbering:
    def test_pod_names_carry_one_based_attempt_numbers(self):
        clock = SimClock()
        cluster = Cluster.uniform("t", 2, cpu_per_node=8.0, memory_per_node=32 * GB)
        api = APIServer()
        operator = WorkflowOperator(
            clock,
            cluster,
            api_server=api,
            track_pods=True,
            failure_injector=ScriptedInjector(failures=1),
            retry_policy=RetryPolicy(limit=5),
        )
        wf = ExecutableWorkflow(name="wf")
        wf.add_step(ExecutableStep(name="s", duration_s=10))
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["s"].attempts == 2
        names = sorted(pod.metadata.name for pod in api.list("Pod"))
        # Attempt 1 runs in pod --1 (it used to run in --0: the pod name
        # embedded the attempt counter before its increment).
        assert names == ["wf--s--1", "wf--s--2"]


class TestSamplerEventLeaks:
    def _recorder(self, interval_s=10.0):
        clock = SimClock()
        cluster = Cluster.uniform("t", 1, cpu_per_node=8.0, memory_per_node=32 * GB)
        return clock, UtilizationRecorder(clock, cluster, interval_s=interval_s)

    def test_stop_cancels_pending_sample(self):
        clock, recorder = self._recorder()
        recorder.start()
        clock.run(until=12)
        recorder.stop()
        clock.run(until=100)
        assert [s.time for s in recorder.samples] == [0.0, 10.0]
        assert clock.pending() == 0  # nothing armed in the heap

    def test_double_start_does_not_double_sample(self):
        clock, recorder = self._recorder()
        recorder.start()
        recorder.start()
        clock.run(until=20)
        times = [s.time for s in recorder.samples]
        assert times == [0.0, 10.0, 20.0]
        assert len(times) == len(set(times))

    def test_run_without_until_terminates_with_active_recorder(self):
        clock, recorder = self._recorder()
        recorder.start()
        fired = []
        clock.schedule(5.0, lambda: fired.append(clock.now))
        # A self-re-arming sampler used to spin run() to the 10M-event
        # backstop; daemon events must not keep the loop alive.
        end = clock.run()
        assert fired == [5.0]
        assert end == 5.0
        assert clock.pending_work() == 0
        assert [s.time for s in recorder.samples] == [0.0]

    def test_run_with_horizon_still_samples_to_it(self):
        clock, recorder = self._recorder()
        recorder.start()
        end = clock.run(until=35)
        assert end == 35.0
        assert [s.time for s in recorder.samples] == [0.0, 10.0, 20.0, 30.0]


class TestWhenClauseValidation:
    def _wf_with_when(self, expr) -> ExecutableWorkflow:
        wf = ExecutableWorkflow(name="cond")
        wf.add_step(
            ExecutableStep(name="flip", duration_s=1, result_options=("heads", "tails"))
        )
        wf.add_step(
            ExecutableStep(
                name="guarded", duration_s=1, dependencies=["flip"], when_expr=expr
            )
        )
        return wf

    def test_unparseable_when_rejected_at_submit(self, operator):
        with pytest.raises(SpecError, match="guarded"):
            operator.submit(self._wf_with_when("flip.result == heads"))

    def test_bad_clause_in_conjunction_rejected(self, operator):
        expr = "{{flip.result}} == heads && garbage"
        with pytest.raises(SpecError, match="garbage"):
            operator.submit(self._wf_with_when(expr))

    def test_valid_expression_still_runs(self, operator):
        record = operator.submit(
            self._wf_with_when("{{flip.result}} == heads")
        )
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED

    def test_validate_when_expr_accepts_all_operators(self):
        for op in ("==", "!=", ">", "<", ">=", "<="):
            validate_when_expr(f"{{{{s.result}}}} {op} 3")

    def test_validate_when_expr_names_the_step(self):
        with pytest.raises(SpecError, match="mystep"):
            validate_when_expr("nonsense", step_name="mystep")


class TestBackoffJitter:
    def test_deterministic_without_rng(self):
        policy = RetryPolicy()
        assert policy.backoff(1) == 10.0
        assert policy.backoff(2) == 20.0

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(jitter=0.1)
        delays = [policy.backoff(1, rng=random.Random(7)) for _ in range(3)]
        # Same fresh seed -> same delay: jitter is reproducible.
        assert delays[0] == delays[1] == delays[2]
        assert 9.0 <= delays[0] <= 11.0
        assert delays[0] != 10.0

    def test_jitter_spreads_consecutive_draws(self):
        policy = RetryPolicy(jitter=0.1)
        rng = random.Random(7)
        draws = {policy.backoff(1, rng=rng) for _ in range(10)}
        assert len(draws) == 10
        assert all(9.0 <= d <= 11.0 for d in draws)

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.backoff(1, rng=random.Random(7)) == 10.0

    def test_cap_applies_before_jitter(self):
        policy = RetryPolicy(backoff_cap=100.0, jitter=0.1)
        delay = policy.backoff(10, rng=random.Random(0))
        assert delay <= 110.0


class TestRestartRetryTimerRace:
    """A restart racing a pending retry timer must not double-drive.

    Attempt 1 fails retryably, the backoff timer is pending, and the
    operator restarts before it fires.  The resumed incarnation
    re-enqueues the step itself; if the stale timer also fired (the
    pre-``_is_live`` behaviour), the step would run a third attempt and
    the retry budget would be double-charged.
    """

    def _flaky(self) -> ExecutableWorkflow:
        wf = ExecutableWorkflow(name="racy")
        wf.add_step(ExecutableStep(name="bad", duration_s=30.0))
        return wf

    def _run(self, downtime: float) -> WorkflowOperator:
        clock = SimClock()
        cluster = Cluster.uniform("race", 1, cpu_per_node=4.0,
                                  memory_per_node=16 * GB)
        operator = WorkflowOperator(
            clock,
            cluster,
            retry_policy=RetryPolicy(limit=2, backoff_base=5.0),
            failure_injector=ScriptedInjector(failures=1),
        )
        operator.submit(self._flaky())
        # Attempt 1 fails at t=10; its retry timer is pending for t=15.
        clock.run(until=12.0)
        operator.simulate_restart(downtime=downtime)
        operator.run_to_completion()
        return operator

    @pytest.mark.parametrize("downtime", [1.0, 10.0])
    def test_no_double_charge_across_restart(self, downtime):
        # downtime=1: resume happens *before* the stale timer's due time.
        # downtime=10: the stale timer's due time passes mid-downtime.
        operator = self._run(downtime)
        record = operator.completed[0]
        assert record.phase == WorkflowPhase.SUCCEEDED
        step = record.steps["bad"]
        # Exactly two attempts: the failed one and the resumed retry —
        # a fired stale timer would have driven a third.
        assert step.attempts == 2
        # The failure happened in backoff, not in flight: no infra loss.
        assert step.infra_failures == 0


class TestRestartForwardedResults:
    """Forwarded results survive a mid-flight restart.

    A split-part submission receives upstream results via
    ``initial_results`` for steps that live in *another* part.  Those
    names have no step record, so the pre-fix snapshot dropped them on
    restart and the resumed ``when`` guard mis-evaluated to False.
    """

    def _gated(self) -> ExecutableWorkflow:
        wf = ExecutableWorkflow(name="part-2")
        wf.add_step(ExecutableStep(name="long", duration_s=50.0))
        wf.add_step(
            ExecutableStep(
                name="gated",
                duration_s=5.0,
                dependencies=["long"],
                when_expr="{{upstream.result}} == go",
            )
        )
        return wf

    def test_results_forwarded_across_split_boundary_survive_restart(self):
        clock = SimClock()
        cluster = Cluster.uniform("fwd", 1, cpu_per_node=4.0,
                                  memory_per_node=16 * GB)
        operator = WorkflowOperator(clock, cluster)
        record = operator.submit(
            self._gated(), initial_results={"upstream": "go"}
        )
        clock.run(until=20.0)  # "long" is mid-flight
        operator.simulate_restart(downtime=2.0)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        # The guard saw the forwarded result after the restart...
        assert record.steps["gated"].status.value == "Succeeded"
        # ...because it now lives on the record, not just the dead state.
        assert record.results["upstream"] == "go"
