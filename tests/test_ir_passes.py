"""Unit tests for the IR pass framework."""

import pytest

from repro.ir.graph import WorkflowIR
from repro.ir.nodes import ArtifactDecl, IRError, IRNode, OpKind
from repro.ir.passes import (
    DeadNodeEliminationPass,
    FinalizeArtifactsPass,
    PassManager,
    ResourceDefaultsPass,
    ValidatePass,
)
from repro.k8s.resources import ResourceQuantity


def _ir_with(*nodes: IRNode) -> WorkflowIR:
    ir = WorkflowIR(name="p")
    for node in nodes:
        ir.add_node(node)
    return ir


class TestResourceDefaults:
    def test_zero_resources_filled(self):
        ir = _ir_with(
            IRNode(name="a", op=OpKind.CONTAINER, image="i", resources=ResourceQuantity())
        )
        ResourceDefaultsPass(default_cpu=2.0, default_memory=512).run(ir)
        assert ir.nodes["a"].resources.cpu == 2.0
        assert ir.nodes["a"].resources.memory == 512

    def test_missing_memory_filled_cpu_kept(self):
        ir = _ir_with(
            IRNode(name="a", op=OpKind.CONTAINER, image="i",
                   resources=ResourceQuantity(cpu=8.0))
        )
        ResourceDefaultsPass(default_memory=1024).run(ir)
        assert ir.nodes["a"].resources.cpu == 8.0
        assert ir.nodes["a"].resources.memory == 1024


class TestDeadNodeElimination:
    def test_isolated_outputless_node_removed(self):
        ir = _ir_with(
            IRNode(name="live", op=OpKind.CONTAINER, image="i",
                   outputs=[ArtifactDecl(name="o")]),
            IRNode(name="dead", op=OpKind.CONTAINER, image="i"),
        )
        DeadNodeEliminationPass().run(ir)
        assert "dead" not in ir.nodes
        assert "live" in ir.nodes

    def test_connected_nodes_kept(self):
        ir = _ir_with(
            IRNode(name="a", op=OpKind.CONTAINER, image="i"),
            IRNode(name="b", op=OpKind.CONTAINER, image="i"),
        )
        ir.add_edge("a", "b")
        DeadNodeEliminationPass().run(ir)
        assert set(ir.nodes) == {"a", "b"}

    def test_single_node_workflow_survives(self):
        ir = _ir_with(IRNode(name="only", op=OpKind.CONTAINER, image="i"))
        DeadNodeEliminationPass().run(ir)
        assert "only" in ir.nodes


class TestPassManager:
    def test_default_pipeline_runs_and_records(self):
        ir = _ir_with(
            IRNode(name="a", op=OpKind.CONTAINER, image="i",
                   outputs=[ArtifactDecl(name="o")])
        )
        manager = PassManager.default()
        out = manager.run(ir)
        assert out.nodes["a"].outputs[0].uid == "p/a/o"
        assert manager.history[0] == "validate"
        assert manager.history[-1] == "validate"

    def test_validate_pass_raises_on_cycle(self):
        ir = _ir_with(
            IRNode(name="a", op=OpKind.CONTAINER, image="i"),
            IRNode(name="b", op=OpKind.CONTAINER, image="i"),
        )
        ir.add_edge("a", "b")
        ir.add_edge("b", "a")
        with pytest.raises(IRError):
            ValidatePass().run(ir)

    def test_add_chaining(self):
        manager = PassManager().add(ValidatePass()).add(FinalizeArtifactsPass())
        assert len(manager.passes) == 2
