"""Incremental scorer, CacheDecision policy API, and heap eviction tests."""

import warnings

import pytest

from repro.caching.artifact_store import ArtifactStore
from repro.caching.manager import CacheManager
from repro.caching.policy import (
    CacheDecision,
    CachePolicy,
    CoulerCachePolicy,
)
from repro.caching.score import (
    ArtifactScorer,
    IncrementalArtifactScorer,
    ScoreWeights,
    WorkflowGraphIndex,
)
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.k8s.resources import ResourceQuantity
from repro.obs.metrics import MetricsRegistry

GB = 2**30


def _artifact(uid: str, size: int = 10) -> ArtifactSpec:
    return ArtifactSpec(uid=uid, size_bytes=size)


def _consumer_workflow(consumer_counts: dict) -> ExecutableWorkflow:
    """make-<uid> steps plus the given number of use-<uid> readers."""
    wf = ExecutableWorkflow(name="g")
    artifacts = {uid: _artifact(uid) for uid in consumer_counts}
    for uid, artifact in artifacts.items():
        wf.add_step(
            ExecutableStep(name=f"make-{uid}", duration_s=100, outputs=[artifact])
        )
    for uid, count in consumer_counts.items():
        for index in range(count):
            wf.add_step(
                ExecutableStep(
                    name=f"use-{uid}-{index}",
                    duration_s=10,
                    dependencies=[f"make-{uid}"],
                    inputs=[artifacts[uid]],
                )
            )
    return wf


def _pipeline_workflow(name: str = "w") -> ExecutableWorkflow:
    """load -> pre -> {t0, t1, t2} ; each t consumes pre's output."""
    wf = ExecutableWorkflow(name=name)
    loaded = ArtifactSpec(uid=f"{name}/load/out", size_bytes=2 * GB)
    pre = ArtifactSpec(uid=f"{name}/pre/out", size_bytes=GB)
    wf.add_step(
        ExecutableStep(
            name="load",
            duration_s=100,
            requests=ResourceQuantity(cpu=2),
            outputs=[loaded],
        )
    )
    wf.add_step(
        ExecutableStep(
            name="pre",
            duration_s=200,
            requests=ResourceQuantity(cpu=4),
            dependencies=["load"],
            inputs=[loaded],
            outputs=[pre],
        )
    )
    for index in range(3):
        ckpt = ArtifactSpec(uid=f"{name}/t{index}/ckpt", size_bytes=GB)
        wf.add_step(
            ExecutableStep(
                name=f"t{index}",
                duration_s=500,
                requests=ResourceQuantity(cpu=4),
                dependencies=["pre"],
                inputs=[pre],
                outputs=[ckpt],
            )
        )
    return wf


def _bound_pair(workflow, capacity=None):
    """(store, incremental scorer, naive scorer) over one shared index."""
    index = WorkflowGraphIndex()
    index.register(workflow)
    store = ArtifactStore(capacity_bytes=capacity)
    incremental = IncrementalArtifactScorer(index=index, metrics=MetricsRegistry())
    incremental.bind_store(store)
    naive = ArtifactScorer(index=index)
    return store, incremental, naive


class TestRegisterIdempotent:
    def test_reregistration_does_not_duplicate_consumers(self):
        index = WorkflowGraphIndex()
        wf = _pipeline_workflow()
        index.register(wf)
        before = {uid: list(nodes) for uid, nodes in index.consumers.items()}
        index.register(wf)  # operator restart / split+stitch resubmit
        assert index.consumers == before
        assert all(
            len(nodes) == len(set(nodes)) for nodes in index.node_outputs.values()
        )

    def test_reregistration_preserves_reuse_value(self):
        index = WorkflowGraphIndex()
        wf = _pipeline_workflow()
        index.register(wf)
        scorer = ArtifactScorer(index=index)
        before = scorer.reuse_value("w/pre/out")
        index.register(wf)
        assert scorer.reuse_value("w/pre/out") == before

    def test_reregistration_emits_no_change_event(self):
        index = WorkflowGraphIndex()
        wf = _pipeline_workflow()
        index.register(wf)
        events = []

        class Listener:
            def on_graph_changed(self, nodes, artifacts):
                events.append((set(nodes), set(artifacts)))

        index.add_listener(Listener())
        index.register(wf)
        assert events == []


class TestIncrementalEquivalence:
    def test_scores_match_naive_through_lifecycle(self):
        wf = _pipeline_workflow()
        store, incremental, naive = _bound_pair(wf)

        def assert_equal():
            for uid in sorted(incremental.index.artifacts):
                assert incremental.importance(uid, store.contains) == naive.importance(
                    uid, store.contains
                ), uid

        assert_equal()
        store.put("w/load/out", 2 * GB)  # cache-state flip truncates G_p
        assert_equal()
        incremental.index.mark_done("w/t0")  # done-transition drops F
        assert_equal()
        store.evict("w/load/out")
        assert_equal()
        incremental.index.register(_pipeline_workflow("v"))  # graph change
        assert_equal()

    def test_memo_hits_and_invalidation_counters(self):
        wf = _pipeline_workflow()
        store, incremental, _ = _bound_pair(wf)
        hits = incremental.metrics.counter("cache_score_memo_hits_total")
        incremental.importance("w/pre/out", store.contains)
        base = hits.total()
        incremental.importance("w/pre/out", store.contains)
        assert hits.total() > base  # second call served from the memo
        invalidations = incremental.metrics.counter(
            "cache_score_invalidations_total"
        )
        before = invalidations.total()
        incremental.index.mark_done("w/t0")
        assert invalidations.total() > before

    def test_untracked_predicate_falls_back_to_from_scratch(self):
        wf = _pipeline_workflow()
        store, incremental, naive = _bound_pair(wf)
        cached_upstream = lambda uid: uid == "w/load/out"  # noqa: E731
        assert incremental.reconstruction_cost(
            "w/t0/ckpt", cached_upstream
        ) == naive.reconstruction_cost("w/t0/ckpt", cached_upstream)

    @pytest.mark.parametrize(
        "weights",
        [
            ScoreWeights(use_reconstruction=False),
            ScoreWeights(use_reuse=False),
            ScoreWeights(use_cache_cost=False),
            ScoreWeights(alpha=0.1, beta=4.0, horizon=1),
        ],
    )
    def test_ablation_switches_under_incremental_path(self, weights):
        wf = _pipeline_workflow()
        index = WorkflowGraphIndex()
        index.register(wf)
        store = ArtifactStore(capacity_bytes=None)
        incremental = IncrementalArtifactScorer(index=index, weights=weights)
        incremental.bind_store(store)
        naive = ArtifactScorer(index=index, weights=weights)
        for uid in sorted(index.artifacts):
            assert incremental.importance(uid, store.contains) == naive.importance(
                uid, store.contains
            )


class TestHeapEviction:
    def _decide(self, policy, artifact, store, scorer, now=0.0):
        decision = CacheDecision(
            artifact=artifact, store=store, scorer=scorer, now=now
        )
        admitted = policy.decide(decision)
        return admitted, decision

    def test_equal_scores_evict_in_stable_uid_order(self):
        # a1/a2/a0 are structurally identical (equal scores); "hot" has
        # readers.  Ties must break by ascending uid, matching the
        # from-scratch `(score, uid)` min.
        wf = _consumer_workflow({"a1": 0, "a2": 0, "a0": 0, "hot": 3})
        for scorer_kind in ("heap", "rescan"):
            index = WorkflowGraphIndex()
            index.register(wf)
            store = ArtifactStore(capacity_bytes=30)
            if scorer_kind == "heap":
                scorer = IncrementalArtifactScorer(index=index)
                scorer.bind_store(store)
            else:
                scorer = ArtifactScorer(index=index)
            policy = CoulerCachePolicy()
            for uid in ("a2", "a1", "a0"):  # insertion order != uid order
                self._decide(policy, _artifact(uid), store, scorer)
            admitted, decision = self._decide(
                policy, _artifact("hot", size=25), store, scorer
            )
            assert admitted, scorer_kind
            assert decision.evicted == ["a0", "a1", "a2"], scorer_kind

    def test_newcomer_rescored_after_each_eviction(self):
        # The paper recomputes every score after an eviction — including
        # the newcomer's, whose G_p truncation just changed.  Pin the
        # per-iteration recompute by counting importance() calls for the
        # newcomer during a multi-eviction admission.
        wf = _consumer_workflow({"a1": 0, "a2": 0, "hot": 3})

        class CountingScorer(ArtifactScorer):
            def __init__(self, index):
                super().__init__(index=index)
                self.calls = {}

            def importance(self, uid, is_cached=None):
                self.calls[uid] = self.calls.get(uid, 0) + 1
                return super().importance(uid, is_cached)

        index = WorkflowGraphIndex()
        index.register(wf)
        store = ArtifactStore(capacity_bytes=20)
        scorer = CountingScorer(index)
        policy = CoulerCachePolicy()
        for uid in ("a1", "a2"):
            self._decide(policy, _artifact(uid), store, scorer)
        admitted, decision = self._decide(
            policy, _artifact("hot", size=20), store, scorer
        )
        assert admitted and decision.evicted == ["a1", "a2"]
        assert scorer.calls["hot"] >= 2  # once per eviction iteration

    def test_heap_matches_rescan_decisions_under_churn(self):
        wf = _pipeline_workflow()
        runs = {}
        for scorer_mode in ("naive", "incremental"):
            manager = CacheManager(
                policy="couler",
                capacity_bytes=2 * GB + GB // 2,
                scorer=scorer_mode,
                record_decisions=True,
            )
            manager.register_workflow(wf)
            now = 0.0
            for step in wf.steps.values():
                now += 1.0
                for artifact in step.inputs:
                    manager.fetch(artifact, now=now)
                for artifact in step.outputs:
                    manager.on_artifact_produced(artifact, now=now)
                manager.on_step_finished(f"{wf.name}/{step.name}")
            runs[scorer_mode] = (
                manager.decisions,
                sorted(manager.store.uids()),
            )
        assert runs["naive"] == runs["incremental"]


class TestCacheDecisionAPI:
    def test_custom_policy_receives_decision_context(self):
        seen = []

        class Sampler(CachePolicy):
            name = "sampler"

            def decide(self, decision):
                seen.append(decision)
                decision.store.put(
                    decision.artifact.uid,
                    decision.artifact.size_bytes,
                    decision.artifact.kind,
                    decision.now,
                )
                decision.admitted = True
                return True

        manager = CacheManager(policy=Sampler(), capacity_bytes=100)
        manager.on_artifact_produced(_artifact("a"), now=3.0)
        assert manager.contains("a")
        assert len(seen) == 1 and seen[0].now == 3.0
        assert seen[0].metrics is manager.metrics

    def test_legacy_admit_policy_bridged_with_one_warning(self):
        class OldStyle(CachePolicy):
            name = "old"

            def admit(self, artifact, store, scorer, now=0.0):
                store.put(artifact.uid, artifact.size_bytes, artifact.kind, now)
                return True

        CachePolicy._legacy_warned.discard(OldStyle)
        store = ArtifactStore(capacity_bytes=100)
        policy = OldStyle()
        with pytest.warns(DeprecationWarning, match="legacy positional"):
            assert policy.decide(
                CacheDecision(artifact=_artifact("a"), store=store)
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call must not warn
            assert policy.decide(
                CacheDecision(artifact=_artifact("b"), store=store)
            )
        assert store.contains("a") and store.contains("b")

    def test_new_style_policy_callable_through_legacy_admit(self):
        scorer = ArtifactScorer(index=WorkflowGraphIndex())
        store = ArtifactStore(capacity_bytes=100)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert CoulerCachePolicy().admit(_artifact("a"), store, scorer, 0.0)
        assert store.contains("a")

    def test_abstract_base_rejects_unimplemented(self):
        with pytest.raises(NotImplementedError):
            CachePolicy().decide(
                CacheDecision(
                    artifact=_artifact("a"), store=ArtifactStore(capacity_bytes=10)
                )
            )

    def test_on_external_read_defaults_to_decide(self):
        class Refuser(CachePolicy):
            name = "refuser"
            read_offers = 0

            def decide(self, decision):
                type(self).read_offers += 1
                decision.admitted = False
                return False

        manager = CacheManager(policy=Refuser(), capacity_bytes=100)
        _, hit = manager.fetch(_artifact("a"), now=0.0)
        assert not hit and Refuser.read_offers == 1

    def test_on_evict_hook_fires_for_policy(self):
        class Watcher(CachePolicy):
            name = "watcher"
            evicted = []

            def decide(self, decision):
                decision.admitted = False
                return False

            def on_evict(self, uid):
                type(self).evicted.append(uid)

        manager = CacheManager(policy=Watcher(), capacity_bytes=100)
        manager.store.put("x", 10)
        manager.store.evict("x")
        assert Watcher.evicted == ["x"]

    def test_decision_log_records_evictions_and_scores(self):
        wf = _consumer_workflow({"a1": 0, "hot": 3})
        manager = CacheManager(
            policy="couler", capacity_bytes=10, record_decisions=True
        )
        manager.register_workflow(wf)
        manager.on_artifact_produced(_artifact("a1"), now=0.0)
        manager.on_artifact_produced(_artifact("hot"), now=1.0)
        assert [d["uid"] for d in manager.decisions] == ["a1", "hot"]
        last = manager.decisions[-1]
        assert last["admitted"] and last["evicted"] == ["a1"]
        assert last["score"] is not None


class TestManagerScorerModes:
    def test_default_is_incremental_and_bound(self):
        manager = CacheManager(capacity_bytes=100)
        assert isinstance(manager.scorer, IncrementalArtifactScorer)
        assert manager.scorer.bound_store is manager.store

    def test_naive_mode_and_unknown_mode(self):
        manager = CacheManager(capacity_bytes=100, scorer="naive")
        assert type(manager.scorer) is ArtifactScorer
        with pytest.raises(ValueError):
            CacheManager(capacity_bytes=100, scorer="telepathic")

    def test_keyword_only_construction(self):
        with pytest.raises(TypeError):
            CacheManager("couler")  # noqa: B026 - positional use must fail

    def test_rebinding_scorer_to_second_store_rejected(self):
        scorer = IncrementalArtifactScorer(index=WorkflowGraphIndex())
        scorer.bind_store(ArtifactStore(capacity_bytes=10))
        with pytest.raises(ValueError):
            scorer.bind_store(ArtifactStore(capacity_bytes=10))
