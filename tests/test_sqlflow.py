"""Tests for the SQLFlow frontend (paper Appendix B.E)."""

import pytest

from repro.sqlflow import (
    PredictStatement,
    SQLFlowSyntaxError,
    TrainStatement,
    parse,
    sql_to_ir,
    tokenize,
)

TRAIN_SQL = """SELECT *
FROM iris.train
TO TRAIN DNNClassifier
WITH model.n_classes = 3, model.hidden_units = [10]
COLUMN sepal_len, sepal_width, petal_length
LABEL class
INTO sqlflow_models.my_dnn_model;"""

PREDICT_SQL = """SELECT *
FROM iris.test
TO PREDICT iris.predict.class
USING sqlflow_models.my_dnn_model;"""


class TestTokenizer:
    def test_tokens(self):
        tokens = tokenize("SELECT a, b FROM t")
        assert ("ident", "SELECT") in tokens
        assert ("punct", ",") in tokens

    def test_bad_character(self):
        with pytest.raises(SQLFlowSyntaxError):
            tokenize("SELECT ~ FROM t")


class TestParseTrain:
    def test_paper_example(self):
        statement = parse(TRAIN_SQL)
        assert isinstance(statement, TrainStatement)
        assert statement.table == "iris.train"
        assert statement.estimator == "DNNClassifier"
        assert statement.attributes == {
            "model.n_classes": 3,
            "model.hidden_units": [10],
        }
        assert statement.feature_columns == [
            "sepal_len", "sepal_width", "petal_length"
        ]
        assert statement.label == "class"
        assert statement.into == "sqlflow_models.my_dnn_model"

    def test_minimal_train(self):
        statement = parse("SELECT x FROM t TO TRAIN XGBoost")
        assert statement.estimator == "XGBoost"
        assert statement.attributes == {}
        assert statement.into is None

    def test_string_and_float_attributes(self):
        statement = parse(
            "SELECT * FROM t TO TRAIN M WITH lr = 0.1, objective = 'reg'"
        )
        assert statement.attributes == {"lr": 0.1, "objective": "reg"}


class TestParsePredict:
    def test_paper_example(self):
        statement = parse(PREDICT_SQL)
        assert isinstance(statement, PredictStatement)
        assert statement.table == "iris.test"
        assert statement.result_table == "iris.predict.class"
        assert statement.model == "sqlflow_models.my_dnn_model"


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(SQLFlowSyntaxError):
            parse("FROM t TO TRAIN M")

    def test_missing_action(self):
        with pytest.raises(SQLFlowSyntaxError):
            parse("SELECT * FROM t TO DEPLOY M")

    def test_truncated_statement(self):
        with pytest.raises(SQLFlowSyntaxError):
            parse("SELECT * FROM t TO")

    def test_bad_with_clause(self):
        with pytest.raises(SQLFlowSyntaxError):
            parse("SELECT * FROM t TO TRAIN M WITH = 3")


class TestTranslation:
    def test_train_workflow_shape(self):
        ir = sql_to_ir(TRAIN_SQL)
        assert set(ir.nodes) == {
            "extract-iris-train", "train-dnnclassifier", "save-model"
        }
        assert ("extract-iris-train", "train-dnnclassifier") in ir.edges
        assert ("train-dnnclassifier", "save-model") in ir.edges
        train = ir.nodes["train-dnnclassifier"]
        assert any("model.n_classes=3" in a for a in train.args)

    def test_predict_workflow_shape(self):
        ir = sql_to_ir(PREDICT_SQL)
        assert set(ir.nodes) == {"extract-iris-test", "predict", "write-results"}

    def test_train_without_into_skips_save_step(self):
        ir = sql_to_ir("SELECT x FROM t TO TRAIN XGBoost")
        assert "save-model" not in ir.nodes

    def test_translated_workflow_executes(self):
        from repro.core.submitter import default_environment
        from repro.engine.status import WorkflowPhase

        operator = default_environment()
        record = operator.submit(sql_to_ir(TRAIN_SQL).to_executable())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
