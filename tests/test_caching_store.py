"""Unit tests for the capacity-bounded artifact store."""

import pytest

from repro.caching.artifact_store import (
    ArtifactStore,
    ArtifactTooLargeError,
    CacheError,
    InsufficientSpaceError,
)


class TestCapacity:
    def test_put_within_capacity(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 60)
        assert store.used_bytes == 60
        assert store.free_bytes == 40

    def test_put_over_capacity_raises(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 60)
        with pytest.raises(InsufficientSpaceError):
            store.put("b", 50)

    def test_artifact_bigger_than_store(self):
        store = ArtifactStore(capacity_bytes=100)
        with pytest.raises(ArtifactTooLargeError):
            store.put("huge", 101)
        assert store.can_ever_fit(100)
        assert not store.can_ever_fit(101)

    def test_unbounded_store(self):
        store = ArtifactStore(capacity_bytes=None)
        store.put("a", 10**12)
        assert store.free_bytes == float("inf")

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            ArtifactStore(capacity_bytes=-1)


class TestAccounting:
    def test_eviction_frees_space_and_counts(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 60)
        store.evict("a")
        assert store.used_bytes == 0
        assert store.stats.evictions == 1
        assert store.stats.bytes_evicted == 60

    def test_evict_missing_raises(self):
        with pytest.raises(CacheError):
            ArtifactStore(capacity_bytes=10).evict("nope")

    def test_peak_bytes_tracks_high_water_mark(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 80)
        store.evict("a")
        store.put("b", 20)
        assert store.peak_bytes == 80

    def test_hit_ratio(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 10)
        store.record_hit("a", now=1.0)
        store.record_hit("a", now=2.0)
        store.record_miss()
        assert store.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_on_uncached_raises(self):
        with pytest.raises(CacheError):
            ArtifactStore(capacity_bytes=10).record_hit("ghost", now=0.0)

    def test_duplicate_put_updates_access(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 10, now=1.0)
        entry = store.put("a", 10, now=5.0)
        assert store.used_bytes == 10  # no double-counting
        assert entry.last_access == 5.0

    def test_insert_seq_monotonic(self):
        store = ArtifactStore(capacity_bytes=100)
        first = store.put("a", 1)
        second = store.put("b", 1)
        assert second.insert_seq > first.insert_seq
