"""Tests for the NL -> workflow pipeline (Algorithm 1) and pass@k math."""

import pytest

from repro.llm.simulated import GPT4_PROFILE, SimulatedLLM
from repro.nl2wf.corpus import build_corpus
from repro.nl2wf.executor import CodeExecutionError, execute_couler_code
from repro.nl2wf.passk import pass_at_k
from repro.nl2wf.pipeline import NLToWorkflow
from repro.nl2wf.validate import compare_ir


class TestCorpus:
    def test_twenty_six_tasks(self):
        tasks = build_corpus()
        assert len(tasks) == 26
        assert len({t.name for t in tasks}) == 26

    def test_every_canonical_program_self_validates(self):
        for task in build_corpus():
            ir = execute_couler_code(task.canonical_program(), workflow_name=task.name)
            report = compare_ir(task.expected_ir(), ir)
            assert report.ok, (task.name, report.problems)

    def test_descriptions_mention_their_modules(self):
        task = build_corpus()[0]
        assert task.description
        assert len(task.modules) >= 3


class TestExecutor:
    def test_bad_code_raises(self):
        with pytest.raises(CodeExecutionError):
            execute_couler_code("couler.run_pod(image='x')")
        with pytest.raises(CodeExecutionError):
            execute_couler_code("def broken(:\n  pass")

    def test_context_isolated_between_runs(self):
        execute_couler_code("couler.run_container(image='a', step_name='s1')", "w1")
        ir = execute_couler_code("couler.run_container(image='b', step_name='s2')", "w2")
        assert set(ir.nodes) == {"s2"}


class TestValidate:
    def test_identical_irs_match(self):
        task = build_corpus()[0]
        assert compare_ir(task.expected_ir(), task.expected_ir()).ok

    def test_missing_step_reported(self):
        task = build_corpus()[0]
        actual = task.expected_ir()
        dropped = actual.topological_order()[-1]
        del actual.nodes[dropped]
        actual.edges = {(p, c) for p, c in actual.edges if dropped not in (p, c)}
        report = compare_ir(task.expected_ir(), actual)
        assert not report.ok
        assert any("missing steps" in p for p in report.problems)

    def test_wrong_image_reported(self):
        task = build_corpus()[0]
        actual = task.expected_ir()
        first = next(iter(actual.nodes.values()))
        first.image = "evil:latest"
        report = compare_ir(task.expected_ir(), actual)
        assert any("image" in p for p in report.problems)


class TestPipeline:
    def test_easy_task_converts_end_to_end(self):
        tasks = build_corpus()
        llm = SimulatedLLM(GPT4_PROFILE, seed=1)
        pipeline = NLToWorkflow(llm)
        # Pick a task the model can definitely solve (hardness < cap).
        easy = min(tasks, key=lambda t: llm.begin_task(t.description))
        result = pipeline.convert(easy)
        assert result.passed, (result.error, result.report)
        assert result.ir is not None
        assert result.modules

    def test_user_feedback_repairs_failures(self):
        """Step 4: feedback rounds strictly improve the pass rate."""
        tasks = build_corpus()[:12]
        wins_without, wins_with = 0, 0
        for index, task in enumerate(tasks):
            base = NLToWorkflow(SimulatedLLM(GPT4_PROFILE, seed=500 + index))
            wins_without += base.convert(task).passed
            again = NLToWorkflow(SimulatedLLM(GPT4_PROFILE, seed=500 + index))
            wins_with += again.convert(task, user_feedback_rounds=3).passed
        assert wins_with >= wins_without

    def test_baseline_score_validation(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=0)
        with pytest.raises(ValueError):
            NLToWorkflow(llm, baseline_score=1.5)

    def test_single_shot_baseline_runs(self):
        llm = SimulatedLLM(GPT4_PROFILE, seed=2)
        result = NLToWorkflow(llm).convert_single_shot(build_corpus()[0])
        assert result.code
        assert isinstance(result.passed, bool)


class TestPassAtK:
    def test_boundary_values(self):
        assert pass_at_k(5, 0, 1) == 0.0
        assert pass_at_k(5, 5, 1) == 1.0
        assert pass_at_k(5, 3, 5) == 1.0  # n - c < k

    def test_unbiased_estimator_formula(self):
        # pass@1 with c of n = c/n.
        assert pass_at_k(10, 3, 1) == pytest.approx(0.3)
        # pass@2 with 1 of 3: 1 - C(2,2)/C(3,2) = 2/3.
        assert pass_at_k(3, 1, 2) == pytest.approx(2 / 3)

    def test_monotone_in_k(self):
        values = [pass_at_k(10, 4, k) for k in (1, 2, 5, 10)]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 1, 6)
