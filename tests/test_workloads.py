"""Tests for the workload generators (traces, scenarios, datasets)."""

import pytest

from repro.workloads import (
    SCENARIOS,
    TraceGenerator,
    ads_tables,
    all_datasets,
    big_files_dataset,
    histogram,
    mean,
    small_files_dataset,
)

GB = 2**30


class TestTraces:
    def test_daily_counts_match_paper_mean(self):
        counts = [d.workflow_count for d in TraceGenerator(seed=0).daily_counts()]
        assert len(counts) == 365
        assert 20_000 <= mean(counts) <= 24_000

    def test_workflow_sample_moments(self):
        records = TraceGenerator(seed=0).sample_workflows(20_000)
        assert 0.85 <= mean([r.lifespan_hours for r in records]) <= 1.15
        assert 32 <= mean([r.cpu_cores for r in records]) <= 40

    def test_deterministic_for_seed(self):
        a = TraceGenerator(seed=5).daily_counts()
        b = TraceGenerator(seed=5).daily_counts()
        assert [d.workflow_count for d in a] == [d.workflow_count for d in b]

    def test_weekend_dip(self):
        daily = TraceGenerator(seed=0).daily_counts()
        weekday = mean([d.workflow_count for d in daily if d.day % 7 < 5])
        weekend = mean([d.workflow_count for d in daily if d.day % 7 >= 5])
        assert weekend < weekday


class TestHistogram:
    def test_bins_partition_values(self):
        bins = histogram([1, 2, 5, 10, 99], [0, 3, 6])
        assert dict(bins) == {"[0, 3)": 2, "[3, 6)": 1, ">= 6": 2}


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_pod_and_model_counts_match_paper(self, name):
        spec = SCENARIOS[name]
        ir = spec.build(0)
        ir.validate()
        assert len(ir.nodes) == spec.num_pods
        trainers = [n for n in ir.nodes if "train" in n or "finetune" in n]
        assert len(trainers) == spec.num_models

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_reruns_reference_stable_data_uids(self, name):
        spec = SCENARIOS[name]
        first = spec.build(0)
        rerun = spec.build(1)
        rerun.validate()
        first_outputs = {
            a.uid for node in first.nodes.values() for a in node.outputs
        }
        rerun_inputs = {
            a.uid for node in rerun.nodes.values() for a in node.inputs
        }
        # Every data artifact a rerun consumes was produced in run 0.
        stable_inputs = {u for u in rerun_inputs if not u.startswith(rerun.name)}
        assert stable_inputs
        assert stable_inputs <= first_outputs

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_rerun_checkpoints_are_fresh(self, name):
        spec = SCENARIOS[name]
        it1 = spec.build(1)
        it2 = spec.build(2)
        ckpts1 = {a.uid for n in it1.nodes.values() for a in n.outputs}
        ckpts2 = {a.uid for n in it2.nodes.values() for a in n.outputs}
        assert not ckpts1 & ckpts2


class TestDatasets:
    def test_paper_scale(self):
        small = small_files_dataset()
        assert small.num_files > 10_000
        assert small.total_bytes > 10 * GB
        big = big_files_dataset()
        assert big.num_files >= 10
        assert big.total_bytes / big.num_files > GB
        for table in ads_tables():
            assert table.total_bytes / table.num_files >= 0.8 * GB

    def test_all_datasets_keys(self):
        assert set(all_datasets()) == {"ads-a", "ads-b", "small-files", "big-files"}
