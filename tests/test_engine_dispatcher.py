"""Tests for the multi-cluster dispatcher (Appendix B.A end-to-end)."""

import pytest

from repro.engine.dispatcher import MultiClusterDispatcher
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _wf(name: str, cpu: float = 8.0, gpu: int = 0, duration: float = 50.0):
    wf = ExecutableWorkflow(name=name)
    wf.add_step(
        ExecutableStep(
            name="work",
            duration_s=duration,
            requests=ResourceQuantity(cpu=cpu, memory=4 * GB, gpu=gpu),
        )
    )
    return wf


def _clusters():
    return [
        Cluster.uniform("gpu", 2, cpu_per_node=32, memory_per_node=128 * GB, gpu_per_node=4),
        Cluster.uniform("cpu-a", 2, cpu_per_node=32, memory_per_node=128 * GB),
        Cluster.uniform("cpu-b", 2, cpu_per_node=32, memory_per_node=128 * GB),
    ]


class TestDispatch:
    def test_requires_clusters(self):
        with pytest.raises(ValueError):
            MultiClusterDispatcher(clusters=[])

    def test_all_workflows_complete(self):
        dispatcher = MultiClusterDispatcher(clusters=_clusters())
        for index in range(6):
            dispatcher.enqueue(_wf(f"wf{index}"))
        results = dispatcher.dispatch_all()
        assert len(results) == 6
        assert all(r.record.phase == WorkflowPhase.SUCCEEDED for r in results)

    def test_gpu_workflows_only_on_gpu_cluster(self):
        dispatcher = MultiClusterDispatcher(clusters=_clusters())
        dispatcher.enqueue(_wf("trainer", gpu=2))
        dispatcher.enqueue(_wf("batch"))
        results = {r.workflow_name: r.cluster_name for r in dispatcher.dispatch_all()}
        assert results["trainer"] == "gpu"

    def test_load_spreads_across_cpu_clusters(self):
        dispatcher = MultiClusterDispatcher(clusters=_clusters())
        for index in range(12):
            dispatcher.enqueue(_wf(f"wf{index}", cpu=16.0))
        dispatcher.dispatch_all()
        placements = dispatcher.placements()
        # No single cluster hoards the fleet: the weighted placement
        # keeps per-cluster load within a factor of the others.
        assert max(placements.values()) <= 3 * max(1, min(placements.values()))
        assert sum(placements.values()) == 12

    def test_priority_served_first(self):
        dispatcher = MultiClusterDispatcher(clusters=_clusters())
        dispatcher.enqueue(_wf("low"), priority=1)
        dispatcher.enqueue(_wf("high"), priority=9)
        results = dispatcher.dispatch_all()
        assert results[0].workflow_name == "high"

    def test_quota_released_after_completion(self):
        from repro.engine.queue import UserQuota

        quotas = {
            "alice": UserQuota(user="alice", cpu_limit=16, memory_limit=64 * GB)
        }
        dispatcher = MultiClusterDispatcher(clusters=_clusters(), quotas=quotas)
        dispatcher.enqueue(_wf("first", cpu=8.0), user="alice")
        dispatcher.dispatch_all()
        assert dispatcher.queue.quotas["alice"].cpu_used == 0.0
        # Quota is free again, so another submission fits.
        dispatcher.enqueue(_wf("second", cpu=8.0), user="alice")
        results = dispatcher.dispatch_all()
        assert results[0].record.phase == WorkflowPhase.SUCCEEDED
