"""Tests for critical-path extraction and makespan breakdown."""

import pytest

from repro.caching.manager import CacheManager
from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ArtifactSpec,
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
)
from repro.engine.status import WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.obs.critical_path import CriticalPathError, critical_path
from repro.obs.trace import Tracer

GB = 2**30


def _roomy_cluster() -> Cluster:
    return Cluster.uniform("t", 4, cpu_per_node=8.0, memory_per_node=32 * GB)


def _diamond(name="diamond") -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=name)
    wf.add_step(ExecutableStep(name="a", duration_s=10))
    wf.add_step(ExecutableStep(name="b", duration_s=10, dependencies=["a"]))
    wf.add_step(ExecutableStep(name="c", duration_s=20, dependencies=["a"]))
    wf.add_step(ExecutableStep(name="d", duration_s=10, dependencies=["b", "c"]))
    return wf


def _trace_run(workflow, **operator_kwargs) -> Tracer:
    tracer = Tracer()
    clock = SimClock()
    cluster = operator_kwargs.pop("cluster", None) or _roomy_cluster()
    operator = WorkflowOperator(clock, cluster, tracer=tracer, **operator_kwargs)
    record = operator.submit(workflow)
    operator.run_to_completion()
    return tracer, record


class TestDiamond:
    def test_path_follows_latest_finishing_dependency(self):
        tracer, record = _trace_run(_diamond())
        result = critical_path(tracer, "diamond")
        assert record.phase == WorkflowPhase.SUCCEEDED
        # c (20s) gates d, so the chain is a -> c -> d, never through b.
        assert result.path == ["a", "c", "d"]
        assert result.makespan == pytest.approx(40.0)

    def test_breakdown_sums_to_makespan(self):
        tracer, _record = _trace_run(_diamond())
        result = critical_path(tracer, "diamond")
        assert result.total == pytest.approx(result.makespan)
        assert result.breakdown["compute"] == pytest.approx(40.0)
        assert result.breakdown["queue"] == pytest.approx(0.0)
        assert result.breakdown["fetch"] == pytest.approx(0.0)
        assert result.breakdown["backoff"] == pytest.approx(0.0)
        assert result.breakdown["other"] == pytest.approx(0.0)

    def test_report_renders_every_category(self):
        tracer, _record = _trace_run(_diamond())
        text = critical_path(tracer, "diamond").report()
        assert "a -> c -> d" in text
        for category in ("queue", "fetch", "compute", "backoff", "other"):
            assert category in text


class TestPhaseAttribution:
    def test_queue_wait_shows_up_under_contention(self):
        wf = ExecutableWorkflow(name="serial")
        for index in range(3):
            wf.add_step(
                ExecutableStep(
                    name=f"s{index}",
                    duration_s=10,
                    requests=ResourceQuantity(cpu=1.0),
                )
            )
        tiny = Cluster.uniform("tiny", 1, cpu_per_node=1.0, memory_per_node=4 * GB)
        tracer, _record = _trace_run(wf, cluster=tiny)
        result = critical_path(tracer, "serial")
        assert result.makespan == pytest.approx(30.0)
        assert result.breakdown["queue"] > 0.0
        assert result.total == pytest.approx(result.makespan)

    def test_fetch_attribution_with_cache_manager(self):
        wf = ExecutableWorkflow(name="fetching")
        wf.add_step(
            ExecutableStep(
                name="reader",
                duration_s=10,
                inputs=[ArtifactSpec(uid="raw/data", size_bytes=1 * GB)],
            )
        )
        manager = CacheManager(policy="no", capacity_bytes=None)
        tracer, _record = _trace_run(wf, cache_manager=manager)
        result = critical_path(tracer, "fetching")
        assert result.breakdown["fetch"] > 0.0
        assert result.total == pytest.approx(result.makespan)

    def test_backoff_attribution_under_retries(self):
        wf = ExecutableWorkflow(name="flaky")
        wf.add_step(
            ExecutableStep(
                name="bad",
                duration_s=10,
                failure=FailureProfile(rate=0.7, pattern="PodCrashErr"),
            )
        )
        tracer, record = _trace_run(
            wf,
            retry_policy=RetryPolicy(limit=10),
            failure_injector=FailureInjector(seed=3, retryable_fraction=1.0),
        )
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["bad"].attempts > 1, "seed must produce a retry"
        result = critical_path(tracer, "flaky")
        assert result.breakdown["backoff"] > 0.0
        assert result.total == pytest.approx(result.makespan)


class TestEdgeCases:
    def test_missing_workflow_raises(self):
        with pytest.raises(CriticalPathError):
            critical_path(Tracer(), "ghost")

    def test_open_workflow_span_raises(self):
        tracer = Tracer()
        tracer.begin("wf", "workflow", 0.0)
        with pytest.raises(CriticalPathError):
            critical_path(tracer, "wf")

    def test_empty_workflow_is_all_other(self):
        tracer = Tracer()
        span = tracer.begin("empty", "workflow", 0.0)
        tracer.end(span, 5.0)
        result = critical_path(tracer, "empty")
        assert result.path == []
        assert result.breakdown["other"] == pytest.approx(5.0)
        assert result.total == pytest.approx(result.makespan)

    def test_per_step_breakdowns_cover_the_path(self):
        tracer, _record = _trace_run(_diamond())
        result = critical_path(tracer, "diamond")
        assert [b.name for b in result.per_step] == result.path
        for step in result.per_step:
            assert step.accounted <= step.span_duration + 1e-9
