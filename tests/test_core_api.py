"""Tests of the unified programming interface against the paper's listings."""

import pytest

from repro import core as couler
from repro.ir.nodes import OpKind


def _job(name):
    return couler.run_container(
        image="docker/whalesay:latest", command=["cowsay"], args=[name], step_name=name
    )


class TestImplicitChaining:
    def test_sequential_steps_chain(self):
        couler.reset_context("seq")
        couler.run_container(image="a:v1", step_name="first")
        couler.run_container(image="b:v1", step_name="second")
        ir = couler.workflow_ir(optimize=False)
        assert ("first", "second") in ir.edges

    def test_producer_consumer_dependency(self):
        """Paper Code 2: artifact passing creates the edge."""
        couler.reset_context("prodcons")
        out = couler.create_parameter_artifact(path="/opt/hello.txt", is_global=True)
        producer = couler.run_container(
            image="whalesay", command=["bash", "-c"],
            args=["echo hi > %s" % out.path], output=out, step_name="step1",
        )
        couler.run_container(
            image="whalesay", command=["cowsay"], step_name="step2", input=producer
        )
        ir = couler.workflow_ir(optimize=False)
        assert ir.edges == {("step1", "step2")}

    def test_step_output_in_args_creates_dependency(self):
        couler.reset_context("argdep")
        model = couler.run_container(
            image="train", step_name="train",
            output=couler.create_parameter_artifact(path="/m"),
        )
        couler.run_container(image="eval", step_name="eval", args=[model])
        ir = couler.workflow_ir(optimize=False)
        assert ("train", "eval") in ir.edges
        assert "{{train.result}}" in ir.nodes["eval"].args[0]

    def test_duplicate_names_uniquified(self):
        couler.reset_context("dups")
        a = couler.run_container(image="x", step_name="step")
        b = couler.run_container(image="x", step_name="step")
        assert a.step_name == "step"
        assert b.step_name != "step"


class TestExplicitDag:
    def test_diamond_matches_paper_code_1(self):
        couler.reset_context("diamond")
        couler.dag(
            [
                [lambda: _job("A")],
                [lambda: _job("A"), lambda: _job("B")],
                [lambda: _job("A"), lambda: _job("C")],
                [lambda: _job("B"), lambda: _job("D")],
                [lambda: _job("C"), lambda: _job("D")],
            ]
        )
        ir = couler.workflow_ir(optimize=False)
        assert set(ir.nodes) == {"A", "B", "C", "D"}
        assert ir.edges == {("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")}

    def test_set_dependencies(self):
        couler.reset_context("explicit")

        def build():
            couler.run_container(image="x", step_name="p")
            couler.run_container(image="x", step_name="q")

        couler.set_dependencies(build, [["p", "q"]])
        ir = couler.workflow_ir(optimize=False)
        assert ir.edges == {("p", "q")}

    def test_set_dependencies_rejects_triples(self):
        couler.reset_context("bad")
        with pytest.raises(ValueError):
            couler.set_dependencies(lambda: None, [["a", "b", "c"]])


class TestControlFlow:
    def test_flip_coin_matches_paper_code_3(self):
        couler.reset_context("coin")

        def random_code():
            import random

            print("heads" if random.randint(0, 1) == 0 else "tails")

        result = couler.run_script(
            image="python:alpine3.6", source=random_code, step_name="flip-coin"
        )
        couler.when(
            couler.equal(result, "heads"),
            lambda: couler.run_container(image="alpine:3.6", step_name="heads"),
        )
        couler.when(
            couler.equal(result, "tails"),
            lambda: couler.run_container(image="alpine:3.6", step_name="tails"),
        )
        ir = couler.workflow_ir(optimize=False)
        assert ir.edges == {("flip-coin", "heads"), ("flip-coin", "tails")}
        assert ir.nodes["heads"].when == "{{flip-coin.result}} == heads"
        assert ir.nodes["tails"].when == "{{flip-coin.result}} == tails"
        assert ir.nodes["flip-coin"].op == OpKind.SCRIPT
        assert "random" in ir.nodes["flip-coin"].source

    def test_step_after_branches_depends_on_both(self):
        couler.reset_context("joined")
        result = couler.run_script(image="py", source="print(1)", step_name="flip")
        couler.when(
            couler.equal(result, "heads"),
            lambda: couler.run_container(image="a", step_name="heads"),
        )
        couler.when(
            couler.equal(result, "tails"),
            lambda: couler.run_container(image="a", step_name="tails"),
        )
        couler.run_container(image="a", step_name="join")
        ir = couler.workflow_ir(optimize=False)
        assert ("heads", "join") in ir.edges
        assert ("tails", "join") in ir.edges

    def test_exec_while_unrolls_with_conditions(self):
        """Paper Code 5: recursion bounded by max_iterations."""
        couler.reset_context("loop")

        def flip():
            return couler.run_script(image="alpine3.6", source="print('x')",
                                     step_name="flip-coin")

        couler.exec_while(couler.equal("tails"), flip, max_iterations=3)
        ir = couler.workflow_ir(optimize=False)
        assert len(ir.nodes) == 3
        conditional = [n for n in ir.nodes.values() if n.when]
        assert len(conditional) == 2
        assert all("== tails" in n.when for n in conditional)

    def test_exec_while_requires_step_output(self):
        couler.reset_context("badloop")
        with pytest.raises(TypeError):
            couler.exec_while(couler.equal("x"), lambda: None)

    def test_exec_while_validates_iterations(self):
        with pytest.raises(ValueError):
            couler.exec_while(couler.equal("x"), lambda: None, max_iterations=0)


class TestMapAndConcurrent:
    def test_map_fans_out_in_parallel(self):
        """Paper Code 6: model search over batch sizes."""
        couler.reset_context("fanout")
        couler.run_container(image="prep", step_name="prep")
        outs = couler.map(
            lambda bs: couler.run_container(image="train", step_name=f"train-{bs}"),
            [100, 200, 300],
        )
        couler.run_container(image="report", step_name="report")
        ir = couler.workflow_ir(optimize=False)
        for bs in (100, 200, 300):
            assert ("prep", f"train-{bs}") in ir.edges
            assert (f"train-{bs}", "report") in ir.edges
        # No edges between the mapped instances.
        assert not any(
            (f"train-{a}", f"train-{b}") in ir.edges
            for a in (100, 200, 300)
            for b in (100, 200, 300)
        )
        assert len(outs) == 3

    def test_concurrent_matches_paper_code_7(self):
        couler.reset_context("automl")
        couler.concurrent(
            [
                lambda: couler.run_container(image="xgb", step_name="train-xgboost"),
                lambda: couler.run_container(image="lgbm", step_name="train-lgbm"),
            ]
        )
        ir = couler.workflow_ir(optimize=False)
        assert set(ir.nodes) == {"train-xgboost", "train-lgbm"}
        assert not ir.edges


class TestRunJob:
    def test_distributed_job_resources_aggregate(self):
        couler.reset_context("jobs")
        from repro.k8s.resources import ResourceQuantity

        out = couler.run_job(
            image="tf:v1",
            command="python train.py",
            num_ps=1,
            num_workers=3,
            resources=ResourceQuantity(cpu=2.0, gpu=1),
            step_name="dist",
        )
        node = couler.workflow_ir(optimize=False).nodes[out.step_name]
        assert node.op == OpKind.JOB
        assert node.resources.cpu == 8.0  # (1 ps + 3 workers) x 2 cpu
        assert node.resources.gpu == 3  # workers only
        assert node.job_params == {"kind": "TFJob", "num_ps": 1, "num_workers": 3}

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            couler.run_job(image="x", command="c", num_workers=0)


class TestRunSubmitsAndResets:
    def test_run_returns_succeeded_record_and_resets(self):
        couler.reset_context("runnable")
        couler.run_container(image="a", step_name="only")
        record = couler.run()
        from repro.engine.status import WorkflowPhase

        assert record.phase == WorkflowPhase.SUCCEEDED
        # Context reset: the next IR is empty.
        assert len(couler.workflow_ir(optimize=False).nodes) == 0


class TestExplicitDagValidation:
    def test_set_dependencies_names_unknown_step(self):
        from repro.engine.spec import SpecError

        couler.reset_context("edges")

        def define():
            _job("a")
            _job("b")

        with pytest.raises(SpecError, match="undefined step 'ghost'"):
            couler.set_dependencies(define, [["a", "ghost"]])
        couler.reset_context()

    def test_set_dependencies_valid_edges_still_wire(self):
        couler.reset_context("edges-ok")

        def define():
            _job("a")
            _job("b")

        couler.set_dependencies(define, [["a", "b"]])
        ir = couler.workflow_ir(optimize=False)
        assert ("a", "b") in ir.edges
        couler.reset_context()

    def test_dag_thunk_without_step_raises(self):
        from repro.engine.spec import SpecError

        couler.reset_context("dag-bad")
        with pytest.raises(SpecError, match="defined no step"):
            couler.dag([[lambda: _job("a"), lambda: None]])
        couler.reset_context()


class TestKeywordOnlyContract:
    """Optional run_* parameters are keyword-only in the v1 API."""

    def test_run_container_rejects_positional_options(self):
        couler.reset_context("kwonly")
        with pytest.raises(TypeError):
            couler.run_container("img:v1", ["cmd"])
        couler.reset_context()

    def test_run_script_rejects_positional_options(self):
        couler.reset_context("kwonly2")
        with pytest.raises(TypeError):
            couler.run_script("img:v1", "print(1)", "stepname")
        couler.reset_context()

    def test_run_job_rejects_positional_options(self):
        couler.reset_context("kwonly3")
        with pytest.raises(TypeError):
            couler.run_job("img:v1", ["cmd"], "TFJob")
        couler.reset_context()


class TestSubmitterValidation:
    def test_run_rejects_non_submitter(self):
        couler.reset_context("badsub")
        couler.run_container(image="a", step_name="only")
        with pytest.raises(TypeError, match="Submitter"):
            couler.run(submitter=object())
        couler.reset_context()


class TestFacade:
    def test_couler_facade_exports_everything_it_promises(self):
        from repro import couler as facade

        missing = [name for name in facade.__all__ if not hasattr(facade, name)]
        assert missing == []

    def test_facade_and_core_share_the_dsl(self):
        from repro import couler as facade

        assert facade.run_container is couler.run_container
        assert facade.run is couler.run
        assert facade.dag is couler.dag

    def test_facade_exports_caching_surface(self):
        from repro import caching
        from repro import couler as facade

        for name in (
            "CacheDecision",
            "CacheManager",
            "CachePolicy",
            "ScoreWeights",
            "make_policy",
        ):
            assert name in facade.__all__
            assert getattr(facade, name) is getattr(caching, name)

    def test_cache_manager_is_keyword_only(self):
        from repro import couler as facade

        with pytest.raises(TypeError):
            facade.CacheManager("couler")
