"""Unit tests for the Argo / Airflow / Tekton backends."""

import ast

import pytest
import yaml

from repro import core as couler
from repro.backends import (
    AirflowBackend,
    ArgoBackend,
    TektonBackend,
    available_backends,
    make_backend,
)
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.k8s.resources import ResourceQuantity


def _sample_ir() -> WorkflowIR:
    couler.reset_context("backends")
    flip = couler.run_script(
        image="python:alpine3.6", source="print('heads')", step_name="flip"
    )
    couler.when(
        couler.equal(flip, "heads"),
        lambda: couler.run_container(
            image="alpine:3.6", command=["sh", "-c"], step_name="heads"
        ),
    )
    return couler.workflow_ir()


class TestRegistry:
    def test_all_engines_registered(self):
        info = available_backends()
        assert set(info) == {"airflow", "argo", "tekton"}
        # The paper's coverage claims.
        assert info["argo"].api_coverage >= 0.9
        assert 0.4 <= info["airflow"].api_coverage <= 0.5

    def test_make_backend(self):
        assert isinstance(make_backend("argo"), ArgoBackend)
        with pytest.raises(ValueError):
            make_backend("jenkins")


class TestArgoBackend:
    def test_manifest_structure(self):
        manifest = ArgoBackend().compile(_sample_ir())
        assert manifest["apiVersion"] == "argoproj.io/v1alpha1"
        assert manifest["kind"] == "Workflow"
        spec = manifest["spec"]
        assert spec["entrypoint"] == "main"
        template_names = {t["name"] for t in spec["templates"]}
        assert {"flip", "heads", "main"} <= template_names

    def test_dag_tasks_carry_dependencies_and_when(self):
        manifest = ArgoBackend().compile(_sample_ir())
        main = next(t for t in manifest["spec"]["templates"] if t["name"] == "main")
        tasks = {t["name"]: t for t in main["dag"]["tasks"]}
        assert tasks["heads"]["dependencies"] == ["flip"]
        assert tasks["heads"]["when"] == "{{flip.result}} == heads"

    def test_script_template_embeds_source(self):
        manifest = ArgoBackend().compile(_sample_ir())
        flip = next(t for t in manifest["spec"]["templates"] if t["name"] == "flip")
        assert "script" in flip
        assert "print" in flip["script"]["source"]

    def test_yaml_text_is_valid_yaml(self):
        text = ArgoBackend().compile_to_text(_sample_ir())
        assert yaml.safe_load(text)["kind"] == "Workflow"


class TestAirflowBackend:
    def test_generated_source_is_valid_python(self):
        source = AirflowBackend().compile(_sample_ir())
        ast.parse(source)  # must not raise

    def test_operators_and_wiring_present(self):
        source = AirflowBackend().compile(_sample_ir())
        assert "PythonOperator" in source
        assert "KubernetesPodOperator" in source
        assert "flip >> heads" in source
        assert "ShortCircuitOperator" in source  # conditional guard

    def test_dag_id_matches_workflow(self):
        source = AirflowBackend().compile(_sample_ir())
        assert "dag_id='backends'" in source


class TestTektonBackend:
    def test_pipeline_structure(self):
        compiled = TektonBackend().compile(_sample_ir())
        pipeline = compiled["pipeline"]
        assert pipeline["apiVersion"] == "tekton.dev/v1"
        tasks = {t["name"]: t for t in pipeline["spec"]["tasks"]}
        assert tasks["heads"]["runAfter"] == ["flip"]
        assert tasks["heads"]["when"][0]["operator"] == "in"

    def test_run_references_pipeline(self):
        compiled = TektonBackend().compile(_sample_ir())
        assert compiled["pipelineRun"]["spec"]["pipelineRef"]["name"] == "backends"


class TestResourceRendering:
    def test_requests_rendered_in_argo(self):
        ir = WorkflowIR(name="res")
        ir.add_node(
            IRNode(
                name="fat",
                op=OpKind.CONTAINER,
                image="x",
                resources=ResourceQuantity(cpu=4.0, memory=8 * 2**30, gpu=1),
                sim=SimHint(duration_s=1),
            )
        )
        manifest = ArgoBackend().compile(ir)
        template = next(t for t in manifest["spec"]["templates"] if t["name"] == "fat")
        requests = template["container"]["resources"]["requests"]
        assert requests["cpu"] == "4"
        assert requests["memory"] == "8Gi"
        assert requests["nvidia.com/gpu"] == 1
