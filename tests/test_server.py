"""Tests for the Couler server: database, monitor, service flows."""

import pytest

from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.status import StepStatus, WorkflowPhase, WorkflowRecord
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.k8s.cluster import Cluster
from repro.server import (
    CoulerService,
    SubmissionError,
    WorkflowDatabase,
    WorkflowMonitor,
    WorkflowNotFoundError,
)
from repro.parallelism.budget import BudgetModel

GB = 2**30


def _chain_ir(name: str, steps: int = 3, failure_rate: float = 0.0) -> WorkflowIR:
    ir = WorkflowIR(name=name)
    previous = None
    for index in range(steps):
        node_name = f"s{index}"
        ir.add_node(
            IRNode(
                name=node_name,
                op=OpKind.CONTAINER,
                image="x:v1",
                sim=SimHint(duration_s=10, failure_rate=failure_rate if index == 1 else 0.0),
            )
        )
        if previous:
            ir.add_edge(previous, node_name)
        previous = node_name
    return ir


class TestDatabase:
    def test_save_load_round_trip(self):
        db = WorkflowDatabase()
        ir = _chain_ir("persisted")
        record = WorkflowRecord(name="persisted", phase=WorkflowPhase.RUNNING)
        record.step("s0").status = StepStatus.SUCCEEDED
        record.step("s0").attempts = 2
        record.step("s1").status = StepStatus.FAILED
        record.step("s1").last_error = "PodCrashErr"
        db.save_workflow(ir, record, owner="alice")
        stored = db.load("persisted")
        assert stored.owner == "alice"
        assert set(stored.ir.nodes) == {"s0", "s1", "s2"}
        assert stored.record.steps["s0"].attempts == 2
        assert stored.record.steps["s1"].last_error == "PodCrashErr"

    def test_load_missing_raises(self):
        with pytest.raises(WorkflowNotFoundError):
            WorkflowDatabase().load("ghost")

    def test_update_status_requires_existing_row(self):
        db = WorkflowDatabase()
        with pytest.raises(WorkflowNotFoundError):
            db.update_status(WorkflowRecord(name="ghost"))

    def test_list_and_counts_by_phase(self):
        db = WorkflowDatabase()
        for index, phase in enumerate(
            (WorkflowPhase.SUCCEEDED, WorkflowPhase.FAILED, WorkflowPhase.SUCCEEDED)
        ):
            record = WorkflowRecord(name=f"wf{index}", phase=phase)
            db.save_workflow(_chain_ir(f"wf{index}"), record)
        assert db.list_names(WorkflowPhase.FAILED) == ["wf1"]
        assert db.counts_by_phase() == {"Succeeded": 2, "Failed": 1}

    def test_delete_cascades_steps(self):
        db = WorkflowDatabase()
        record = WorkflowRecord(name="temp", phase=WorkflowPhase.SUCCEEDED)
        record.step("s0")
        db.save_workflow(_chain_ir("temp"), record)
        db.delete("temp")
        with pytest.raises(WorkflowNotFoundError):
            db.load("temp")


class TestMonitor:
    def test_status_and_pattern_aggregation(self):
        monitor = WorkflowMonitor()
        ok = WorkflowRecord(name="ok", phase=WorkflowPhase.SUCCEEDED)
        bad = WorkflowRecord(name="bad", phase=WorkflowPhase.FAILED)
        bad.step("s").last_error = "NetworkTimeoutErr"
        monitor.observe(ok)
        monitor.observe(bad)
        assert monitor.status_counts() == {"Succeeded": 1, "Failed": 1}
        assert monitor.failure_rate() == 0.5
        assert monitor.top_patterns()[0] == ("NetworkTimeoutErr", 1)

    def test_alert_fires_on_high_failure_rate(self):
        monitor = WorkflowMonitor()
        for index in range(5):
            monitor.observe(WorkflowRecord(name=f"f{index}", phase=WorkflowPhase.FAILED))
        alerts = monitor.alerts()
        assert any(a.metric == "failure_rate" and a.severity == "critical"
                   for a in alerts)

    def test_healthy_system_has_no_alerts(self):
        monitor = WorkflowMonitor()
        monitor.observe(WorkflowRecord(name="ok", phase=WorkflowPhase.SUCCEEDED))
        assert monitor.alerts() == []
        report = monitor.health_report()
        assert report["failure_rate"] == 0.0


class TestService:
    def _service(self, failure_seed=None, budget=None) -> CoulerService:
        clock = SimClock()
        cluster = Cluster.uniform("svc", 8, cpu_per_node=16, memory_per_node=64 * GB)
        operator = WorkflowOperator(
            clock,
            cluster,
            retry_policy=RetryPolicy(limit=0),
            failure_injector=FailureInjector(
                seed=failure_seed or 0, retryable_fraction=0.0
            ),
        )
        return CoulerService(operator=operator, budget=budget or BudgetModel())

    def test_submit_persists_and_completes(self):
        service = self._service()
        handle = service.submit(_chain_ir("good"), owner="bob")
        assert handle.record.phase == WorkflowPhase.SUCCEEDED
        assert handle.split_parts == 1
        assert service.list_workflows(WorkflowPhase.SUCCEEDED) == ["good"]
        assert service.database.load("good").owner == "bob"

    def test_duplicate_submission_rejected(self):
        service = self._service()
        service.submit(_chain_ir("dup"))
        with pytest.raises(SubmissionError):
            service.submit(_chain_ir("dup"))

    def test_oversized_workflow_split_transparently(self):
        service = self._service(budget=BudgetModel(max_steps=2))
        handle = service.submit(_chain_ir("bigger", steps=5))
        assert handle.split_parts >= 2
        assert handle.record.phase == WorkflowPhase.SUCCEEDED
        assert set(handle.record.steps) == {f"s{i}" for i in range(5)}

    def test_retry_from_failure_skips_done_steps(self):
        service = self._service(failure_seed=0)
        ir = _chain_ir("flaky", failure_rate=1.0)
        handle = service.submit(ir)
        assert handle.record.phase == WorkflowPhase.FAILED
        assert handle.record.steps["s0"].status == StepStatus.SUCCEEDED
        first_finish = handle.record.steps["s0"].finish_time

        # "Fix" the workflow, then use the paper's manual-retry flow.
        service._irs["flaky"].nodes["s1"].sim = SimHint(duration_s=10, failure_rate=0.0)
        record = service.retry_from_failure("flaky")
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["s0"].finish_time == first_finish  # skipped
        assert service.database.load("flaky").record.phase == WorkflowPhase.SUCCEEDED

    def test_retry_of_non_failed_workflow_rejected(self):
        service = self._service()
        service.submit(_chain_ir("fine"))
        with pytest.raises(SubmissionError):
            service.retry_from_failure("fine")

    def test_health_report_includes_database_counts(self):
        service = self._service()
        service.submit(_chain_ir("h1"))
        health = service.health()
        assert health["database_counts"] == {"Succeeded": 1}
        assert "failure_rate" in health
