"""Integration-grade tests of the workflow operator."""

import pytest

from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ArtifactSpec,
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
)
from repro.engine.status import StepStatus, WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _diamond(name: str = "diamond", duration: float = 10.0) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=name)
    wf.add_step(ExecutableStep(name="a", duration_s=duration))
    wf.add_step(ExecutableStep(name="b", duration_s=duration, dependencies=["a"]))
    wf.add_step(ExecutableStep(name="c", duration_s=duration, dependencies=["a"]))
    wf.add_step(ExecutableStep(name="d", duration_s=duration, dependencies=["b", "c"]))
    return wf


class TestHappyPath:
    def test_diamond_runs_in_dependency_order(self, operator, clock):
        record = operator.submit(_diamond())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        steps = record.steps
        assert steps["a"].finish_time <= steps["b"].start_time
        assert steps["a"].finish_time <= steps["c"].start_time
        assert max(steps["b"].finish_time, steps["c"].finish_time) <= steps["d"].start_time
        # b and c overlap (parallel execution on a roomy cluster).
        assert steps["b"].start_time == steps["c"].start_time
        assert record.makespan == pytest.approx(30.0)

    def test_empty_workflow_completes_immediately(self, operator):
        record = operator.submit(ExecutableWorkflow(name="empty"))
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED

    def test_duplicate_submission_rejected(self, operator):
        operator.submit(_diamond())
        with pytest.raises(ValueError):
            operator.submit(_diamond())


class TestResourceContention:
    def test_steps_queue_when_cluster_full(self):
        clock = SimClock()
        cluster = Cluster.uniform("tiny", 1, cpu_per_node=1.0, memory_per_node=4 * GB)
        operator = WorkflowOperator(clock, cluster)
        wf = ExecutableWorkflow(name="serial")
        for index in range(3):
            wf.add_step(
                ExecutableStep(
                    name=f"s{index}",
                    duration_s=10,
                    requests=ResourceQuantity(cpu=1.0),
                )
            )
        record = operator.submit(wf)
        operator.run_to_completion()
        # One core forces the three independent steps to serialize.
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.makespan == pytest.approx(30.0)

    def test_multiple_workflows_share_cluster(self):
        clock = SimClock()
        cluster = Cluster.uniform("shared", 1, cpu_per_node=2.0, memory_per_node=8 * GB)
        operator = WorkflowOperator(clock, cluster)
        first = operator.submit(_diamond("one"))
        second = operator.submit(_diamond("two"))
        operator.run_to_completion()
        assert first.phase == WorkflowPhase.SUCCEEDED
        assert second.phase == WorkflowPhase.SUCCEEDED


class TestFailureHandling:
    def _failing_workflow(self, rate: float = 1.0) -> ExecutableWorkflow:
        wf = ExecutableWorkflow(name="flaky")
        wf.add_step(
            ExecutableStep(
                name="bad",
                duration_s=10,
                failure=FailureProfile(rate=rate, pattern="PodCrashErr"),
            )
        )
        return wf

    def test_fatal_failure_fails_workflow(self, clock, small_cluster):
        operator = WorkflowOperator(
            clock,
            small_cluster,
            failure_injector=FailureInjector(seed=0, retryable_fraction=0.0),
        )
        record = operator.submit(self._failing_workflow())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.FAILED
        assert record.steps["bad"].status == StepStatus.FAILED
        assert record.steps["bad"].last_error == "PodCrashErr"

    def test_retryable_failures_recover(self, clock, small_cluster):
        operator = WorkflowOperator(
            clock,
            small_cluster,
            retry_policy=RetryPolicy(limit=10),
            failure_injector=FailureInjector(seed=0, retryable_fraction=1.0),
        )
        record = operator.submit(self._failing_workflow(rate=0.6))
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["bad"].attempts >= 1

    def test_dependents_not_started_after_failure(self, clock, small_cluster):
        operator = WorkflowOperator(
            clock,
            small_cluster,
            failure_injector=FailureInjector(seed=0, retryable_fraction=0.0),
        )
        wf = self._failing_workflow()
        wf.add_step(ExecutableStep(name="child", duration_s=5, dependencies=["bad"]))
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.FAILED
        assert record.steps["child"].status == StepStatus.PENDING


class TestRestartFromFailure:
    def test_resubmit_skips_done_steps(self, clock, small_cluster):
        operator = WorkflowOperator(
            clock,
            small_cluster,
            failure_injector=FailureInjector(seed=0, retryable_fraction=0.0),
        )
        wf = ExecutableWorkflow(name="restartable")
        wf.add_step(ExecutableStep(name="ok", duration_s=10))
        wf.add_step(
            ExecutableStep(
                name="bad",
                duration_s=10,
                dependencies=["ok"],
                failure=FailureProfile(rate=1.0, pattern="PodCrashErr"),
            )
        )
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.FAILED
        first_ok_finish = record.steps["ok"].finish_time

        # Fix the flaky step and retry from the failure point.
        wf.steps["bad"].failure = FailureProfile(rate=0.0)
        record.steps["bad"].status = StepStatus.PENDING
        record = operator.submit(wf, record=record)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        # "ok" was not re-executed: its finish time is unchanged.
        assert record.steps["ok"].finish_time == first_ok_finish


class TestCacheIntegration:
    def test_cache_hits_reduce_fetch_time(self, clock, small_cluster):
        from repro.caching.manager import CacheManager

        manager = CacheManager(policy="all", capacity_bytes=None)
        operator = WorkflowOperator(clock, small_cluster, cache_manager=manager)
        artifact = ArtifactSpec(uid="w/prep/out", size_bytes=GB)
        wf = ExecutableWorkflow(name="w")
        wf.add_step(ExecutableStep(name="prep", duration_s=10, outputs=[artifact]))
        wf.add_step(
            ExecutableStep(name="c1", duration_s=10, dependencies=["prep"], inputs=[artifact])
        )
        wf.add_step(
            ExecutableStep(name="c2", duration_s=10, dependencies=["prep"], inputs=[artifact])
        )
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.total_cache_hits() == 2
        assert record.steps["c1"].fetch_seconds < 2.0  # local read
