"""Unit tests for the approximate tokenizer."""

from repro.llm.tokenizer import count_tokens, split_tokens


class TestSplit:
    def test_words_numbers_punct(self):
        assert split_tokens("run_container(image=3)") == [
            "run_container", "(", "image", "=", "3", ")"
        ]

    def test_empty(self):
        assert split_tokens("") == []
        assert count_tokens("") == 0


class TestCount:
    def test_monotonic_in_length(self):
        short = count_tokens("hello world")
        longer = count_tokens("hello world " * 10)
        assert longer > short

    def test_long_words_count_as_multiple_tokens(self):
        assert count_tokens("internationalization") > 1
        assert count_tokens("cat") == 1

    def test_additive_over_concatenation(self):
        a, b = "def foo():", "return 42"
        assert count_tokens(a + " " + b) == count_tokens(a) + count_tokens(b)

    def test_code_density_plausible(self):
        code = "def f(x):\n    return x + 1\n"
        tokens = count_tokens(code)
        # Roughly 1 token per 2-4 characters for code.
        assert len(code) / 4 <= tokens <= len(code)
