"""Unit tests for condition expressions."""

from repro.core.conditions import (
    Condition,
    OutputRef,
    bigger,
    bigger_equal,
    equal,
    not_equal,
    smaller,
    smaller_equal,
)


class TestRendering:
    def test_output_ref_render(self):
        assert OutputRef("flip", "result").render() == "{{flip.result}}"

    def test_equal_renders_argo_style(self):
        cond = equal(OutputRef("flip"), "heads")
        assert cond.render() == "{{flip.result}} == heads"
        assert str(cond) == cond.render()

    def test_all_operators(self):
        ref = OutputRef("s")
        assert not_equal(ref, 1).operator == "!="
        assert bigger(ref, 1).operator == ">"
        assert smaller(ref, 1).operator == "<"
        assert bigger_equal(ref, 1).operator == ">="
        assert smaller_equal(ref, 1).operator == "<="

    def test_numeric_operands(self):
        assert bigger(OutputRef("acc"), 0.9).render() == "{{acc.result}} > 0.9"


class TestSourceSteps:
    def test_sources_from_both_sides(self):
        cond = Condition(OutputRef("a"), "==", OutputRef("b"))
        assert cond.source_steps() == ["a", "b"]

    def test_literal_operands_contribute_nothing(self):
        assert equal("x", "y").source_steps() == []
