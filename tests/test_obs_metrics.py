"""Tests for the labeled metrics registry and its integrations."""

import pytest

from repro.caching.artifact_store import ArtifactStore
from repro.caching.manager import CacheManager
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.k8s.cluster import Cluster
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)

GB = 2**30


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("hits_total")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == 3.0
        assert counter.total() == 3.0

    def test_labels_are_independent_series(self):
        counter = Counter("retries_total")
        counter.inc(pattern="OOM")
        counter.inc(pattern="OOM")
        counter.inc(pattern="Timeout")
        assert counter.value(pattern="OOM") == 2.0
        assert counter.value(pattern="Timeout") == 1.0
        assert counter.value(pattern="Other") == 0.0
        assert counter.total() == 3.0

    def test_label_order_does_not_matter(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_raises(self):
        counter = Counter("c")
        with pytest.raises(MetricError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6.0

    def test_negative_values_allowed(self):
        gauge = Gauge("delta")
        gauge.dec(3)
        assert gauge.value() == -3.0


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = Histogram("latency", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(555.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(10.0, 1.0))

    def test_render_has_cumulative_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = "\n".join(histogram._render())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help text")
        second = registry.counter("c")
        assert first is second

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0.0
        # The cached reference still feeds the registry after reset.
        counter.inc()
        assert registry.counter("c").value() == 1.0

    def test_snapshot_text_format(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Cache hits").inc(3, tier="local")
        registry.gauge("depth").set(7)
        text = registry.snapshot()
        assert "# HELP hits_total Cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{tier="local"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text

    def test_collect_machine_readable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="a")
        dump = registry.collect()
        assert dump["c"]["kind"] == "counter"
        assert dump["c"]["series"] == {'{kind="a"}': 2.0}


class TestStoreSingleSource:
    """The registry is the single source for cache accounting."""

    def test_stats_delegate_to_registry_counters(self):
        store = ArtifactStore(capacity_bytes=10 * GB)
        store.put("a", 1 * GB)
        store.record_hit("a", now=1.0)
        store.record_miss()
        store.record_rejection()
        store.evict("a")
        registry = store.metrics
        assert registry.counter("cache_hits_total").total() == store.stats.hits == 1
        assert registry.counter("cache_misses_total").total() == store.stats.misses == 1
        assert registry.counter("cache_rejected_total").total() == store.stats.rejected == 1
        assert registry.counter("cache_evictions_total").total() == store.stats.evictions == 1
        assert registry.counter("cache_insertions_total").total() == store.stats.insertions == 1
        assert (
            registry.counter("cache_bytes_evicted_total").total()
            == store.stats.bytes_evicted
            == 1 * GB
        )

    def test_legacy_augmented_assignment_still_works(self):
        store = ArtifactStore(capacity_bytes=10 * GB)
        store.stats.hits += 2
        assert store.metrics.counter("cache_hits_total").total() == 2
        with pytest.raises(MetricError):
            store.stats.hits -= 1  # counters are monotonic

    def test_occupancy_gauges_track_put_and_evict(self):
        store = ArtifactStore(capacity_bytes=10 * GB)
        store.put("a", 2 * GB)
        store.put("b", 3 * GB)
        assert store.metrics.gauge("cache_used_bytes").value() == 5 * GB
        assert store.metrics.gauge("cache_entries").value() == 2
        store.evict("a")
        assert store.metrics.gauge("cache_used_bytes").value() == 3 * GB
        assert store.metrics.gauge("cache_entries").value() == 1

    def test_shared_registry_spans_manager_and_engine(self):
        registry = MetricsRegistry()
        manager = CacheManager(policy="lru", capacity_bytes=10 * GB, metrics=registry)
        assert manager.metrics is registry
        assert manager.store.metrics is registry


class TestOperatorCounters:
    def _run(self, registry):
        clock = SimClock()
        cluster = Cluster.uniform("t", 4, cpu_per_node=8.0, memory_per_node=32 * GB)
        operator = WorkflowOperator(clock, cluster, metrics=registry)
        wf = ExecutableWorkflow(name="wf")
        wf.add_step(ExecutableStep(name="a", duration_s=10))
        wf.add_step(
            ExecutableStep(
                name="b",
                duration_s=10,
                dependencies=["a"],
                inputs=[ArtifactSpec(uid="wf/a/out", size_bytes=1 * GB)],
            )
        )
        operator.submit(wf)
        operator.run_to_completion()
        return operator

    def test_engine_counters_after_clean_run(self):
        registry = MetricsRegistry()
        self._run(registry)
        assert registry.counter("engine_attempts_total").value(outcome="success") == 2
        assert registry.counter("engine_steps_total").value(status="Succeeded") == 2
        assert registry.counter("engine_workflows_total").value(phase="Succeeded") == 1
        assert registry.counter("engine_retries_total").total() == 0
        assert registry.gauge("scheduler_waitq_depth").value() == 0

    def test_private_registry_when_none_shared(self):
        operator = self._run(None)
        assert operator.metrics.counter("engine_workflows_total").total() == 1
