"""Tests for the GUI canvas frontend and the model zoo."""

import pytest

from repro.core.submitter import default_environment
from repro.engine.status import WorkflowPhase
from repro.gui import (
    Canvas,
    CanvasError,
    CanvasNode,
    ModelZoo,
    ModelZooEntry,
    ModelZooError,
    NodeKind,
    churn_prediction_canvas,
)


class TestModelZoo:
    def test_builtins_present(self):
        zoo = ModelZoo()
        assert {"logistic-regression", "random-forest", "xgboost"} <= set(zoo.names())

    def test_register_and_get(self):
        zoo = ModelZoo()
        zoo.register(
            ModelZooEntry(name="my-model", family="custom", image="me:v1")
        )
        assert zoo.get("my-model").image == "me:v1"

    def test_duplicate_and_unknown(self):
        zoo = ModelZoo()
        with pytest.raises(ModelZooError):
            zoo.register(ModelZooEntry(name="xgboost", family="x", image="i"))
        with pytest.raises(ModelZooError):
            zoo.get("nope")

    def test_by_family(self):
        zoo = ModelZoo()
        boosted = zoo.by_family("boosted-tree")
        assert {e.name for e in boosted} == {"xgboost", "lightgbm"}


class TestCanvasValidation:
    def test_duplicate_node_rejected(self):
        canvas = Canvas(name="c")
        canvas.add(CanvasNode(id="a", kind=NodeKind.DATA_SOURCE))
        with pytest.raises(CanvasError):
            canvas.add(CanvasNode(id="a", kind=NodeKind.DATA_SOURCE))

    def test_wire_to_unknown_node_rejected(self):
        canvas = Canvas(name="c")
        canvas.add(CanvasNode(id="a", kind=NodeKind.DATA_SOURCE))
        with pytest.raises(CanvasError):
            canvas.wire("a", "ghost")

    def test_model_without_data_rejected(self):
        canvas = Canvas(name="c")
        canvas.add(CanvasNode(id="m", kind=NodeKind.MODEL, config={"model": "xgboost"}))
        with pytest.raises(CanvasError):
            canvas.validate()

    def test_bad_split_fraction_rejected(self):
        canvas = Canvas(name="c")
        canvas.add(CanvasNode(id="src", kind=NodeKind.DATA_SOURCE))
        canvas.add(
            CanvasNode(id="split", kind=NodeKind.DATA_SPLIT,
                       config={"train_fraction": 1.5})
        )
        canvas.wire("src", "split")
        with pytest.raises(CanvasError):
            canvas.to_ir()

    def test_empty_canvas_rejected(self):
        with pytest.raises(CanvasError):
            Canvas(name="empty").validate()


class TestChurnCanvas:
    def test_translates_to_expected_ir(self):
        """The paper's Fig. 9: split -> {LR, RF, XGB} -> eval -> select."""
        ir = churn_prediction_canvas().to_ir()
        assert set(ir.nodes) == {
            "churn-table", "split",
            "train-logistic-regression", "train-random-forest", "train-xgboost",
            "evaluate", "pick-best",
        }
        assert ("churn-table", "split") in ir.edges
        for model in ("logistic-regression", "random-forest", "xgboost"):
            assert ("split", f"train-{model}") in ir.edges
            assert (f"train-{model}", "evaluate") in ir.edges
        assert ("evaluate", "pick-best") in ir.edges

    def test_model_params_rendered_from_zoo_defaults(self):
        ir = churn_prediction_canvas().to_ir()
        xgb = ir.nodes["train-xgboost"]
        assert any("num_boost_round=10" in arg for arg in xgb.args)

    def test_canvas_workflow_executes(self):
        ir = churn_prediction_canvas().to_ir()
        operator = default_environment()
        record = operator.submit(ir.to_executable())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED

    def test_custom_model_list(self):
        ir = churn_prediction_canvas(["lightgbm"]).to_ir()
        assert "train-lightgbm" in ir.nodes
        assert "train-xgboost" not in ir.nodes
