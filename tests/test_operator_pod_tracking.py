"""Tests for pod-object tracking through the API server."""

from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector
from repro.engine.simclock import SimClock
from repro.engine.spec import ExecutableStep, ExecutableWorkflow, FailureProfile
from repro.engine.status import WorkflowPhase
from repro.k8s.apiserver import APIServer, EventType
from repro.k8s.cluster import Cluster
from repro.k8s.objects import PodPhase

GB = 2**30


def _env(track: bool = True, failure_seed=None):
    clock = SimClock()
    cluster = Cluster.uniform("t", 2, cpu_per_node=8, memory_per_node=32 * GB)
    api = APIServer()
    injector = (
        FailureInjector(seed=failure_seed, retryable_fraction=0.0)
        if failure_seed is not None
        else None
    )
    operator = WorkflowOperator(
        clock, cluster, api_server=api, track_pods=track,
        failure_injector=injector,
    )
    return operator, api


def _wf(name="tracked", failure_rate=0.0):
    wf = ExecutableWorkflow(name=name)
    wf.add_step(
        ExecutableStep(
            name="s", duration_s=10, failure=FailureProfile(rate=failure_rate)
        )
    )
    return wf


class TestPodTracking:
    def test_pods_appear_and_reach_succeeded(self):
        operator, api = _env()
        events = []
        api.watch("Pod", events.append)
        record = operator.submit(_wf())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        pods = api.list("Pod")
        assert len(pods) == 1
        assert pods[0].status["phase"] == PodPhase.SUCCEEDED.value
        assert [e.type for e in events] == [EventType.ADDED, EventType.MODIFIED]

    def test_failed_attempt_recorded(self):
        operator, api = _env(failure_seed=0)
        record = operator.submit(_wf(failure_rate=1.0))
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.FAILED
        pods = api.list("Pod")
        assert pods and pods[-1].status["phase"] == PodPhase.FAILED.value

    def test_tracking_off_by_default(self):
        clock = SimClock()
        cluster = Cluster.uniform("t", 2, cpu_per_node=8, memory_per_node=32 * GB)
        api = APIServer()
        operator = WorkflowOperator(clock, cluster, api_server=api)
        operator.submit(_wf())
        operator.run_to_completion()
        assert api.list("Pod") == []

    def test_track_requires_api_server(self):
        clock = SimClock()
        cluster = Cluster.uniform("t", 2, cpu_per_node=8, memory_per_node=32 * GB)
        operator = WorkflowOperator(clock, cluster, track_pods=True)
        assert not operator.track_pods  # silently disabled without API
        record = operator.submit(_wf())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
