"""Tests for the open-loop arrival processes feeding the admission pipeline."""

import json

import pytest

from repro.workloads.arrivals import (
    ArrivalError,
    PRODUCTION_RATE_PER_S,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)


class TestPoisson:
    def test_deterministic_for_seed(self):
        a = PoissonArrivalProcess(rate_per_s=0.5, seed=42).times(20)
        b = PoissonArrivalProcess(rate_per_s=0.5, seed=42).times(20)
        assert a == b

    def test_seed_changes_schedule(self):
        a = PoissonArrivalProcess(rate_per_s=0.5, seed=1).times(20)
        b = PoissonArrivalProcess(rate_per_s=0.5, seed=2).times(20)
        assert a != b

    def test_monotone_and_offset_by_start(self):
        times = PoissonArrivalProcess(rate_per_s=1.0, seed=0, start=100.0).times(50)
        assert len(times) == 50
        assert all(t >= 100.0 for t in times)
        assert times == sorted(times)

    def test_mean_gap_tracks_rate(self):
        times = PoissonArrivalProcess(rate_per_s=0.1, seed=3).times(2000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(10.0, rel=0.1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ArrivalError):
            PoissonArrivalProcess(rate_per_s=0.0).times(1)

    def test_production_rate_constant(self):
        from repro.workloads.traces import MEAN_DAILY_WORKFLOWS

        # The paper's daily volume expressed per virtual second.
        assert PRODUCTION_RATE_PER_S == pytest.approx(MEAN_DAILY_WORKFLOWS / 86_400)
        assert PRODUCTION_RATE_PER_S > 0


class TestTrace:
    def test_offsets_shifted_by_start(self):
        process = TraceArrivalProcess(offsets=(0.0, 5.0, 12.0), start=50.0)
        assert process.times() == [50.0, 55.0, 62.0]

    def test_count_truncates(self):
        process = TraceArrivalProcess(offsets=(0.0, 1.0, 2.0, 3.0))
        assert process.times(count=2) == [0.0, 1.0]

    def test_unsorted_offsets_replayed_in_time_order(self):
        assert TraceArrivalProcess(offsets=(5.0, 1.0)).times() == [1.0, 5.0]

    def test_rejects_negative_offsets(self):
        with pytest.raises(ArrivalError):
            TraceArrivalProcess(offsets=(-1.0, 1.0))

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([0.0, 2.5, 7.0]))
        process = TraceArrivalProcess.from_file(path)
        assert process.times() == [0.0, 2.5, 7.0]

    def test_from_line_file_with_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# production sample\n0\n3.5\n\n9\n")
        process = TraceArrivalProcess.from_file(path)
        assert process.times() == [0.0, 3.5, 9.0]

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("zero\none\n")
        with pytest.raises(ArrivalError):
            TraceArrivalProcess.from_file(path)
