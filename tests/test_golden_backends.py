"""Golden-snapshot tests: every example workflow, every backend.

Each IR-producing workflow in ``examples/`` is compiled by all three
backends and compared byte-for-byte against committed snapshots under
``tests/golden/``.  Any intentional change to backend output is made
visible in review by regenerating with::

    pytest tests/test_golden_backends.py --update-golden

``multi_cluster_dispatch.py`` builds executable workflows directly (no
IR) and ``caching_and_autotune.py`` / ``nl_to_workflow.py`` exercise
runtime subsystems; they are covered by their own experiment tests.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest
import yaml

from repro import core as couler
from repro.backends.airflow import AirflowBackend
from repro.backends.argo import ArgoBackend
from repro.backends.tekton import TektonBackend
from repro.core.step_zoo import tensorflow as tf
from repro.experiments.ablation_split_budget import build_big_workflow
from repro.ir.nodes import SimHint
from repro.sqlflow import sql_to_ir

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

if str(EXAMPLES_DIR) not in sys.path:
    sys.path.insert(0, str(EXAMPLES_DIR))

import gui_and_server  # noqa: E402  (examples dir on sys.path)
import model_selection  # noqa: E402
import quickstart  # noqa: E402
import sqlflow_pipeline  # noqa: E402


def _quickstart_diamond():
    couler.reset_context("diamond")
    quickstart.diamond()
    return couler.workflow_ir()


def _quickstart_producer_consumer():
    couler.reset_context("producer-consumer")
    output_place = couler.create_parameter_artifact(
        path="/opt/hello_world.txt", is_global=True
    )
    producer = couler.run_container(
        image="docker/whalesay:latest",
        args=["echo -n hello world > %s" % output_place.path],
        command=["bash", "-c"],
        output=output_place,
        step_name="step1",
    )
    couler.run_container(
        image="docker/whalesay:latest",
        command=["cowsay"],
        step_name="step2",
        input=producer,
    )
    return couler.workflow_ir()


def _quickstart_coin_flip():
    couler.reset_context("coin-flip")
    result = couler.run_script(
        image="python:alpine3.6",
        source=quickstart.random_code,
        step_name="flip-coin",
        sim=SimHint(duration_s=5, result_options=("heads", "tails")),
    )
    for side in ("heads", "tails"):
        couler.when(
            couler.equal(result, side),
            lambda side=side: couler.run_container(
                image="alpine:3.6",
                command=["sh", "-c", f'echo "it was {side}"'],
                step_name=side,
            ),
        )
    return couler.workflow_ir()


def _model_search():
    couler.reset_context("model-search")
    model_paths = model_selection.run_multiple_jobs(3)
    couler.map(lambda model: tf.evaluate(model), model_paths)
    return couler.workflow_ir()


#: name -> zero-argument IR builder; all seeded/static, so compilation
#: output is reproducible byte-for-byte.
WORKFLOWS = {
    "quickstart-diamond": _quickstart_diamond,
    "quickstart-producer-consumer": _quickstart_producer_consumer,
    "quickstart-coin-flip": _quickstart_coin_flip,
    "model-search": _model_search,
    "gui-nightly-etl": gui_and_server.flaky_workflow,
    "sqlflow-train": lambda: sql_to_ir(sqlflow_pipeline.TRAIN_SQL),
    "sqlflow-predict": lambda: sql_to_ir(sqlflow_pipeline.PREDICT_SQL),
    "big-split-small": lambda: build_big_workflow(num_layers=3, width=4),
}

BACKENDS = {
    "argo": ("yaml", lambda ir: yaml.safe_dump(
        ArgoBackend().compile(ir), sort_keys=True, default_flow_style=False
    )),
    "airflow": ("py", lambda ir: AirflowBackend().compile(ir)),
    "tekton": ("yaml", lambda ir: yaml.safe_dump(
        TektonBackend().compile(ir), sort_keys=True, default_flow_style=False
    )),
}


def _golden_path(workflow: str, backend: str, suffix: str) -> Path:
    return GOLDEN_DIR / f"{workflow}.{backend}.{suffix}"


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("workflow", sorted(WORKFLOWS))
def test_backend_output_matches_golden(workflow, backend, update_golden):
    suffix, compile_fn = BACKENDS[backend]
    text = compile_fn(WORKFLOWS[workflow]())
    assert text.strip(), f"{backend} produced empty output for {workflow}"
    path = _golden_path(workflow, backend, suffix)
    if update_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"updated {path.name}")
    assert path.exists(), (
        f"missing snapshot {path.name}; run with --update-golden to create"
    )
    assert text == path.read_text(encoding="utf-8"), (
        f"{backend} output for {workflow!r} drifted from {path.name}; "
        "if intentional, regenerate with --update-golden"
    )


@pytest.mark.parametrize("workflow", sorted(WORKFLOWS))
def test_compilation_is_deterministic(workflow):
    """Two fresh builds of the same example compile byte-identically."""
    for backend, (suffix, compile_fn) in sorted(BACKENDS.items()):
        first = compile_fn(WORKFLOWS[workflow]())
        couler.reset_context()
        second = compile_fn(WORKFLOWS[workflow]())
        assert first == second, f"{backend} nondeterministic for {workflow}"
