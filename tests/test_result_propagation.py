"""Step ``result`` persistence and propagation.

Results drive ``when`` guards.  They must (a) land on the durable
``WorkflowRecord``, (b) survive restart-from-failure resubmission, (c)
be injectable via ``initial_results`` for externally-known steps, and
(d) flow across split-plan part boundaries during staged execution —
that last one is the bug the split oracle exists to catch.
"""

from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
)
from repro.engine.status import StepStatus, WorkflowPhase
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity
from repro.parallelism.budget import BudgetModel
from repro.parallelism.splitter import WorkflowSplitter
from repro.parallelism.stitch import StagedSubmitter
from repro.verify.fingerprint import fingerprint_record, fingerprint_staged

GB = 2**30


def _operator(**kwargs) -> WorkflowOperator:
    cluster = Cluster.uniform(
        "results", num_nodes=2, cpu_per_node=16.0, memory_per_node=64 * GB
    )
    return WorkflowOperator(SimClock(), cluster, seed=0, **kwargs)


def _step(name, deps=(), result_options=(), when=None, fail=False):
    return ExecutableStep(
        name=name,
        duration_s=10.0,
        requests=ResourceQuantity(cpu=1.0, memory=GB),
        dependencies=list(deps),
        failure=FailureProfile(rate=1.0 if fail else 0.0, pattern="PodCrashErr"),
        retry_limit=0,
        when_expr=when,
        result_options=tuple(result_options),
    )


def test_results_are_persisted_on_the_record():
    wf = ExecutableWorkflow(name="persist")
    wf.add_step(_step("flip", result_options=("heads",)))
    wf.add_step(_step("plain", deps=["flip"]))
    operator = _operator()
    record = operator.submit(wf)
    operator.run_to_completion()
    assert record.phase == WorkflowPhase.SUCCEEDED
    assert record.results["flip"] == "heads"
    assert record.results["plain"] is None


def test_initial_results_drive_external_guards():
    wf = ExecutableWorkflow(name="external")
    wf.add_step(_step("guarded", when="{{upstream.result}} == heads"))

    operator = _operator()
    record = operator.submit(wf, initial_results={"upstream": "heads"})
    operator.run_to_completion()
    assert record.step("guarded").status == StepStatus.SUCCEEDED

    operator = _operator()
    record = operator.submit(wf)  # no injected result: guard can't hold
    operator.run_to_completion()
    assert record.step("guarded").status == StepStatus.SKIPPED


def test_resubmission_preserves_results_for_guards():
    """Restart-from-failure: a guard referencing an already-completed
    step must still see that step's result on the second submission."""
    broken = ExecutableWorkflow(name="restart")
    broken.add_step(_step("flip", result_options=("heads",)))
    broken.add_step(_step("crash", deps=["flip"], fail=True))
    broken.add_step(
        _step("guarded", deps=["crash"], when="{{flip.result}} == heads")
    )
    operator = _operator()
    record = operator.submit(broken)
    operator.run_to_completion()
    assert record.phase == WorkflowPhase.FAILED
    assert record.step("flip").status == StepStatus.SUCCEEDED
    assert record.results["flip"] == "heads"

    fixed = ExecutableWorkflow(name="restart")
    fixed.add_step(_step("flip", result_options=("heads",)))
    fixed.add_step(_step("crash", deps=["flip"]))
    fixed.add_step(
        _step("guarded", deps=["crash"], when="{{flip.result}} == heads")
    )
    operator = _operator()
    resumed = operator.submit(fixed, record=record)
    operator.run_to_completion()
    assert resumed.phase == WorkflowPhase.SUCCEEDED
    # flip did not rerun, yet the guard held thanks to the snapshot.
    assert resumed.step("flip").attempts == 1
    assert resumed.step("guarded").status == StepStatus.SUCCEEDED


def _cross_part_ir():
    """flip -> c1 -> c2 -> guarded({{flip.result}} == heads).

    Built directly as IR so the guard sits two hops downstream of the
    step it references — a ``max_steps=2`` split then puts them in
    different parts, exercising cross-part result forwarding.
    """
    ir = WorkflowIR(name="xpart")
    ir.add_node(
        IRNode(
            name="flip",
            op=OpKind.SCRIPT,
            image="python:3.10",
            source="print('heads')",
            sim=SimHint(duration_s=5.0, result_options=("heads",)),
        )
    )
    for name in ("c1", "c2"):
        ir.add_node(
            IRNode(
                name=name,
                op=OpKind.CONTAINER,
                image="repro/worker:v1",
                command=["python", "task.py"],
                sim=SimHint(duration_s=5.0),
            )
        )
    ir.add_node(
        IRNode(
            name="guarded",
            op=OpKind.CONTAINER,
            image="repro/worker:v1",
            command=["python", "task.py"],
            when="{{flip.result}} == heads",
            sim=SimHint(duration_s=5.0),
        )
    )
    ir.add_edge("flip", "c1")
    ir.add_edge("c1", "c2")
    ir.add_edge("c2", "guarded")
    return ir


def test_results_cross_split_part_boundaries():
    ir = _cross_part_ir()
    plan = WorkflowSplitter(BudgetModel(max_steps=2)).split(ir)
    assert plan.num_parts >= 2
    # The guard and the step it references are in different parts.
    assert plan.assignment["guarded"] != plan.assignment["flip"]

    staged = StagedSubmitter(_operator()).execute(plan)
    assert staged.succeeded
    staged_fp = fingerprint_staged(ir, staged)
    assert (
        staged_fp.data["steps"]["guarded"]["status"]
        == StepStatus.SUCCEEDED.value
    )


def test_split_equals_monolithic_on_cross_part_guard():
    ir = _cross_part_ir()
    operator = _operator()
    mono_record = operator.submit(ir.to_executable())
    operator.run_to_completion()
    mono_fp = fingerprint_record(ir, mono_record)

    plan = WorkflowSplitter(BudgetModel(max_steps=2)).split(ir)
    staged = StagedSubmitter(_operator()).execute(plan)
    staged_fp = fingerprint_staged(ir, staged)
    assert mono_fp.outputs_view() == staged_fp.outputs_view()
