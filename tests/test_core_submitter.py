"""Unit tests for the submitters."""

from repro import core as couler
from repro.core.submitter import (
    AirflowSubmitter,
    ArgoSubmitter,
    SubmissionResult,
    TektonSubmitter,
    default_environment,
)
from repro.engine.status import WorkflowPhase


def _define_workflow(name: str = "sub-test"):
    couler.reset_context(name)
    first = couler.run_container(image="prep:v1", step_name="prep")
    couler.run_container(image="train:v1", step_name="train", input=first)
    return couler.workflow_ir()


class TestArgoSubmitter:
    def test_submit_runs_to_completion(self):
        ir = _define_workflow()
        submitter = ArgoSubmitter()
        record = submitter.submit(ir)
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert submitter.last_manifest["kind"] == "Workflow"

    def test_shared_operator_across_submissions(self):
        operator = default_environment()
        submitter = ArgoSubmitter(operator=operator)
        first = submitter.submit(_define_workflow("wf-a"))
        second = submitter.submit(_define_workflow("wf-b"))
        assert first.phase == WorkflowPhase.SUCCEEDED
        assert second.phase == WorkflowPhase.SUCCEEDED

    def test_couler_run_uses_submitter(self):
        couler.reset_context("via-run")
        couler.run_container(image="x", step_name="s")
        record = couler.run(submitter=ArgoSubmitter())
        assert record.phase == WorkflowPhase.SUCCEEDED


class TestCodeGeneratingSubmitters:
    def test_airflow_submitter_returns_source(self):
        result = AirflowSubmitter().submit(_define_workflow())
        assert isinstance(result, SubmissionResult)
        assert result.engine == "airflow"
        assert "DAG(" in result.payload
        assert result.record is None

    def test_airflow_submitter_can_simulate(self):
        result = AirflowSubmitter(simulate=True).submit(_define_workflow())
        assert result.record.phase == WorkflowPhase.SUCCEEDED

    def test_tekton_submitter_returns_manifests(self):
        result = TektonSubmitter().submit(_define_workflow())
        assert result.engine == "tekton"
        assert result.payload["pipeline"]["kind"] == "Pipeline"
        assert result.payload["pipelineRun"]["kind"] == "PipelineRun"


class TestSubmitterProtocol:
    def test_every_frontend_conforms(self):
        from repro.backends.base import Submitter
        from repro.core.submitter import AdmissionSubmitter, LocalSubmitter
        from repro.server.service import CoulerService

        assert isinstance(ArgoSubmitter(), Submitter)
        assert isinstance(LocalSubmitter(), Submitter)
        assert isinstance(AdmissionSubmitter(), Submitter)
        assert isinstance(AirflowSubmitter(), Submitter)
        assert isinstance(TektonSubmitter(), Submitter)
        assert isinstance(CoulerService(operator=default_environment()), Submitter)

    def test_submission_record_normalizes_every_result_shape(self):
        from repro.backends.base import submission_record

        record = ArgoSubmitter().submit(_define_workflow())
        assert submission_record(record) is record

        generated = AirflowSubmitter().submit(_define_workflow("gen-only"))
        assert submission_record(generated) is None

        simulated = TektonSubmitter(simulate=True).submit(_define_workflow("sim"))
        assert submission_record(simulated) is simulated.record


class TestAdmissionSubmitter:
    def test_submit_through_admission_pipeline(self):
        from repro.core.submitter import AdmissionSubmitter

        submitter = AdmissionSubmitter()
        record = submitter.submit(_define_workflow("adm"))
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert submitter.last_admission.admitted is True
        assert submitter.last_admission.cluster_name is not None

    def test_rejection_surfaces_as_admission_error(self):
        import pytest

        from repro.core.submitter import AdmissionSubmitter
        from repro.engine.admission import AdmissionError, AdmissionPipeline
        from repro.engine.queue import UserQuota
        from repro.k8s.cluster import Cluster

        pipeline = AdmissionPipeline(
            [Cluster.uniform("tiny", 1, cpu_per_node=4.0, memory_per_node=8 * 2**30)],
            quotas={"u": UserQuota(user="u", cpu_limit=0.5, memory_limit=2**30)},
        )
        submitter = AdmissionSubmitter(pipeline=pipeline, user="u")
        with pytest.raises(AdmissionError, match="rejected at admission"):
            submitter.submit(_define_workflow("too-big"))

    def test_shared_pipeline_accumulates_submissions(self):
        from repro.core.submitter import AdmissionSubmitter, default_multicluster

        pipeline = default_multicluster()
        submitter = AdmissionSubmitter(pipeline=pipeline)
        submitter.submit(_define_workflow("one"))
        submitter.submit(_define_workflow("two"))
        assert [a.workflow_name for a in pipeline.placed] == ["one", "two"]

    def test_couler_run_accepts_admission_submitter(self):
        from repro.core.submitter import AdmissionSubmitter

        couler.reset_context("via-run")
        couler.run_container(image="a:v1", step_name="only")
        record = couler.run(submitter=AdmissionSubmitter())
        assert record.phase == WorkflowPhase.SUCCEEDED


class TestJournaledMode:
    """Opt-in journaled mode: default off, bit-identical when off."""

    def test_default_is_off(self):
        submitter = ArgoSubmitter()
        assert submitter.journal is None
        record = submitter.submit(_define_workflow("plain"))
        assert record.phase == WorkflowPhase.SUCCEEDED

    def test_journaled_argo_submitter_records_and_replays(self):
        submitter = ArgoSubmitter(journaled=True)
        record = submitter.submit(_define_workflow("journaled"))
        assert record.phase == WorkflowPhase.SUCCEEDED
        journal = submitter.journal
        assert journal is not None and len(journal) > 0
        replayed = journal.materialize("journaled")
        assert replayed.phase == WorkflowPhase.SUCCEEDED
        assert {
            name: step.status for name, step in replayed.steps.items()
        } == {name: step.status for name, step in record.steps.items()}

    def test_journaled_matches_plain_execution(self):
        plain = ArgoSubmitter().submit(_define_workflow("same"))
        journaled = ArgoSubmitter(journaled=True).submit(_define_workflow("same"))
        assert journaled.phase == plain.phase
        assert {n: s.status for n, s in journaled.steps.items()} == {
            n: s.status for n, s in plain.steps.items()
        }
        assert journaled.finish_time == plain.finish_time

    def test_journaled_admission_submitter_logs_decisions(self):
        from repro.core.submitter import AdmissionSubmitter

        submitter = AdmissionSubmitter(journaled=True)
        record = submitter.submit(_define_workflow("decided"))
        assert record.phase == WorkflowPhase.SUCCEEDED
        kinds = [r.kind for r in submitter.journal.stream_records("decided")]
        # Decision log and step events share one ordered stream.
        assert "admission-admitted" in kinds
        assert "admission-placed" in kinds
        assert "admission-finished" in kinds
        assert "submitted" in kinds
        assert "workflow-finished" in kinds
        assert kinds.index("admission-placed") < kinds.index("submitted")

    def test_journaled_flag_rejects_unjournaled_injection(self):
        import pytest

        from repro.core.submitter import AdmissionSubmitter, default_multicluster

        with pytest.raises(ValueError, match="no journal"):
            ArgoSubmitter(operator=default_environment(), journaled=True)
        with pytest.raises(ValueError, match="no journal"):
            AdmissionSubmitter(pipeline=default_multicluster(), journaled=True)

    def test_facade_exports_journal_surface(self):
        from repro import couler as facade

        assert "Journal" in facade.__all__
        assert "ShardedOperatorFleet" in facade.__all__
        assert facade.Journal is not None
        assert facade.JournalRecord is not None
