"""Unit tests for the submitters."""

from repro import core as couler
from repro.core.submitter import (
    AirflowSubmitter,
    ArgoSubmitter,
    SubmissionResult,
    TektonSubmitter,
    default_environment,
)
from repro.engine.status import WorkflowPhase


def _define_workflow(name: str = "sub-test"):
    couler.reset_context(name)
    first = couler.run_container(image="prep:v1", step_name="prep")
    couler.run_container(image="train:v1", step_name="train", input=first)
    return couler.workflow_ir()


class TestArgoSubmitter:
    def test_submit_runs_to_completion(self):
        ir = _define_workflow()
        submitter = ArgoSubmitter()
        record = submitter.submit(ir)
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert submitter.last_manifest["kind"] == "Workflow"

    def test_shared_operator_across_submissions(self):
        operator = default_environment()
        submitter = ArgoSubmitter(operator=operator)
        first = submitter.submit(_define_workflow("wf-a"))
        second = submitter.submit(_define_workflow("wf-b"))
        assert first.phase == WorkflowPhase.SUCCEEDED
        assert second.phase == WorkflowPhase.SUCCEEDED

    def test_couler_run_uses_submitter(self):
        couler.reset_context("via-run")
        couler.run_container(image="x", step_name="s")
        record = couler.run(submitter=ArgoSubmitter())
        assert record.phase == WorkflowPhase.SUCCEEDED


class TestCodeGeneratingSubmitters:
    def test_airflow_submitter_returns_source(self):
        result = AirflowSubmitter().submit(_define_workflow())
        assert isinstance(result, SubmissionResult)
        assert result.engine == "airflow"
        assert "DAG(" in result.payload
        assert result.record is None

    def test_airflow_submitter_can_simulate(self):
        result = AirflowSubmitter(simulate=True).submit(_define_workflow())
        assert result.record.phase == WorkflowPhase.SUCCEEDED

    def test_tekton_submitter_returns_manifests(self):
        result = TektonSubmitter().submit(_define_workflow())
        assert result.engine == "tekton"
        assert result.payload["pipeline"]["kind"] == "Pipeline"
        assert result.payload["pipelineRun"]["kind"] == "PipelineRun"
