"""Journal-backed engine: append semantics, replay, and equivalence.

The properties the journal exists to provide:

1. Idempotent appends (outbox semantics) — duplicate delivery of an
   ``event_id`` cannot double-apply an event.
2. Prefix consistency — materializing from any prefix equals
   materializing the full stream capped at that sequence number, and
   every prefix yields a resumable record (no step left Running).
3. Journaled ≡ in-memory — attaching a journal to the operator changes
   nothing about execution (fingerprints identical over the fuzzer
   corpus), and a fresh operator recovers purely by replay.
"""

import pytest

from repro.engine.journal import (
    REPLICA_LOST_ERR,
    Journal,
    JournalError,
    JournalRecord,
    demote_running_steps,
)
from repro.engine.operator import WorkflowOperator
from repro.engine.retry import INFRA_PATTERNS, FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
    executable_from_dict,
    executable_to_dict,
)
from repro.engine.status import StepStatus, WorkflowPhase, WorkflowRecord
from repro.k8s.cluster import Cluster
from repro.obs.metrics import MetricsRegistry
from repro.verify.generator import generate_ir
from repro.verify.oracles import STOCHASTIC_CONFIG, _execute

GB = 2**30


def _fp(record):
    """Full record fingerprint (ir-independent): everything replay must
    reproduce except float charge fields (refund-path arithmetic is not
    bit-identical to fold arithmetic; charges are compared approx)."""
    return (
        record.name,
        record.phase.value,
        record.submit_time,
        record.finish_time,
        tuple(sorted(record.results.items())),
        tuple(
            (
                name,
                step.status.value,
                step.attempts,
                step.infra_failures,
                step.start_time,
                step.finish_time,
                step.cache_hits,
                step.cache_misses,
                step.last_error,
            )
            for name, step in sorted(record.steps.items())
        ),
    )


def _pipeline(name: str = "pipe", steps: int = 3, flaky: bool = False):
    wf = ExecutableWorkflow(name=name)
    previous = None
    for index in range(steps):
        wf.add_step(
            ExecutableStep(
                name=f"s{index}",
                duration_s=20.0,
                dependencies=[] if previous is None else [previous],
                failure=FailureProfile(rate=0.5 if flaky and index == 1 else 0.0,
                                       pattern="NetworkTimeoutErr"),
            )
        )
        previous = f"s{index}"
    return wf


def _journaled_operator(journal=None, seed=0, **kwargs):
    clock = SimClock()
    cluster = Cluster.uniform("jrnl", 2, cpu_per_node=8.0, memory_per_node=32 * GB)
    operator = WorkflowOperator(
        clock, cluster, seed=seed, journal=journal, **kwargs
    )
    return clock, operator


class TestAppend:
    def test_seq_is_contiguous_and_ordered(self):
        journal = Journal()
        for index in range(5):
            journal.append("wf", "submitted", float(index))
        assert [r.seq for r in journal.records()] == list(range(5))

    def test_duplicate_event_id_is_dropped(self):
        journal = Journal()
        first = journal.append("wf", "attempt-started", 1.0, event_id="wf:start:a:1")
        dup = journal.append("wf", "attempt-started", 1.0, event_id="wf:start:a:1")
        assert first is not None
        assert dup is None
        assert len(journal) == 1

    def test_duplicate_delivery_does_not_change_materialization(self):
        """Outbox semantics end-to-end: redeliver every event, same record."""
        wf = _pipeline()
        journal = Journal()
        clock, operator = _journaled_operator(journal=journal)
        operator.submit(wf)
        operator.run_to_completion()
        before = _fp(journal.materialize(wf.name))
        for record in journal.records():
            if record.event_id is not None:
                assert journal.append(
                    record.stream, record.kind, record.at,
                    dict(record.payload), event_id=record.event_id,
                ) is None
        assert _fp(journal.materialize(wf.name)) == before

    def test_records_are_immutable(self):
        journal = Journal()
        record = journal.append("wf", "submitted", 0.0)
        with pytest.raises(AttributeError):
            record.kind = "mutated"

    def test_metrics_count_appends_by_kind(self):
        metrics = MetricsRegistry()
        journal = Journal(metrics=metrics)
        journal.append("wf", "submitted", 0.0)
        journal.append("wf", "attempt-started", 1.0)
        counter = metrics.get("journal_records_total")
        assert counter.value(kind="submitted") == 1
        assert counter.value(kind="attempt-started") == 1


class TestSerialization:
    def test_record_json_roundtrip(self):
        record = JournalRecord(
            seq=3, stream="wf", kind="attempt-failed", at=12.5,
            payload={"step": "a", "infra": True}, event_id="wf:fail:a:1",
        )
        assert JournalRecord.from_json(record.to_json()) == record

    def test_jsonl_dump_load_roundtrip(self, tmp_path):
        wf = _pipeline()
        journal = Journal()
        clock, operator = _journaled_operator(journal=journal)
        operator.submit(wf)
        operator.run_to_completion()
        path = tmp_path / "journal.jsonl"
        count = journal.dump(str(path))
        reloaded = Journal.load(str(path))
        assert count == len(journal) == len(reloaded)
        assert reloaded.records() == journal.records()
        assert (
            _fp(reloaded.materialize(wf.name))
            == _fp(journal.materialize(wf.name))
        )

    def test_spec_embedded_in_first_submission(self):
        wf = _pipeline()
        journal = Journal()
        clock, operator = _journaled_operator(journal=journal)
        operator.submit(wf)
        operator.run_to_completion()
        rebuilt = journal.workflow_spec(wf.name)
        assert executable_to_dict(rebuilt) == executable_to_dict(wf)

    def test_spec_dict_roundtrip_is_exact(self):
        ir = generate_ir(11, STOCHASTIC_CONFIG)
        wf = ir.to_executable()
        assert executable_to_dict(
            executable_from_dict(executable_to_dict(wf))
        ) == executable_to_dict(wf)


class TestMaterialize:
    def test_unknown_stream_is_none(self):
        assert Journal().materialize("ghost") is None

    def test_stream_without_submission_raises(self):
        journal = Journal()
        journal.append("wf", "admission-admitted", 0.0, {"user": "u"})
        assert journal.materialize("wf") is None
        with pytest.raises(JournalError):
            journal.materialize_into("wf", WorkflowRecord(name="wf"))

    def test_admission_markers_carry_no_record_state(self):
        wf = _pipeline()
        journal = Journal()
        clock, operator = _journaled_operator(journal=journal)
        operator.submit(wf)
        operator.run_to_completion()
        plain = _fp(journal.materialize(wf.name))
        journal.append(wf.name, "admission-preempted", 999.0, {"user": "u"})
        journal.append(wf.name, "checkpointed", 999.0, {"reason": "noop"})
        assert _fp(journal.materialize(wf.name)) == plain

    def test_unsettled_attempt_folds_as_lost(self):
        """attempt-started with no settle record = hard-killed replica."""
        wf = _pipeline(steps=1)
        journal = Journal()
        journal.append(
            wf.name, "submitted", 0.0, {"spec": executable_to_dict(wf)}
        )
        journal.append(wf.name, "attempt-started", 1.0, {"step": "s0", "attempt": 1})
        record = journal.materialize(wf.name)
        step = record.steps["s0"]
        assert step.status == StepStatus.PENDING  # demoted, resumable
        assert step.attempts == 1  # the attempt happened
        assert step.infra_failures == 1  # budget-free loss
        assert step.last_error == REPLICA_LOST_ERR
        assert step.fetch_seconds == 0.0 and step.compute_seconds == 0.0

    def test_replica_lost_is_an_infra_pattern(self):
        assert REPLICA_LOST_ERR in INFRA_PATTERNS

    def test_demote_running_steps_centralizes_the_invariant(self):
        record = WorkflowRecord(name="wf")
        record.step("a").status = StepStatus.RUNNING
        record.step("b").status = StepStatus.SUCCEEDED
        assert demote_running_steps(record) == ["a"]
        assert record.steps["a"].status == StepStatus.PENDING
        assert record.steps["b"].status == StepStatus.SUCCEEDED


class TestPrefixReplay:
    def _stormy_journal(self, seed: int = 3):
        """A journal with failures, a restart, and a completion in it."""
        wf = _pipeline(name=f"storm-{seed}", steps=4, flaky=True)
        journal = Journal()
        clock, operator = _journaled_operator(
            journal=journal,
            seed=seed,
            retry_policy=RetryPolicy(limit=6),
            failure_injector=FailureInjector(seed=seed, retryable_fraction=1.0),
        )
        record = operator.submit(wf)
        clock.run(until=30.0)
        operator.simulate_restart(downtime=5.0)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        return wf, journal, record

    def test_every_prefix_is_consistent_and_resumable(self):
        """prefix(n) ≡ upto_seq=n-1, and no prefix leaves a step Running."""
        wf, journal, _ = self._stormy_journal()
        for n in range(len(journal) + 1):
            via_prefix = journal.prefix(n).materialize(wf.name)
            via_cap = journal.materialize(wf.name, upto_seq=n - 1) if n else None
            if via_prefix is None:
                assert via_cap is None
                continue
            assert (
                _fp(via_prefix)
                == _fp(via_cap)
            )
            assert not any(
                step.status == StepStatus.RUNNING
                for step in via_prefix.steps.values()
            )

    def test_full_replay_matches_live_record(self):
        wf, journal, live = self._stormy_journal()
        replayed = journal.materialize(wf.name)
        assert _fp(replayed) == _fp(live)
        # Settled charges replay too (approx: refund-path float order differs).
        for name, step in live.steps.items():
            assert replayed.steps[name].fetch_seconds == pytest.approx(
                step.fetch_seconds
            )
            assert replayed.steps[name].compute_seconds == pytest.approx(
                step.compute_seconds
            )

    def test_attempt_counts_are_monotonic_over_prefixes(self):
        wf, journal, _ = self._stormy_journal()
        last = {}
        for n in range(1, len(journal) + 1):
            record = journal.prefix(n).materialize(wf.name)
            if record is None:
                continue
            for name, step in record.steps.items():
                assert step.attempts >= last.get(name, 0)
                last[name] = step.attempts


class TestJournaledEqualsInMemory:
    @pytest.mark.parametrize("seed", range(25))
    def test_fingerprints_identical_over_fuzzer_corpus(self, seed):
        """The journal is pure observation: attaching it changes nothing."""
        ir = generate_ir(seed, STOCHASTIC_CONFIG)
        plain = _execute(ir, seed)
        journaled = _execute(ir, seed, journal=Journal())
        assert journaled.data == plain.data

    def test_default_off_means_no_journal(self):
        clock, operator = _journaled_operator()
        assert operator.journal is None
        operator.submit(_pipeline())
        operator.run_to_completion()  # nothing to append to, nothing raised


class TestResumeFromJournal:
    def test_fresh_operator_resumes_from_journal_alone(self):
        """Kill the engine hard; a replica that never saw the submission
        finishes the workflow from the journal."""
        wf = _pipeline(steps=4)
        journal = Journal()
        clock, operator = _journaled_operator(journal=journal)
        operator.submit(wf)
        clock.run(until=30.0)  # mid-flight: s1 running
        killed = operator.hard_kill()
        assert killed == [wf.name]
        # Same clock and cluster, brand-new operator: no shared state.
        replacement = WorkflowOperator(
            clock, operator.cluster, seed=0, journal=journal
        )
        resumed = replacement.resume_from_journal()
        assert resumed == [wf.name]
        replacement.run_to_completion()
        record = journal.materialize(wf.name)
        assert record.phase == WorkflowPhase.SUCCEEDED
        # The attempt lost to the kill is visible in the accounting.
        assert sum(s.infra_failures for s in record.steps.values()) >= 1

    def test_resume_requires_a_journal(self):
        clock, operator = _journaled_operator()
        with pytest.raises(ValueError):
            operator.resume_from_journal()

    def test_terminal_streams_are_not_resumed(self):
        wf = _pipeline()
        journal = Journal()
        clock, operator = _journaled_operator(journal=journal)
        operator.submit(wf)
        operator.run_to_completion()
        replacement = WorkflowOperator(
            clock, operator.cluster, seed=0, journal=journal
        )
        assert replacement.resume_from_journal() == []
