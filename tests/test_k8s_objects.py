"""Unit tests for API objects, pods and CRD helpers."""


from repro.k8s.objects import (
    APIObject,
    ObjectMeta,
    Pod,
    PodPhase,
    crd_yaml_size,
    make_crd,
)
from repro.k8s.resources import ResourceQuantity


class TestObjectMeta:
    def test_round_trip(self):
        meta = ObjectMeta(
            name="x", namespace="prod", labels={"a": "1"}, annotations={"b": "2"},
            uid="u-1",
        )
        restored = ObjectMeta.from_dict(meta.to_dict())
        assert restored == ObjectMeta(
            name="x", namespace="prod", labels={"a": "1"},
            annotations={"b": "2"}, uid="u-1",
        )

    def test_minimal_dict(self):
        meta = ObjectMeta.from_dict({"name": "y"})
        assert meta.namespace == "default"
        assert meta.labels == {}


class TestAPIObject:
    def test_key_format(self):
        obj = make_crd("Workflow", "wf-1", spec={})
        assert obj.key == "Workflow/default/wf-1"

    def test_round_trip(self):
        obj = make_crd("Workflow", "wf", spec={"entrypoint": "main"},
                       annotations={"k": "v"})
        restored = APIObject.from_dict(obj.to_dict())
        assert restored.kind == "Workflow"
        assert restored.api_version == "argoproj.io/v1alpha1"
        assert restored.spec == {"entrypoint": "main"}
        assert restored.metadata.annotations == {"k": "v"}

    def test_serialized_size_grows_with_spec(self):
        small = make_crd("Workflow", "a", spec={})
        big = make_crd("Workflow", "a", spec={"blob": "x" * 1000})
        assert big.serialized_size() > small.serialized_size() + 900

    def test_to_dict_deep_copies(self):
        obj = make_crd("Workflow", "a", spec={"nested": {"v": 1}})
        dumped = obj.to_dict()
        dumped["spec"]["nested"]["v"] = 99
        assert obj.spec["nested"]["v"] == 1


class TestPod:
    def test_lifecycle_fields(self):
        pod = Pod("p", requests=ResourceQuantity(cpu=1.0))
        assert pod.phase == PodPhase.PENDING
        assert not pod.phase.is_terminal()
        pod.phase = PodPhase.RUNNING
        pod.node_name = "node-1"
        assert pod.spec["nodeName"] == "node-1"
        pod.phase = PodPhase.SUCCEEDED
        assert pod.phase.is_terminal()

    def test_labels_and_annotations(self):
        pod = Pod("p", labels={"workflow": "w"}, annotations={"sim/x": "1"})
        assert pod.metadata.labels["workflow"] == "w"
        assert pod.to_dict()["metadata"]["annotations"]["sim/x"] == "1"


class TestCrdYamlSize:
    def test_matches_yaml_dump_length(self):
        import yaml

        manifest = make_crd("Workflow", "a", spec={"steps": list(range(50))}).to_dict()
        assert crd_yaml_size(manifest) == len(
            yaml.safe_dump(manifest, sort_keys=False).encode("utf-8")
        )
