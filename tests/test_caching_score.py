"""Unit tests for the caching importance factor (Eqs. 3-6)."""

import math

import pytest

from repro.caching.score import ArtifactScorer, ScoreWeights, WorkflowGraphIndex
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _pipeline_workflow() -> ExecutableWorkflow:
    """load -> pre -> {t0, t1, t2} ; each t consumes pre's output."""
    wf = ExecutableWorkflow(name="w")
    loaded = ArtifactSpec(uid="w/load/out", size_bytes=2 * GB)
    pre = ArtifactSpec(uid="w/pre/out", size_bytes=GB)
    wf.add_step(
        ExecutableStep(
            name="load", duration_s=100, requests=ResourceQuantity(cpu=2), outputs=[loaded]
        )
    )
    wf.add_step(
        ExecutableStep(
            name="pre",
            duration_s=200,
            requests=ResourceQuantity(cpu=4),
            dependencies=["load"],
            inputs=[loaded],
            outputs=[pre],
        )
    )
    for index in range(3):
        ckpt = ArtifactSpec(uid=f"w/t{index}/ckpt", size_bytes=GB)
        wf.add_step(
            ExecutableStep(
                name=f"t{index}",
                duration_s=500,
                requests=ResourceQuantity(cpu=4),
                dependencies=["pre"],
                inputs=[pre],
                outputs=[ckpt],
            )
        )
    return wf


@pytest.fixture()
def scorer() -> ArtifactScorer:
    index = WorkflowGraphIndex()
    index.register(_pipeline_workflow())
    return ArtifactScorer(index=index, weights=ScoreWeights(alpha=1.5, beta=1.0))


class TestReconstructionCost:
    def test_deeper_artifacts_cost_more(self, scorer):
        never = lambda uid: False  # noqa: E731
        shallow = scorer.reconstruction_cost("w/load/out", never)
        deep = scorer.reconstruction_cost("w/pre/out", never)
        assert deep > shallow > 0

    def test_truncated_at_cached_predecessors(self, scorer):
        never = lambda uid: False  # noqa: E731
        cached_upstream = lambda uid: uid == "w/load/out"  # noqa: E731
        full = scorer.reconstruction_cost("w/t0/ckpt", never)
        truncated = scorer.reconstruction_cost("w/t0/ckpt", cached_upstream)
        assert truncated < full


class TestReuseValue:
    def test_shared_artifact_has_higher_reuse(self, scorer):
        assert scorer.reuse_value("w/pre/out") > scorer.reuse_value("w/t0/ckpt")

    def test_unconsumed_artifact_has_zero_reuse(self, scorer):
        # Checkpoints have no consumers in this workflow.
        assert scorer.reuse_value("w/t0/ckpt") == 0.0

    def test_done_consumers_drop_out(self, scorer):
        before = scorer.reuse_value("w/pre/out")
        scorer.index.mark_done("w/t0")
        scorer.index.mark_done("w/t1")
        after = scorer.reuse_value("w/pre/out")
        assert after < before
        for step in ("w/t2",):
            scorer.index.mark_done(step)
        assert scorer.reuse_value("w/pre/out") == 0.0


class TestCacheCost:
    def test_scaled_by_configured_unit(self, scorer):
        assert scorer.cache_cost("w/pre/out") == pytest.approx(1.0)
        assert scorer.cache_cost("w/load/out") == pytest.approx(2.0)


class TestImportance:
    def test_matches_equation_six(self, scorer):
        uid = "w/pre/out"
        never = lambda _uid: False  # noqa: E731
        weights = scorer.weights
        expected = (
            weights.alpha * math.log1p(scorer.reconstruction_cost(uid, never))
            + weights.beta * scorer.reuse_value(uid) ** 2
            - math.exp(-scorer.cache_cost(uid))
        )
        assert scorer.importance(uid) == pytest.approx(expected)

    def test_ablation_switches_remove_terms(self):
        index = WorkflowGraphIndex()
        index.register(_pipeline_workflow())
        no_reuse = ArtifactScorer(index=index, weights=ScoreWeights(use_reuse=False))
        full = ArtifactScorer(index=index, weights=ScoreWeights())
        assert no_reuse.importance("w/pre/out") < full.importance("w/pre/out")

    def test_breakdown_keys(self, scorer):
        breakdown = scorer.breakdown("w/pre/out")
        assert set(breakdown) == {"L", "F", "V", "I"}


class TestCrossWorkflowIndex:
    def test_consumers_accumulate_across_workflows(self):
        index = WorkflowGraphIndex()
        index.register(_pipeline_workflow())
        rerun = ExecutableWorkflow(name="rerun")
        pre = ArtifactSpec(uid="w/pre/out", size_bytes=GB)
        rerun.add_step(
            ExecutableStep(name="t9", duration_s=100, inputs=[pre])
        )
        index.register(rerun)
        scorer = ArtifactScorer(index=index)
        assert "rerun/t9" in index.consumers["w/pre/out"]
        assert scorer.reuse_value("w/pre/out") > 0
