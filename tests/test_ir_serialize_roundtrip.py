"""Property-style roundtrip tests for the IR wire format.

Seeded stdlib ``random`` only (no extra dependencies): randomized
``WorkflowIR`` instances — including the values that historically broke
quantity-string serialization, like sub-millicore CPUs and non-decimal
fractions — must survive ``ir_to_dict`` → JSON → ``ir_from_dict`` with
every field intact.
"""

import json
import random

import pytest

from repro.ir.graph import WorkflowIR
from repro.ir.nodes import ArtifactDecl, ArtifactStorage, IRNode, OpKind, SimHint
from repro.ir.serialize import (
    FORMAT_VERSION,
    ir_from_dict,
    ir_from_json,
    ir_to_dict,
    ir_to_json,
)
from repro.k8s.resources import ResourceQuantity

#: CPU values that a "%.2f cores" / millicore rendering would corrupt.
_NASTY_CPUS = (0.0001, 0.0005, 1 / 3, 0.125, 2.675, 7.0, 16.5)
_NASTY_MEMORY = (0, 1, 1023, 2**20 + 1, 3 * 2**30 + 7, 2**40)


def _random_artifact(rng: random.Random, tag: str) -> ArtifactDecl:
    return ArtifactDecl(
        name=f"{tag}{rng.randrange(1000)}",
        storage=rng.choice(tuple(ArtifactStorage)),
        path=rng.choice((None, f"/data/{tag}", "/mnt/x y/z")),
        size_bytes=rng.choice((0, 1, 4096, 2**31)),
        is_global=rng.random() < 0.3,
        uid=rng.choice((None, f"wf/{tag}/u{rng.randrange(100)}")),
    )


def _random_node(rng: random.Random, index: int) -> IRNode:
    op = rng.choice(tuple(OpKind))
    return IRNode(
        name=f"n{index}",
        op=op,
        image=rng.choice(("alpine:3.6", "python:3.10", "repro/x:v9")),
        command=rng.choice(([], ["python", "run.py"], ["sh", "-c", "a&&b"])),
        args=[f"--k={rng.randrange(10)}" for _ in range(rng.randrange(3))],
        source="print('x')\n" if op == OpKind.SCRIPT else None,
        job_params=(
            {"kind": "TFJob", "num_ps": rng.randrange(3), "num_workers": 2}
            if op == OpKind.JOB
            else {}
        ),
        resources=ResourceQuantity(
            cpu=rng.choice(_NASTY_CPUS),
            memory=rng.choice(_NASTY_MEMORY),
            gpu=rng.randrange(5),
        ),
        inputs=[
            _random_artifact(rng, "in") for _ in range(rng.randrange(3))
        ],
        outputs=[
            _random_artifact(rng, "out") for _ in range(rng.randrange(3))
        ],
        when=rng.choice(
            (
                None,
                "{{flip.result}} == heads",
                "{{a.result}} != x && {{b.result}} == y",
            )
        ),
        retries=rng.choice((None, 0, 1, 7)),
        sim=SimHint(
            duration_s=rng.choice((0.0, 0.5, 59.99, 3600.0)),
            failure_rate=rng.choice((0.0, 0.001, 0.25, 1.0)),
            failure_pattern=rng.choice(("PodCrashErr", "NetworkTimeoutErr")),
            uses_gpu=rng.random() < 0.5,
            result_options=tuple(
                rng.sample(("heads", "tails", "ok"), rng.randrange(3))
            ),
        ),
    )


def _random_ir(seed: int) -> WorkflowIR:
    rng = random.Random(seed)
    ir = WorkflowIR(
        name=f"fuzz-{seed}",
        config=rng.choice(
            ({}, {"namespace": "prod", "priority": 3}, {"labels": ["a", "b"]})
        ),
    )
    count = rng.randint(1, 8)
    for index in range(count):
        ir.add_node(_random_node(rng, index))
    names = sorted(ir.nodes)
    for child_index in range(1, count):
        if rng.random() < 0.6:
            parent = names[rng.randrange(child_index)]
            ir.add_edge(parent, names[child_index])
    return ir


def _assert_nodes_equal(left: IRNode, right: IRNode) -> None:
    assert left.name == right.name
    assert left.op == right.op
    assert left.image == right.image
    assert left.command == right.command
    assert left.args == right.args
    assert left.source == right.source
    assert left.job_params == right.job_params
    assert left.resources.cpu == right.resources.cpu
    assert left.resources.memory == right.resources.memory
    assert left.resources.gpu == right.resources.gpu
    assert left.inputs == right.inputs
    assert left.outputs == right.outputs
    assert left.when == right.when
    assert left.retries == right.retries
    assert left.sim == right.sim


@pytest.mark.parametrize("seed", range(50))
def test_randomized_ir_roundtrips_every_field(seed):
    ir = _random_ir(seed)
    restored = ir_from_dict(ir_to_dict(ir))
    assert restored.name == ir.name
    assert restored.config == ir.config
    assert set(restored.nodes) == set(ir.nodes)
    assert restored.edges == ir.edges
    for name in ir.nodes:
        _assert_nodes_equal(ir.nodes[name], restored.nodes[name])


@pytest.mark.parametrize("seed", range(0, 50, 7))
def test_roundtrip_is_a_fixpoint_through_json(seed):
    """dict -> IR -> dict must be the identity, even via JSON text."""
    ir = _random_ir(seed)
    data = ir_to_dict(ir)
    assert ir_to_dict(ir_from_dict(data)) == data
    assert ir_to_dict(ir_from_json(ir_to_json(ir))) == data
    # The wire format itself must be pure JSON (no repr leakage).
    assert json.loads(json.dumps(data)) == data


def test_sub_millicore_cpu_survives():
    ir = WorkflowIR(name="tiny")
    ir.add_node(
        IRNode(name="a", op=OpKind.CONTAINER, resources=ResourceQuantity(cpu=0.0001))
    )
    restored = ir_from_dict(ir_to_dict(ir))
    assert restored.nodes["a"].resources.cpu == 0.0001


def test_legacy_string_resources_still_parse():
    """Old payloads carried quantity strings; reader must accept them."""
    data = {
        "version": FORMAT_VERSION,
        "name": "legacy",
        "nodes": [
            {
                "name": "a",
                "op": "container",
                "resources": {"cpu": "500m", "memory": "2Gi", "gpu": 1},
            }
        ],
        "edges": [],
    }
    ir = ir_from_dict(data)
    assert ir.nodes["a"].resources.cpu == 0.5
    assert ir.nodes["a"].resources.memory == 2 * 2**30
    assert ir.nodes["a"].resources.gpu == 1


def test_unsupported_version_rejected():
    with pytest.raises(ValueError, match="unsupported IR format version"):
        ir_from_dict({"version": 99, "name": "x"})
