"""Unit tests for the simulated API server: CRUD, size limits, watches."""

import pytest

from repro.k8s.apiserver import (
    APIServer,
    AlreadyExistsError,
    CRDTooLargeError,
    EventType,
    NotFoundError,
    TooManyRequestsErr,
)
from repro.k8s.objects import APIObject, ObjectMeta, make_crd


def _obj(name: str, kind: str = "ConfigMap", payload: str = "") -> APIObject:
    return APIObject(
        api_version="v1",
        kind=kind,
        metadata=ObjectMeta(name=name),
        spec={"payload": payload},
    )


class TestCrud:
    def test_create_get(self):
        api = APIServer()
        api.create(_obj("a"))
        assert api.get("ConfigMap", "a").metadata.name == "a"

    def test_create_duplicate_rejected(self):
        api = APIServer()
        api.create(_obj("a"))
        with pytest.raises(AlreadyExistsError):
            api.create(_obj("a"))

    def test_get_missing(self):
        with pytest.raises(NotFoundError):
            APIServer().get("ConfigMap", "nope")

    def test_update_bumps_resource_version(self):
        api = APIServer()
        obj = api.create(_obj("a"))
        before = obj.resource_version
        obj.spec["payload"] = "changed"
        after = api.update(obj).resource_version
        assert after > before

    def test_delete(self):
        api = APIServer()
        api.create(_obj("a"))
        api.delete("ConfigMap", "a")
        with pytest.raises(NotFoundError):
            api.get("ConfigMap", "a")

    def test_list_filters_by_kind_and_namespace(self):
        api = APIServer()
        api.create(_obj("a"))
        api.create(_obj("b", kind="Secret"))
        other_ns = _obj("c")
        other_ns.metadata.namespace = "prod"
        api.create(other_ns)
        assert [o.metadata.name for o in api.list("ConfigMap")] == ["a", "c"]
        assert [o.metadata.name for o in api.list("ConfigMap", "default")] == ["a"]


class TestCRDSizeLimit:
    def test_oversized_custom_resource_rejected(self):
        api = APIServer(crd_size_limit=500)
        big = make_crd("Workflow", "big", spec={"blob": "x" * 1000})
        with pytest.raises(CRDTooLargeError):
            api.create(big)

    def test_core_objects_not_size_checked(self):
        api = APIServer(crd_size_limit=100)
        api.create(_obj("core", payload="y" * 1000))

    def test_status_update_skips_size_check(self):
        api = APIServer(crd_size_limit=4096)
        crd = make_crd("Workflow", "wf", spec={"blob": "x" * 3000})
        api.create(crd)
        crd.status["nodes"] = {"detail": "z" * 5000}
        # A real k8s status subresource update is not bound by the spec
        # admission path; update_status must therefore succeed.
        api.update_status(crd)


class TestRateLimit:
    def test_too_many_requests(self):
        api = APIServer(rate_limit=2)
        api.create(_obj("a"))
        api.get("ConfigMap", "a")
        with pytest.raises(TooManyRequestsErr):
            api.get("ConfigMap", "a")
        api.tick()
        api.get("ConfigMap", "a")


class TestWatch:
    def test_watch_receives_lifecycle_events(self):
        api = APIServer()
        events = []
        api.watch("ConfigMap", events.append)
        obj = api.create(_obj("a"))
        api.update(obj)
        api.delete("ConfigMap", "a")
        assert [e.type for e in events] == [
            EventType.ADDED,
            EventType.MODIFIED,
            EventType.DELETED,
        ]

    def test_wildcard_watch(self):
        api = APIServer()
        events = []
        api.watch("*", events.append)
        api.create(_obj("a"))
        api.create(_obj("b", kind="Secret"))
        assert len(events) == 2
