"""Smoke tests: every experiment driver runs (reduced sizes) and reports.

The full-size runs live in benchmarks/; these keep the drivers honest in
the fast unit suite — run() produces a result report() can render, and a
couple of cheap shape checks hold.
"""

from repro.experiments import (
    ablation_split_budget,
    fig5_activity,
    fig7_caching,
    fig8_autotune,
    fig11_13_policies,
    fig14_16_cache_sizes,
    fig17_datacache,
    table2_passk,
    table3_cost,
    table4_learning,
)
from repro.experiments.caching_runner import run_scenario


class TestCachingRunner:
    def test_single_scenario_run(self):
        result = run_scenario("image-segmentation", "couler", cache_gb=20.0, iterations=2)
        assert result.all_succeeded
        assert result.total_time_s > 0
        assert 0 <= result.hit_ratio <= 1
        assert result.cpu_series and result.gpu_series


class TestDriversSmoke:
    def test_fig5(self):
        results = fig5_activity.run(sample_size=2000)
        assert "Fig 5a" in fig5_activity.report(results)

    def test_fig7_reduced(self):
        grid = fig7_caching.run(
            scenarios=["image-segmentation"], policies=["no", "couler"], iterations=2
        )
        text = fig7_caching.report(grid)
        assert "image-segmentation" in text
        results = grid["image-segmentation"]
        assert results[1].total_time_s < results[0].total_time_s

    def test_fig8(self):
        results = fig8_autotune.run(epochs=6)
        assert "cv" in results and "nlp" in results
        assert "HP:Ours" in fig8_autotune.report(results)

    def test_fig11_13_reduced(self):
        grid = fig11_13_policies.run(scenarios=["multimodal"], iterations=2)
        assert "multimodal" in fig11_13_policies.report(grid)

    def test_fig14_16_reduced(self):
        grid = fig14_16_cache_sizes.run(
            scenarios=["lm-finetune"], cache_sizes_gb=[10.0, 30.0], iterations=2
        )
        rows = grid["lm-finetune"]
        assert rows[0].policy == "no"
        assert rows[-1].hit_ratio >= rows[1].hit_ratio

    def test_fig17(self):
        results = fig17_datacache.run()
        assert results["tables"] and results["files"]
        assert "Fig 17" in fig17_datacache.report(results)

    def test_table2_reduced(self):
        results = table2_passk.run(num_tasks=6, num_samples=5, temperatures=[0.2])
        assert set(results) == {
            "GPT-3.5", "GPT-4", "GPT-3.5 + Ours", "GPT-4 + Ours"
        }
        for scores in results.values():
            assert scores[1] <= scores[5]
        assert "pass@k" in table2_passk.report(results)

    def test_table2_ablations_flag(self):
        results = table2_passk.run(
            num_tasks=4, num_samples=5, temperatures=[0.2], with_ablations=True
        )
        assert "GPT-4 + Ours (no retrieval)" in results

    def test_table3_reduced(self):
        results = table3_cost.run(num_tasks=4)
        assert results["gpt-4"]["usd"] > results["gpt-3.5-turbo"]["usd"]
        assert "Table III" in table3_cost.report(results)

    def test_table4(self):
        results = table4_learning.run()
        assert results["couler"]["minutes"] < results["airflow"]["minutes"]
        assert "Table IV" in table4_learning.report(results)

    def test_split_ablation_reduced(self):
        results = ablation_split_budget.run(step_budgets=[100, 400])
        assert results["unsplit_rejected"]
        assert "Ablation" in ablation_split_budget.report(results)
