"""Unit tests for the multi-cluster workflow queue (Appendix B.A)."""

import pytest

from repro.engine.queue import (
    DeferredDequeue,
    MultiClusterQueue,
    QueuedWorkflow,
    QuotaError,
    UserQuota,
)
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _wf(name: str, cpu: float = 4.0, gpu: int = 0) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=name)
    wf.add_step(
        ExecutableStep(
            name="s",
            duration_s=10,
            requests=ResourceQuantity(cpu=cpu, memory=GB, gpu=gpu),
        )
    )
    return wf


def _clusters():
    gpu_cluster = Cluster.uniform("gpu", 2, cpu_per_node=16, memory_per_node=64 * GB, gpu_per_node=4)
    cpu_cluster = Cluster.uniform("cpu", 4, cpu_per_node=64, memory_per_node=256 * GB)
    return [gpu_cluster, cpu_cluster]


class TestPriorityOrdering:
    def test_higher_priority_dequeues_first(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.enqueue(QueuedWorkflow(_wf("low"), user="u", priority=1))
        queue.enqueue(QueuedWorkflow(_wf("high"), user="u", priority=9))
        item, _ = queue.dequeue()
        assert item.workflow.name == "high"

    def test_fifo_within_same_priority(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.enqueue(QueuedWorkflow(_wf("first"), user="u", priority=5))
        queue.enqueue(QueuedWorkflow(_wf("second"), user="u", priority=5))
        assert queue.dequeue()[0].workflow.name == "first"

    def test_empty_queue_returns_none(self):
        assert MultiClusterQueue(clusters=_clusters()).dequeue() is None


class TestPlacement:
    def test_gpu_workflow_lands_on_gpu_cluster(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.enqueue(QueuedWorkflow(_wf("trainer", gpu=2), user="u"))
        _, cluster = queue.dequeue()
        assert cluster.name == "gpu"

    def test_cpu_workflow_prefers_freer_cluster(self):
        clusters = _clusters()
        # Pre-load the GPU cluster so its free fraction drops.
        from repro.k8s.cluster import Scheduler
        from repro.k8s.objects import Pod

        Scheduler(clusters[0]).try_schedule(
            Pod("busy", requests=ResourceQuantity(cpu=14, memory=48 * GB))
        )
        queue = MultiClusterQueue(clusters=clusters)
        queue.enqueue(QueuedWorkflow(_wf("batch"), user="u"))
        _, cluster = queue.dequeue()
        assert cluster.name == "cpu"


class TestQuota:
    def test_quota_charged_and_released(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.quotas["alice"] = UserQuota(
            user="alice", cpu_limit=8, memory_limit=4 * GB, gpu_limit=0
        )
        item = QueuedWorkflow(_wf("a", cpu=4.0), user="alice")
        queue.enqueue(item)
        queue.dequeue()
        assert queue.quotas["alice"].cpu_used == 4.0
        queue.release(item)
        assert queue.quotas["alice"].cpu_used == 0.0

    def test_over_quota_defers_instead_of_dropping(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.quotas["bob"] = UserQuota(
            user="bob", cpu_limit=2, memory_limit=GB // 2, gpu_limit=0
        )
        item = QueuedWorkflow(_wf("big", cpu=4.0), user="bob")
        queue.enqueue(item)
        popped = queue.dequeue()
        assert isinstance(popped, DeferredDequeue)
        assert popped.item is item  # handed back, not lost
        assert queue.quotas["bob"].cpu_used == 0.0  # nothing charged
        # The caller can re-enqueue once quota frees; the workflow then
        # dequeues normally.
        queue.quotas["bob"].cpu_limit = 8
        queue.quotas["bob"].memory_limit = 2 * GB
        queue.enqueue(popped.item)
        dequeued, cluster = queue.dequeue()
        assert dequeued is item
        assert cluster is not None

    def test_infeasible_workflow_raises_but_stays_queued(self):
        cpu_only = [Cluster.uniform("cpu", 2, cpu_per_node=8, memory_per_node=8 * GB)]
        queue = MultiClusterQueue(clusters=cpu_only)
        queue.enqueue(QueuedWorkflow(_wf("needs-gpu", gpu=1), user="u"))
        with pytest.raises(QuotaError):
            queue.dequeue()
        assert len(queue) == 1

    def test_remaining_fraction(self):
        quota = UserQuota(user="u", cpu_limit=10, memory_limit=100, gpu_limit=4)
        quota.charge(ResourceQuantity(cpu=5, memory=50, gpu=2))
        cpu_mem, gpu = quota.remaining_fraction()
        assert cpu_mem == pytest.approx(0.5)
        assert gpu == pytest.approx(0.5)


class TestBalanceReport:
    def test_report_covers_all_clusters(self):
        queue = MultiClusterQueue(clusters=_clusters())
        report = queue.balance_report()
        assert set(report) == {"gpu", "cpu"}
        assert all(0.0 <= v <= 1.0 for v in report.values())
