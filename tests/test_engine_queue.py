"""Unit tests for the multi-cluster workflow queue (Appendix B.A)."""

import pytest

from repro.engine.queue import (
    DeferredDequeue,
    MultiClusterQueue,
    QueuedWorkflow,
    QuotaError,
    UserQuota,
)
from repro.engine.spec import ExecutableStep, ExecutableWorkflow
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


def _wf(name: str, cpu: float = 4.0, gpu: int = 0) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=name)
    wf.add_step(
        ExecutableStep(
            name="s",
            duration_s=10,
            requests=ResourceQuantity(cpu=cpu, memory=GB, gpu=gpu),
        )
    )
    return wf


def _clusters():
    gpu_cluster = Cluster.uniform("gpu", 2, cpu_per_node=16, memory_per_node=64 * GB, gpu_per_node=4)
    cpu_cluster = Cluster.uniform("cpu", 4, cpu_per_node=64, memory_per_node=256 * GB)
    return [gpu_cluster, cpu_cluster]


class TestPriorityOrdering:
    def test_higher_priority_dequeues_first(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.enqueue(QueuedWorkflow(_wf("low"), user="u", priority=1))
        queue.enqueue(QueuedWorkflow(_wf("high"), user="u", priority=9))
        item, _ = queue.dequeue()
        assert item.workflow.name == "high"

    def test_fifo_within_same_priority(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.enqueue(QueuedWorkflow(_wf("first"), user="u", priority=5))
        queue.enqueue(QueuedWorkflow(_wf("second"), user="u", priority=5))
        assert queue.dequeue()[0].workflow.name == "first"

    def test_empty_queue_returns_none(self):
        assert MultiClusterQueue(clusters=_clusters()).dequeue() is None


class TestPlacement:
    def test_gpu_workflow_lands_on_gpu_cluster(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.enqueue(QueuedWorkflow(_wf("trainer", gpu=2), user="u"))
        _, cluster = queue.dequeue()
        assert cluster.name == "gpu"

    def test_cpu_workflow_prefers_freer_cluster(self):
        clusters = _clusters()
        # Pre-load the GPU cluster so its free fraction drops.
        from repro.k8s.cluster import Scheduler
        from repro.k8s.objects import Pod

        Scheduler(clusters[0]).try_schedule(
            Pod("busy", requests=ResourceQuantity(cpu=14, memory=48 * GB))
        )
        queue = MultiClusterQueue(clusters=clusters)
        queue.enqueue(QueuedWorkflow(_wf("batch"), user="u"))
        _, cluster = queue.dequeue()
        assert cluster.name == "cpu"


class TestQuota:
    def test_quota_charged_and_released(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.quotas["alice"] = UserQuota(
            user="alice", cpu_limit=8, memory_limit=4 * GB, gpu_limit=0
        )
        item = QueuedWorkflow(_wf("a", cpu=4.0), user="alice")
        queue.enqueue(item)
        queue.dequeue()
        assert queue.quotas["alice"].cpu_used == 4.0
        queue.release(item)
        assert queue.quotas["alice"].cpu_used == 0.0

    def test_over_quota_defers_instead_of_dropping(self):
        queue = MultiClusterQueue(clusters=_clusters())
        queue.quotas["bob"] = UserQuota(
            user="bob", cpu_limit=2, memory_limit=GB // 2, gpu_limit=0
        )
        item = QueuedWorkflow(_wf("big", cpu=4.0), user="bob")
        queue.enqueue(item)
        popped = queue.dequeue()
        assert isinstance(popped, DeferredDequeue)
        assert popped.item is item  # handed back, not lost
        assert queue.quotas["bob"].cpu_used == 0.0  # nothing charged
        # The caller can re-enqueue once quota frees; the workflow then
        # dequeues normally.
        queue.quotas["bob"].cpu_limit = 8
        queue.quotas["bob"].memory_limit = 2 * GB
        queue.enqueue(popped.item)
        dequeued, cluster = queue.dequeue()
        assert dequeued is item
        assert cluster is not None

    def test_infeasible_workflow_raises_but_stays_queued(self):
        cpu_only = [Cluster.uniform("cpu", 2, cpu_per_node=8, memory_per_node=8 * GB)]
        queue = MultiClusterQueue(clusters=cpu_only)
        queue.enqueue(QueuedWorkflow(_wf("needs-gpu", gpu=1), user="u"))
        with pytest.raises(QuotaError):
            queue.dequeue()
        assert len(queue) == 1

    def test_remaining_fraction(self):
        quota = UserQuota(user="u", cpu_limit=10, memory_limit=100, gpu_limit=4)
        quota.charge(ResourceQuantity(cpu=5, memory=50, gpu=2))
        cpu_mem, gpu = quota.remaining_fraction()
        assert cpu_mem == pytest.approx(0.5)
        assert gpu == pytest.approx(0.5)


class TestBalanceReport:
    def test_report_covers_all_clusters(self):
        queue = MultiClusterQueue(clusters=_clusters())
        report = queue.balance_report()
        assert set(report) == {"gpu", "cpu"}
        assert all(0.0 <= v <= 1.0 for v in report.values())


class TestScoringIsReadOnly:
    def test_scoring_does_not_install_default_quota(self):
        """Regression: merely scoring a user used to permanently install
        the unbounded default quota in ``self.quotas``, so a later
        explicit ``quotas[user] = ...`` setup replaced an object the
        queue was already accounting against."""
        queue = MultiClusterQueue(clusters=_clusters())
        item = QueuedWorkflow(_wf("probe"), user="newcomer")
        for cluster in queue.clusters:
            queue._score(item, cluster)
        assert "newcomer" not in queue.quotas

    def test_late_quota_setup_is_honoured_after_scoring(self):
        """The race the bug enabled: score first, configure the quota
        second — the explicit grant must be the one that's enforced."""
        queue = MultiClusterQueue(clusters=_clusters())
        item = QueuedWorkflow(_wf("probe", cpu=4.0), user="late")
        for cluster in queue.clusters:
            queue._score(item, cluster)
        queue.quotas["late"] = UserQuota(
            user="late", cpu_limit=1.0, memory_limit=GB, gpu_limit=0
        )
        placed = queue.try_place(item)
        assert isinstance(placed, DeferredDequeue)
        assert placed.kind == "quota"

    def test_release_never_installs_a_quota(self):
        queue = MultiClusterQueue(clusters=_clusters())
        item = QueuedWorkflow(_wf("ghost"), user="phantom")
        queue.release(item)
        assert "phantom" not in queue.quotas

    def test_placement_still_tracks_usage_via_default_quota(self):
        """The charge path (as opposed to scoring) still installs the
        tracking default so tenant usage is accounted."""
        queue = MultiClusterQueue(clusters=_clusters())
        item = QueuedWorkflow(_wf("worker"), user="tracked")
        result = queue.try_place(item)
        assert not isinstance(result, DeferredDequeue)
        assert queue.tenant_usage("tracked")[0] == pytest.approx(4.0)
        queue.release(item)
        assert queue.tenant_usage("tracked") == (0.0, 0, 0)


class TestScoreClamping:
    def test_fraction_clamped_to_unit_interval(self):
        clamp = MultiClusterQueue._clamped_fraction
        assert clamp(-32.0, 16.0) == 0.0
        assert clamp(8.0, 16.0) == pytest.approx(0.5)
        assert clamp(32.0, 16.0) == 1.0
        assert clamp(4.0, 0.0) == 0.0

    def test_overcommitted_cluster_scores_as_full_not_negative(self):
        """Regression: with reservations beyond capacity (the
        ``require_capacity=False`` batch path overcommits), the free
        fraction must clamp to 0 rather than skew the score with an
        unbounded negative term."""
        clusters = _clusters()
        queue = MultiClusterQueue(clusters=clusters)
        cpu_cluster = clusters[1]
        # Reserve far past the cpu cluster's total capacity.
        queue._reserved[cpu_cluster.name] = ResourceQuantity(
            cpu=cpu_cluster.capacity.cpu * 3,
            memory=cpu_cluster.capacity.memory * 3,
        )
        item = QueuedWorkflow(_wf("probe"), user="u", priority=0)
        overcommitted = queue._score(item, cpu_cluster)
        # Same tenant/priority on a genuinely *empty* cluster of the
        # same shape: the overcommitted score is exactly the zero-free
        # floor, i.e. strictly less, and by no more than the capacity
        # weight (bounded, not runaway-negative).
        empty_score = queue._score(item, clusters[0])
        assert overcommitted < empty_score
        assert empty_score - overcommitted <= queue.capacity_weight + 1e-9

class TestProtectGpu:
    def test_off_by_default(self):
        assert MultiClusterQueue(clusters=_clusters()).protect_gpu is False

    def test_cpu_work_excluded_from_gpu_cluster(self):
        queue = MultiClusterQueue(clusters=_clusters(), protect_gpu=True)
        item = QueuedWorkflow(_wf("filler", cpu=4.0), user="u")
        gpu_cluster, cpu_cluster = queue.clusters
        assert queue._score(item, gpu_cluster) is None
        assert queue._score(item, cpu_cluster) is not None
        queue.enqueue(item)
        _, placed_on = queue.dequeue()
        assert placed_on.name == "cpu"

    def test_gpu_work_still_lands_on_gpu_cluster(self):
        queue = MultiClusterQueue(clusters=_clusters(), protect_gpu=True)
        queue.enqueue(QueuedWorkflow(_wf("trainer", gpu=1), user="u"))
        _, cluster = queue.dequeue()
        assert cluster.name == "gpu"

    def test_spillover_when_no_cpu_cluster_fits(self):
        """Protection yields when CPU clusters can never hold the demand:
        a huge CPU-only workflow may still take GPU-cluster capacity."""
        clusters = [
            Cluster.uniform("gpu", 2, cpu_per_node=64, memory_per_node=256 * GB, gpu_per_node=4),
            Cluster.uniform("small-cpu", 1, cpu_per_node=8, memory_per_node=16 * GB),
        ]
        queue = MultiClusterQueue(clusters=clusters, protect_gpu=True)
        queue.enqueue(QueuedWorkflow(_wf("wide", cpu=32.0), user="u"))
        _, cluster = queue.dequeue()
        assert cluster.name == "gpu"
