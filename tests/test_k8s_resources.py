"""Unit tests for resource quantity parsing and arithmetic."""

import pytest

from repro.k8s.resources import (
    ResourceError,
    ResourceQuantity,
    format_memory,
    parse_cpu,
    parse_memory,
)


class TestParseCpu:
    def test_millicores(self):
        assert parse_cpu("500m") == 0.5
        assert parse_cpu("1500m") == 1.5

    def test_plain_numbers(self):
        assert parse_cpu(2) == 2.0
        assert parse_cpu("0.5") == 0.5
        assert parse_cpu(0) == 0.0

    def test_invalid(self):
        with pytest.raises(ResourceError):
            parse_cpu("abc")
        with pytest.raises(ResourceError):
            parse_cpu("-1")
        with pytest.raises(ResourceError):
            parse_cpu(float("inf"))


class TestParseMemory:
    def test_binary_suffixes(self):
        assert parse_memory("1Ki") == 1024
        assert parse_memory("2Gi") == 2 * 2**30
        assert parse_memory("1.5Gi") == int(1.5 * 2**30)

    def test_decimal_suffixes(self):
        assert parse_memory("500M") == 500_000_000
        assert parse_memory("1G") == 10**9

    def test_plain_bytes(self):
        assert parse_memory(1024) == 1024
        assert parse_memory("123") == 123

    def test_invalid(self):
        with pytest.raises(ResourceError):
            parse_memory("1X")
        with pytest.raises(ResourceError):
            parse_memory(-5)


class TestFormatMemory:
    def test_exact_units_round_trip(self):
        assert format_memory(2 * 2**30) == "2Gi"
        assert format_memory(512) == "512"

    def test_fractional(self):
        assert format_memory(int(1.5 * 2**30)) == "1.50Gi"


class TestResourceQuantity:
    def test_parse_mapping(self):
        quantity = ResourceQuantity.parse(
            {"cpu": "500m", "memory": "1Gi", "nvidia.com/gpu": 2}
        )
        assert quantity.cpu == 0.5
        assert quantity.memory == 2**30
        assert quantity.gpu == 2

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ResourceError):
            ResourceQuantity.parse({"cpus": 1})

    def test_parse_empty(self):
        assert ResourceQuantity.parse(None).is_zero()
        assert ResourceQuantity.parse({}).is_zero()

    def test_arithmetic(self):
        a = ResourceQuantity(cpu=2, memory=100, gpu=1)
        b = ResourceQuantity(cpu=1, memory=60, gpu=0)
        total = a + b
        assert (total.cpu, total.memory, total.gpu) == (3, 160, 1)
        diff = a - b
        assert (diff.cpu, diff.memory, diff.gpu) == (1, 40, 1)

    def test_subtraction_clamps_at_zero(self):
        small = ResourceQuantity(cpu=1)
        big = ResourceQuantity(cpu=5, memory=10, gpu=2)
        diff = small - big
        assert diff.is_zero()

    def test_fits_within(self):
        request = ResourceQuantity(cpu=2, memory=100)
        assert request.fits_within(ResourceQuantity(cpu=2, memory=100))
        assert not request.fits_within(ResourceQuantity(cpu=1.9, memory=100))

    def test_fits_within_absorbs_float_drift(self):
        capacity = ResourceQuantity(cpu=1.0)
        request = ResourceQuantity(cpu=0.1 + 0.2 + 0.7)  # 1.0000000000000002
        assert request.fits_within(capacity)

    def test_negative_rejected(self):
        with pytest.raises(ResourceError):
            ResourceQuantity(cpu=-1)

    def test_to_dict_round_trip(self):
        original = ResourceQuantity(cpu=1.5, memory=2 * 2**30, gpu=1)
        assert ResourceQuantity.parse(original.to_dict()) == original

    def test_to_dict_integer_cpu(self):
        assert ResourceQuantity(cpu=2.0).to_dict() == {"cpu": "2"}
        assert ResourceQuantity(cpu=0.25).to_dict() == {"cpu": "250m"}
