"""Tests for the two remaining Sec. II.D optimizations: resource-request
right-sizing and cached-step skipping (reuse of intermediate results)."""

import pytest

from repro.caching.manager import CacheManager
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.engine.status import StepStatus, WorkflowPhase
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.ir.rightsizing import HistoricalProfiles, ResourceRightSizingPass
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

GB = 2**30


class TestHistoricalProfiles:
    def test_recommendation_needs_min_samples(self):
        profiles = HistoricalProfiles(min_samples=3)
        profiles.record("img", 1.0, GB)
        profiles.record("img", 1.2, GB)
        assert profiles.recommendation("img") is None
        profiles.record("img", 1.1, GB)
        assert profiles.recommendation("img") is not None

    def test_recommendation_is_quantile_with_headroom(self):
        profiles = HistoricalProfiles(quantile=0.95, headroom=1.2, min_samples=5)
        for cpu in (1.0, 1.0, 1.0, 1.0, 2.0):
            profiles.record("img", cpu, GB)
        rec = profiles.recommendation("img")
        assert rec.cpu == pytest.approx(2.0 * 1.2)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            HistoricalProfiles().record("img", -1.0, 0)


class TestRightSizingPass:
    def _profiles(self) -> HistoricalProfiles:
        profiles = HistoricalProfiles(min_samples=5, headroom=1.0)
        for _ in range(10):
            profiles.record("fat-image:v1", 2.0, 2 * GB)
        return profiles

    def _ir(self, cpu: float, memory: int) -> WorkflowIR:
        ir = WorkflowIR(name="rs")
        ir.add_node(
            IRNode(
                name="step",
                op=OpKind.CONTAINER,
                image="fat-image:v1",
                resources=ResourceQuantity(cpu=cpu, memory=memory, gpu=1),
                sim=SimHint(duration_s=10),
            )
        )
        return ir

    def test_over_request_shrunk(self):
        ir = self._ir(cpu=16.0, memory=64 * GB)
        rs_pass = ResourceRightSizingPass(self._profiles())
        rs_pass.run(ir)
        node = ir.nodes["step"]
        assert node.resources.cpu == pytest.approx(2.0)
        assert node.resources.memory == 2 * GB
        assert node.resources.gpu == 1  # never touched
        assert len(rs_pass.rewrites) == 1

    def test_under_request_left_alone(self):
        ir = self._ir(cpu=1.0, memory=GB)
        rs_pass = ResourceRightSizingPass(self._profiles())
        rs_pass.run(ir)
        assert ir.nodes["step"].resources.cpu == 1.0
        assert not rs_pass.rewrites

    def test_unknown_image_left_alone(self):
        ir = self._ir(cpu=16.0, memory=64 * GB)
        ir.nodes["step"].image = "never-seen:v1"
        ResourceRightSizingPass(self._profiles()).run(ir)
        assert ir.nodes["step"].resources.cpu == 16.0

    def test_rightsizing_improves_packing(self):
        """Shrunk requests let independent steps run concurrently."""
        profiles = self._profiles()

        def makespan(rightsized: bool) -> float:
            ir = WorkflowIR(name="pack")
            for index in range(4):
                ir.add_node(
                    IRNode(
                        name=f"s{index}",
                        op=OpKind.CONTAINER,
                        image="fat-image:v1",
                        resources=ResourceQuantity(cpu=8.0, memory=8 * GB),
                        sim=SimHint(duration_s=100),
                    )
                )
            if rightsized:
                ResourceRightSizingPass(profiles).run(ir)
            clock = SimClock()
            cluster = Cluster.uniform("p", 1, cpu_per_node=8, memory_per_node=32 * GB)
            operator = WorkflowOperator(clock, cluster)
            record = operator.submit(ir.to_executable())
            operator.run_to_completion()
            assert record.phase == WorkflowPhase.SUCCEEDED
            return record.makespan

        assert makespan(rightsized=True) < makespan(rightsized=False)


class TestCachedStepSkip:
    def _workflow(self) -> ExecutableWorkflow:
        wf = ExecutableWorkflow(name="skip")
        out = ArtifactSpec(uid="stable/pre", size_bytes=GB)
        wf.add_step(ExecutableStep(name="pre", duration_s=100, outputs=[out]))
        wf.add_step(
            ExecutableStep(
                name="train", duration_s=50, dependencies=["pre"], inputs=[out]
            )
        )
        return wf

    def _operator(self, skip: bool):
        clock = SimClock()
        cluster = Cluster.uniform("c", 2, cpu_per_node=8, memory_per_node=32 * GB)
        manager = CacheManager(policy="all", capacity_bytes=None)
        return WorkflowOperator(
            clock, cluster, cache_manager=manager, skip_cached_steps=skip
        ), manager

    def test_step_skipped_when_outputs_cached(self):
        operator, manager = self._operator(skip=True)
        manager.on_artifact_produced(ArtifactSpec(uid="stable/pre", size_bytes=GB), 0.0)
        record = operator.submit(self._workflow())
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["pre"].status == StepStatus.CACHED
        assert record.steps["train"].status == StepStatus.SUCCEEDED
        # Skipping the 100s producer shortens the run to ~train only.
        assert record.makespan < 60

    def test_no_skip_without_flag(self):
        operator, manager = self._operator(skip=False)
        manager.on_artifact_produced(ArtifactSpec(uid="stable/pre", size_bytes=GB), 0.0)
        record = operator.submit(self._workflow())
        operator.run_to_completion()
        assert record.steps["pre"].status == StepStatus.SUCCEEDED
        assert record.makespan > 100

    def test_uncached_outputs_not_skipped(self):
        operator, _manager = self._operator(skip=True)
        record = operator.submit(self._workflow())
        operator.run_to_completion()
        assert record.steps["pre"].status == StepStatus.SUCCEEDED

    def test_whole_workflow_of_cached_steps_completes(self):
        operator, manager = self._operator(skip=True)
        manager.on_artifact_produced(ArtifactSpec(uid="stable/pre", size_bytes=GB), 0.0)
        wf = ExecutableWorkflow(name="allcached")
        wf.add_step(
            ExecutableStep(
                name="only",
                duration_s=100,
                outputs=[ArtifactSpec(uid="stable/pre", size_bytes=GB)],
            )
        )
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert record.steps["only"].status == StepStatus.CACHED
        assert record.makespan == 0.0
