"""A "production day" integration test: everything wired together.

One Couler service over one cached, failure-injected cluster runs a mix
of frontends back to back — GUI canvas, SQLFlow, the DSL, a big split
workflow — with caching, retries, monitoring and persistence all active.
This is the closest the test suite gets to the paper's deployment story.
"""

import pytest

from repro import core as couler
from repro.caching.manager import CacheManager
from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.status import WorkflowPhase
from repro.gui import churn_prediction_canvas
from repro.k8s.apiserver import APIServer
from repro.k8s.cluster import Cluster
from repro.parallelism.budget import BudgetModel
from repro.server import CoulerService
from repro.sqlflow import sql_to_ir
from repro.workloads.scenarios import SCENARIOS

GB = 2**30


@pytest.fixture()
def service() -> CoulerService:
    clock = SimClock()
    cluster = Cluster.uniform(
        "prod", 12, cpu_per_node=32, memory_per_node=128 * GB, gpu_per_node=2
    )
    manager = CacheManager(policy="couler", capacity_bytes=30 * GB)
    operator = WorkflowOperator(
        clock,
        cluster,
        cache_manager=manager,
        retry_policy=RetryPolicy(limit=3, backoff_base=5.0),
        failure_injector=FailureInjector(seed=11, retryable_fraction=1.0),
        api_server=APIServer(),
        seed=11,
    )
    return CoulerService(operator=operator, budget=BudgetModel(max_steps=25))


def test_production_day(service):
    # 1. A data scientist ships the churn canvas from the GUI.
    gui_handle = service.submit(churn_prediction_canvas().to_ir(), owner="ds-alice")
    assert gui_handle.record.phase == WorkflowPhase.SUCCEEDED

    # 2. An analyst trains a model through SQLFlow.
    sql_handle = service.submit(
        sql_to_ir(
            "SELECT * FROM iris.train TO TRAIN DNNClassifier "
            "WITH model.n_classes = 3 COLUMN a, b LABEL c INTO m"
        ),
        owner="analyst-bob",
    )
    assert sql_handle.record.phase == WorkflowPhase.SUCCEEDED

    # 3. An engineer defines a pipeline in the DSL.
    couler.reset_context("dsl-pipeline")
    prep = couler.run_container(image="prep:v1", step_name="prep")
    couler.map(
        lambda index: couler.run_container(
            image="train:v1", step_name=f"train-{index}", input=prep
        ),
        range(3),
    )
    dsl_handle = service.submit(couler.workflow_ir(), owner="eng-carol")
    assert dsl_handle.record.phase == WorkflowPhase.SUCCEEDED

    # 4. The multimodal scenario (37 pods) exceeds the 25-step budget and
    #    is split + staged transparently by the service.
    big_handle = service.submit(SCENARIOS["multimodal"].build(0), owner="ml-team")
    assert big_handle.split_parts >= 2
    assert big_handle.record.phase == WorkflowPhase.SUCCEEDED
    assert len(big_handle.record.steps) == 37

    # 5. Bookkeeping: everything persisted, monitored, cache warm.
    assert len(service.list_workflows(WorkflowPhase.SUCCEEDED)) == 4
    health = service.health()
    assert health["database_counts"]["Succeeded"] == 4
    cache_report = service.operator.cache_manager.report()
    assert cache_report["entries"] > 0
    assert cache_report["hits"] > 0
