"""Unit + integration tests for Algorithm 3 (budget, splitter, stitching)."""

import random

import pytest

from repro.backends.argo import ArgoBackend
from repro.core.submitter import default_environment
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.k8s.apiserver import APIServer, CRDTooLargeError
from repro.k8s.objects import APIObject
from repro.parallelism import (
    BudgetModel,
    SplitError,
    StagedSubmitter,
    WorkflowSplitter,
)


def _layered_ir(layers: int = 8, width: int = 12, seed: int = 3) -> WorkflowIR:
    rng = random.Random(seed)
    ir = WorkflowIR(name="layered")
    previous = []
    for layer in range(layers):
        current = []
        for index in range(width):
            name = f"l{layer}n{index}"
            ir.add_node(
                IRNode(name=name, op=OpKind.CONTAINER, image="w:v1",
                       sim=SimHint(duration_s=10))
            )
            for parent in rng.sample(previous, min(2, len(previous))):
                ir.add_edge(parent, name)
            current.append(name)
        previous = current
    return ir


class TestBudgetModel:
    def test_exact_cost_counts_steps_and_pods(self):
        ir = _layered_ir(layers=2, width=3)
        cost = BudgetModel().exact_cost(ir)
        assert cost.steps == 6
        assert cost.pods == 6
        assert cost.yaml_bytes > 0

    def test_job_nodes_count_all_pods(self):
        ir = WorkflowIR(name="j")
        ir.add_node(
            IRNode(
                name="dist",
                op=OpKind.JOB,
                image="tf",
                command=["python"],
                job_params={"num_ps": 2, "num_workers": 5},
            )
        )
        assert BudgetModel().exact_cost(ir).pods == 7

    def test_needs_split_thresholds(self):
        ir = _layered_ir(layers=2, width=3)
        assert not BudgetModel().needs_split(ir)
        assert BudgetModel(max_steps=3).needs_split(ir)
        assert BudgetModel(max_yaml_bytes=100).needs_split(ir)


class TestSplitter:
    def test_within_budget_returns_single_part(self):
        ir = _layered_ir(layers=2, width=3)
        plan = WorkflowSplitter(BudgetModel()).split(ir)
        assert plan.num_parts == 1
        assert plan.parts[0] is ir

    def test_partition_is_exact_and_edges_preserved(self):
        ir = _layered_ir()
        budget = BudgetModel(max_yaml_bytes=20_000, max_steps=25)
        plan = WorkflowSplitter(budget).split(ir)
        assert plan.num_parts > 1
        all_nodes = set()
        kept_edges = set()
        for part in plan.parts:
            all_nodes |= set(part.nodes)
            kept_edges |= part.edges
        assert all_nodes == set(ir.nodes)
        assert kept_edges | plan.cut_edges == ir.edges

    def test_every_part_within_budget(self):
        ir = _layered_ir()
        budget = BudgetModel(max_yaml_bytes=20_000, max_steps=25)
        plan = WorkflowSplitter(budget).split(ir)
        for cost in plan.costs:
            assert budget.within(cost)

    def test_part_graph_is_acyclic(self):
        ir = _layered_ir(layers=10, width=10, seed=11)
        budget = BudgetModel(max_yaml_bytes=15_000, max_steps=15)
        plan = WorkflowSplitter(budget).split(ir)
        order = plan.topological_part_order()
        assert sorted(order) == list(range(plan.num_parts))

    def test_cross_edges_respect_part_order(self):
        ir = _layered_ir()
        plan = WorkflowSplitter(BudgetModel(max_steps=20)).split(ir)
        for src, dst in plan.cross_edges:
            assert src < dst  # chunks cut along a topological order

    def test_halving_fallback_rescues_bad_estimates(self):
        # estimate_margin=0 collapses every estimate to zero bytes, so
        # the greedy pass packs the whole DAG into one "fitting" chunk.
        # Exact verification must catch the lie and halve until every
        # part genuinely compiles within the budget.
        ir = _layered_ir()
        budget = BudgetModel(max_yaml_bytes=20_000, estimate_margin=0.0)
        assert budget.needs_split(ir)
        plan = WorkflowSplitter(budget).split(ir)
        assert plan.num_parts > 1  # only the fallback could have split
        for cost in plan.costs:
            assert budget.within(cost)
        all_nodes = set()
        for part in plan.parts:
            all_nodes |= set(part.nodes)
        assert all_nodes == set(ir.nodes)

    def test_halving_fallback_preserves_topological_cuts(self):
        ir = _layered_ir(layers=6, width=8, seed=5)
        budget = BudgetModel(max_yaml_bytes=15_000, estimate_margin=0.0)
        plan = WorkflowSplitter(budget).split(ir)
        assert plan.num_parts > 1
        order = plan.topological_part_order()
        assert sorted(order) == list(range(plan.num_parts))
        for src, dst in plan.cross_edges:
            assert src < dst

    def test_cut_edge_accounting_is_exact(self):
        ir = _layered_ir()
        budget = BudgetModel(max_yaml_bytes=20_000, max_steps=25)
        plan = WorkflowSplitter(budget).split(ir)
        kept = set()
        for part in plan.parts:
            kept |= part.edges
        # Partition of the edge set: kept and cut are disjoint and
        # together reconstruct the original DAG exactly.
        assert kept & plan.cut_edges == set()
        assert kept | plan.cut_edges == ir.edges
        for parent, child in plan.cut_edges:
            assert plan.assignment[parent] != plan.assignment[child]
        # cross_edges is exactly the part-level image of cut_edges.
        assert plan.cross_edges == {
            (plan.assignment[parent], plan.assignment[child])
            for parent, child in plan.cut_edges
        }
        for parent, child in kept:
            assert plan.assignment[parent] == plan.assignment[child]

    def test_single_oversized_node_rejected(self):
        ir = WorkflowIR(name="fat")
        ir.add_node(
            IRNode(name="huge", op=OpKind.CONTAINER, image="x",
                   args=["y" * 5000], sim=SimHint(duration_s=1))
        )
        ir.add_node(IRNode(name="tiny", op=OpKind.CONTAINER, image="x"))
        ir.add_edge("huge", "tiny")
        with pytest.raises(SplitError):
            WorkflowSplitter(BudgetModel(max_yaml_bytes=2_000)).split(ir)


class TestStagedExecution:
    def test_staged_equals_monolithic_results(self):
        ir = _layered_ir()
        plan = WorkflowSplitter(BudgetModel(max_steps=25)).split(ir)
        operator = default_environment(num_nodes=16, cpu_per_node=32)
        result = StagedSubmitter(operator).execute(plan)
        assert result.succeeded
        executed = set()
        for record in result.records:
            executed |= set(record.steps)
        assert executed == set(ir.nodes)

    def test_unsplit_crd_rejected_but_parts_accepted(self):
        ir = _layered_ir(layers=10, width=14)
        manifest = ArgoBackend().compile(ir)
        api = APIServer(crd_size_limit=30_000)
        with pytest.raises(CRDTooLargeError):
            api.create(APIObject.from_dict(manifest))
        plan = WorkflowSplitter(
            BudgetModel(max_yaml_bytes=30_000, max_steps=60)
        ).split(ir)
        for part in plan.parts:
            api.create(APIObject.from_dict(ArgoBackend().compile(part)))

    def test_failed_part_aborts_dependents(self):
        from repro.engine.retry import FailureInjector
        from repro.engine.operator import WorkflowOperator
        from repro.engine.simclock import SimClock
        from repro.k8s.cluster import Cluster

        ir = WorkflowIR(name="chain")
        ir.add_node(
            IRNode(name="a", op=OpKind.CONTAINER, image="x",
                   sim=SimHint(duration_s=10, failure_rate=1.0))
        )
        ir.add_node(IRNode(name="b", op=OpKind.CONTAINER, image="x"))
        ir.add_edge("a", "b")
        plan = WorkflowSplitter(BudgetModel(max_steps=1)).split(ir)
        assert plan.num_parts == 2
        clock = SimClock()
        cluster = Cluster.uniform("c", 2, cpu_per_node=8, memory_per_node=2**35)
        operator = WorkflowOperator(
            clock, cluster,
            failure_injector=FailureInjector(seed=0, retryable_fraction=0.0),
        )
        result = StagedSubmitter(operator, use_manifests=False).execute(plan)
        assert not result.succeeded
        assert result.records[1] is None or 1 in result.aborted_parts
