"""Unit tests for pricing tables and the usage meter."""

import pytest

from repro.llm.pricing import PricingError, UsageMeter, pricing_for


class TestPricing:
    def test_known_models(self):
        assert pricing_for("gpt-4").prompt_per_1k == 0.03
        assert pricing_for("gpt-3.5-turbo").completion_per_1k == 0.002

    def test_unknown_model(self):
        with pytest.raises(PricingError):
            pricing_for("gpt-99")

    def test_cost_formula(self):
        pricing = pricing_for("gpt-4")
        assert pricing.cost(1000, 1000) == pytest.approx(0.09)

    def test_paper_numbers_consistent(self):
        """Table III: ~3.2k mostly-prompt tokens ~= $0.005 on GPT-3.5 and
        ~3.8k ~= $0.14 on GPT-4."""
        gpt35 = pricing_for("gpt-3.5-turbo").cost(2700, 500)
        gpt4 = pricing_for("gpt-4").cost(3000, 800)
        assert gpt35 == pytest.approx(0.005, rel=0.05)
        assert gpt4 == pytest.approx(0.138, rel=0.05)


class TestUsageMeter:
    def test_accumulation(self):
        meter = UsageMeter(model="gpt-4")
        meter.add(100, 50)
        meter.add(200, 25)
        assert meter.prompt_tokens == 300
        assert meter.completion_tokens == 75
        assert meter.total_tokens == 375
        assert meter.calls == 2
        assert meter.cost_usd == pytest.approx(0.3 * 0.03 + 0.075 * 0.06)

    def test_merge(self):
        a = UsageMeter(model="gpt-4")
        a.add(10, 10)
        b = UsageMeter(model="gpt-4")
        b.add(5, 5)
        a.merge(b)
        assert a.total_tokens == 30
        assert a.calls == 2
