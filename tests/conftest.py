"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import core as couler
from repro.engine.operator import WorkflowOperator
from repro.engine.simclock import SimClock
from repro.k8s.cluster import Cluster

GB = 2**30


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ snapshots instead of comparing",
    )


@pytest.fixture()
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def fresh_couler_context():
    """Every test starts (and ends) with a clean DSL context."""
    couler.reset_context()
    yield
    couler.reset_context()


@pytest.fixture()
def clock() -> SimClock:
    return SimClock()


@pytest.fixture()
def small_cluster() -> Cluster:
    return Cluster.uniform(
        "test", num_nodes=4, cpu_per_node=8.0, memory_per_node=32 * GB, gpu_per_node=1
    )


@pytest.fixture()
def operator(clock, small_cluster) -> WorkflowOperator:
    return WorkflowOperator(clock, small_cluster)
