"""Unit tests for the artifact constructors (paper Table VI)."""

from repro.core.artifacts import (
    create_gcs_artifact,
    create_git_artifact,
    create_hdfs_artifact,
    create_oss_artifact,
    create_parameter_artifact,
    create_s3_artifact,
)
from repro.ir.nodes import ArtifactStorage


class TestConstructors:
    def test_parameter_artifact(self):
        artifact = create_parameter_artifact(path="/opt/out.txt", is_global=True)
        assert artifact.storage == ArtifactStorage.PARAMETER
        assert artifact.path == "/opt/out.txt"
        assert artifact.is_global
        assert artifact.uid is None  # assigned at finalize/step creation

    def test_every_storage_class_covered(self):
        cases = {
            ArtifactStorage.HDFS: create_hdfs_artifact("/h"),
            ArtifactStorage.S3: create_s3_artifact("s3://b/k"),
            ArtifactStorage.OSS: create_oss_artifact("oss://b/k"),
            ArtifactStorage.GCS: create_gcs_artifact("gs://b/k"),
        }
        for storage, artifact in cases.items():
            assert artifact.storage == storage

    def test_git_artifact_encodes_revision(self):
        artifact = create_git_artifact("https://github.com/org/repo", revision="v1.2")
        assert artifact.storage == ArtifactStorage.GIT
        assert artifact.path == "https://github.com/org/repo@v1.2"

    def test_with_uid_is_immutable_copy(self):
        original = create_s3_artifact("s3://b/k", size_bytes=7)
        copy = original.with_uid("wf/step/out")
        assert copy.uid == "wf/step/out"
        assert original.uid is None
        assert copy.size_bytes == 7
