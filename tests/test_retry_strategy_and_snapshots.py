"""Tests for per-step retryStrategy plumbing and cache-store snapshots."""

import pytest

from repro.backends.argo import ArgoBackend
from repro.caching.artifact_store import ArtifactStore
from repro.engine.operator import WorkflowOperator
from repro.engine.retry import FailureInjector, RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import (
    ExecutableStep,
    ExecutableWorkflow,
    FailureProfile,
    SpecError,
    parse_argo_manifest,
)
from repro.engine.status import WorkflowPhase
from repro.ir.graph import WorkflowIR
from repro.ir.nodes import IRNode, OpKind, SimHint
from repro.ir.serialize import ir_from_dict, ir_to_dict
from repro.k8s.cluster import Cluster

GB = 2**30


class TestRetryStrategyPlumbing:
    def _ir(self, retries) -> WorkflowIR:
        ir = WorkflowIR(name="rw")
        ir.add_node(
            IRNode(
                name="step",
                op=OpKind.CONTAINER,
                image="x",
                retries=retries,
                sim=SimHint(duration_s=10, failure_rate=1.0),
            )
        )
        return ir

    def test_rendered_in_argo_manifest(self):
        manifest = ArgoBackend().compile(self._ir(retries=4))
        template = next(
            t for t in manifest["spec"]["templates"] if t["name"] == "step"
        )
        assert template["retryStrategy"] == {
            "limit": 4,
            "retryPolicy": "OnTransientError",
        }

    def test_absent_without_retries(self):
        manifest = ArgoBackend().compile(self._ir(retries=None))
        template = next(
            t for t in manifest["spec"]["templates"] if t["name"] == "step"
        )
        assert "retryStrategy" not in template

    def test_round_trips_through_manifest_and_serialization(self):
        ir = self._ir(retries=7)
        parsed = parse_argo_manifest(ArgoBackend().compile(ir))
        assert parsed.steps["step"].retry_limit == 7
        restored = ir_from_dict(ir_to_dict(ir))
        assert restored.nodes["step"].retries == 7
        assert ir.to_executable().steps["step"].retry_limit == 7

    def test_negative_retry_limit_rejected(self):
        with pytest.raises(SpecError):
            ExecutableStep(name="s", duration_s=1, retry_limit=-1)

    def test_per_step_limit_overrides_policy(self):
        """A step with retries=0 fails immediately even under a generous
        global policy; a sibling without an override keeps retrying."""
        clock = SimClock()
        cluster = Cluster.uniform("c", 2, cpu_per_node=8, memory_per_node=32 * GB)
        operator = WorkflowOperator(
            clock,
            cluster,
            retry_policy=RetryPolicy(limit=50),
            failure_injector=FailureInjector(seed=1, retryable_fraction=1.0),
        )
        wf = ExecutableWorkflow(name="override")
        wf.add_step(
            ExecutableStep(
                name="no-retries",
                duration_s=5,
                failure=FailureProfile(rate=1.0),
                retry_limit=0,
            )
        )
        record = operator.submit(wf)
        operator.run_to_completion()
        assert record.phase == WorkflowPhase.FAILED
        assert record.steps["no-retries"].attempts == 1


class TestStoreSnapshots:
    def test_round_trip_preserves_entries_and_recency(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 30, kind="model", now=1.0)
        store.put("b", 20, now=2.0)
        store.record_hit("a", now=9.0)
        restored = ArtifactStore.from_snapshot(store.to_snapshot())
        assert restored.used_bytes == 50
        assert restored.contains("a") and restored.contains("b")
        assert restored.entry("a").last_access == 9.0
        assert restored.entry("a").kind == "model"
        assert restored.entry("a").access_count == 1

    def test_restore_resets_stats(self):
        store = ArtifactStore(capacity_bytes=100)
        store.put("a", 10)
        store.record_miss()
        restored = ArtifactStore.from_snapshot(store.to_snapshot())
        assert restored.stats.insertions == 0
        assert restored.stats.misses == 0

    def test_insert_order_survives_for_fifo(self):
        store = ArtifactStore(capacity_bytes=100)
        for index, uid in enumerate(("first", "second", "third")):
            store.put(uid, 10, now=float(index))
        restored = ArtifactStore.from_snapshot(store.to_snapshot())
        seqs = {e.uid: e.insert_seq for e in restored.entries()}
        assert seqs["first"] < seqs["second"] < seqs["third"]

    def test_unbounded_snapshot(self):
        store = ArtifactStore(capacity_bytes=None)
        store.put("big", 10**12)
        restored = ArtifactStore.from_snapshot(store.to_snapshot())
        assert restored.capacity_bytes is None
        assert restored.contains("big")
