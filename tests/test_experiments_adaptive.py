"""Adaptive-ablation experiment smoke + cross-process reproducibility.

Satellite coverage for the controller's data diet: the per-persona hit
ratios the controller reads from ``sql_nl_pipeline`` must be
reproducible under ``PolicyConfig`` defaults across *separate OS
processes* (different ``PYTHONHASHSEED``, fresh module state) — pinned
by comparing a digest over every persona's counters, computed in two
subprocesses and in-process.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.control.policy import PolicyConfig
from repro.experiments import adaptive_ablation, sql_nl_pipeline
from repro.workloads.corpus import CorpusSpec, build_corpus

SRC_DIR = str(Path(sql_nl_pipeline.__file__).resolve().parents[2])

#: Computes {persona: hit_ratio} + digest under PolicyConfig defaults
#: and prints one canonical JSON line.  Run in subprocesses.
_PERSONA_SCRIPT = """
import hashlib, json
from repro.control.policy import PolicyConfig
from repro.experiments import sql_nl_pipeline
from repro.workloads.corpus import CorpusSpec, build_corpus

corpus = build_corpus(CorpusSpec(seed=7, size=12))
result = sql_nl_pipeline.run(
    engine="fast", cache_gb=1.0, corpus=corpus, policy=PolicyConfig()
)
personas = {
    stats.persona: {
        "hit_ratio": round(stats.hit_ratio, 6),
        "hits": stats.cache_hits,
        "misses": stats.cache_misses,
    }
    for stats in result.personas
}
text = json.dumps(personas, sort_keys=True)
digest = hashlib.sha256(text.encode()).hexdigest()
print(json.dumps({"personas": personas, "digest": digest}, sort_keys=True))
"""


def _run_in_subprocess() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PERSONA_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.mark.slow
class TestCrossProcessPersonaHitRatios:
    def test_persona_hit_ratios_digest_pinned_across_processes(self):
        first = _run_in_subprocess()
        second = _run_in_subprocess()
        assert first["digest"] == second["digest"], (
            f"persona hit ratios diverged across processes:\n"
            f"{first['personas']}\n{second['personas']}"
        )
        assert first == second

        # And the in-process run (this interpreter, warm module state)
        # lands on the same digest — no hidden global leaks in.
        corpus = build_corpus(CorpusSpec(seed=7, size=12))
        result = sql_nl_pipeline.run(
            engine="fast", cache_gb=1.0, corpus=corpus, policy=PolicyConfig()
        )
        personas = {
            stats.persona: {
                "hit_ratio": round(stats.hit_ratio, 6),
                "hits": stats.cache_hits,
                "misses": stats.cache_misses,
            }
            for stats in result.personas
        }
        text = json.dumps(personas, sort_keys=True)
        assert hashlib.sha256(text.encode()).hexdigest() == first["digest"]
        # The corpus is rerun-heavy: someone must actually hit.
        assert any(p["hits"] > 0 for p in personas.values())


@pytest.mark.slow
class TestAblationSmoke:
    def test_reduced_ablation_runs_and_is_deterministic(self):
        kwargs = dict(
            seed=1,
            tune_size=6,
            population=4,
            rounds=1,
            cache_sweep_gb=(0.25,),
            held_out_size=6,
        )
        result = adaptive_ablation.run(**kwargs)
        assert result.seed == 1
        assert set(result.headline) == set(adaptive_ablation.HEADLINE_METRICS)
        assert len(result.sweep) == 1
        assert len(result.held_out) == 1
        assert 0 <= result.wins <= len(result.headline)
        assert result.tune_evaluations >= 4
        rerun = adaptive_ablation.run(**kwargs)
        assert rerun.digest() == result.digest()

        text = adaptive_ablation.report(result)
        assert "adaptive vs static" in text
        assert "wins:" in text
