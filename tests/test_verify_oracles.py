"""Differential oracles: all green on healthy code, sharp on broken code."""

import pytest

from repro.parallelism.splitter import WorkflowSplitter
from repro.verify.generator import generate_ir
from repro.verify.oracles import (
    DETERMINISTIC_CONFIG,
    ORACLES,
    run_seed,
    run_suite,
)


def test_oracle_registry_is_complete():
    assert set(ORACLES) == {
        "submitters",
        "split",
        "cache",
        "replay",
        "backends",
        "scores",
        "fairness",
        "journal",
        "engine_fast",
        "adaptive",
    }


@pytest.mark.slow
def test_all_oracles_pass_on_sample_seeds():
    for seed in (0, 7, 13):
        for outcome in run_seed(seed):
            assert outcome.ok, f"{outcome.oracle} seed={seed}: {outcome.detail}"


def test_run_seed_rejects_unknown_oracle():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_seed(0, ["split", "nope"])


def test_run_seed_subset_runs_only_requested():
    outcomes = run_seed(1, ["backends"])
    assert [outcome.oracle for outcome in outcomes] == ["backends"]


def test_split_oracle_actually_splits():
    """The budget heuristic must force multi-part plans on real seeds —
    a split oracle that never splits verifies nothing."""
    from repro.verify.oracles import _split_budgets

    multi_part = 0
    for seed in range(10):
        ir = generate_ir(seed, DETERMINISTIC_CONFIG)
        for budget in _split_budgets(ir):
            try:
                plan = WorkflowSplitter(budget).split(ir)
            except Exception:
                continue
            if plan.num_parts >= 2:
                multi_part += 1
    assert multi_part >= 5


@pytest.mark.slow
def test_suite_report_aggregates_and_digest_is_stable():
    first = run_suite(range(3))
    second = run_suite(range(3))
    assert first.ok and second.ok
    assert first.aggregate_digest() == second.aggregate_digest()
    counts = first.counts()
    assert set(counts) == set(ORACLES)
    assert all(passed == total == 3 for passed, total in counts.values())


@pytest.mark.slow
def test_scores_oracle_sweep():
    """Tentpole acceptance: incremental ≡ from-scratch scorer over a
    wide fuzzer-seed sweep (decision logs, resident sets, breakdown
    sweeps and output fingerprints all identical)."""
    for seed in range(25):
        outcome = ORACLES["scores"].run(seed)
        assert outcome.ok, f"scores seed={seed}: {outcome.detail}"


@pytest.mark.slow
def test_fairness_oracle_sweep():
    """Tentpole acceptance: every fairness policy (and DRF with
    checkpoint preemption) is output-transparent across a wide
    fuzzer-seed sweep — scheduling reorders, results never change."""
    for seed in range(25):
        outcome = ORACLES["fairness"].run(seed)
        assert outcome.ok, f"fairness seed={seed}: {outcome.detail}"


def test_fairness_oracle_scenario_actually_contends():
    """An uncontended fleet verifies nothing: the oracle's scenario
    must produce real deferrals and (with preemption on) evictions."""
    from repro.engine.admission import AdmissionPipeline
    from repro.k8s.cluster import Cluster
    from repro.verify.oracles import _fairness_fleet

    deferrals = preemptions = 0.0
    for seed in range(5):
        fleet = _fairness_fleet(generate_ir(seed, DETERMINISTIC_CONFIG), seed)
        cluster = Cluster.uniform(
            "fair-verify",
            num_nodes=1,
            cpu_per_node=24.0,
            memory_per_node=16 * 2**30,
            gpu_per_node=6,
        )
        pipeline = AdmissionPipeline(
            [cluster],
            seed=seed,
            aging_rate=0.01,
            fairness="drf",
            tenant_weights={"t0": 2.0, "t1": 1.0, "t2": 1.0, "t3": 0.5},
            preemption=True,
        )
        for index, member in enumerate(fleet):
            pipeline.submit_at(
                index * 2.0,
                member.to_executable(),
                user=f"t{index % 4}",
                priority=(index * 3) % 7,
                slo_class="serving" if index % 2 else "batch",
            )
        pipeline.run()
        events = pipeline.metrics.get("admission_events_total")
        deferrals += events.value(event="deferral")
        preemptions += events.value(event="preemption")
    assert deferrals > 0
    assert preemptions > 0


def test_fairness_oracle_detects_output_divergence(monkeypatch):
    """The oracle must discriminate: make one policy's run lose a
    workflow's outputs and the check has to fail."""
    from repro.verify import oracles as oracles_mod
    from repro.verify.oracles import check_fairness

    original = oracles_mod._fairness_run

    def lossy(fleet, seed, fairness, preemption):
        outcomes = original(fleet, seed, fairness, preemption)
        if fairness == "drf" and not preemption:
            outcomes = [(name, "corrupted") for name, _ in outcomes[:1]] + outcomes[1:]
        return outcomes

    monkeypatch.setattr(oracles_mod, "_fairness_run", lossy)
    ir = generate_ir(0, DETERMINISTIC_CONFIG)
    outcome = check_fairness(ir, 0)
    assert not outcome.ok
    assert "drf" in outcome.detail


def test_scores_oracle_detects_divergent_scorer(monkeypatch):
    """The oracle must actually discriminate: skew the incremental
    scorer's importance and the check has to fail."""
    from repro.caching.score import IncrementalArtifactScorer
    from repro.verify.oracles import check_scores

    original = IncrementalArtifactScorer.importance

    def skewed(self, uid, is_cached=None):
        return original(self, uid, is_cached) + 1e-9

    monkeypatch.setattr(IncrementalArtifactScorer, "importance", skewed)
    ir = generate_ir(0, DETERMINISTIC_CONFIG)
    assert not check_scores(ir, 0).ok


def test_suite_fail_fast_stops_early(monkeypatch):
    from repro.verify import oracles as oracles_mod

    calls = []

    def always_fail(ir, seed):
        calls.append(seed)
        return oracles_mod.OracleOutcome("backends", seed, False, "boom")

    monkeypatch.setitem(
        oracles_mod.ORACLES,
        "backends",
        oracles_mod.Oracle("backends", DETERMINISTIC_CONFIG, always_fail),
    )
    report = run_suite(range(5), ["backends"], fail_fast=True)
    assert calls == [0]
    assert not report.ok
    assert report.failures[0].detail == "boom"


@pytest.mark.slow
def test_adaptive_oracle_sweep():
    """Tentpole acceptance: default PolicyConfig is bit-identical to no
    policy at all, and controller tunes are deterministic per seed —
    over fuzzer-generated and corpus-compiled workflows."""
    from repro.verify.oracles import check_adaptive, corpus_ir

    for seed in range(8):
        outcome = ORACLES["adaptive"].run(seed)
        assert outcome.ok, f"adaptive seed={seed}: {outcome.detail}"
    for seed in (0, 3, 17):
        outcome = check_adaptive(corpus_ir(seed), seed)
        assert outcome.ok, f"adaptive corpus seed={seed}: {outcome.detail}"


def test_adaptive_oracle_catches_semantic_policy_drift():
    """A non-default knob bundle must NOT pass the bit-identity leg —
    otherwise the oracle is vacuous.  Zeroing the Eq. 6 score weights
    reorders eviction decisions, so the fingerprint's cache counters
    move on at least one fuzzer seed."""
    from repro.control.policy import PolicyConfig
    from repro.verify.oracles import _execute
    from repro.caching.manager import CacheManager

    diverged = 0
    for seed in range(10):
        ir = generate_ir(seed, DETERMINISTIC_CONFIG)
        total = sum(
            a.size_bytes for n in ir.nodes.values() for a in n.outputs
        )
        capacity = max(4096, total // 3)
        plain = _execute(
            ir, seed,
            cache_manager=CacheManager(policy="couler", capacity_bytes=capacity),
        )
        skewed = _execute(
            ir, seed,
            cache_manager=CacheManager(
                policy="couler",
                capacity_bytes=capacity,
                policy_config=PolicyConfig(score_alpha=0.0, score_beta=0.0),
            ),
        )
        if plain.data != skewed.data:
            diverged += 1
    assert diverged > 0, (
        "zeroed score weights changed nothing on 10 seeds — the "
        "adaptive oracle's bit-identity leg would never catch drift"
    )
