"""Fault injection & recovery tests (the chaos subsystem)."""

import pytest

from repro.chaos import (
    CacheOutage,
    ChaosInjector,
    ChaosPlan,
    ChaosPlanError,
    NodeCrash,
    check_cluster,
    full_check,
)
from repro.engine.operator import WorkflowOperator
from repro.engine.retry import RetryPolicy
from repro.engine.simclock import SimClock
from repro.engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow
from repro.engine.status import StepStatus, WorkflowPhase
from repro.k8s.cluster import Cluster
from repro.k8s.resources import ResourceQuantity

pytestmark = pytest.mark.chaos

GB = 2**30


def _operator(num_nodes: int = 2, cpu: float = 8.0, **kwargs) -> WorkflowOperator:
    clock = SimClock()
    cluster = Cluster.uniform(
        "chaos", num_nodes, cpu_per_node=cpu, memory_per_node=32 * GB
    )
    return WorkflowOperator(clock, cluster, seed=0, **kwargs)


def _chain(name: str = "wf", steps: int = 2, duration: float = 60.0) -> ExecutableWorkflow:
    wf = ExecutableWorkflow(name=name)
    previous = None
    for index in range(steps):
        step_name = f"s{index}"
        wf.add_step(
            ExecutableStep(
                name=step_name,
                duration_s=duration,
                requests=ResourceQuantity(cpu=4, memory=GB),
                dependencies=[previous] if previous else [],
            )
        )
        previous = step_name
    return wf


class TestNodeCrashRecovery:
    def test_crash_requeues_without_charging_app_budget(self):
        operator = _operator(num_nodes=2)
        record = operator.submit(_chain(steps=1))
        operator.clock.run(until=10.0)
        node_name = operator.running_attempt_pods()[0].node_name
        displaced = operator.fail_node(node_name)
        assert len(displaced) == 1
        operator.clock.run()
        step = record.step("s0")
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert step.attempts == 2
        assert step.infra_failures == 1  # the crash is not an app failure
        assert check_cluster(operator.cluster) == []

    def test_single_node_outage_pends_until_recovery(self):
        operator = _operator(num_nodes=1)
        record = operator.submit(_chain(steps=1))
        operator.clock.run(until=10.0)
        operator.fail_node("chaos-node-0")
        # Recovery is a scheduled event, exactly as the injector arms it.
        operator.clock.schedule(
            90.0, lambda: operator.recover_node("chaos-node-0")
        )
        operator.clock.run()
        assert record.phase == WorkflowPhase.SUCCEEDED
        # Requeued at ~15s (flat infra backoff), bound again at 100s.
        assert record.step("s0").finish_time >= 100.0

    def test_recovered_node_is_schedulable_again(self):
        operator = _operator(num_nodes=1)
        operator.fail_node("chaos-node-0")
        assert operator.cluster.ready_nodes() == []
        operator.recover_node("chaos-node-0")
        assert len(operator.cluster.ready_nodes()) == 1


class TestEviction:
    def test_evicted_pod_requeues_and_completes(self):
        operator = _operator(num_nodes=2)
        record = operator.submit(_chain(steps=1))
        operator.clock.run(until=10.0)
        pod = operator.running_attempt_pods()[0]
        assert operator.evict_pod(pod)
        assert pod.reason == "Evicted"
        assert pod.node_name is None  # binding cleared at eviction time
        operator.clock.run()
        step = record.step("s0")
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert step.attempts == 2
        assert step.infra_failures == 1

    def test_eviction_survives_zero_retry_policy(self):
        # The legacy no-retry policy must not turn an infra eviction
        # into a terminal workflow failure: infra requeues ride their
        # own budget.
        operator = _operator(num_nodes=2, retry_policy=RetryPolicy(limit=0))
        record = operator.submit(_chain(steps=1))
        operator.clock.run(until=10.0)
        operator.evict_pod(operator.running_attempt_pods()[0])
        operator.clock.run()
        assert record.phase == WorkflowPhase.SUCCEEDED

    def test_evicting_unknown_pod_is_refused(self):
        operator = _operator()
        from repro.k8s.objects import Pod

        assert not operator.evict_pod(Pod("stranger"))


class TestOperatorRestart:
    def test_restart_resumes_from_record_snapshot(self):
        operator = _operator(num_nodes=2)
        record = operator.submit(_chain(steps=2, duration=60.0))
        # Let s0 finish (t=60), interrupt s1 mid-flight.
        operator.clock.run(until=90.0)
        assert record.step("s0").status == StepStatus.SUCCEEDED
        resumed = operator.simulate_restart(downtime=30.0)
        assert resumed == ["wf"]
        assert record.step("s1").status == StepStatus.PENDING
        operator.clock.run()
        assert record.phase == WorkflowPhase.SUCCEEDED
        # s0 was not re-executed: the resumed controller skipped it.
        assert record.step("s0").attempts == 1
        assert record.step("s1").attempts == 2
        assert record.step("s1").infra_failures == 1
        # Downtime is real: nothing finished before restart + downtime.
        assert record.finish_time >= 120.0

    def test_restart_keeps_completion_callbacks(self):
        operator = _operator(num_nodes=2)
        seen = []
        operator.submit(_chain(steps=1), on_complete=seen.append)
        operator.clock.run(until=10.0)
        operator.simulate_restart(downtime=5.0)
        operator.clock.run()
        assert len(seen) == 1
        assert seen[0].phase == WorkflowPhase.SUCCEEDED

    def test_restart_refunds_partial_charges(self):
        operator = _operator(num_nodes=2)
        record = operator.submit(_chain(steps=1, duration=100.0))
        operator.clock.run(until=40.0)
        operator.simulate_restart()
        # Only the 40 elapsed seconds stay charged; the un-run tail of
        # the interrupted attempt is refunded.
        assert record.step("s0").compute_seconds == pytest.approx(40.0)
        operator.clock.run()
        assert record.step("s0").compute_seconds == pytest.approx(140.0)


class TestCacheOutage:
    def test_outage_times_out_then_recovers(self):
        operator = _operator(num_nodes=2)
        wf = ExecutableWorkflow(name="reader")
        wf.add_step(
            ExecutableStep(
                name="ingest",
                duration_s=20.0,
                requests=ResourceQuantity(cpu=2, memory=GB),
                inputs=[ArtifactSpec(uid="raw/table", size_bytes=GB)],
            )
        )
        record = operator.submit(wf)
        operator.set_cache_outage(until=50.0)
        operator.clock.run()
        step = record.step("ingest")
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert step.infra_failures >= 1
        assert step.last_error == "CacheFetchTimeoutErr"
        assert record.finish_time > 50.0  # could not finish inside the outage

    def test_stepless_fetch_unaffected(self):
        operator = _operator(num_nodes=2)
        record = operator.submit(_chain(steps=1, duration=10.0))
        operator.set_cache_outage(until=50.0)  # no inputs: nothing to stall
        operator.clock.run()
        assert record.step("s0").infra_failures == 0
        assert record.finish_time == pytest.approx(10.0)


class TestChaosPlan:
    def test_generate_is_deterministic(self):
        nodes = [f"n{i}" for i in range(4)]
        first = ChaosPlan.generate(7, 600.0, nodes, operator_restarts=1)
        second = ChaosPlan.generate(7, 600.0, nodes, operator_restarts=1)
        assert first.ordered() == second.ordered()
        different = ChaosPlan.generate(8, 600.0, nodes, operator_restarts=1)
        assert first.ordered() != different.ordered()

    def test_rejects_bad_plans(self):
        with pytest.raises(ChaosPlanError):
            ChaosPlan([NodeCrash(at=-1.0, node="n")])
        with pytest.raises(ChaosPlanError):
            ChaosPlan([CacheOutage(at=0.0, duration=0.0)])
        with pytest.raises(ChaosPlanError):
            ChaosPlan.generate(0, 100.0, node_names=[], node_crashes=1)

    def test_injector_arms_once(self):
        operator = _operator()
        injector = ChaosInjector(operator, ChaosPlan(), seed=0)
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()


class TestAcceptanceStorm:
    def test_storm_is_deterministic_and_leak_free(self):
        from repro.experiments.robustness_runner import run

        results = run(seed=3, num_workflows=4)
        assert results["completed"] == results["total"]
        assert results["deterministic"]
        assert results["invariant_violations"] == []
        # The storm actually fired every fault kind.
        kinds = {entry["kind"] for entry in results["fault_log"]}
        assert kinds == {
            "node-crash",
            "pod-eviction",
            "cache-outage",
            "operator-restart",
        }

    def test_invariant_checker_detects_seeded_leak(self):
        operator = _operator()
        record = operator.submit(_chain(steps=1))
        operator.clock.run()
        assert record.phase == WorkflowPhase.SUCCEEDED
        assert full_check(operators=[operator]).ok
        # Corrupt the books the way a lost release would.
        operator.cluster.nodes[0].allocated = ResourceQuantity(cpu=1)
        report = full_check(operators=[operator])
        assert not report.ok
        assert any("allocated" in violation for violation in report.violations)


class TestAcceptanceJournal:
    def test_journal_gate_passes_and_is_deterministic(self):
        from repro.experiments.robustness_runner import (
            journal_ok,
            report_journal,
            run_journal,
        )

        results = run_journal(seed=3, num_workflows=4, replicas=2)
        assert journal_ok(results), report_journal(results)
        assert results["completed"] == results["total"] == 4
        assert results["kills"]  # the storm actually killed replicas
        again = run_journal(seed=3, num_workflows=4, replicas=2)
        assert again["digest"] == results["digest"]
        # The human-readable report reflects the green gates.
        report = report_journal(results)
        assert "stable" in report and "identical" in report
