"""Fault vocabulary for the chaos layer.

A chaos run is described by a :class:`ChaosPlan`: a list of fault events
pinned to virtual times.  Plans are either hand-built (tests pin exact
faults to exact instants) or generated from a seed, so the same seed
always produces the same storm — determinism is what makes a robustness
experiment comparable across runs and code changes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import ClassVar, List, Sequence, Tuple, Union


@dataclass(frozen=True)
class NodeCrash:
    """A node drops dead at ``at`` and recovers ``duration`` later."""

    at: float
    node: str
    duration: float = 60.0

    kind: ClassVar[str] = "node-crash"


@dataclass(frozen=True)
class PodEviction:
    """``count`` running pods are evicted (preemption / node pressure)."""

    at: float
    count: int = 1

    kind: ClassVar[str] = "pod-eviction"


@dataclass(frozen=True)
class CacheOutage:
    """The cache tier goes dark: fetches time out for ``duration`` s."""

    at: float
    duration: float = 30.0

    kind: ClassVar[str] = "cache-outage"


@dataclass(frozen=True)
class OperatorRestart:
    """The workflow controller dies and resumes ``downtime`` s later."""

    at: float
    downtime: float = 0.0

    kind: ClassVar[str] = "operator-restart"


Fault = Union[NodeCrash, PodEviction, CacheOutage, OperatorRestart]


class ChaosPlanError(ValueError):
    """Raised for malformed plans (negative times, unknown nodes)."""


@dataclass
class ChaosPlan:
    """An ordered storm of faults to inject into one simulation."""

    faults: List[Fault] = field(default_factory=list)

    def __post_init__(self) -> None:
        for fault in self.faults:
            if fault.at < 0:
                raise ChaosPlanError(f"fault scheduled in the past: {fault}")
            duration = getattr(fault, "duration", None)
            if duration is not None and duration <= 0:
                raise ChaosPlanError(f"non-positive duration: {fault}")

    def ordered(self) -> List[Fault]:
        """Faults in firing order (time, then kind for stable ties)."""
        return sorted(self.faults, key=lambda f: (f.at, f.kind))

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        node_names: Sequence[str],
        node_crashes: int = 1,
        evictions: int = 2,
        cache_outages: int = 1,
        operator_restarts: int = 0,
        crash_duration: Tuple[float, float] = (30.0, 120.0),
        outage_duration: Tuple[float, float] = (10.0, 60.0),
        restart_downtime: Tuple[float, float] = (5.0, 30.0),
        eviction_count: Tuple[int, int] = (1, 2),
    ) -> "ChaosPlan":
        """Build a seeded random storm over ``[5%, 85%]`` of the horizon.

        The window keeps faults away from the very start (nothing is
        running yet) and the tail (nothing left to hurt), where they
        would silently no-op and the run would not actually be stressed.
        """
        if horizon <= 0:
            raise ChaosPlanError(f"horizon must be positive, got {horizon}")
        if node_crashes > 0 and not node_names:
            raise ChaosPlanError("node crashes requested but no node names given")
        rng = random.Random(seed)

        def _when() -> float:
            return round(rng.uniform(0.05 * horizon, 0.85 * horizon), 3)

        faults: List[Fault] = []
        for _ in range(node_crashes):
            faults.append(
                NodeCrash(
                    at=_when(),
                    node=rng.choice(list(node_names)),
                    duration=round(rng.uniform(*crash_duration), 3),
                )
            )
        for _ in range(evictions):
            faults.append(
                PodEviction(at=_when(), count=rng.randint(*eviction_count))
            )
        for _ in range(cache_outages):
            faults.append(
                CacheOutage(
                    at=_when(), duration=round(rng.uniform(*outage_duration), 3)
                )
            )
        for _ in range(operator_restarts):
            faults.append(
                OperatorRestart(
                    at=_when(),
                    downtime=round(rng.uniform(*restart_downtime), 3),
                )
            )
        return cls(faults=faults)
