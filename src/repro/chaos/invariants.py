"""Conservation invariants for fault-injected simulations.

A fault storm is only a meaningful test if the engine's books still
balance afterwards.  Two families of checks:

* :func:`check_cluster` holds at *any* instant — node allocations must
  equal the sum of bound pod requests, bindings must be consistent, and
  crashed nodes must be empty.
* The quiescent checks (:func:`check_operator_idle`,
  :func:`check_queue_drained`) hold once the workload has fully
  settled — nothing may remain allocated, reserved, or charged.  A
  non-empty result here means a fault leaked resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..engine.operator import WorkflowOperator
from ..engine.queue import MultiClusterQueue
from ..k8s.cluster import Cluster
from ..k8s.resources import ResourceQuantity

_CPU_EPS = 1e-9


class InvariantError(AssertionError):
    """Raised when a conservation invariant is violated."""


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise InvariantError(
                "invariant violations:\n  " + "\n  ".join(self.violations)
            )


def _quantities_differ(left: ResourceQuantity, right: ResourceQuantity) -> bool:
    return (
        abs(left.cpu - right.cpu) > _CPU_EPS
        or left.memory != right.memory
        or left.gpu != right.gpu
    )


def check_cluster(cluster: Cluster) -> List[str]:
    """Always-valid invariants: allocation accounting and bindings."""
    violations: List[str] = []
    for node in cluster.nodes:
        bound = ResourceQuantity()
        for pod in node.pods.values():
            bound = bound + pod.requests
            if pod.node_name != node.name:
                violations.append(
                    f"pod {pod.metadata.name} hosted by {node.name} but its "
                    f"binding says {pod.node_name!r}"
                )
        if _quantities_differ(node.allocated, bound):
            violations.append(
                f"node {node.name}: allocated {node.allocated} != sum of "
                f"bound pod requests {bound}"
            )
        if not node.ready and node.pods:
            violations.append(
                f"node {node.name} is down but still hosts "
                f"{sorted(node.pods)}"
            )
    return violations


def check_operator_idle(operator: WorkflowOperator) -> List[str]:
    """Quiescent invariants: a settled operator holds nothing."""
    violations: List[str] = []
    active = operator.active_workflows()
    if active:
        violations.append(f"operator still tracks live workflows: {active}")
    waiting = operator.waiting_steps()
    if waiting:
        violations.append(f"steps still waiting for resources: {waiting}")
    allocated = operator.cluster.allocated
    if _quantities_differ(allocated, ResourceQuantity()):
        violations.append(
            f"cluster {operator.cluster.name}: {allocated} still allocated "
            "after the workload settled (leaked node allocation)"
        )
    return violations


def check_queue_drained(queue: MultiClusterQueue) -> List[str]:
    """Quiescent invariants: no residual charges or reservations."""
    violations: List[str] = []
    if len(queue):
        violations.append(f"queue still holds {len(queue)} workflows")
    if queue.reservation_underflows:
        violations.append(
            f"{queue.reservation_underflows} reservation underflow(s) "
            "(double release or lost placement)"
        )
    for cluster_name, reserved in sorted(queue._reserved.items()):
        if _quantities_differ(reserved, ResourceQuantity()):
            violations.append(
                f"cluster {cluster_name}: {reserved} still reserved "
                "(leaked placement reservation)"
            )
    for user, quota in sorted(queue.quotas.items()):
        if quota.cpu_used or quota.memory_used or quota.gpu_used:
            violations.append(
                f"user {user}: quota still charged "
                f"(cpu={quota.cpu_used}, mem={quota.memory_used}, "
                f"gpu={quota.gpu_used})"
            )
    return violations


def full_check(
    operators: Sequence[WorkflowOperator] = (),
    queue: Optional[MultiClusterQueue] = None,
    quiescent: bool = True,
) -> InvariantReport:
    """Sweep every invariant over the given components."""
    violations: List[str] = []
    for operator in operators:
        violations.extend(check_cluster(operator.cluster))
        if quiescent:
            violations.extend(check_operator_idle(operator))
    if queue is not None and quiescent:
        violations.extend(check_queue_drained(queue))
    return InvariantReport(violations=violations)
