"""Arms a :class:`~repro.chaos.faults.ChaosPlan` on a live simulation.

The injector translates plan entries into clock events that call the
operator's chaos hooks (``fail_node``, ``evict_pod``,
``set_cache_outage``, ``simulate_restart``).  Victim selection for
evictions is seeded and drawn from a name-sorted pod list, so a given
(plan, seed, workload) triple always displaces the same pods — the
whole fault storm is replayable.

Chaos events are scheduled as regular (non-daemon) events on purpose: a
node recovery *must* fire even when every live workflow is stuck
waiting for capacity, or the simulation would drain into a deadlock
with work still queued.  Faults that fire after the workload finished
are harmless no-ops.
"""

from __future__ import annotations

import random
from typing import List

from ..engine.operator import WorkflowOperator
from ..k8s.objects import Pod
from .faults import (
    CacheOutage,
    ChaosPlan,
    NodeCrash,
    OperatorRestart,
    PodEviction,
)


class ChaosInjector:
    """Schedules a plan's faults against one operator's clock."""

    def __init__(
        self, operator: WorkflowOperator, plan: ChaosPlan, seed: int = 0
    ) -> None:
        self.operator = operator
        self.plan = plan
        self._rng = random.Random(seed ^ 0xC4A05)
        self.metrics = operator.metrics
        self.tracer = operator.tracer
        self._m_faults = self.metrics.counter(
            "chaos_faults_total", "Faults injected, by kind"
        )
        self._m_displaced = self.metrics.counter(
            "chaos_pods_displaced_total",
            "Running pods displaced by chaos faults",
        )
        #: Chronological record of what actually fired (vs. planned).
        self.log: List[dict] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault on the operator's clock (once)."""
        if self._armed:
            raise RuntimeError("chaos plan is already armed")
        self._armed = True
        for fault in self.plan.ordered():
            self.operator.clock.schedule_at(
                fault.at, lambda f=fault: self._fire(f)
            )

    # ------------------------------------------------------------------ firing

    def _fire(self, fault) -> None:
        self._m_faults.inc(kind=fault.kind)
        entry = {"t": self.operator.clock.now, "kind": fault.kind}
        if isinstance(fault, NodeCrash):
            entry.update(self._fire_node_crash(fault))
        elif isinstance(fault, PodEviction):
            entry.update(self._fire_eviction(fault))
        elif isinstance(fault, CacheOutage):
            entry.update(self._fire_cache_outage(fault))
        elif isinstance(fault, OperatorRestart):
            entry.update(self._fire_restart(fault))
        else:  # pragma: no cover - plan types are closed
            raise TypeError(f"unknown fault type: {fault!r}")
        self.log.append(entry)

    def _fire_node_crash(self, fault: NodeCrash) -> dict:
        now = self.operator.clock.now
        displaced = self.operator.fail_node(fault.node)
        if displaced:
            self._m_displaced.inc(len(displaced), kind=fault.kind)
        # Root span (no parent): node downtime renders as its own track
        # in the Chrome trace, next to the workflows it disrupted.
        self.tracer.add_span(
            f"node-down:{fault.node}",
            "chaos",
            now,
            now + fault.duration,
            node=fault.node,
            displaced=len(displaced),
        )
        self.operator.clock.schedule(
            fault.duration, lambda: self.operator.recover_node(fault.node)
        )
        return {
            "node": fault.node,
            "displaced": [pod.metadata.name for pod in displaced],
            "recovers_at": now + fault.duration,
        }

    def _victims(self, count: int) -> List[Pod]:
        pods = self.operator.running_attempt_pods()  # name-sorted
        if not pods:
            return []
        return self._rng.sample(pods, min(count, len(pods)))

    def _fire_eviction(self, fault: PodEviction) -> dict:
        evicted: List[str] = []
        for pod in self._victims(fault.count):
            if self.operator.evict_pod(pod):
                evicted.append(pod.metadata.name)
                self.tracer.instant(
                    "pod-evicted",
                    "chaos",
                    self.operator.clock.now,
                    pod=pod.metadata.name,
                )
        if evicted:
            self._m_displaced.inc(len(evicted), kind=fault.kind)
        return {"evicted": evicted}

    def _fire_cache_outage(self, fault: CacheOutage) -> dict:
        now = self.operator.clock.now
        until = now + fault.duration
        self.operator.set_cache_outage(until)
        self.tracer.add_span(
            "cache-outage", "chaos", now, until, duration_s=fault.duration
        )
        return {"until": until}

    def _fire_restart(self, fault: OperatorRestart) -> dict:
        now = self.operator.clock.now
        interrupted = len(self.operator.running_attempt_pods())
        resumed = self.operator.simulate_restart(fault.downtime)
        if interrupted:
            self._m_displaced.inc(interrupted, kind=fault.kind)
        self.tracer.add_span(
            "operator-down",
            "chaos",
            now,
            now + fault.downtime,
            resumed_workflows=len(resumed),
        )
        return {"resumed": resumed, "downtime": fault.downtime}
