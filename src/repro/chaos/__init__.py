"""Seeded fault injection and recovery verification for the simulator.

The chaos layer stresses the engine the way production stresses the
real system: nodes crash and recover, pods are evicted, the cache tier
blinks out, and the workflow controller itself restarts mid-run.  All
of it is seeded and driven by the simulation clock, so a storm is
perfectly replayable — and after it passes, the invariant checker
proves no resources, reservations, or quota charges leaked.
"""

from .faults import (
    CacheOutage,
    ChaosPlan,
    ChaosPlanError,
    Fault,
    NodeCrash,
    OperatorRestart,
    PodEviction,
)
from .injector import ChaosInjector
from .invariants import (
    InvariantError,
    InvariantReport,
    check_cluster,
    check_operator_idle,
    check_queue_drained,
    full_check,
)

__all__ = [
    "CacheOutage",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosPlanError",
    "Fault",
    "InvariantError",
    "InvariantReport",
    "NodeCrash",
    "OperatorRestart",
    "PodEviction",
    "check_cluster",
    "check_operator_idle",
    "check_queue_drained",
    "full_check",
]
