"""Workflow monitoring and SRE alerting (paper Appendix B.B).

"Initially, we monitor workflow status and track the health status of
the workflow engine.  For example, we record the number of workflows
based on their status, the latency for the workflow operator to process
a workflow, etc.  This monitor metric helps the SRE to respond to the
abnormal behaviors of the workflow at the first time."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..engine.operator import WorkflowOperator
from ..engine.status import WorkflowPhase, WorkflowRecord
from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Alert:
    """One actionable SRE alert."""

    severity: str  # "warning" | "critical"
    metric: str
    message: str


@dataclass
class MonitorThresholds:
    """When the monitor pages (tuned for the simulator's scales)."""

    max_failure_rate: float = 0.10
    max_pending_latency_s: float = 600.0
    max_retry_rate: float = 0.30


@dataclass
class WorkflowMonitor:
    """Aggregates health metrics over observed workflow records."""

    thresholds: MonitorThresholds = field(default_factory=MonitorThresholds)
    #: Shared metrics registry; observed phases, error patterns and
    #: alerts are counted here so the SRE view and the experiment
    #: reports read the same numbers.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    _records: List[WorkflowRecord] = field(default_factory=list)
    #: Error-pattern occurrence counts (the abnormal-pattern catalogue).
    pattern_counts: Dict[str, int] = field(default_factory=dict)

    def observe(self, record: WorkflowRecord) -> None:
        """Ingest one (terminal or live) workflow record."""
        self._records.append(record)
        self.metrics.counter(
            "monitor_workflows_observed_total", "Workflow records ingested by phase"
        ).inc(phase=record.phase.value)
        for step in record.steps.values():
            if step.last_error:
                self.pattern_counts[step.last_error] = (
                    self.pattern_counts.get(step.last_error, 0) + 1
                )
                self.metrics.counter(
                    "monitor_error_patterns_total", "Step error patterns observed"
                ).inc(pattern=step.last_error)

    def observe_operator(self, operator: WorkflowOperator) -> None:
        """Pull the injector-side failure-pattern counters too."""
        for pattern, count in operator.failure_injector.injected.items():
            self.pattern_counts[pattern] = max(
                self.pattern_counts.get(pattern, 0), count
            )

    # ------------------------------------------------------------- metrics

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.phase.value] = counts.get(record.phase.value, 0) + 1
        return counts

    def failure_rate(self) -> float:
        terminal = [r for r in self._records if r.phase.is_terminal()]
        if not terminal:
            return 0.0
        failed = sum(1 for r in terminal if r.phase == WorkflowPhase.FAILED)
        return failed / len(terminal)

    def retry_rate(self) -> float:
        """Fraction of steps that needed more than one attempt."""
        steps = [s for r in self._records for s in r.steps.values()]
        if not steps:
            return 0.0
        retried = sum(1 for s in steps if s.attempts > 1)
        return retried / len(steps)

    def mean_scheduling_latency_s(self) -> float:
        """Mean submit -> first-step-start latency (operator health)."""
        latencies = []
        for record in self._records:
            if record.submit_time is None:
                continue
            starts = [
                s.start_time for s in record.steps.values() if s.start_time is not None
            ]
            if starts:
                latencies.append(min(starts) - record.submit_time)
        return sum(latencies) / len(latencies) if latencies else 0.0

    def top_patterns(self, limit: int = 5) -> List[tuple]:
        return sorted(
            self.pattern_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:limit]

    # -------------------------------------------------------------- alerts

    def alerts(self) -> List[Alert]:
        out: List[Alert] = []
        rate = self.failure_rate()
        if rate > self.thresholds.max_failure_rate:
            out.append(
                Alert(
                    severity="critical",
                    metric="failure_rate",
                    message=f"workflow failure rate {rate:.1%} exceeds "
                    f"{self.thresholds.max_failure_rate:.0%}",
                )
            )
        latency = self.mean_scheduling_latency_s()
        if latency > self.thresholds.max_pending_latency_s:
            out.append(
                Alert(
                    severity="warning",
                    metric="scheduling_latency",
                    message=f"mean scheduling latency {latency:.0f}s exceeds "
                    f"{self.thresholds.max_pending_latency_s:.0f}s",
                )
            )
        retries = self.retry_rate()
        if retries > self.thresholds.max_retry_rate:
            out.append(
                Alert(
                    severity="warning",
                    metric="retry_rate",
                    message=f"step retry rate {retries:.1%} exceeds "
                    f"{self.thresholds.max_retry_rate:.0%} "
                    f"(top patterns: {self.top_patterns(3)})",
                )
            )
        return out

    def health_report(self) -> dict:
        return {
            "status_counts": self.status_counts(),
            "failure_rate": self.failure_rate(),
            "retry_rate": self.retry_rate(),
            "mean_scheduling_latency_s": self.mean_scheduling_latency_s(),
            "top_patterns": self.top_patterns(),
            "alerts": [a.message for a in self.alerts()],
        }
