"""The Couler server (paper Appendix B): metadata persistence, workflow
monitoring + SRE alerting, and the restart-from-failure service flow."""

from .database import StoredWorkflow, WorkflowDatabase, WorkflowNotFoundError
from .monitor import Alert, MonitorThresholds, WorkflowMonitor
from .service import CoulerService, SubmissionError, SubmissionHandle

__all__ = [
    "Alert",
    "CoulerService",
    "MonitorThresholds",
    "StoredWorkflow",
    "SubmissionError",
    "SubmissionHandle",
    "WorkflowDatabase",
    "WorkflowMonitor",
    "WorkflowNotFoundError",
]
