"""The Couler server: the service facade of the whole system.

Production Couler runs as a gRPC service in front of the optimization
libraries (paper Appendix B).  This module reproduces that role as an
in-process facade:

- accepts IR submissions from any frontend,
- runs the optimization pass pipeline,
- applies Algorithm 3 when the compiled workflow exceeds the budget
  (splitting into a staged plan transparently),
- persists workflow metadata to the :class:`WorkflowDatabase`,
- feeds the :class:`WorkflowMonitor`,
- and implements the paper's manual-retry flow: fetch the failed
  workflow from the database, skip steps whose status is Succeeded /
  Skipped / Cached, delete the failed step state, mark the workflow
  running, and restart it from the failure point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.config import EngineConfig
from ..engine.operator import WorkflowOperator
from ..engine.status import StepStatus, WorkflowPhase, WorkflowRecord
from ..ir.graph import WorkflowIR
from ..ir.passes import PassManager
from ..parallelism.budget import BudgetModel
from ..parallelism.splitter import WorkflowSplitter
from ..parallelism.stitch import StagedSubmitter
from .database import WorkflowDatabase
from .monitor import WorkflowMonitor


class SubmissionError(RuntimeError):
    """Raised for invalid submissions (duplicate names, bad IR)."""


@dataclass
class SubmissionHandle:
    """What the service returns on submit."""

    name: str
    split_parts: int
    record: WorkflowRecord


@dataclass
class CoulerService:
    """The server facade over one simulated environment.

    Conforms to the :class:`~repro.backends.base.Submitter` protocol —
    ``submit(ir)`` returns a :class:`SubmissionHandle` whose ``record``
    attribute is the workflow record, so ``couler.run(submitter=service)``
    works directly.
    """

    operator: WorkflowOperator
    database: WorkflowDatabase = field(default_factory=WorkflowDatabase)
    monitor: WorkflowMonitor = field(default_factory=WorkflowMonitor)
    budget: BudgetModel = field(default_factory=BudgetModel)
    passes: PassManager = field(default_factory=PassManager.default)
    #: Knob bundle (Submitter protocol conformance; the service
    #: executes on the operator it was handed, so only introspection
    #: reads this today).
    config: EngineConfig = field(default_factory=EngineConfig)
    _irs: Dict[str, WorkflowIR] = field(default_factory=dict)
    _records: Dict[str, WorkflowRecord] = field(default_factory=dict)

    # ---------------------------------------------------------- submission

    def submit(
        self, ir: WorkflowIR, owner: str = "unknown", run: bool = True
    ) -> SubmissionHandle:
        """Optimize, (maybe) split, persist and execute a workflow."""
        if ir.name in self._irs:
            raise SubmissionError(f"workflow {ir.name!r} already submitted")
        ir = self.passes.run(ir)
        self._irs[ir.name] = ir

        splitter = WorkflowSplitter(self.budget)
        plan = splitter.split(ir)
        if plan.num_parts == 1:
            record = self.operator.submit(
                ir.to_executable(),
                on_complete=lambda rec: self._on_complete(ir, rec, owner),
            )
        else:
            staged = StagedSubmitter(self.operator, use_manifests=False)
            result = staged.execute(plan)
            record = self._merge_staged_records(ir, result.records)
        self._records[ir.name] = record
        self.database.save_workflow(ir, record, owner=owner)
        if run:
            self.operator.run_to_completion()
        return SubmissionHandle(
            name=ir.name, split_parts=plan.num_parts, record=record
        )

    def _merge_staged_records(
        self, ir: WorkflowIR, part_records: List[Optional[WorkflowRecord]]
    ) -> WorkflowRecord:
        """Fold per-part records into one logical workflow record."""
        merged = WorkflowRecord(name=ir.name)
        merged.phase = WorkflowPhase.SUCCEEDED
        starts, finishes = [], []
        for record in part_records:
            if record is None:
                merged.phase = WorkflowPhase.FAILED
                continue
            if record.phase != WorkflowPhase.SUCCEEDED:
                merged.phase = WorkflowPhase.FAILED
            for step in record.steps.values():
                merged.steps[step.name] = step
            if record.submit_time is not None:
                starts.append(record.submit_time)
            if record.finish_time is not None:
                finishes.append(record.finish_time)
        merged.submit_time = min(starts) if starts else None
        merged.finish_time = max(finishes) if finishes else None
        return merged

    def _on_complete(self, ir: WorkflowIR, record: WorkflowRecord, owner: str) -> None:
        self.database.update_status(record)
        self.monitor.observe(record)
        self.monitor.observe_operator(self.operator)

    # ------------------------------------------------------------- queries

    def status(self, name: str) -> WorkflowRecord:
        record = self._records.get(name)
        if record is not None:
            return record
        return self.database.load(name).record

    def list_workflows(self, phase: Optional[WorkflowPhase] = None) -> List[str]:
        return self.database.list_names(phase)

    def health(self) -> dict:
        report = self.monitor.health_report()
        report["database_counts"] = self.database.counts_by_phase()
        return report

    # -------------------------------------------------------- manual retry

    def retry_from_failure(self, name: str, run: bool = True) -> WorkflowRecord:
        """The Appendix B.B flow: restart a failed workflow, skipping
        steps whose status counts as done."""
        stored = self.database.load(name)
        record = self._records.get(name, stored.record)
        if record.phase != WorkflowPhase.FAILED:
            raise SubmissionError(
                f"workflow {name!r} is {record.phase.value}, not Failed"
            )
        ir = self._irs.get(name, stored.ir)
        # "The server then deletes the failed steps and the related CRDs
        # and marks these steps as running" — reset non-done steps.
        for step in record.steps.values():
            if not step.status.counts_as_done():
                step.status = StepStatus.PENDING
                step.last_error = None
                step.finish_time = None
        record.phase = WorkflowPhase.PENDING
        new_record = self.operator.submit(
            ir.to_executable(),
            record=record,
            on_complete=lambda rec: self._on_complete(ir, rec, stored.owner),
        )
        self._records[name] = new_record
        self.database.update_status(new_record)
        if run:
            self.operator.run_to_completion()
        return new_record
