"""Workflow metadata persistence (paper Appendix B.B).

"Note that we persist workflow metadata into a database for automated
management.  The server then processes the failed workflow, skipping the
steps with 'Succeeded', 'Skipped', or 'Cached' status."

This module is that database: a small SQLite store (stdlib ``sqlite3``)
holding the serialized IR, the workflow status, and per-step execution
records, so that a failed workflow can be fetched back and restarted
from the failure point — possibly by a different server process.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import List, Optional

from ..engine.status import StepStatus, WorkflowPhase, WorkflowRecord
from ..ir.graph import WorkflowIR
from ..ir.serialize import ir_from_json, ir_to_json

_SCHEMA = """
CREATE TABLE IF NOT EXISTS workflows (
    name        TEXT PRIMARY KEY,
    ir_json     TEXT NOT NULL,
    phase       TEXT NOT NULL,
    owner       TEXT NOT NULL DEFAULT 'unknown',
    submitted_at REAL,
    finished_at  REAL
);
CREATE TABLE IF NOT EXISTS steps (
    workflow    TEXT NOT NULL,
    step        TEXT NOT NULL,
    status      TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    start_time  REAL,
    finish_time REAL,
    last_error  TEXT,
    PRIMARY KEY (workflow, step),
    FOREIGN KEY (workflow) REFERENCES workflows(name) ON DELETE CASCADE
);
"""


class WorkflowNotFoundError(KeyError):
    """Requested workflow is not in the database."""


@dataclass(frozen=True)
class StoredWorkflow:
    """A workflow row joined with its step records."""

    ir: WorkflowIR
    record: WorkflowRecord
    owner: str


class WorkflowDatabase:
    """SQLite-backed store for workflow IRs and execution records."""

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    # -------------------------------------------------------------- writes

    def save_workflow(
        self, ir: WorkflowIR, record: WorkflowRecord, owner: str = "unknown"
    ) -> None:
        """Insert or replace a workflow and its step records."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO workflows "
                "(name, ir_json, phase, owner, submitted_at, finished_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    ir.name,
                    ir_to_json(ir),
                    record.phase.value,
                    owner,
                    record.submit_time,
                    record.finish_time,
                ),
            )
            self._conn.execute("DELETE FROM steps WHERE workflow = ?", (ir.name,))
            self._conn.executemany(
                "INSERT INTO steps "
                "(workflow, step, status, attempts, start_time, finish_time, last_error) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        ir.name,
                        step.name,
                        step.status.value,
                        step.attempts,
                        step.start_time,
                        step.finish_time,
                        step.last_error,
                    )
                    for step in record.steps.values()
                ],
            )

    def update_status(self, record: WorkflowRecord) -> None:
        """Refresh phase + step rows for an already-saved workflow."""
        with self._conn:
            updated = self._conn.execute(
                "UPDATE workflows SET phase = ?, finished_at = ? WHERE name = ?",
                (record.phase.value, record.finish_time, record.name),
            )
            if updated.rowcount == 0:
                raise WorkflowNotFoundError(record.name)
            for step in record.steps.values():
                self._conn.execute(
                    "INSERT OR REPLACE INTO steps "
                    "(workflow, step, status, attempts, start_time, finish_time, last_error) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        record.name,
                        step.name,
                        step.status.value,
                        step.attempts,
                        step.start_time,
                        step.finish_time,
                        step.last_error,
                    ),
                )

    def delete(self, name: str) -> None:
        with self._conn:
            deleted = self._conn.execute(
                "DELETE FROM workflows WHERE name = ?", (name,)
            )
            if deleted.rowcount == 0:
                raise WorkflowNotFoundError(name)

    # --------------------------------------------------------------- reads

    def load(self, name: str) -> StoredWorkflow:
        row = self._conn.execute(
            "SELECT ir_json, phase, owner, submitted_at, finished_at "
            "FROM workflows WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise WorkflowNotFoundError(name)
        ir_json, phase, owner, submitted_at, finished_at = row
        record = WorkflowRecord(name=name, phase=WorkflowPhase(phase))
        record.submit_time = submitted_at
        record.finish_time = finished_at
        for step, status, attempts, start, finish, error in self._conn.execute(
            "SELECT step, status, attempts, start_time, finish_time, last_error "
            "FROM steps WHERE workflow = ? ORDER BY step",
            (name,),
        ):
            step_record = record.step(step)
            step_record.status = StepStatus(status)
            step_record.attempts = attempts
            step_record.start_time = start
            step_record.finish_time = finish
            step_record.last_error = error
        return StoredWorkflow(ir=ir_from_json(ir_json), record=record, owner=owner)

    def list_names(self, phase: Optional[WorkflowPhase] = None) -> List[str]:
        if phase is None:
            rows = self._conn.execute(
                "SELECT name FROM workflows ORDER BY name"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT name FROM workflows WHERE phase = ? ORDER BY name",
                (phase.value,),
            ).fetchall()
        return [row[0] for row in rows]

    def counts_by_phase(self) -> dict:
        """Workflow counts per phase (the monitor's headline metric)."""
        rows = self._conn.execute(
            "SELECT phase, COUNT(*) FROM workflows GROUP BY phase"
        ).fetchall()
        return {phase: count for phase, count in rows}
