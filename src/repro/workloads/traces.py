"""Synthetic production workflow traces (Fig. 5 / Fig. 6 substrate).

The paper summarizes twelve months of Ant Group production activity:
~22k workflows/day, ~1 hour typical lifespan, ~36 CPU cores per
workflow.  Those are distributional facts, so the reproduction draws
from seeded lognormal/normal families whose moments match the reported
summaries and regenerates the same histograms.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Reported production summary statistics (paper Sec. VI.B).
MEAN_DAILY_WORKFLOWS = 22_000
MEAN_LIFESPAN_HOURS = 1.0
MEAN_CPU_CORES = 36.0


@dataclass(frozen=True)
class WorkflowTraceRecord:
    """One workflow occurrence in the trace."""

    day: int
    lifespan_hours: float
    cpu_cores: float
    completed: bool = True


@dataclass
class DailyActivity:
    """Aggregates for one simulated day."""

    day: int
    workflow_count: int


def _lognormal_params(mean: float, cv: float) -> Tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and coefficient of
    variation."""
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


@dataclass
class TraceGenerator:
    """Seeded generator of 12-month production-like activity."""

    seed: int = 0
    days: int = 365
    mean_daily: float = MEAN_DAILY_WORKFLOWS
    mean_lifespan_hours: float = MEAN_LIFESPAN_HOURS
    mean_cpu_cores: float = MEAN_CPU_CORES
    #: Coefficient of variation knobs (skewed like real fleet data).
    daily_cv: float = 0.12
    lifespan_cv: float = 1.2
    cores_cv: float = 0.9

    def daily_counts(self) -> List[DailyActivity]:
        """Daily workflow counts with weekday seasonality."""
        rng = random.Random(self.seed)
        out = []
        for day in range(self.days):
            weekday = day % 7
            season = 0.85 if weekday >= 5 else 1.0 + 0.03 * (weekday % 3)
            noise = rng.gauss(1.0, self.daily_cv)
            count = max(0, int(self.mean_daily * season * noise))
            out.append(DailyActivity(day=day, workflow_count=count))
        return out

    def sample_workflows(self, num: int = 20_000) -> List[WorkflowTraceRecord]:
        """A sample of individual workflows (lifespan + core usage)."""
        rng = random.Random(self.seed + 1)
        mu_l, sigma_l = _lognormal_params(self.mean_lifespan_hours, self.lifespan_cv)
        mu_c, sigma_c = _lognormal_params(self.mean_cpu_cores, self.cores_cv)
        records = []
        for index in range(num):
            lifespan = rng.lognormvariate(mu_l, sigma_l)
            cores = rng.lognormvariate(mu_c, sigma_c)
            records.append(
                WorkflowTraceRecord(
                    day=index % self.days,
                    lifespan_hours=lifespan,
                    cpu_cores=cores,
                )
            )
        return records


def histogram(
    values: Sequence[float], edges: Sequence[float]
) -> List[Tuple[str, int]]:
    """Counts per bin; the last bin is open-ended."""
    labels = []
    for low, high in zip(edges, list(edges[1:]) + [None]):
        label = f"[{low:g}, {high:g})" if high is not None else f">= {low:g}"
        labels.append((low, high, label))
    counts: Dict[str, int] = {label: 0 for _, _, label in labels}
    for value in values:
        for low, high, label in labels:
            if value >= low and (high is None or value < high):
                counts[label] += 1
                break
    return [(label, counts[label]) for _, _, label in labels]


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
