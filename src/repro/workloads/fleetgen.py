"""Deterministic synthetic fleets for scale benchmarks and profiling.

The engine-scale benchmark and :func:`repro.profile_run` both need the
same thing: ``N`` small multi-step workflows with mixed tenants,
priorities and SLO lanes, arriving open-loop at a rate the fleet can
absorb (bounded backlog — the point is to measure *steady-state
per-workflow cost*, not to drown the admission queue).  Everything is
derived from ``random.Random(seed)``, so two builds with the same
``(num_workflows, seed)`` are identical object-for-object and the
same-seed determinism digests the benchmark asserts are meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..engine.admission import AdmissionPipeline, AdmissionRecord
from ..engine.config import EngineConfig
from ..engine.journal import Journal
from ..engine.spec import ExecutableStep, ExecutableWorkflow
from ..k8s.cluster import Cluster
from ..k8s.resources import ResourceQuantity

#: Tenants in the synthetic fleet, with fairness weights.
FLEET_TENANTS: Dict[str, float] = {"t0": 2.0, "t1": 1.0, "t2": 1.0, "t3": 0.5}

GB = 2**30


@dataclass
class FleetSpec:
    """One reproducible fleet: clusters + timed arrivals."""

    clusters: List[Cluster]
    #: ``(arrival_time, workflow, user, priority, slo_class)`` tuples.
    arrivals: List[Tuple[float, ExecutableWorkflow, str, int, str]]
    seed: int = 0
    tenant_weights: Dict[str, float] = field(
        default_factory=lambda: dict(FLEET_TENANTS)
    )


def build_workflow(name: str, rng: random.Random) -> ExecutableWorkflow:
    """A small chain-with-fanout DAG (2–4 steps, occasional GPU ask)."""
    workflow = ExecutableWorkflow(name=name)
    num_steps = rng.randint(2, 4)
    previous = None
    for index in range(num_steps):
        uses_gpu = index == num_steps - 1 and rng.random() < 0.1
        step = ExecutableStep(
            name=f"s{index}",
            duration_s=2.0 + 6.0 * rng.random(),
            requests=ResourceQuantity(
                cpu=0.5 + rng.random(),
                memory=(1 + rng.randint(0, 2)) * GB,
                gpu=1 if uses_gpu else 0,
            ),
            dependencies=[previous] if previous else [],
        )
        workflow.add_step(step)
        previous = step.name
    workflow.validate()
    return workflow


def build_fleet(num_workflows: int, seed: int = 0) -> FleetSpec:
    """``num_workflows`` arrivals over a fixed-size fleet that keeps up.

    The fleet (6 clusters, 24 nodes) and the arrival rate (one
    workflow per 0.25 virtual seconds) are both constant, so the
    steady-state load — and with it the *expected* per-workflow engine
    cost — is independent of ``num_workflows``: growing the fleet 100×
    grows the virtual horizon 100×, not the instantaneous backlog.
    Any superlinear per-workflow cost the scale benchmark observes is
    therefore an engine hot-path defect, not a scenario artifact.
    """
    rng = random.Random(seed)
    tenants = sorted(FLEET_TENANTS)
    clusters = [
        Cluster.uniform(
            f"c{index}",
            4,
            cpu_per_node=16.0,
            memory_per_node=64 * GB,
            gpu_per_node=2 if index % 4 == 0 else 0,
        )
        for index in range(6)
    ]
    arrivals: List[Tuple[float, ExecutableWorkflow, str, int, str]] = []
    for index in range(num_workflows):
        workflow = build_workflow(f"wf-{index:06d}", rng)
        user = tenants[index % len(tenants)]
        priority = (index * 3) % 7
        slo_class = "serving" if index % 5 == 0 else "batch"
        arrivals.append((index * 0.25, workflow, user, priority, slo_class))
    return FleetSpec(clusters=clusters, arrivals=arrivals, seed=seed)


def build_pipeline(
    spec: FleetSpec,
    config: EngineConfig,
    journal: Journal | None = None,
    cache_manager: object | None = None,
    skip_cached_steps: bool = False,
    metrics: object | None = None,
) -> AdmissionPipeline:
    """An :class:`AdmissionPipeline` over the fleet, knobs from ``config``.

    ``cache_manager`` (with ``skip_cached_steps``) threads a shared
    artifact cache through every cluster operator — the scenario-corpus
    runs use it to measure cross-workflow reuse under admission.
    ``metrics`` shares one registry across admission and operators so
    the adaptive controller reads the whole run from one place.
    """
    kwargs = config.pipeline_kwargs()
    if kwargs.get("tenant_weights") is None:
        kwargs["tenant_weights"] = dict(spec.tenant_weights)
    return AdmissionPipeline(
        spec.clusters,
        seed=spec.seed,
        journal=journal,
        cache_manager=cache_manager,
        skip_cached_steps=skip_cached_steps,
        metrics=metrics,
        **kwargs,
    )


def submit_fleet(
    pipeline: AdmissionPipeline, spec: FleetSpec
) -> List[AdmissionRecord]:
    """Schedule every arrival; the caller drives ``pipeline.run()``."""
    return [
        pipeline.submit_at(
            at, workflow, user=user, priority=priority, slo_class=slo_class
        )
        for at, workflow, user, priority, slo_class in spec.arrivals
    ]


__all__ = [
    "FLEET_TENANTS",
    "FleetSpec",
    "build_fleet",
    "build_pipeline",
    "build_workflow",
    "submit_fleet",
]
