"""Open-loop arrival processes for the event-driven scheduling pipeline.

The paper's production service sees workflows *arrive over time* (~22k
per day at Ant Group), not as a pre-loaded batch — throughput and queue
latency only exist against an arrival process.  This module provides
the two standard open-loop sources:

* :class:`PoissonArrivalProcess` — seeded exponential inter-arrival
  gaps, the memoryless baseline for service benchmarks.
* :class:`TraceArrivalProcess` — replay of explicit timestamps, either
  handed in directly or loaded from a trace file (one arrival offset
  per line, or a JSON array), so recorded production rhythms can be
  driven through the simulator verbatim.

Both yield plain sorted floats (virtual seconds); the admission
pipeline schedules one arrival event per timestamp on the shared
:class:`~repro.engine.simclock.SimClock`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence

from .traces import MEAN_DAILY_WORKFLOWS


class ArrivalError(ValueError):
    """Raised for malformed arrival specifications or trace files."""


#: The production mean arrival rate implied by the paper's summary
#: statistics (~22k workflows/day), in workflows per virtual second.
PRODUCTION_RATE_PER_S = MEAN_DAILY_WORKFLOWS / 86_400.0


@dataclass(frozen=True)
class PoissonArrivalProcess:
    """Seeded Poisson process: exponential gaps at ``rate_per_s``."""

    rate_per_s: float
    seed: int = 0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ArrivalError(f"arrival rate must be > 0: {self.rate_per_s}")

    def times(self, count: int) -> List[float]:
        """The first ``count`` arrival times (virtual seconds, sorted)."""
        if count < 0:
            raise ArrivalError(f"arrival count must be >= 0: {count}")
        rng = random.Random(self.seed)
        now = self.start
        out: List[float] = []
        for _ in range(count):
            now += rng.expovariate(self.rate_per_s)
            out.append(now)
        return out


@dataclass(frozen=True)
class TraceArrivalProcess:
    """Replay of explicit arrival offsets (a recorded trace)."""

    offsets: Sequence[float]
    start: float = 0.0

    def __post_init__(self) -> None:
        for offset in self.offsets:
            if offset < 0:
                raise ArrivalError(f"arrival offsets must be >= 0: {offset}")

    @classmethod
    def from_file(cls, path: "str | Path", start: float = 0.0) -> "TraceArrivalProcess":
        """Load offsets from a trace file.

        Accepts either a JSON array of numbers or a plain text file
        with one offset per line (blank lines and ``#`` comments are
        ignored) — the two formats arrival dumps actually come in.
        """
        text = Path(path).read_text(encoding="utf-8").strip()
        if not text:
            return cls(offsets=(), start=start)
        if text.startswith("["):
            try:
                values = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ArrivalError(f"{path}: invalid JSON arrival trace: {exc}") from exc
            if not isinstance(values, list):
                raise ArrivalError(f"{path}: JSON trace must be an array")
        else:
            values = []
            for lineno, line in enumerate(text.splitlines(), start=1):
                line = line.split("#", 1)[0].strip()
                if not line:
                    continue
                try:
                    values.append(float(line))
                except ValueError as exc:
                    raise ArrivalError(
                        f"{path}:{lineno}: unparseable arrival offset {line!r}"
                    ) from exc
        try:
            offsets = tuple(float(value) for value in values)
        except (TypeError, ValueError) as exc:
            raise ArrivalError(f"{path}: non-numeric arrival offset") from exc
        return cls(offsets=offsets, start=start)

    def times(self, count: "int | None" = None) -> List[float]:
        """Arrival times (sorted); ``count`` truncates the replay."""
        out = sorted(self.start + offset for offset in self.offsets)
        if count is not None:
            if count < 0:
                raise ArrivalError(f"arrival count must be >= 0: {count}")
            out = out[:count]
        return out
