"""The three caching-evaluation scenarios (paper Sec. VI.C).

- **Multimodal Training** — 37 pods, 19 training models; text + image +
  audio inputs fused into shared features.
- **Image Segmentation** — 15 pods, 8 training models.
- **Language Model Fine-tuning** — 21 pods, 11 training models.

Each scenario builds one :class:`WorkflowIR` per development iteration.
Data-side artifacts (loaded/preprocessed/fused data) carry *stable*
uids across iterations — re-running the workflow reproduces the same
intermediate data, which is precisely the redundancy the automatic
cache exploits.  Model checkpoints vary per iteration (new uids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..ir.graph import WorkflowIR
from ..ir.nodes import ArtifactDecl, ArtifactStorage, IRNode, OpKind, SimHint
from ..k8s.resources import ResourceQuantity

GB = 2**30


@dataclass(frozen=True)
class ScenarioSpec:
    """Static facts about one scenario (matches the paper's numbers)."""

    name: str
    num_pods: int
    num_models: int
    build: Callable[[int], WorkflowIR]


def _node(
    ir: WorkflowIR,
    name: str,
    duration_s: float,
    cpu: float = 4.0,
    memory: int = 8 * GB,
    gpu: int = 0,
    inputs: List[ArtifactDecl] = (),
    output_name: str = "",
    output_size: int = 0,
    output_uid: str = "",
    deps: List[str] = (),
) -> ArtifactDecl:
    outputs = []
    artifact = None
    if output_name:
        artifact = ArtifactDecl(
            name=output_name,
            storage=ArtifactStorage.OSS,
            path=f"/artifacts/{output_uid or name}",
            size_bytes=output_size,
            uid=output_uid or f"{ir.name}/{name}/{output_name}",
        )
        outputs = [artifact]
    ir.add_node(
        IRNode(
            name=name,
            op=OpKind.CONTAINER,
            image=f"{name.split('-')[0]}:v1",
            resources=ResourceQuantity(cpu=cpu, memory=memory, gpu=gpu),
            inputs=list(inputs),
            outputs=outputs,
            sim=SimHint(duration_s=duration_s, uses_gpu=gpu > 0),
        )
    )
    for dep in deps:
        ir.add_edge(dep, name)
    return artifact


def _external(name: str, size: int) -> ArtifactDecl:
    """A raw dataset living in the remote storage cluster."""
    return ArtifactDecl(
        name=name,
        storage=ArtifactStorage.OSS,
        path=f"oss://raw/{name}",
        size_bytes=size,
        uid=f"external/{name}",
    )


# --------------------------------------------------------------------------
# Multimodal Training: 37 pods, 19 models
# --------------------------------------------------------------------------


def _stable_artifact(uid: str, size: int) -> ArtifactDecl:
    """Reference a data artifact produced by an earlier iteration.

    Iterative ML development re-runs training against the *same*
    prepared data: later iterations consume these stable artifacts
    directly instead of recomputing them.  Whether the read is local or
    remote is exactly what the caching policy decides.
    """
    return ArtifactDecl(
        name=uid.rsplit("/", 1)[-1],
        storage=ArtifactStorage.OSS,
        path=f"/artifacts/{uid}",
        size_bytes=size,
        uid=uid,
    )


def build_multimodal(iteration: int = 0) -> WorkflowIR:
    ir = WorkflowIR(name=f"multimodal-it{iteration}")
    stable = "multimodal"  # uid prefix shared across iterations
    if iteration > 0:
        return _multimodal_rerun(ir, stable, iteration)

    raw = {
        "text": _external("text-corpus-20gb", 20 * GB),
        "image": _external("image-archive-1m4", 15 * GB),
        "audio": _external("audio-clips", 5 * GB),
    }
    loaded: Dict[str, ArtifactDecl] = {}
    for modality, artifact in raw.items():
        loaded[modality] = _node(
            ir, f"load-{modality}", duration_s=90, cpu=2,
            inputs=[artifact],
            output_name="loaded", output_size={"text": 12, "image": 14, "audio": 5}[modality] * GB,
            output_uid=f"{stable}/loaded-{modality}",
        )
    pre: Dict[str, ArtifactDecl] = {}
    for modality in raw:
        pre[modality] = _node(
            ir, f"preprocess-{modality}", duration_s=180, cpu=4,
            inputs=[loaded[modality]],
            output_name="pre", output_size={"text": 7, "image": 9, "audio": 4}[modality] * GB,
            output_uid=f"{stable}/pre-{modality}",
            deps=[f"load-{modality}"],
        )
    _node(
        ir, "validate-data", duration_s=60, cpu=2,
        inputs=list(pre.values()),
        deps=[f"preprocess-{m}" for m in raw],
    )
    fused = _node(
        ir, "fuse-features", duration_s=240, cpu=8, memory=16 * GB,
        inputs=list(pre.values()),
        output_name="fused", output_size=10 * GB,
        output_uid=f"{stable}/fused",
        deps=[f"preprocess-{m}" for m in raw],
    )
    modalities = ["text", "image", "audio"]
    models = []
    for index in range(19):
        modality = modalities[index % 3]
        model = _node(
            ir, f"train-model-{index}", duration_s=600 + 40 * (index % 5),
            cpu=6, memory=16 * GB, gpu=1,
            inputs=[fused, pre[modality]],
            output_name="ckpt", output_size=3 * GB,
            output_uid=f"{ir.name}/train-model-{index}/ckpt",
            deps=["fuse-features", f"preprocess-{modality}"],
        )
        models.append((f"train-model-{index}", model))
    for group in range(7):
        members = models[group::7]
        _node(
            ir, f"evaluate-group-{group}", duration_s=150, cpu=4, gpu=1,
            inputs=[fused] + [m for _, m in members],
            deps=["fuse-features"] + [name for name, _ in members],
        )
    _node(
        ir, "system-test", duration_s=120, cpu=2,
        deps=[f"evaluate-group-{g}" for g in range(7)],
    )
    _node(
        ir, "update-models", duration_s=90, cpu=2,
        inputs=[m for _, m in models[:5]],
        deps=["system-test"],
    )
    _node(ir, "report", duration_s=45, cpu=1, deps=["update-models"])
    return ir


def _multimodal_rerun(ir: WorkflowIR, stable: str, iteration: int) -> WorkflowIR:
    """Development re-run: retrain + re-evaluate over the prepared data."""
    fused = _stable_artifact(f"{stable}/fused", 10 * GB)
    pre = {
        "text": _stable_artifact(f"{stable}/pre-text", 7 * GB),
        "image": _stable_artifact(f"{stable}/pre-image", 9 * GB),
        "audio": _stable_artifact(f"{stable}/pre-audio", 4 * GB),
    }
    modalities = ["text", "image", "audio"]
    models = []
    for index in range(19):
        modality = modalities[index % 3]
        model = _node(
            ir, f"train-model-{index}", duration_s=600 + 40 * (index % 5),
            cpu=6, memory=16 * GB, gpu=1,
            inputs=[fused, pre[modality]],
            output_name="ckpt", output_size=3 * GB,
            output_uid=f"{ir.name}/train-model-{index}/ckpt",
        )
        models.append((f"train-model-{index}", model))
    for group in range(7):
        members = models[group::7]
        _node(
            ir, f"evaluate-group-{group}", duration_s=150, cpu=4, gpu=1,
            inputs=[fused] + [m for _, m in members],
            deps=[name for name, _ in members],
        )
    _node(
        ir, "system-test", duration_s=120, cpu=2,
        deps=[f"evaluate-group-{g}" for g in range(7)],
    )
    _node(
        ir, "update-models", duration_s=90, cpu=2,
        inputs=[m for _, m in models[:5]],
        deps=["system-test"],
    )
    _node(ir, "report", duration_s=45, cpu=1, deps=["update-models"])
    return ir


# --------------------------------------------------------------------------
# Image Segmentation: 15 pods, 8 models
# --------------------------------------------------------------------------


def build_image_segmentation(iteration: int = 0) -> WorkflowIR:
    ir = WorkflowIR(name=f"imageseg-it{iteration}")
    stable = "imageseg"
    if iteration > 0:
        return _imageseg_rerun(ir, stable, iteration)
    raw = _external("segmentation-images", 12 * GB)
    loaded = _node(
        ir, "load-images", duration_s=120, cpu=2,
        inputs=[raw], output_name="loaded", output_size=12 * GB,
        output_uid=f"{stable}/loaded",
    )
    pre = _node(
        ir, "preprocess-images", duration_s=200, cpu=4,
        inputs=[loaded], output_name="pre", output_size=9 * GB,
        output_uid=f"{stable}/pre", deps=["load-images"],
    )
    aug = _node(
        ir, "augment-images", duration_s=160, cpu=4,
        inputs=[pre], output_name="aug", output_size=12 * GB,
        output_uid=f"{stable}/aug", deps=["preprocess-images"],
    )
    models = []
    for index in range(8):
        model = _node(
            ir, f"train-seg-{index}", duration_s=500 + 60 * (index % 4),
            cpu=6, memory=16 * GB, gpu=1,
            inputs=[aug],
            output_name="ckpt", output_size=int(2.5 * GB),
            output_uid=f"{ir.name}/train-seg-{index}/ckpt",
            deps=["augment-images"],
        )
        models.append((f"train-seg-{index}", model))
    for group in range(2):
        members = models[group::2]
        _node(
            ir, f"evaluate-seg-{group}", duration_s=140, cpu=4, gpu=1,
            inputs=[pre] + [m for _, m in members],
            deps=["preprocess-images"] + [name for name, _ in members],
        )
    _node(
        ir, "select-seg-model", duration_s=60, cpu=2,
        deps=["evaluate-seg-0", "evaluate-seg-1"],
    )
    _node(ir, "seg-report", duration_s=40, cpu=1, deps=["select-seg-model"])
    return ir


def _imageseg_rerun(ir: WorkflowIR, stable: str, iteration: int) -> WorkflowIR:
    aug = _stable_artifact(f"{stable}/aug", 12 * GB)
    pre = _stable_artifact(f"{stable}/pre", 9 * GB)
    models = []
    for index in range(8):
        model = _node(
            ir, f"train-seg-{index}", duration_s=500 + 60 * (index % 4),
            cpu=6, memory=16 * GB, gpu=1,
            inputs=[aug],
            output_name="ckpt", output_size=int(2.5 * GB),
            output_uid=f"{ir.name}/train-seg-{index}/ckpt",
        )
        models.append((f"train-seg-{index}", model))
    for group in range(2):
        members = models[group::2]
        _node(
            ir, f"evaluate-seg-{group}", duration_s=140, cpu=4, gpu=1,
            inputs=[pre] + [m for _, m in members],
            deps=[name for name, _ in members],
        )
    _node(
        ir, "select-seg-model", duration_s=60, cpu=2,
        deps=["evaluate-seg-0", "evaluate-seg-1"],
    )
    _node(ir, "seg-report", duration_s=40, cpu=1, deps=["select-seg-model"])
    return ir


# --------------------------------------------------------------------------
# Language Model Fine-tuning: 21 pods, 11 models
# --------------------------------------------------------------------------


def build_lm_finetune(iteration: int = 0) -> WorkflowIR:
    ir = WorkflowIR(name=f"lmft-it{iteration}")
    stable = "lmft"
    if iteration > 0:
        return _lmft_rerun(ir, stable, iteration)
    raw = _external("finetune-corpus", 20 * GB)
    loaded = _node(
        ir, "load-corpus", duration_s=150, cpu=2,
        inputs=[raw], output_name="loaded", output_size=12 * GB,
        output_uid=f"{stable}/loaded",
    )
    tokenized = _node(
        ir, "tokenize-corpus", duration_s=300, cpu=8, memory=16 * GB,
        inputs=[loaded], output_name="tokens", output_size=12 * GB,
        output_uid=f"{stable}/tokens", deps=["load-corpus"],
    )
    shards = []
    for index in range(2):
        shard = _node(
            ir, f"shard-{index}", duration_s=80, cpu=2,
            inputs=[tokenized], output_name="shard", output_size=6 * GB,
            output_uid=f"{stable}/shard-{index}", deps=["tokenize-corpus"],
        )
        shards.append(shard)
    models = []
    for index in range(11):
        shard = shards[index % 2]
        model = _node(
            ir, f"finetune-{index}", duration_s=700 + 50 * (index % 3),
            cpu=6, memory=24 * GB, gpu=1,
            inputs=[shard],
            output_name="ckpt", output_size=int(2.5 * GB),
            output_uid=f"{ir.name}/finetune-{index}/ckpt",
            deps=[f"shard-{index % 2}"],
        )
        models.append((f"finetune-{index}", model))
    for group in range(4):
        members = models[group::4]
        _node(
            ir, f"evaluate-lm-{group}", duration_s=160, cpu=4, gpu=1,
            inputs=[tokenized] + [m for _, m in members],
            deps=["tokenize-corpus"] + [name for name, _ in members],
        )
    _node(
        ir, "select-lm", duration_s=60, cpu=2,
        deps=[f"evaluate-lm-{g}" for g in range(4)],
    )
    _node(ir, "lm-report", duration_s=40, cpu=1, deps=["select-lm"])
    return ir


def _lmft_rerun(ir: WorkflowIR, stable: str, iteration: int) -> WorkflowIR:
    tokens = _stable_artifact(f"{stable}/tokens", 12 * GB)
    shards = [
        _stable_artifact(f"{stable}/shard-0", 6 * GB),
        _stable_artifact(f"{stable}/shard-1", 6 * GB),
    ]
    models = []
    for index in range(11):
        model = _node(
            ir, f"finetune-{index}", duration_s=700 + 50 * (index % 3),
            cpu=6, memory=24 * GB, gpu=1,
            inputs=[shards[index % 2]],
            output_name="ckpt", output_size=int(2.5 * GB),
            output_uid=f"{ir.name}/finetune-{index}/ckpt",
        )
        models.append((f"finetune-{index}", model))
    for group in range(4):
        members = models[group::4]
        _node(
            ir, f"evaluate-lm-{group}", duration_s=160, cpu=4, gpu=1,
            inputs=[tokens] + [m for _, m in members],
            deps=[name for name, _ in members],
        )
    _node(
        ir, "select-lm", duration_s=60, cpu=2,
        deps=[f"evaluate-lm-{g}" for g in range(4)],
    )
    _node(ir, "lm-report", duration_s=40, cpu=1, deps=["select-lm"])
    return ir


SCENARIOS: Dict[str, ScenarioSpec] = {
    "multimodal": ScenarioSpec("multimodal", 37, 19, build_multimodal),
    "image-segmentation": ScenarioSpec("image-segmentation", 15, 8, build_image_segmentation),
    "lm-finetune": ScenarioSpec("lm-finetune", 21, 11, build_lm_finetune),
}
