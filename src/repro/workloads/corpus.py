"""Scenario corpus: SQL- and NL-driven pipelines as first-class workloads.

The fleet benchmarks (:mod:`repro.workloads.fleetgen`) stress the engine
with synthetic DAGs; this module stresses the *whole paper stack* with
workloads that look like what actually arrives at a unified workflow
layer: multi-statement SQLFlow scripts (feature build -> ``TO TRAIN`` ->
``TO PREDICT`` chains over a schema catalog) and NL-planned workflows
compiled from an expanded Code Lake.  Everything is seeded — two builds
from the same :class:`CorpusSpec` are byte-identical (scripts, IR
fingerprints, arrival schedules), so the corpus can back determinism
gates, the verify fuzzer, and ratcheted benchmarks.

Traffic is shaped by *personas* — open-loop tenant profiles (etl /
research / serving / batch) with their own arrival rates, SQL/NL mixes,
size profiles and rerun redundancy.  Reruns clone earlier entries under
fresh workflow names but keep the finalized artifact uids, so a cache
manager sees genuine cross-workflow redundancy (paper Sec. V.B).

The corpus plugs into :class:`~repro.engine.config.EngineConfig`-driven
admission exactly like ``fleetgen``: :meth:`ScenarioCorpus.to_fleet_spec`
adapts it to a :class:`~repro.workloads.fleetgen.FleetSpec`, and
:func:`submit_corpus` additionally chains a script's statements through
admission completion callbacks (statement ``N+1`` is submitted when
``N`` finishes, like SQLFlow's script runner would).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.admission import AdmissionPipeline, AdmissionRecord
from ..ir.graph import WorkflowIR
from ..ir.serialize import ir_to_dict
from ..k8s.cluster import Cluster
from ..llm.codelake import CodeLake, canonical_code, expand_code_lake
from ..nl2wf.corpus import NLTask, build_task
from ..nl2wf.executor import execute_couler_code
from ..sqlflow.parser import parse_many
from ..sqlflow.translate import statement_to_ir
from .fleetgen import FleetSpec

GB = 2**30

#: Fairness weights for the four persona tenants.
CORPUS_TENANTS: Dict[str, float] = {
    "etl": 1.0,
    "research": 1.0,
    "serving": 2.0,
    "batch": 0.5,
}


# ---------------------------------------------------------------------------
# Schema catalog: the synthetic warehouse the SQL generator writes against
# and the datasets the NL tasks (and the expanded Code Lake) refer to.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableSchema:
    """One warehouse table: name, feature columns, label column."""

    name: str
    columns: Tuple[str, ...]
    label: str


@dataclass(frozen=True)
class DomainSchema:
    """One business domain: tables plus the NL-side dataset/models."""

    name: str
    dataset: str
    tables: Tuple[TableSchema, ...]
    estimators: Tuple[str, ...]
    models: Tuple[str, ...]


def _domain(
    name: str,
    dataset: str,
    tables: Sequence[Tuple[str, Sequence[str], str]],
    estimators: Sequence[str],
    models: Sequence[str],
) -> DomainSchema:
    return DomainSchema(
        name=name,
        dataset=dataset,
        tables=tuple(
            TableSchema(name=t, columns=tuple(cols), label=label)
            for t, cols, label in tables
        ),
        estimators=tuple(estimators),
        models=tuple(models),
    )


@dataclass(frozen=True)
class SchemaCatalog:
    """The fixed synthetic catalog the corpus draws from."""

    domains: Tuple[DomainSchema, ...]

    def datasets(self) -> List[str]:
        return [d.dataset for d in self.domains]

    def by_name(self, name: str) -> DomainSchema:
        for domain in self.domains:
            if domain.name == name:
                return domain
        raise KeyError(f"unknown domain {name!r}")

    @classmethod
    def default(cls) -> "SchemaCatalog":
        return cls(
            domains=(
                _domain(
                    "ads",
                    "ads-logs",
                    [
                        (
                            "ads.impressions",
                            ["user_id", "campaign", "slot", "dwell_ms", "device", "hour"],
                            "clicked",
                        ),
                        (
                            "ads.conversions",
                            ["user_id", "campaign", "bid", "channel"],
                            "converted",
                        ),
                    ],
                    ["WideDeep", "DeepFM", "DNNClassifier"],
                    ["wide-deep", "deepfm"],
                ),
                _domain(
                    "risk",
                    "transactions",
                    [
                        (
                            "risk.transactions",
                            ["amount", "merchant", "country", "channel", "age_days"],
                            "is_fraud",
                        ),
                        (
                            "risk.chargebacks",
                            ["amount", "merchant", "days_open", "disputes"],
                            "upheld",
                        ),
                    ],
                    ["XGBoost", "GBDTClassifier"],
                    ["gbdt", "mlp"],
                ),
                _domain(
                    "retail",
                    "orders",
                    [
                        (
                            "retail.orders",
                            ["sku", "price", "basket_size", "tenure", "region"],
                            "churned",
                        ),
                        (
                            "retail.sessions",
                            ["pages", "duration_s", "referrer", "device"],
                            "purchased",
                        ),
                    ],
                    ["DNNClassifier", "LogisticRegression"],
                    ["xgboost", "lightgbm"],
                ),
                _domain(
                    "content",
                    "reviews-corpus",
                    [
                        (
                            "content.reviews",
                            ["text_len", "stars", "lang", "verified", "helpful_votes"],
                            "sentiment",
                        ),
                        (
                            "content.threads",
                            ["replies", "depth", "age_hours", "flags"],
                            "toxic",
                        ),
                    ],
                    ["BertClassifier", "LSTMClassifier"],
                    ["bert", "lstm"],
                ),
            )
        )


# ---------------------------------------------------------------------------
# Personas: open-loop tenant traffic profiles.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PersonaProfile:
    """One tenant archetype's traffic shape."""

    name: str
    #: Fraction of corpus entries this persona contributes.
    share: float
    #: Mean open-loop interarrival gap (virtual seconds, exponential).
    mean_interarrival_s: float
    #: P(an entry is a SQL script); the rest are NL-planned workflows.
    sql_fraction: float
    #: P(an entry reruns an earlier entry of the same persona).
    rerun_probability: float
    slo_class: str
    #: Inclusive priority range.
    priorities: Tuple[int, int]
    #: SQL size profile: range of feature-build statements per script.
    feature_stages: Tuple[int, int]
    #: SQL size profile: range of PREDICT statements per script.
    predict_statements: Tuple[int, int]
    #: "pipeline" scripts train in-script; "scoring" scripts only
    #: PREDICT against the domain's production model table.
    script_style: str
    #: NL sequence names (keys of :data:`NL_SEQUENCES`) this persona runs.
    nl_sequences: Tuple[str, ...]


PERSONAS: Dict[str, PersonaProfile] = {
    "etl": PersonaProfile(
        name="etl",
        share=0.35,
        mean_interarrival_s=180.0,
        sql_fraction=0.9,
        rerun_probability=0.30,
        slo_class="batch",
        priorities=(1, 3),
        feature_stages=(1, 2),
        predict_statements=(1, 2),
        script_style="pipeline",
        nl_sequences=("tune", "report"),
    ),
    "research": PersonaProfile(
        name="research",
        share=0.25,
        mean_interarrival_s=420.0,
        sql_fraction=0.2,
        rerun_probability=0.55,
        slo_class="batch",
        priorities=(2, 5),
        feature_stages=(0, 1),
        predict_statements=(1, 1),
        script_style="pipeline",
        nl_sequences=("select-best", "augmented", "train-eval", "quick"),
    ),
    "serving": PersonaProfile(
        name="serving",
        share=0.25,
        mean_interarrival_s=45.0,
        sql_fraction=0.8,
        rerun_probability=0.40,
        slo_class="serving",
        priorities=(5, 7),
        feature_stages=(0, 0),
        predict_statements=(1, 3),
        script_style="scoring",
        nl_sequences=("deploy", "quick"),
    ),
    "batch": PersonaProfile(
        name="batch",
        share=0.15,
        mean_interarrival_s=1200.0,
        sql_fraction=0.5,
        rerun_probability=0.15,
        slo_class="batch",
        priorities=(0, 2),
        feature_stages=(1, 3),
        predict_statements=(2, 3),
        script_style="pipeline",
        nl_sequences=("full", "select-best", "augmented"),
    ),
}

#: Module sequences the NL generator composes tasks from.  All respect
#: the canonical snippets' variable-threading rules (training needs a
#: prior data stage; selection needs evaluation or comparison first).
NL_SEQUENCES: Dict[str, Tuple[str, ...]] = {
    "select-best": (
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
        "model_comparison",
        "model_selection",
    ),
    "train-eval": (
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
    ),
    "augmented": (
        "data_loading",
        "data_preprocessing",
        "data_augmentation",
        "model_training",
        "model_evaluation",
        "model_selection",
    ),
    "deploy": (
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
        "model_selection",
        "model_deployment",
    ),
    "tune": (
        "data_loading",
        "data_preprocessing",
        "hyperparameter_tuning",
        "report_generation",
    ),
    "report": (
        "data_loading",
        "data_preprocessing",
        "model_training",
        "model_evaluation",
        "report_generation",
    ),
    "quick": (
        "data_loading",
        "model_training",
        "model_evaluation",
    ),
    "full": (
        "data_loading",
        "data_preprocessing",
        "data_augmentation",
        "model_training",
        "model_evaluation",
        "model_comparison",
        "model_selection",
        "model_deployment",
        "report_generation",
    ),
}

_NL_INTROS: Dict[str, str] = {
    "ads": "Build a click-through-rate prediction workflow for ads.",
    "risk": "Design a fraud detection training workflow over transactions.",
    "retail": "Build a workflow that predicts customer churn from orders.",
    "content": "Create a workflow for sentiment analysis over reviews.",
}


# ---------------------------------------------------------------------------
# Corpus spec / entries.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusSpec:
    """Everything that determines a corpus, hence its digest."""

    seed: int = 0
    #: Number of entries (one entry = one SQL script or one NL workflow).
    size: int = 24
    personas: Tuple[str, ...] = ("etl", "research", "serving", "batch")


@dataclass
class CorpusEntry:
    """One generated workload unit: a script or an NL task, compiled."""

    name: str
    persona: str
    #: ``"sql"`` or ``"nl"``.
    kind: str
    #: The human-authored surface form: SQLFlow script text or the NL
    #: description the planner saw.
    source: str
    #: Frontend-compiled workflows — one per SQL statement, one for NL.
    irs: List[WorkflowIR]
    arrival: float
    user: str
    priority: int
    slo_class: str
    #: Name of the earlier entry this one reruns, if any.
    rerun_of: Optional[str] = None
    #: Derived bookkeeping (domain, sequence, Code Lake retrieval hits).
    meta: Dict[str, object] = field(default_factory=dict)

    def total_nodes(self) -> int:
        return sum(len(ir) for ir in self.irs)


@dataclass
class ScenarioCorpus:
    """A built corpus: entries in arrival order, plus provenance."""

    spec: CorpusSpec
    catalog: SchemaCatalog
    entries: List[CorpusEntry]

    # ------------------------------------------------------------- queries

    def by_persona(self) -> Dict[str, List[CorpusEntry]]:
        grouped: Dict[str, List[CorpusEntry]] = {p: [] for p in self.spec.personas}
        for entry in self.entries:
            grouped[entry.persona].append(entry)
        return grouped

    def workflows(self) -> List[Tuple[CorpusEntry, WorkflowIR]]:
        """All compiled IRs, flattened in arrival/statement order."""
        return [(entry, ir) for entry in self.entries for ir in entry.irs]

    # ------------------------------------------------------------- digest

    def digest(self) -> str:
        """Stable fingerprint over scripts, IRs and arrival schedule.

        Two builds with the same spec must produce the same digest —
        CI generates the corpus twice and diffs exactly this value.
        """
        payload = {
            "spec": {
                "seed": self.spec.seed,
                "size": self.spec.size,
                "personas": list(self.spec.personas),
            },
            "entries": [
                {
                    "name": e.name,
                    "persona": e.persona,
                    "kind": e.kind,
                    "source": e.source,
                    "arrival": round(e.arrival, 9),
                    "user": e.user,
                    "priority": e.priority,
                    "slo_class": e.slo_class,
                    "rerun_of": e.rerun_of,
                    "meta": e.meta,
                    "irs": [ir_to_dict(ir) for ir in e.irs],
                }
                for e in self.entries
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def describe(self) -> Dict[str, object]:
        """Summary for ``repro corpus describe`` and reports."""
        per_persona: Dict[str, Dict[str, object]] = {}
        for persona, entries in self.by_persona().items():
            per_persona[persona] = {
                "entries": len(entries),
                "sql": sum(1 for e in entries if e.kind == "sql"),
                "nl": sum(1 for e in entries if e.kind == "nl"),
                "reruns": sum(1 for e in entries if e.rerun_of),
                "workflows": sum(len(e.irs) for e in entries),
                "nodes": sum(e.total_nodes() for e in entries),
            }
        return {
            "seed": self.spec.seed,
            "size": self.spec.size,
            "entries": len(self.entries),
            "workflows": sum(len(e.irs) for e in self.entries),
            "nodes": sum(e.total_nodes() for e in self.entries),
            "horizon_s": round(max((e.arrival for e in self.entries), default=0.0), 3),
            "personas": per_persona,
            "digest": self.digest(),
        }

    # ------------------------------------------------------------ adapters

    def to_fleet_spec(self, clusters: Optional[List[Cluster]] = None) -> FleetSpec:
        """Adapt to the fleetgen shape: every IR becomes one arrival.

        Statements of one script share the script's arrival time (the
        chained-submission alternative is :func:`submit_corpus`); order
        within a tick is the script's statement order, so admission sees
        a deterministic submission sequence.
        """
        arrivals = [
            (entry.arrival, ir.to_executable(), entry.user, entry.priority, entry.slo_class)
            for entry, ir in self.workflows()
        ]
        return FleetSpec(
            clusters=clusters if clusters is not None else build_clusters(),
            arrivals=arrivals,
            seed=self.spec.seed,
            tenant_weights=dict(CORPUS_TENANTS),
        )


def build_clusters() -> List[Cluster]:
    """The default fleet the corpus runs against (1 GPU pool + 3 CPU)."""
    return [
        Cluster.uniform(
            f"corpus-c{index}",
            4,
            cpu_per_node=16.0,
            memory_per_node=64 * GB,
            gpu_per_node=2 if index == 0 else 0,
        )
        for index in range(4)
    ]


# ---------------------------------------------------------------------------
# SQL script generation.
# ---------------------------------------------------------------------------


def _sql_columns(rng: random.Random, table: TableSchema) -> List[str]:
    count = rng.randint(2, len(table.columns))
    return sorted(rng.sample(list(table.columns), count))


def _train_attributes(rng: random.Random) -> str:
    epochs = rng.choice([5, 10, 20])
    batch = rng.choice([64, 128, 256])
    return f"train.epochs = {epochs}, train.batch_size = {batch}"


def _maybe_noise(rng: random.Random, lines: List[str], note: str) -> None:
    """Sprinkle the comment/blank-statement noise real scripts carry."""
    roll = rng.random()
    if roll < 0.4:
        lines.append(f"-- {note}")
    elif roll < 0.6:
        lines.append(";")


def generate_sql_script(
    rng: random.Random,
    domain: DomainSchema,
    profile: PersonaProfile,
    entry_name: str,
) -> str:
    """One multi-statement SQLFlow script for ``domain``.

    Pipeline style builds features (``TO TRAIN FeatureTransform``),
    trains, then predicts with the trained model — statement ``N+1``
    consumes statement ``N``'s ``INTO`` table.  Scoring style only
    predicts against the domain's standing production model.
    """
    table = rng.choice(list(domain.tables))
    lines: List[str] = [f"-- persona: {profile.name}  entry: {entry_name}"]
    tag = entry_name.rsplit("-", 1)[-1] if "-" in entry_name else entry_name

    if profile.script_style == "scoring":
        model_table = f"{domain.name}.model_prod"
        num_predicts = rng.randint(*profile.predict_statements)
        for index in range(num_predicts):
            _maybe_noise(rng, lines, f"scoring pass {index}")
            lines.append(
                f"SELECT * FROM {table.name}\n"
                f"TO PREDICT {domain.name}.scores_{tag}_{index}.{table.label}\n"
                f"USING {model_table};"
            )
        return "\n".join(lines) + "\n"

    source_table = table.name
    num_features = rng.randint(*profile.feature_stages)
    for index in range(num_features):
        columns = _sql_columns(rng, table)
        features_table = f"{domain.name}.features_{tag}_{index}"
        _maybe_noise(rng, lines, f"feature stage {index}")
        lines.append(
            f"SELECT {', '.join(columns)} FROM {source_table}\n"
            f"TO TRAIN FeatureTransform\n"
            f"WITH transform.buckets = {rng.choice([16, 32, 64])}\n"
            f"COLUMN {', '.join(columns)}\n"
            f"INTO {features_table};"
        )
        source_table = features_table

    estimator = rng.choice(list(domain.estimators))
    model_table = f"{domain.name}.model_{tag}"
    feature_columns = _sql_columns(rng, table)
    _maybe_noise(rng, lines, "train the model")
    lines.append(
        f"SELECT * FROM {source_table}\n"
        f"TO TRAIN {estimator}\n"
        f"WITH {_train_attributes(rng)}\n"
        f"COLUMN {', '.join(feature_columns)}\n"
        f"LABEL {table.label}\n"
        f"INTO {model_table};"
    )

    num_predicts = rng.randint(*profile.predict_statements)
    scoring_tables = [t.name for t in domain.tables]
    for index in range(num_predicts):
        scoring = rng.choice(scoring_tables)
        _maybe_noise(rng, lines, f"score {scoring}")
        lines.append(
            f"SELECT * FROM {scoring}\n"
            f"TO PREDICT {domain.name}.scores_{tag}_{index}.{table.label}\n"
            f"USING {model_table};"
        )
    return "\n".join(lines) + "\n"


def compile_sql_entry(script: str, entry_name: str) -> List[WorkflowIR]:
    """Lower a script through the SQLFlow frontend, one IR per statement.

    Workflow names are made unique per entry/statement — the frontend's
    defaults (``sqlflow-train-<estimator>``) collide across a corpus.
    """
    irs = []
    for index, statement in enumerate(parse_many(script)):
        ir = statement_to_ir(statement, workflow_name=f"{entry_name}-s{index}")
        ir.finalize_artifacts()
        irs.append(ir)
    return irs


# ---------------------------------------------------------------------------
# NL workflow generation (expanded Code Lake).
# ---------------------------------------------------------------------------


def build_nl_task(
    domain: DomainSchema, sequence_name: str, entry_name: str
) -> NLTask:
    """Mint one NL task for ``domain`` from a named module sequence."""
    return build_task(
        name=entry_name,
        intro=_NL_INTROS[domain.name],
        dataset=domain.dataset,
        models=list(domain.models),
        sequence=list(NL_SEQUENCES[sequence_name]),
    )


def compile_nl_entry(
    task: NLTask, lake: CodeLake, entry_name: str
) -> Tuple[WorkflowIR, int]:
    """Compile an NL task via Code Lake retrieval + canonical rendering.

    For each module we retrieve the best snippet from the expanded lake;
    when retrieval lands on the dataset-specialised entry for the
    module's own task type, its pre-rendered code is used directly
    (that's the paper's "provide relevant code to the LLM" step paying
    off).  Otherwise the canonical template is rendered from the module
    parameters.  Returns the IR and the retrieval hit count.
    """
    pieces: List[str] = []
    hits = 0
    for module in task.modules:
        rendered = canonical_code(module.task_type, dict(module.params))
        snippet = lake.best_reference(module.text)
        if (
            snippet is not None
            and snippet.task_type == module.task_type
            and snippet.code == rendered
        ):
            hits += 1
            pieces.append(snippet.code)
        else:
            pieces.append(rendered)
    ir = execute_couler_code("\n".join(pieces), workflow_name=f"{entry_name}-nl")
    ir.finalize_artifacts()
    return ir, hits


# ---------------------------------------------------------------------------
# Corpus assembly.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _EntryPlan:
    """Phase-1 skeleton: everything drawn before scripts are rendered."""

    persona: str
    arrival: float
    kind: str
    rerun: bool
    priority: int
    domain: str
    sequence: str
    detail_seed: int


def _allocate_counts(spec: CorpusSpec) -> Dict[str, int]:
    """Largest-remainder allocation of ``size`` entries across personas."""
    shares = {p: PERSONAS[p].share for p in spec.personas}
    total_share = sum(shares.values())
    exact = {p: spec.size * s / total_share for p, s in shares.items()}
    counts = {p: int(exact[p]) for p in spec.personas}
    leftover = spec.size - sum(counts.values())
    by_remainder = sorted(
        spec.personas, key=lambda p: (-(exact[p] - counts[p]), p)
    )
    for p in by_remainder[:leftover]:
        counts[p] += 1
    return counts


def _plan_entries(spec: CorpusSpec, catalog: SchemaCatalog) -> List[_EntryPlan]:
    plans: List[_EntryPlan] = []
    domain_names = [d.name for d in catalog.domains]
    for persona in spec.personas:
        profile = PERSONAS[persona]
        rng = random.Random(f"{spec.seed}:{persona}")
        clock = 0.0
        for _ in range(_allocate_counts(spec)[persona]):
            clock += rng.expovariate(1.0 / profile.mean_interarrival_s)
            kind = "sql" if rng.random() < profile.sql_fraction else "nl"
            plans.append(
                _EntryPlan(
                    persona=persona,
                    arrival=round(clock, 6),
                    kind=kind,
                    rerun=rng.random() < profile.rerun_probability,
                    priority=rng.randint(*profile.priorities),
                    domain=rng.choice(domain_names),
                    sequence=rng.choice(list(profile.nl_sequences)),
                    detail_seed=rng.randrange(2**31),
                )
            )
    plans.sort(key=lambda p: (p.arrival, p.persona))
    return plans


def clone_ir(ir: WorkflowIR, new_name: str) -> WorkflowIR:
    """A rerun view of ``ir``: new workflow name, same (finalized) nodes.

    Nodes are shared by reference, so the artifact uids assigned at
    build time survive — the rerun produces/consumes the *same*
    artifacts, which is exactly what makes it cache-hittable.  The
    source IR must already be finalized (the corpus always is).
    """
    return WorkflowIR(
        name=new_name,
        nodes=dict(ir.nodes),
        edges=set(ir.edges),
        config=dict(ir.config),
    )


def build_corpus(spec: CorpusSpec) -> ScenarioCorpus:
    """Generate and frontend-compile the full scenario corpus."""
    for persona in spec.personas:
        if persona not in PERSONAS:
            raise KeyError(f"unknown persona {persona!r}; choose from {sorted(PERSONAS)}")
    catalog = SchemaCatalog.default()
    lake = expand_code_lake(catalog.datasets())
    entries: List[CorpusEntry] = []
    built_by_persona: Dict[str, List[CorpusEntry]] = {p: [] for p in spec.personas}

    for index, plan in enumerate(_plan_entries(spec, catalog)):
        profile = PERSONAS[plan.persona]
        entry_name = f"corpus-{index:04d}-{plan.persona}"
        rng = random.Random(plan.detail_seed)
        domain = catalog.by_name(plan.domain)

        rerun_of: Optional[str] = None
        candidates = [e for e in built_by_persona[plan.persona] if not e.rerun_of]
        if plan.rerun and candidates:
            base = rng.choice(candidates)
            rerun_of = base.name
            entry = CorpusEntry(
                name=entry_name,
                persona=plan.persona,
                kind=base.kind,
                source=base.source,
                irs=[
                    clone_ir(ir, f"{entry_name}-s{i}")
                    for i, ir in enumerate(base.irs)
                ],
                arrival=plan.arrival,
                user=plan.persona,
                priority=plan.priority,
                slo_class=profile.slo_class,
                rerun_of=rerun_of,
                meta=dict(base.meta),
            )
        elif plan.kind == "sql":
            script = generate_sql_script(rng, domain, profile, entry_name)
            entry = CorpusEntry(
                name=entry_name,
                persona=plan.persona,
                kind="sql",
                source=script,
                irs=compile_sql_entry(script, entry_name),
                arrival=plan.arrival,
                user=plan.persona,
                priority=plan.priority,
                slo_class=profile.slo_class,
                meta={"domain": domain.name, "statements": len(parse_many(script))},
            )
        else:
            task = build_nl_task(domain, plan.sequence, entry_name)
            ir, hits = compile_nl_entry(task, lake, entry_name)
            entry = CorpusEntry(
                name=entry_name,
                persona=plan.persona,
                kind="nl",
                source=task.description,
                irs=[ir],
                arrival=plan.arrival,
                user=plan.persona,
                priority=plan.priority,
                slo_class=profile.slo_class,
                meta={
                    "domain": domain.name,
                    "sequence": plan.sequence,
                    "retrieval_hits": hits,
                    "modules": len(task.modules),
                },
            )
        entries.append(entry)
        built_by_persona[plan.persona].append(entry)

    return ScenarioCorpus(spec=spec, catalog=catalog, entries=entries)


# ---------------------------------------------------------------------------
# Admission submission (chained statements).
# ---------------------------------------------------------------------------


def submit_corpus(
    pipeline: AdmissionPipeline,
    corpus: ScenarioCorpus,
    chain: bool = True,
) -> List[AdmissionRecord]:
    """Schedule every entry; the caller drives ``pipeline.run()``.

    With ``chain=True`` a multi-statement entry submits statement 0 at
    the entry's arrival and each following statement on the previous
    one's completion — the SQLFlow script-runner contract (``INTO`` /
    ``USING`` tables exist before consumers start).  With
    ``chain=False`` all statements are submitted at arrival, matching
    :meth:`ScenarioCorpus.to_fleet_spec`.

    The returned list grows as chained statements are admitted; read it
    after ``pipeline.run()`` returns.
    """
    records: List[AdmissionRecord] = []
    for entry in corpus.entries:
        executables = [ir.to_executable() for ir in entry.irs]
        submit_chain(pipeline, entry, executables, records, chain=chain)
    return records


def submit_chain(
    pipeline: AdmissionPipeline,
    entry: CorpusEntry,
    executables: Sequence,
    records: List[AdmissionRecord],
    chain: bool = True,
) -> None:
    """Submit ``executables`` for one entry, sequentially chained.

    Exposed separately so callers that rewrite an entry's workflows
    first — e.g. the e2e experiment, which runs each IR through the
    auto-splitter and chains the resulting parts — reuse the same
    completion-callback plumbing.
    """

    def _submit(index: int, at: float) -> None:
        on_complete = None
        if chain and index + 1 < len(executables):

            def _next(_record, index=index):
                _submit(index + 1, pipeline.clock.now)

            on_complete = _next
        records.append(
            pipeline.submit_at(
                at,
                executables[index],
                user=entry.user,
                priority=entry.priority,
                slo_class=entry.slo_class,
                on_complete=on_complete,
            )
        )

    if chain:
        _submit(0, entry.arrival)
    else:
        for index in range(len(executables)):
            _submit(index, entry.arrival)


__all__ = [
    "CORPUS_TENANTS",
    "CorpusEntry",
    "CorpusSpec",
    "DomainSchema",
    "NL_SEQUENCES",
    "PERSONAS",
    "PersonaProfile",
    "ScenarioCorpus",
    "SchemaCatalog",
    "TableSchema",
    "build_clusters",
    "build_corpus",
    "build_nl_task",
    "clone_ir",
    "compile_nl_entry",
    "compile_sql_entry",
    "generate_sql_script",
    "submit_chain",
    "submit_corpus",
]
