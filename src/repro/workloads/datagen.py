"""Data-caching workloads (paper Appendix D.C, Fig. 17).

Synthetic stand-ins for the paper's internal datasets:

- two ads-recommendation tables (``ads-a``, ``ads-b``), partitioned,
  >10 GB per partition, stored on ODPS;
- a small-files workload: >10k files totalling >10 GB (OSS);
- a big-files workload: ~10 zip files of >1 GB each (NAS).
"""

from __future__ import annotations

from typing import Dict, List

from ..caching.dataset_crd import Dataset, DatasetKind

GB = 2**30


def ads_tables() -> List[Dataset]:
    """The two ads-recommendation tables (12 partitions each)."""
    return [
        Dataset(
            name="ads-a",
            kind=DatasetKind.ODPS_TABLE,
            total_bytes=12 * GB,
            num_files=12,
            project="ads_recommendation",
            table="ads_a",
        ),
        Dataset(
            name="ads-b",
            kind=DatasetKind.ODPS_TABLE,
            total_bytes=14 * GB,
            num_files=12,
            project="ads_recommendation",
            table="ads_b",
        ),
    ]


def small_files_dataset() -> Dataset:
    """>10k small files, >10 GB total (image/video training inputs)."""
    return Dataset(
        name="small-files",
        kind=DatasetKind.OSS_FILES,
        total_bytes=11 * GB,
        num_files=10_500,
        project="vision",
    )


def big_files_dataset() -> Dataset:
    """~10 zip archives of >1 GB each."""
    return Dataset(
        name="big-files",
        kind=DatasetKind.NAS_FILES,
        total_bytes=12 * GB,
        num_files=10,
        project="vision",
    )


def all_datasets() -> Dict[str, Dataset]:
    datasets = {d.name: d for d in ads_tables()}
    datasets["small-files"] = small_files_dataset()
    datasets["big-files"] = big_files_dataset()
    return datasets
