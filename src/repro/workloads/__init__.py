"""Workload generators for the evaluation: production traces, the three
caching scenarios, and the data-read datasets."""

from .arrivals import (
    ArrivalError,
    PRODUCTION_RATE_PER_S,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from .datagen import ads_tables, all_datasets, big_files_dataset, small_files_dataset
from .scenarios import (
    SCENARIOS,
    ScenarioSpec,
    build_image_segmentation,
    build_lm_finetune,
    build_multimodal,
)
from .traces import (
    DailyActivity,
    MEAN_CPU_CORES,
    MEAN_DAILY_WORKFLOWS,
    MEAN_LIFESPAN_HOURS,
    TraceGenerator,
    WorkflowTraceRecord,
    histogram,
    mean,
)

__all__ = [
    "ArrivalError",
    "DailyActivity",
    "PRODUCTION_RATE_PER_S",
    "PoissonArrivalProcess",
    "TraceArrivalProcess",
    "MEAN_CPU_CORES",
    "MEAN_DAILY_WORKFLOWS",
    "MEAN_LIFESPAN_HOURS",
    "SCENARIOS",
    "ScenarioSpec",
    "TraceGenerator",
    "WorkflowTraceRecord",
    "ads_tables",
    "all_datasets",
    "big_files_dataset",
    "build_image_segmentation",
    "build_lm_finetune",
    "build_multimodal",
    "histogram",
    "mean",
    "small_files_dataset",
]
