"""Workload generators for the evaluation: production traces, the three
caching scenarios, and the data-read datasets."""

from .arrivals import (
    ArrivalError,
    PRODUCTION_RATE_PER_S,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from .corpus import (
    CORPUS_TENANTS,
    CorpusEntry,
    CorpusSpec,
    PERSONAS,
    PersonaProfile,
    ScenarioCorpus,
    SchemaCatalog,
    build_corpus,
    submit_corpus,
)
from .fleetgen import FleetSpec, build_fleet, build_pipeline, submit_fleet
from .datagen import ads_tables, all_datasets, big_files_dataset, small_files_dataset
from .scenarios import (
    SCENARIOS,
    ScenarioSpec,
    build_image_segmentation,
    build_lm_finetune,
    build_multimodal,
)
from .traces import (
    DailyActivity,
    MEAN_CPU_CORES,
    MEAN_DAILY_WORKFLOWS,
    MEAN_LIFESPAN_HOURS,
    TraceGenerator,
    WorkflowTraceRecord,
    histogram,
    mean,
)

__all__ = [
    "ArrivalError",
    "CORPUS_TENANTS",
    "CorpusEntry",
    "CorpusSpec",
    "DailyActivity",
    "FleetSpec",
    "PERSONAS",
    "PRODUCTION_RATE_PER_S",
    "PersonaProfile",
    "PoissonArrivalProcess",
    "ScenarioCorpus",
    "SchemaCatalog",
    "TraceArrivalProcess",
    "build_corpus",
    "build_fleet",
    "build_pipeline",
    "submit_corpus",
    "submit_fleet",
    "MEAN_CPU_CORES",
    "MEAN_DAILY_WORKFLOWS",
    "MEAN_LIFESPAN_HOURS",
    "SCENARIOS",
    "ScenarioSpec",
    "TraceGenerator",
    "WorkflowTraceRecord",
    "ads_tables",
    "all_datasets",
    "big_files_dataset",
    "build_image_segmentation",
    "build_lm_finetune",
    "build_multimodal",
    "histogram",
    "mean",
    "small_files_dataset",
]
