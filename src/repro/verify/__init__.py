"""Differential verification subsystem.

A seeded workflow fuzzer (:mod:`generator`), a canonical semantic
fingerprint for execution outcomes (:mod:`fingerprint`), differential
oracles asserting the engine's advertised equivalences per seed
(:mod:`oracles`), structural backend conformance checks
(:mod:`backends_conformance`), and a node-deletion shrinker that
reduces any failing workflow to a minimal repro (:mod:`shrink`).

``python -m repro verify --seeds N`` sweeps seeds through every oracle
and is the CI gate next to the chaos gate.
"""

from .backends_conformance import conformance_problems
from .fingerprint import Fingerprint, fingerprint_record, fingerprint_staged
from .generator import GeneratorConfig, generate_ir
from .oracles import CORPUS_ORACLES, ORACLES, OracleOutcome, corpus_ir, run_seed, run_suite
from .shrink import shrink_ir

__all__ = [
    "CORPUS_ORACLES",
    "Fingerprint",
    "GeneratorConfig",
    "ORACLES",
    "OracleOutcome",
    "conformance_problems",
    "corpus_ir",
    "fingerprint_record",
    "fingerprint_staged",
    "generate_ir",
    "run_seed",
    "run_suite",
    "shrink_ir",
]
