"""Structural conformance checks for compiled backend output.

No real Argo/Airflow/Tekton deployment exists in this environment, so
these validators assert the *shape* each engine's API server would
enforce: required top-level keys, referential integrity (every DAG task
references an existing template, every dependency an existing task),
parseable annotations and conditions, and YAML-serializability.  The
Airflow module must additionally be valid Python (``ast.parse``) with
one operator per IR node and one ``>>`` wire per edge.

:func:`check_ir_roundtrip` asserts IR → dict → IR identity — the wire
format the server's database persists must be lossless.
"""

from __future__ import annotations

import ast
import json
import re
from typing import List

import yaml

from ..backends.airflow import AirflowBackend, _py_identifier
from ..backends.argo import ArgoBackend
from ..backends.tekton import TektonBackend
from ..engine.operator import validate_when_expr
from ..engine.spec import SIM_ANNOTATION, SpecError
from ..ir.graph import WorkflowIR
from ..ir.serialize import ir_from_dict, ir_to_dict

_NAME_RE = re.compile(r"^[a-z0-9]([a-z0-9.-]*[a-z0-9])?$", re.IGNORECASE)


def _check_k8s_name(name: object, where: str, problems: List[str]) -> None:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        problems.append(f"{where}: invalid Kubernetes name {name!r}")


def _check_yaml_serializable(payload: object, where: str, problems: List[str]) -> None:
    try:
        yaml.safe_dump(payload, sort_keys=False)
    except yaml.YAMLError as exc:
        problems.append(f"{where}: not YAML-serializable: {exc}")


# ---------------------------------------------------------------------- argo


def validate_argo_manifest(manifest: dict) -> List[str]:
    """Structural problems in an Argo ``Workflow`` manifest (empty = ok)."""
    problems: List[str] = []
    if manifest.get("apiVersion") != "argoproj.io/v1alpha1":
        problems.append(f"argo: bad apiVersion {manifest.get('apiVersion')!r}")
    if manifest.get("kind") != "Workflow":
        problems.append(f"argo: bad kind {manifest.get('kind')!r}")
    _check_k8s_name(
        manifest.get("metadata", {}).get("name"), "argo: metadata.name", problems
    )
    spec = manifest.get("spec", {})
    templates = spec.get("templates", [])
    by_name = {t.get("name"): t for t in templates}
    entrypoint = spec.get("entrypoint")
    if entrypoint not in by_name:
        problems.append(f"argo: entrypoint {entrypoint!r} is not a template")
        return problems
    dag = by_name[entrypoint].get("dag", {})
    tasks = dag.get("tasks", [])
    task_names = {task.get("name") for task in tasks}
    for task in tasks:
        name = task.get("name")
        if task.get("template") not in by_name:
            problems.append(
                f"argo: task {name!r} references missing template "
                f"{task.get('template')!r}"
            )
        for dep in task.get("dependencies", []):
            if dep not in task_names:
                problems.append(
                    f"argo: task {name!r} depends on unknown task {dep!r}"
                )
        when = task.get("when")
        if when is not None:
            try:
                validate_when_expr(when, name or "?")
            except SpecError as exc:
                problems.append(f"argo: {exc}")
    for template in templates:
        name = template.get("name")
        if name == entrypoint:
            continue
        _check_k8s_name(name, "argo: template name", problems)
        bodies = [k for k in ("container", "script", "dag") if k in template]
        if len(bodies) != 1:
            problems.append(
                f"argo: template {name!r} must have exactly one body, "
                f"got {bodies}"
            )
        annotation = (
            template.get("metadata", {}).get("annotations", {}).get(SIM_ANNOTATION)
        )
        if annotation is None:
            problems.append(f"argo: template {name!r} missing {SIM_ANNOTATION}")
        else:
            try:
                json.loads(annotation)
            except json.JSONDecodeError:
                problems.append(
                    f"argo: template {name!r} has unparseable sim annotation"
                )
        retry = template.get("retryStrategy")
        if retry is not None:
            limit = retry.get("limit")
            if not isinstance(limit, int) or limit < 0:
                problems.append(
                    f"argo: template {name!r} retryStrategy.limit {limit!r}"
                )
    _check_yaml_serializable(manifest, "argo", problems)
    return problems


# ------------------------------------------------------------------- airflow


def validate_airflow_source(source: str, ir: WorkflowIR) -> List[str]:
    """Structural problems in a generated Airflow DAG module."""
    problems: List[str] = []
    try:
        ast.parse(source)
    except SyntaxError as exc:
        return [f"airflow: generated module is not valid Python: {exc}"]
    for name in ir.nodes:
        if f"task_id={name!r}" not in source:
            problems.append(f"airflow: no operator with task_id {name!r}")
    for parent, child in sorted(ir.edges):
        wire = f"{_py_identifier(parent)} >> {_py_identifier(child)}"
        if wire not in source:
            problems.append(f"airflow: missing dependency wire {wire!r}")
    for name, node in ir.nodes.items():
        if node.when and f"task_id={f'guard-{name}'!r}" not in source:
            problems.append(f"airflow: conditional step {name!r} has no guard")
    return problems


# -------------------------------------------------------------------- tekton


def validate_tekton_manifests(compiled: dict, ir: WorkflowIR) -> List[str]:
    """Structural problems in Tekton Pipeline/PipelineRun manifests."""
    problems: List[str] = []
    pipeline = compiled.get("pipeline", {})
    run = compiled.get("pipelineRun", {})
    for payload, kind in ((pipeline, "Pipeline"), (run, "PipelineRun")):
        if payload.get("apiVersion") != "tekton.dev/v1":
            problems.append(f"tekton: {kind} bad apiVersion")
        if payload.get("kind") != kind:
            problems.append(f"tekton: expected kind {kind}")
        _check_k8s_name(
            payload.get("metadata", {}).get("name"),
            f"tekton: {kind} name",
            problems,
        )
    tasks = pipeline.get("spec", {}).get("tasks", [])
    task_names = [task.get("name") for task in tasks]
    if sorted(task_names) != sorted(ir.nodes):
        problems.append(
            f"tekton: tasks {sorted(task_names)} != IR nodes {sorted(ir.nodes)}"
        )
    seen = set()
    for task in tasks:
        name = task.get("name")
        if name in seen:
            problems.append(f"tekton: duplicate task {name!r}")
        seen.add(name)
        steps = task.get("taskSpec", {}).get("steps", [])
        if not steps:
            problems.append(f"tekton: task {name!r} has no steps")
        for dep in task.get("runAfter", []):
            if dep not in task_names:
                problems.append(
                    f"tekton: task {name!r} runAfter unknown task {dep!r}"
                )
    ref = run.get("spec", {}).get("pipelineRef", {}).get("name")
    if ref != pipeline.get("metadata", {}).get("name"):
        problems.append(
            f"tekton: PipelineRun references {ref!r}, not the Pipeline"
        )
    _check_yaml_serializable(compiled, "tekton", problems)
    return problems


# ----------------------------------------------------------------- roundtrip


def check_ir_roundtrip(ir: WorkflowIR) -> List[str]:
    """IR → dict → IR identity under the serialized form."""
    problems: List[str] = []
    data = ir_to_dict(ir)
    restored = ir_from_dict(data)
    if ir_to_dict(restored) != data:
        problems.append("roundtrip: ir_to_dict(ir_from_dict(d)) != d")
    if set(restored.nodes) != set(ir.nodes):
        problems.append("roundtrip: node set changed")
    if restored.edges != ir.edges:
        problems.append("roundtrip: edge set changed")
    for name in sorted(set(restored.nodes) & set(ir.nodes)):
        if restored.nodes[name] != ir.nodes[name]:
            problems.append(f"roundtrip: node {name!r} fields drifted")
    return problems


def conformance_problems(ir: WorkflowIR) -> List[str]:
    """Run every structural validator against ``ir``; empty list = ok."""
    problems: List[str] = []
    problems.extend(validate_argo_manifest(ArgoBackend().compile(ir)))
    problems.extend(validate_airflow_source(AirflowBackend().compile(ir), ir))
    problems.extend(validate_tekton_manifests(TektonBackend().compile(ir), ir))
    problems.extend(check_ir_roundtrip(ir))
    return problems
