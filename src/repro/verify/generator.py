"""Seeded random workflow generator.

Emits valid DSL programs spanning the whole Couler surface —
``run_container`` / ``run_script`` / ``run_job``, ``when``, ``map``,
``concurrent``, ``exec_while``, explicit ``dag()``, artifacts of every
storage class, per-step retries and simulation hints — driven entirely
by one ``random.Random(seed)``, so the same seed always yields the same
IR (byte-identical under :func:`repro.ir.serialize.ir_to_dict`).

Two modes:

* ``deterministic=True`` (the differential-oracle default) forces zero
  failure rates and at most one ``result_options`` value per script, so
  every execution of the workflow — on any submitter, split plan or
  cache configuration — takes exactly the same branches even when the
  engines' RNG streams diverge.
* ``deterministic=False`` adds failure injection and multi-valued
  results; only the replay-determinism oracle (same seed, same engine,
  twice) uses it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import core as couler
from ..ir.graph import WorkflowIR
from ..ir.nodes import ArtifactDecl, ArtifactStorage, SimHint
from ..k8s.resources import ResourceQuantity

#: Values a generated script may print as its ``result``.  Plain
#: alphanumeric tokens only — they must survive the condition grammar
#: (``{{step.result}} == value``) unquoted.
RESULT_POOL: Tuple[str, ...] = ("heads", "tails", "ok", "retry", "done")

#: Retryable patterns sampled for stochastic steps — chosen retryable so
#: fuzzed workflows usually converge instead of failing outright.
FAILURE_POOL: Tuple[str, ...] = (
    "NetworkTimeoutErr",
    "ImagePullBackOffErr",
    "ExceededQuotaErr",
)

_STORAGES: Tuple[ArtifactStorage, ...] = tuple(ArtifactStorage)
_DURATIONS: Tuple[float, ...] = (5.0, 15.0, 30.0, 60.0)
_MB = 2**20


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the fuzzer; the defaults fit the oracle clusters."""

    min_nodes: int = 3
    max_nodes: int = 12
    #: Forced outcomes (no failures, single-valued results) so that
    #: cross-execution oracles compare like against like.
    deterministic: bool = True
    max_failure_rate: float = 0.25
    gpu_probability: float = 0.15
    artifact_probability: float = 0.5
    input_probability: float = 0.4
    #: Probability the whole workflow is defined via explicit ``dag()``
    #: instead of implicit chaining + control flow.
    dag_probability: float = 0.2


class _Program:
    """One generated DSL program, built against the active context."""

    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.counter = 0
        #: Step handles that declared a data artifact (input candidates).
        self.producers: List[couler.StepOutput] = []
        #: (handle, result_options) of scripts (condition candidates).
        self.scripts: List[Tuple[couler.StepOutput, Tuple[str, ...]]] = []

    # ----------------------------------------------------------- ingredients

    def _next(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _sim(self, result_options: Tuple[str, ...] = ()) -> SimHint:
        rng = self.rng
        if self.config.deterministic:
            rate, pattern = 0.0, "PodCrashErr"
        else:
            rate = (
                round(rng.uniform(0.05, self.config.max_failure_rate), 3)
                if rng.random() < 0.3
                else 0.0
            )
            pattern = rng.choice(FAILURE_POOL)
        return SimHint(
            duration_s=rng.choice(_DURATIONS),
            failure_rate=rate,
            failure_pattern=pattern,
            uses_gpu=rng.random() < self.config.gpu_probability,
            result_options=result_options,
        )

    def _resources(self, sim: SimHint) -> ResourceQuantity:
        rng = self.rng
        return ResourceQuantity(
            cpu=rng.choice((0.5, 1.0, 2.0)),
            memory=rng.choice((256 * _MB, 512 * _MB, 1024 * _MB)),
            gpu=1 if sim.uses_gpu else 0,
        )

    def _artifact(self) -> Optional[ArtifactDecl]:
        rng = self.rng
        if rng.random() >= self.config.artifact_probability:
            return None
        name = self._next("art")
        return ArtifactDecl(
            name=name,
            storage=rng.choice(_STORAGES),
            path=f"/data/{name}",
            size_bytes=rng.choice((4096, _MB, 16 * _MB)),
        )

    def _input(self):
        if self.producers and self.rng.random() < self.config.input_probability:
            return self.rng.choice(self.producers)
        return None

    def _result_options(self) -> Tuple[str, ...]:
        rng = self.rng
        if self.config.deterministic:
            # Zero or one option: the drawn result is forced (or absent)
            # regardless of how many RNG draws preceded it.
            return (rng.choice(RESULT_POOL),) if rng.random() < 0.8 else ()
        k = rng.randint(2, 3)
        return tuple(rng.sample(RESULT_POOL, k))

    # ----------------------------------------------------------------- steps

    def _container(self) -> couler.StepOutput:
        sim = self._sim()
        out = couler.run_container(
            image=f"repro/worker:v{self.rng.randint(1, 3)}",
            command=["python", "task.py"],
            args=[f"--id={self.counter}"],
            step_name=self._next("c"),
            resources=self._resources(sim),
            output=self._artifact(),
            input=self._input(),
            sim=sim,
        )
        if out.artifact is not None:
            self.producers.append(out)
        return out

    def _script(self, force_options: bool = False) -> couler.StepOutput:
        options = self._result_options()
        if force_options and not options:
            options = (self.rng.choice(RESULT_POOL),)
        sim = self._sim(result_options=options)
        out = couler.run_script(
            image="python:3.10",
            source=f"print('{self.rng.choice(RESULT_POOL)}')",
            step_name=self._next("s"),
            resources=self._resources(sim),
            input=self._input(),
            sim=sim,
        )
        if options:
            self.scripts.append((out, options))
        return out

    def _job(self) -> couler.StepOutput:
        sim = self._sim()
        out = couler.run_job(
            image="repro/train:v1",
            command="python train.py",
            kind=self.rng.choice(("TFJob", "PyTorchJob")),
            num_ps=self.rng.randint(0, 1),
            num_workers=self.rng.randint(1, 2),
            step_name=self._next("j"),
            resources=ResourceQuantity(
                cpu=1.0, memory=256 * _MB, gpu=1 if sim.uses_gpu else 0
            ),
            output=self._artifact(),
            input=self._input(),
            sim=sim,
        )
        if out.artifact is not None:
            self.producers.append(out)
        return out

    # ----------------------------------------------------------- control flow

    def _condition(self) -> couler.Condition:
        """A condition over some earlier script's result."""
        if not self.scripts:
            self._script(force_options=True)
        handle, options = self.rng.choice(self.scripts)
        if self.rng.random() < 0.7:
            value = self.rng.choice(options)  # may hold (always, if forced)
        else:
            value = "never"  # guaranteed skip branch
        if self.rng.random() < 0.25:
            return couler.not_equal(handle.ref(), value)
        return couler.equal(handle.ref(), value)

    def _when(self) -> None:
        condition = self._condition()
        body = self.rng.choice((self._container, self._script))
        couler.when(condition, body)

    def _map(self) -> None:
        prefix = self._next("m")
        shards = self.rng.randint(2, 3)

        def fan(item: object) -> couler.StepOutput:
            return couler.run_container(
                image="repro/shard:v1",
                command=["python", "shard.py"],
                args=[f"--shard={item}"],
                step_name=f"{prefix}-{item}",
                sim=self._sim(),
            )

        couler.map(fan, list(range(shards)))

    def _concurrent(self) -> None:
        thunks = [
            self.rng.choice((self._container, self._script))
            for _ in range(self.rng.randint(2, 3))
        ]
        couler.concurrent(thunks)

    def _exec_while(self) -> None:
        options = self._result_options() or (self.rng.choice(RESULT_POOL),)
        value = (
            options[0]
            if self.rng.random() < 0.6
            else self.rng.choice(RESULT_POOL)
        )

        def body() -> couler.StepOutput:
            sim = self._sim(result_options=options)
            return couler.run_script(
                image="python:3.10",
                source=f"print('{options[0]}')",
                step_name=self._next("w"),
                sim=sim,
            )

        couler.exec_while(
            couler.equal(value), body, max_iterations=self.rng.randint(2, 3)
        )

    # ------------------------------------------------------------- structure

    def build_implicit(self, target: int) -> None:
        moves = (
            (self._container, 0.30),
            (self._script, 0.20),
            (self._job, 0.10),
            (self._when, 0.12),
            (self._map, 0.10),
            (self._concurrent, 0.10),
            (self._exec_while, 0.08),
        )
        weights = [w for _, w in moves]
        while len(couler.get_context().ir.nodes) < target:
            move = self.rng.choices([m for m, _ in moves], weights=weights)[0]
            move()

    def build_dag(self, target: int) -> None:
        """Explicit-mode workflow: random DAG declared via ``dag()``."""
        names = [self._next("d") for _ in range(target)]

        def declare(name: str):
            def thunk() -> couler.StepOutput:
                sim = self._sim()
                return couler.run_container(
                    image="repro/dag:v1",
                    command=["python", "node.py"],
                    step_name=name,
                    resources=self._resources(sim),
                    output=self._artifact(),
                    sim=sim,
                )

            return thunk

        thunks = {name: declare(name) for name in names}
        elements: List[List[object]] = [[thunks[names[0]]]]
        for index in range(1, len(names)):
            if self.rng.random() < 0.8:
                parent = names[self.rng.randrange(index)]
                elements.append([thunks[parent], thunks[names[index]]])
            else:
                elements.append([thunks[names[index]]])
        couler.dag(elements)


def generate_ir(seed: int, config: Optional[GeneratorConfig] = None) -> WorkflowIR:
    """Generate the workflow for ``seed`` and return its finalized IR."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    couler.reset_context(f"verify-{seed}")
    try:
        program = _Program(rng, config)
        target = rng.randint(config.min_nodes, config.max_nodes)
        if rng.random() < config.dag_probability:
            program.build_dag(target)
        else:
            program.build_implicit(target)
        ir = couler.workflow_ir(optimize=False)
    finally:
        couler.reset_context()
    # Per-step retry limits ride on the IR (the DSL defers to the global
    # policy); assign some so retryStrategy rendering is exercised.
    for name in sorted(ir.nodes):
        if rng.random() < 0.25:
            ir.nodes[name].retries = rng.randint(0, 3)
    return ir
