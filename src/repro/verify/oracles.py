"""Differential oracles: the equivalences the engine advertises.

Per seed, the suite asserts:

* **submitters** — the single-tenant local submitter (Argo-manifest
  path) and the event-driven admission pipeline execute the same
  workflow to the same outcome, including virtual-time makespan.
* **split** — Algorithm 3 split+stitch preserves monolithic output
  semantics across several splitter budgets.
* **cache** — every cache policy (and the cached-step-skip flag) is
  output-transparent: caching changes timings, never results.
* **scores** — the incremental importance scorer (memoized L/F with
  dirty-set invalidation, heap-driven eviction) is decision-for-decision
  and float-for-float identical to the from-scratch scorer.
* **replay** — the same seed replays to a byte-identical full
  fingerprint (statuses, attempts, results, makespan), with failure
  injection and multi-valued results enabled.
* **backends** — compiled Argo/Airflow/Tekton output is structurally
  valid and the IR round-trips through its dict form unchanged.
* **fairness** — every admission fairness policy (strict-priority /
  weighted-fair / drf, and drf with checkpoint preemption) produces
  identical per-workflow outputs-view fingerprints on a contended
  multi-tenant fleet: fairness reorders scheduling, never results.
* **engine_fast** — the fast engine hot paths (parked-candidate
  admission indexes, waitq drain coalescing + dirty-version skip-scan,
  memoized capacity/headroom/fingerprints) are pure optimizations: a
  contended multi-tenant fleet run under ``fast=True`` and the
  straight-line naive mode produce identical admission logs, identical
  journal streams record-for-record, and identical full per-workflow
  fingerprints, with and without preemption.
* **journal** — the journal-backed engine is transparent: attaching a
  journal leaves the full fingerprint bit-identical, replaying the
  journal stream materializes the live record exactly, a sharded
  multi-replica fleet over one shared journal reaches the same
  per-workflow outputs as a single in-memory operator on a contended
  cluster, and every journal prefix materializes to a resumable state.
* **adaptive** — the policy controller is off by default and honest
  when on: default ``PolicyConfig()`` is bit-identical to no policy at
  all on both the cache-manager and admission-pipeline paths, and a
  controller tune is deterministic per seed — two independent tunes
  produce byte-identical replayable ``AdaptationLog``\\ s.

Every oracle has the shape ``check(ir, seed) -> OracleOutcome`` so the
shrinker can re-run it against reduced candidate workflows.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..caching.manager import CacheManager
from ..caching.policy import POLICY_REGISTRY
from ..control.policy import PolicyConfig
from ..core.submitter import AdmissionSubmitter, ArgoSubmitter
from ..engine.admission import AdmissionError, AdmissionPipeline
from ..engine.config import EngineConfig
from ..engine.journal import Journal
from ..engine.operator import WorkflowOperator
from ..engine.replicas import ShardedOperatorFleet
from ..engine.simclock import SimClock
from ..engine.status import StepStatus
from ..ir.graph import WorkflowIR
from ..ir.serialize import ir_to_dict
from ..k8s.apiserver import APIServer
from ..k8s.cluster import Cluster
from ..parallelism.budget import BudgetModel
from ..parallelism.splitter import SplitError, WorkflowSplitter
from ..parallelism.stitch import StagedSubmitter
from .backends_conformance import conformance_problems
from .fingerprint import (
    Fingerprint,
    describe_difference,
    fingerprint_record,
    fingerprint_staged,
)
from .generator import GeneratorConfig, generate_ir

_GB = 2**30

#: Forced-outcome workflows for cross-configuration comparison.
DETERMINISTIC_CONFIG = GeneratorConfig(deterministic=True)
#: Full-surface workflows (failures, multi-valued results) for replay.
STOCHASTIC_CONFIG = GeneratorConfig(deterministic=False)


def _cluster() -> Cluster:
    """A generous uniform cluster every generated workflow fits on."""
    return Cluster.uniform(
        "verify",
        num_nodes=4,
        cpu_per_node=32.0,
        memory_per_node=128 * _GB,
        gpu_per_node=4,
    )


def _operator(seed: int, **kwargs) -> WorkflowOperator:
    return WorkflowOperator(
        SimClock(), _cluster(), api_server=APIServer(), seed=seed, **kwargs
    )


def _execute(ir: WorkflowIR, seed: int, **kwargs) -> Fingerprint:
    operator = _operator(seed, **kwargs)
    record = operator.submit(ir.to_executable())
    operator.run_to_completion()
    return fingerprint_record(ir, record)


@dataclass(frozen=True)
class OracleOutcome:
    """Verdict of one oracle on one seed."""

    oracle: str
    seed: int
    ok: bool
    detail: str = ""
    digests: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Oracle:
    """A named differential check over a generated workflow."""

    name: str
    #: Which generator mode this oracle's workflow uses.
    config: GeneratorConfig
    check: Callable[[WorkflowIR, int], OracleOutcome]

    def run(self, seed: int) -> OracleOutcome:
        return self.check(generate_ir(seed, self.config), seed)


# ------------------------------------------------------------------ oracles


def check_submitters(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """LocalSubmitter (manifest path) ≡ AdmissionSubmitter (pipeline)."""
    local = ArgoSubmitter(operator=_operator(seed))
    local_fp = fingerprint_record(ir, local.submit(ir))
    pipeline = AdmissionPipeline([_cluster()], seed=seed)
    try:
        record = AdmissionSubmitter(pipeline=pipeline).submit(ir)
    except AdmissionError as exc:
        return OracleOutcome(
            "submitters", seed, False, f"admission rejected: {exc}",
            digests=(local_fp.digest(),),
        )
    admission_fp = fingerprint_record(ir, record)
    digests = (local_fp.digest(), admission_fp.digest())
    diff = describe_difference(local_fp, admission_fp, view="outputs")
    if diff is not None:
        return OracleOutcome(
            "submitters", seed, False, f"local != admission: {diff}", digests
        )
    if local_fp.data["makespan"] != admission_fp.data["makespan"]:
        return OracleOutcome(
            "submitters",
            seed,
            False,
            f"makespan diverged: local {local_fp.data['makespan']} != "
            f"admission {admission_fp.data['makespan']}",
            digests,
        )
    return OracleOutcome("submitters", seed, True, digests=digests)


def _split_budgets(ir: WorkflowIR) -> List[BudgetModel]:
    """Budgets that force the splitter to actually cut this workflow."""
    whole = BudgetModel().exact_cost(ir)
    return [
        BudgetModel(max_yaml_bytes=max(1024, int(whole.yaml_bytes * 0.6))),
        BudgetModel(max_yaml_bytes=max(1024, int(whole.yaml_bytes * 0.35))),
        BudgetModel(max_steps=max(1, (whole.steps + 1) // 2)),
    ]


def check_split(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Monolithic ≡ split+stitch across splitter budgets."""
    mono = ArgoSubmitter(operator=_operator(seed))
    mono_fp = fingerprint_record(ir, mono.submit(ir))
    digests = [mono_fp.digest()]
    for budget in _split_budgets(ir):
        try:
            plan = WorkflowSplitter(budget).split(ir)
        except SplitError:
            # A lone node can exceed an aggressive byte budget; that is
            # the splitter refusing, not an inequivalence.
            continue
        staged = StagedSubmitter(_operator(seed)).execute(plan)
        staged_fp = fingerprint_staged(ir, staged)
        digests.append(staged_fp.digest())
        diff = describe_difference(mono_fp, staged_fp, view="outputs")
        if diff is not None:
            return OracleOutcome(
                "split",
                seed,
                False,
                f"{plan.num_parts}-part split diverged "
                f"(budget yaml<={budget.max_yaml_bytes} "
                f"steps<={budget.max_steps}): {diff}",
                tuple(digests),
            )
    return OracleOutcome("split", seed, True, digests=tuple(digests))


def check_cache(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Cache-off ≡ cache-on outputs for every registered policy."""
    baseline = _execute(ir, seed)
    digests = [baseline.digest()]
    total_bytes = sum(
        artifact.size_bytes
        for node in ir.nodes.values()
        for artifact in node.outputs
    )
    # Small enough to force eviction decisions, never zero.
    capacity = max(4096, total_bytes // 3)
    configs: List[Tuple[str, dict]] = [
        (policy, {"cache_manager": CacheManager(policy=policy, capacity_bytes=capacity)})
        for policy in sorted(POLICY_REGISTRY)
    ]
    configs.append(
        (
            "couler+skip",
            {
                "cache_manager": CacheManager(policy="couler", capacity_bytes=capacity),
                "skip_cached_steps": True,
            },
        )
    )
    for label, kwargs in configs:
        cached_fp = _execute(ir, seed, **kwargs)
        digests.append(cached_fp.digest())
        diff = describe_difference(baseline, cached_fp, view="outputs")
        if diff is not None:
            return OracleOutcome(
                "cache",
                seed,
                False,
                f"policy {label!r} changed outputs: {diff}",
                tuple(digests),
            )
    return OracleOutcome("cache", seed, True, digests=tuple(digests))


def _scored_run(ir: WorkflowIR, seed: int, scorer: str) -> Tuple[Fingerprint, dict]:
    """Execute ``ir`` under the Couler policy with the given scorer mode.

    Returns the output fingerprint plus a trace of everything the
    scoring path influenced: the structured admission decision log
    (admitted / evicted-in-order / newcomer score, floats as exact
    reprs), the final resident set, and a full post-run breakdown sweep
    of every known artifact against the live cache state.
    """
    total_bytes = sum(
        artifact.size_bytes
        for node in ir.nodes.values()
        for artifact in node.outputs
    )
    capacity = max(4096, total_bytes // 3)
    manager = CacheManager(
        policy="couler",
        capacity_bytes=capacity,
        scorer=scorer,
        record_decisions=True,
    )
    fingerprint = _execute(ir, seed, cache_manager=manager)
    sweep = {
        uid: {k: repr(v) for k, v in manager.scorer.breakdown(
            uid, manager.store.contains
        ).items()}
        for uid in sorted(manager.index.artifacts)
    }
    trace = {
        "decisions": manager.decisions,
        "resident": sorted(manager.store.uids()),
        "sweep": sweep,
    }
    return fingerprint, trace


def check_scores(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Incremental scorer ≡ from-scratch scorer, decision for decision."""
    naive_fp, naive_trace = _scored_run(ir, seed, "naive")
    incr_fp, incr_trace = _scored_run(ir, seed, "incremental")
    digests = (
        naive_fp.digest(),
        hashlib.sha256(repr(naive_trace).encode()).hexdigest(),
        incr_fp.digest(),
        hashlib.sha256(repr(incr_trace).encode()).hexdigest(),
    )
    for key in ("decisions", "resident", "sweep"):
        if naive_trace[key] != incr_trace[key]:
            return OracleOutcome(
                "scores",
                seed,
                False,
                f"incremental scorer diverged from from-scratch on {key}: "
                f"naive={naive_trace[key]!r} incremental={incr_trace[key]!r}"[:2000],
                digests,
            )
    diff = describe_difference(naive_fp, incr_fp, view="outputs")
    if diff is not None:
        return OracleOutcome(
            "scores", seed, False, f"outputs diverged: {diff}", digests
        )
    return OracleOutcome("scores", seed, True, digests=digests)


def check_replay(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Same seed, same engine, twice — identical full fingerprints."""
    first = _execute(ir, seed)
    second = _execute(ir, seed)
    digests = (first.digest(), second.digest())
    if first.data != second.data:
        diff = describe_difference(first, second, view="full")
        return OracleOutcome(
            "replay", seed, False, f"replay diverged: {diff}", digests
        )
    regenerated = generate_ir(seed, STOCHASTIC_CONFIG)
    if ir_to_dict(regenerated) != ir_to_dict(ir):
        # Only reachable from run_seed (the shrinker passes reduced IRs,
        # which legitimately differ from the generator's output).
        return OracleOutcome(
            "replay", seed, False, "generator is not seed-deterministic", digests
        )
    return OracleOutcome("replay", seed, True, digests=digests)


def _check_replay_shrinkable(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Replay check without the regeneration clause (for the shrinker)."""
    first = _execute(ir, seed)
    second = _execute(ir, seed)
    digests = (first.digest(), second.digest())
    if first.data != second.data:
        diff = describe_difference(first, second, view="full")
        return OracleOutcome(
            "replay", seed, False, f"replay diverged: {diff}", digests
        )
    return OracleOutcome("replay", seed, True, digests=digests)


def _fairness_fleet(ir: WorkflowIR, seed: int) -> List[WorkflowIR]:
    """The candidate plus seven generated tenants' workflows.

    Extra seeds are offset far from the sweep range so fleet members
    never collide with the candidate's own name (``verify-<seed>``).
    """
    return [ir] + [
        generate_ir(seed * 1000 + 101 + index, DETERMINISTIC_CONFIG)
        for index in range(7)
    ]


def _fairness_run(
    fleet: List[WorkflowIR], seed: int, fairness: str, preemption: bool
) -> List[Tuple[str, str]]:
    """(workflow name, outputs digest | rejection marker) per submission.

    One shared single-node cluster (sized so any one workflow fits but
    two rarely do) forces real queueing contention; arrivals are
    staggered, tenants alternate SLO lanes and weights, so the policies
    genuinely reorder (and, with ``preemption``, evict) work — the
    oracle then demands outputs stay identical anyway.
    """
    cluster = Cluster.uniform(
        "fair-verify",
        num_nodes=1,
        cpu_per_node=24.0,
        memory_per_node=16 * _GB,
        gpu_per_node=6,
    )
    pipeline = AdmissionPipeline(
        [cluster],
        seed=seed,
        aging_rate=0.01,
        fairness=fairness,
        tenant_weights={"t0": 2.0, "t1": 1.0, "t2": 1.0, "t3": 0.5},
        preemption=preemption,
    )
    admissions = []
    for index, member in enumerate(fleet):
        admissions.append(
            (
                member,
                pipeline.submit_at(
                    index * 2.0,
                    member.to_executable(),
                    user=f"t{index % 4}",
                    priority=(index * 3) % 7,
                    slo_class="serving" if index % 2 else "batch",
                ),
            )
        )
    pipeline.run()
    outcomes: List[Tuple[str, str]] = []
    for member, admission in admissions:
        if admission.record is not None:
            outcomes.append(
                (member.name, fingerprint_record(member, admission.record).outputs_digest())
            )
        else:
            outcomes.append(
                (member.name, f"rejected:{admission.reject_reason}")
            )
    return sorted(outcomes)


def check_fairness(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Fairness policies reorder scheduling, never results.

    Every policy (and DRF with preemption — checkpoint/resume included)
    must produce the same outputs-view fingerprint per workflow as the
    strict-priority baseline, and the preempting configuration must
    replay deterministically under the same seed.
    """
    fleet = _fairness_fleet(ir, seed)
    configs = [
        ("strict-priority", False),
        ("weighted-fair", False),
        ("drf", False),
        ("drf", True),
    ]
    results = {
        (fairness, preemption): _fairness_run(fleet, seed, fairness, preemption)
        for fairness, preemption in configs
    }
    digests = tuple(
        hashlib.sha256(repr(results[key]).encode()).hexdigest() for key in configs
    )
    baseline = results[("strict-priority", False)]
    for fairness, preemption in configs[1:]:
        candidate = results[(fairness, preemption)]
        if candidate != baseline:
            first = next(
                (
                    (b, c)
                    for b, c in zip(baseline, candidate)
                    if b != c
                ),
                (baseline, candidate),
            )
            return OracleOutcome(
                "fairness",
                seed,
                False,
                f"policy {fairness!r} (preemption={preemption}) changed "
                f"outputs: strict={first[0]!r} vs {first[1]!r}",
                digests,
            )
    replay = _fairness_run(fleet, seed, "drf", True)
    if replay != results[("drf", True)]:
        return OracleOutcome(
            "fairness",
            seed,
            False,
            "drf+preemption run is not same-seed deterministic",
            digests,
        )
    return OracleOutcome("fairness", seed, True, digests=digests)


def _engine_fleet(ir: WorkflowIR, seed: int) -> List[WorkflowIR]:
    """The candidate plus seven co-tenants for the fast-vs-naive diff.

    Seed offsets sit far outside the sweep range and away from the
    fairness (101+) and journal (501+) blocks so names never collide.
    """
    return [ir] + [
        generate_ir(seed * 1000 + 301 + index, DETERMINISTIC_CONFIG)
        for index in range(7)
    ]


def _engine_mode_run(
    fleet: List[WorkflowIR], seed: int, fast: bool, preemption: bool
) -> Tuple[List[tuple], List[tuple], List[Tuple[str, str]], float]:
    """One contended fleet run in the given engine mode.

    Returns everything the fast paths could plausibly perturb: the
    structured admission log (every :class:`AdmissionRecord` field,
    including deferral counts — the parked-candidate index backfills
    these in bulk, so they must still match the naive per-pass
    increments exactly), the journal stream as raw record tuples, the
    per-workflow full fingerprints, and the virtual-clock makespan.
    """
    cluster = Cluster.uniform(
        "engine-verify",
        num_nodes=1,
        cpu_per_node=24.0,
        memory_per_node=16 * _GB,
        gpu_per_node=6,
    )
    journal = Journal()
    pipeline = AdmissionPipeline(
        [cluster],
        seed=seed,
        aging_rate=0.01,
        fairness="drf" if preemption else "weighted-fair",
        tenant_weights={"t0": 2.0, "t1": 1.0, "t2": 1.0, "t3": 0.5},
        preemption=preemption,
        fast=fast,
        journal=journal,
    )
    admissions = []
    for index, member in enumerate(fleet):
        admissions.append(
            (
                member,
                pipeline.submit_at(
                    index * 2.0,
                    member.to_executable(),
                    user=f"t{index % 4}",
                    priority=(index * 3) % 7,
                    slo_class="serving" if index % 2 else "batch",
                ),
            )
        )
    pipeline.run()
    admission_log = [
        (
            admission.workflow_name,
            admission.user,
            admission.priority,
            admission.arrival_time,
            admission.admitted,
            admission.reject_reason,
            admission.admit_time,
            admission.place_time,
            admission.finish_time,
            admission.cluster_name,
            admission.deferrals,
            admission.slo_class,
            admission.preemptions,
            admission.restored_at,
        )
        for _, admission in admissions
    ]
    journal_log = [
        (record.seq, record.stream, record.kind, record.at,
         repr(record.payload), record.event_id)
        for record in journal.records()
    ]
    outcomes: List[Tuple[str, str]] = []
    for member, admission in admissions:
        if admission.record is not None:
            outcomes.append(
                (member.name, fingerprint_record(member, admission.record).digest())
            )
        else:
            outcomes.append((member.name, f"rejected:{admission.reject_reason}"))
    return admission_log, journal_log, outcomes, pipeline.clock.now


def check_engine_fast(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Fast engine hot paths ≡ the straight-line naive reference.

    ``fast=True`` (parked-candidate admission indexes, coalesced waitq
    drains with dirty-version skip-scans) and ``fast=False`` must be
    observationally identical on a contended multi-tenant fleet:
    admission logs field-for-field (deferral crediting included),
    journal streams record-for-record, full per-workflow fingerprints,
    and makespans — with and without checkpoint preemption.  A
    single-operator run is diffed the same way.
    """
    fleet = _engine_fleet(ir, seed)
    digests: List[str] = []
    parts = ("admission log", "journal stream", "fingerprints", "makespan")
    for preemption in (False, True):
        fast_run = _engine_mode_run(fleet, seed, fast=True, preemption=preemption)
        naive_run = _engine_mode_run(fleet, seed, fast=False, preemption=preemption)
        digests.append(hashlib.sha256(repr(fast_run).encode()).hexdigest())
        digests.append(hashlib.sha256(repr(naive_run).encode()).hexdigest())
        for part, fast_side, naive_side in zip(parts, fast_run, naive_run):
            if fast_side != naive_side:
                first = fast_side
                if isinstance(fast_side, list):
                    first = next(
                        (pair for pair in zip(naive_side, fast_side)
                         if pair[0] != pair[1]),
                        (naive_side, fast_side),
                    )
                return OracleOutcome(
                    "engine_fast",
                    seed,
                    False,
                    f"fast engine diverged from naive on {part} "
                    f"(preemption={preemption}): {first!r}"[:2000],
                    tuple(digests),
                )
    naive_fp = _execute(ir, seed, fast=False)
    fast_fp = _execute(ir, seed)
    digests += [naive_fp.digest(), fast_fp.digest()]
    if fast_fp.data != naive_fp.data:
        diff = describe_difference(naive_fp, fast_fp, view="full")
        return OracleOutcome(
            "engine_fast", seed, False,
            f"single-operator fast run diverged: {diff}", tuple(digests),
        )
    return OracleOutcome("engine_fast", seed, True, digests=tuple(digests))


def _journal_fleet(ir: WorkflowIR, seed: int) -> List[WorkflowIR]:
    """The candidate plus three generated co-tenants for the shard test.

    Seed offsets sit far outside the sweep range (and away from the
    fairness oracle's 101+ block) so names never collide.
    """
    return [ir] + [
        generate_ir(seed * 1000 + 501 + index, DETERMINISTIC_CONFIG)
        for index in range(3)
    ]


def _contended_cluster() -> Cluster:
    """One node sized so workflows genuinely queue against each other."""
    return Cluster.uniform(
        "journal-verify",
        num_nodes=1,
        cpu_per_node=24.0,
        memory_per_node=16 * _GB,
        gpu_per_node=6,
    )


def _fleet_outputs(
    fleet_irs: List[WorkflowIR], seed: int, replicas: int
) -> Tuple[List[Tuple[str, str]], Journal]:
    """Per-workflow outputs digests from an N-replica sharded run."""
    journal = Journal()
    sharded = ShardedOperatorFleet(
        SimClock(), _contended_cluster(), replicas=replicas,
        journal=journal, seed=seed,
    )
    submissions = [
        (member, sharded.submit(member.to_executable())) for member in fleet_irs
    ]
    sharded.run_to_completion()
    outcomes = sorted(
        (member.name, fingerprint_record(member, record).outputs_digest())
        for member, record in submissions
    )
    return outcomes, journal


def check_journal(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Journal-backed ≡ in-memory, single-replica and sharded."""
    # 1. Attaching a journal must not perturb execution at all: the
    #    full fingerprint (makespan, attempts, cache counters included)
    #    is bit-identical to the journal-free run.
    baseline = _execute(ir, seed)
    journal = Journal()
    journaled = _execute(ir, seed, journal=journal)
    digests = [baseline.digest(), journaled.digest()]
    if baseline.data != journaled.data:
        diff = describe_difference(baseline, journaled, view="full")
        return OracleOutcome(
            "journal", seed, False,
            f"attaching a journal changed execution: {diff}", tuple(digests),
        )
    # 2. Replaying the stream reproduces the live record exactly.
    materialized = journal.materialize(ir.name)
    if materialized is None:
        return OracleOutcome(
            "journal", seed, False,
            f"journal holds no stream for {ir.name!r}", tuple(digests),
        )
    replayed = fingerprint_record(ir, materialized)
    digests.append(replayed.digest())
    if replayed.data != journaled.data:
        diff = describe_difference(journaled, replayed, view="full")
        return OracleOutcome(
            "journal", seed, False,
            f"journal replay diverged from the live record: {diff}",
            tuple(digests),
        )
    # 3. N stateless shard-assigned replicas over one shared journal ≡
    #    one in-memory operator, on a contended single-node cluster
    #    (this also proves cross-replica wakeups: without them, queued
    #    steps starve and the fleet never finishes).
    fleet_irs = _journal_fleet(ir, seed)
    single, _ = _fleet_outputs(fleet_irs, seed, replicas=1)
    sharded, shard_journal = _fleet_outputs(fleet_irs, seed, replicas=3)
    digests.append(hashlib.sha256(repr(sharded).encode()).hexdigest())
    if sharded != single:
        first = next((pair for pair in zip(single, sharded) if pair[0] != pair[1]))
        return OracleOutcome(
            "journal", seed, False,
            f"sharded fleet diverged from single operator: "
            f"single={first[0]!r} vs sharded={first[1]!r}",
            tuple(digests),
        )
    # 4. Every prefix of the shard journal materializes to a resumable
    #    state (spot-checked at quarter points; the property tests sweep
    #    every prefix).
    total = len(shard_journal)
    for n in sorted({total // 4, total // 2, (3 * total) // 4, total}):
        clipped = shard_journal.prefix(n)
        for stream in clipped.streams():
            record = clipped.materialize(stream)
            if record is None:
                continue
            running = [
                s.name for s in record.steps.values()
                if s.status == StepStatus.RUNNING
            ]
            if running:
                return OracleOutcome(
                    "journal", seed, False,
                    f"prefix {n} of stream {stream!r} materialized with "
                    f"Running steps {running}", tuple(digests),
                )
    return OracleOutcome("journal", seed, True, digests=tuple(digests))


def _policy_pipeline_outcome(
    ir: WorkflowIR, seed: int, config: EngineConfig
) -> Tuple[str, Optional[Fingerprint]]:
    """Run ``ir`` through a pipeline built from ``config``.

    Returns ``("ok", fingerprint)`` or ``("rejected:<reason>", None)`` —
    a rejection is only an oracle failure if the two configs disagree.
    """
    pipeline = AdmissionPipeline(
        [_cluster()], seed=seed, **config.pipeline_kwargs()
    )
    try:
        record = AdmissionSubmitter(pipeline=pipeline).submit(ir)
    except AdmissionError as exc:
        return f"rejected:{exc}", None
    return "ok", fingerprint_record(ir, record)


@lru_cache(maxsize=8)
def _adaptive_tune_digests(bucket: int) -> Tuple[str, str, bool]:
    """Two independent tiny controller tunes for one seed bucket.

    Returns (first digest, JSON-roundtripped digest, replay verdict).
    The tune is deliberately small — size-6 corpus, population 4, one
    halving round — because the property under test is determinism of
    the search, not the quality of the winner; the cache amortizes it
    across the 16 verify seeds that share a bucket.
    """
    from ..control.controller import AdaptationLog, Controller

    kwargs = dict(
        seed=bucket, corpus_size=6, population=4, rounds=1, cache_gb=0.25
    )
    first = Controller(**kwargs).tune()
    roundtrip = AdaptationLog.from_json(first.log.to_json())
    replayed = Controller(**kwargs).replay(roundtrip)
    return first.log.digest(), roundtrip.digest(), replayed


def check_adaptive(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Controller-off ≡ static defaults; controller-on deterministic.

    1. ``CacheManager(policy_config=PolicyConfig())`` is bit-identical
       (full fingerprint: outputs, timings, cache counters) to the
       plain manager — the default knob bundle changes nothing.
    2. ``EngineConfig(policy=PolicyConfig())`` builds a pipeline whose
       run is bit-identical to the policy-free ``EngineConfig()`` one.
    3. A tiny controller tune re-run from the same seed produces a
       byte-identical :class:`AdaptationLog` (checked through a JSON
       round-trip), and ``Controller.replay`` re-derives it.
    """
    total_bytes = sum(
        artifact.size_bytes
        for node in ir.nodes.values()
        for artifact in node.outputs
    )
    capacity = max(4096, total_bytes // 3)
    plain = _execute(
        ir, seed,
        cache_manager=CacheManager(policy="couler", capacity_bytes=capacity),
    )
    defaulted = _execute(
        ir, seed,
        cache_manager=CacheManager(
            policy="couler",
            capacity_bytes=capacity,
            policy_config=PolicyConfig(),
        ),
    )
    digests = [plain.digest(), defaulted.digest()]
    if plain.data != defaulted.data:
        diff = describe_difference(plain, defaulted, view="full")
        return OracleOutcome(
            "adaptive", seed, False,
            f"default PolicyConfig changed the cache manager run: {diff}",
            tuple(digests),
        )
    bare_status, bare_fp = _policy_pipeline_outcome(ir, seed, EngineConfig())
    pol_status, pol_fp = _policy_pipeline_outcome(
        ir, seed, EngineConfig(policy=PolicyConfig())
    )
    if bare_status != pol_status:
        return OracleOutcome(
            "adaptive", seed, False,
            f"default PolicyConfig changed the admission verdict: "
            f"{bare_status!r} != {pol_status!r}",
            tuple(digests),
        )
    if bare_fp is not None and pol_fp is not None:
        digests += [bare_fp.digest(), pol_fp.digest()]
        if bare_fp.data != pol_fp.data:
            diff = describe_difference(bare_fp, pol_fp, view="full")
            return OracleOutcome(
                "adaptive", seed, False,
                f"default PolicyConfig changed the pipeline run: {diff}",
                tuple(digests),
            )
    first, second, replayed = _adaptive_tune_digests(seed // 16)
    digests += [first, second]
    if first != second:
        return OracleOutcome(
            "adaptive", seed, False,
            f"controller tune is not deterministic: {first[:16]} != "
            f"{second[:16]} (seed bucket {seed // 16})",
            tuple(digests),
        )
    if not replayed:
        return OracleOutcome(
            "adaptive", seed, False,
            f"AdaptationLog replay failed to re-derive the log "
            f"(seed bucket {seed // 16})",
            tuple(digests),
        )
    return OracleOutcome("adaptive", seed, True, digests=tuple(digests))


def check_backends(ir: WorkflowIR, seed: int) -> OracleOutcome:
    """Structural conformance of all compiled backends + IR roundtrip."""
    problems = conformance_problems(ir)
    if problems:
        return OracleOutcome(
            "backends", seed, False, "; ".join(problems[:5]),
            digests=(hashlib.sha256("\n".join(problems).encode()).hexdigest(),),
        )
    digest = hashlib.sha256(
        repr(ir_to_dict(ir)).encode()
    ).hexdigest()
    return OracleOutcome("backends", seed, True, digests=(digest,))


ORACLES: Dict[str, Oracle] = {
    "submitters": Oracle("submitters", DETERMINISTIC_CONFIG, check_submitters),
    "split": Oracle("split", DETERMINISTIC_CONFIG, check_split),
    "cache": Oracle("cache", DETERMINISTIC_CONFIG, check_cache),
    "replay": Oracle("replay", STOCHASTIC_CONFIG, check_replay),
    "backends": Oracle("backends", DETERMINISTIC_CONFIG, check_backends),
    "scores": Oracle("scores", DETERMINISTIC_CONFIG, check_scores),
    "fairness": Oracle("fairness", DETERMINISTIC_CONFIG, check_fairness),
    "journal": Oracle("journal", DETERMINISTIC_CONFIG, check_journal),
    "engine_fast": Oracle("engine_fast", DETERMINISTIC_CONFIG, check_engine_fast),
    "adaptive": Oracle("adaptive", DETERMINISTIC_CONFIG, check_adaptive),
}

#: check functions safe to re-run on shrunk (non-generated) IRs.
SHRINKABLE_CHECKS: Dict[str, Callable[[WorkflowIR, int], OracleOutcome]] = {
    "submitters": check_submitters,
    "split": check_split,
    "cache": check_cache,
    "replay": _check_replay_shrinkable,
    "backends": check_backends,
    "scores": check_scores,
    "fairness": check_fairness,
    "journal": check_journal,
    "engine_fast": check_engine_fast,
    "adaptive": check_adaptive,
}


# ------------------------------------------------------------ corpus source

#: Default oracle subset for corpus-drawn workflows.  Every check here
#: runs directly on the supplied IR; ``replay`` is excluded because it
#: regenerates the workflow from the seed — against a corpus IR it
#: would silently verify a different (synthetic) workflow.
CORPUS_ORACLES: Tuple[str, ...] = (
    "adaptive",
    "backends",
    "cache",
    "engine_fast",
    "journal",
    "split",
    "submitters",
)


@lru_cache(maxsize=8)
def _corpus_pool(corpus_seed: int) -> Tuple[WorkflowIR, ...]:
    from ..workloads.corpus import CorpusSpec, build_corpus

    corpus = build_corpus(CorpusSpec(seed=corpus_seed, size=6))
    return tuple(ir for _entry, ir in corpus.workflows())


def corpus_ir(seed: int) -> WorkflowIR:
    """The corpus-drawn workflow a verify seed maps to.

    Seeds index into small scenario corpora (16 seeds share one corpus
    build, which the cache keeps warm), so a ``--source corpus`` sweep
    exercises frontend-compiled SQLFlow and NL workflows instead of the
    synthetic generator's.
    """
    pool = _corpus_pool(seed // 16)
    return pool[seed % len(pool)]


# -------------------------------------------------------------------- suite


@dataclass
class VerifyReport:
    """Aggregate result of a seed sweep."""

    outcomes: List[OracleOutcome] = field(default_factory=list)

    @property
    def failures(self) -> List[OracleOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def aggregate_digest(self) -> str:
        """One digest over every oracle's fingerprints, in sweep order.

        Two runs of the same sweep must print the same digest — the CI
        gate runs the sweep twice and compares exactly this line.
        """
        hasher = hashlib.sha256()
        for outcome in self.outcomes:
            hasher.update(
                f"{outcome.oracle}:{outcome.seed}:{outcome.ok}".encode()
            )
            for digest in outcome.digests:
                hasher.update(digest.encode())
        return hasher.hexdigest()

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """oracle name -> (passed, total)."""
        table: Dict[str, Tuple[int, int]] = {}
        for outcome in self.outcomes:
            passed, total = table.get(outcome.oracle, (0, 0))
            table[outcome.oracle] = (passed + (1 if outcome.ok else 0), total + 1)
        return table


def run_seed(
    seed: int,
    oracle_names: Optional[Sequence[str]] = None,
    source: str = "synthetic",
) -> List[OracleOutcome]:
    """Run the selected oracles (default: all) against one seed.

    ``source="synthetic"`` generates the seed's workflow with the
    fuzzer; ``source="corpus"`` draws a frontend-compiled workflow from
    the scenario corpus (default oracle set: :data:`CORPUS_ORACLES`).
    """
    if source not in ("synthetic", "corpus"):
        raise ValueError(f"unknown source {source!r}; use 'synthetic' or 'corpus'")
    default = sorted(ORACLES) if source == "synthetic" else list(CORPUS_ORACLES)
    names = list(oracle_names) if oracle_names else default
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; choose from {sorted(ORACLES)}"
        )
    if source == "corpus":
        invalid = [name for name in names if name not in CORPUS_ORACLES]
        if invalid:
            raise ValueError(
                f"oracle(s) {invalid} cannot run on corpus workflows; "
                f"choose from {sorted(CORPUS_ORACLES)}"
            )
        ir = corpus_ir(seed)
        return [ORACLES[name].check(ir, seed) for name in names]
    return [ORACLES[name].run(seed) for name in names]


def run_suite(
    seeds: Sequence[int],
    oracle_names: Optional[Sequence[str]] = None,
    fail_fast: bool = False,
    source: str = "synthetic",
) -> VerifyReport:
    """Sweep ``seeds`` through the oracles; returns the full report."""
    report = VerifyReport()
    for seed in seeds:
        outcomes = run_seed(seed, oracle_names, source=source)
        report.outcomes.extend(outcomes)
        if fail_fast and any(not outcome.ok for outcome in outcomes):
            break
    return report
