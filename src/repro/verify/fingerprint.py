"""Canonical semantic fingerprints for execution outcomes.

A fingerprint captures what a workflow execution *meant*: per-step
terminal status, attempts, recorded ``result`` values and cache
counters, the produced-artifact lineage, the workflow's terminal phase
and its virtual-time makespan.  Two executions with equal fingerprints
behaved identically.

Oracles that compare executions across configurations which
legitimately change *scheduling* but must not change *meaning*
(split-vs-monolithic, cache-on-vs-off) compare the ``outputs_view``
projection instead: statuses (with ``Cached`` normalized to
``Succeeded`` — a cached step is a succeeded step whose work was
reused), results and lineage, without makespan/attempt/cache noise.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional

from ..engine.status import StepStatus, WorkflowPhase, WorkflowRecord
from ..ir.graph import WorkflowIR
from ..parallelism.stitch import StagedResult


def _canonical_json(data: dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Fingerprint:
    """Immutable canonical summary of one workflow execution.

    ``digest()`` / ``outputs_digest()`` are memoized: fleet-scale
    verify sweeps hash every workflow's fingerprint several times
    (per-pair comparison, aggregate digest, report lines), and the
    canonical-JSON encode dominated those passes.  The dataclass is
    frozen, so the cache can never go stale; ``object.__setattr__``
    sidesteps the frozen guard for the private slots.
    """

    data: dict

    def digest(self) -> str:
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(_canonical_json(self.data).encode()).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def outputs_view(self) -> dict:
        """Scheduling-independent projection (statuses/results/lineage)."""
        steps = {
            name: {
                "status": (
                    StepStatus.SUCCEEDED.value
                    if entry["status"] == StepStatus.CACHED.value
                    else entry["status"]
                ),
                "result": entry["result"],
            }
            for name, entry in self.data["steps"].items()
        }
        return {
            "workflow": self.data["workflow"],
            "phase": self.data["phase"],
            "steps": steps,
            "artifacts": self.data["artifacts"],
        }

    def outputs_digest(self) -> str:
        cached = self.__dict__.get("_outputs_digest")
        if cached is None:
            cached = hashlib.sha256(
                _canonical_json(self.outputs_view()).encode()
            ).hexdigest()
            object.__setattr__(self, "_outputs_digest", cached)
        return cached


def _lineage(ir: WorkflowIR, record: WorkflowRecord) -> List[str]:
    """Artifact uids produced by steps that (effectively) succeeded."""
    produced: List[str] = []
    for name in sorted(ir.nodes):
        step = record.steps.get(name)
        if step is None:
            continue
        if step.status in (StepStatus.SUCCEEDED, StepStatus.CACHED):
            produced.extend(
                artifact.uid or f"{ir.name}/{name}/{artifact.name}"
                for artifact in ir.nodes[name].outputs
            )
    return sorted(produced)


def _step_entry(record: WorkflowRecord, name: str) -> dict:
    step = record.steps[name]
    return {
        "status": step.status.value,
        "attempts": step.attempts,
        "result": record.results.get(name),
        "cache_hits": step.cache_hits,
        "cache_misses": step.cache_misses,
    }


def fingerprint_record(ir: WorkflowIR, record: WorkflowRecord) -> Fingerprint:
    """Fingerprint a monolithic execution of ``ir``."""
    return Fingerprint(
        data={
            "workflow": ir.name,
            "phase": record.phase.value,
            "makespan": record.makespan,
            "steps": {
                name: _step_entry(record, name) for name in sorted(record.steps)
            },
            "artifacts": _lineage(ir, record),
        }
    )


def fingerprint_staged(ir: WorkflowIR, result: StagedResult) -> Fingerprint:
    """Fingerprint a split+stitch execution as if it were monolithic.

    Part records are merged back into one step map; the phase comes
    from the aggregate outcome and the makespan spans first submit to
    last finish.  Steps of parts that were never submitted (aborted
    downstream of a failure) are absent, exactly like the never-started
    steps of a failed monolithic run remain Pending.
    """
    steps: dict = {}
    merged = WorkflowRecord(name=ir.name)
    for record in result.records:
        if record is None:
            continue
        merged.results.update(record.results)
        for name in record.steps:
            merged.steps[name] = record.steps[name]
    steps = {name: _step_entry(merged, name) for name in sorted(merged.steps)}
    phase = WorkflowPhase.SUCCEEDED if result.succeeded else WorkflowPhase.FAILED
    return Fingerprint(
        data={
            "workflow": ir.name,
            "phase": phase.value,
            "makespan": result.makespan,
            "steps": steps,
            "artifacts": _lineage(ir, merged),
        }
    )


def describe_difference(a: Fingerprint, b: Fingerprint, view: str = "outputs") -> Optional[str]:
    """Human-readable first difference between two fingerprints.

    ``view`` selects ``"outputs"`` (scheduling-independent projection)
    or ``"full"``.  Returns None when equal under that view.
    """
    left = a.outputs_view() if view == "outputs" else a.data
    right = b.outputs_view() if view == "outputs" else b.data
    if left == right:
        return None
    for key in sorted(set(left) | set(right)):
        lv, rv = left.get(key), right.get(key)
        if lv == rv:
            continue
        if key == "steps" and isinstance(lv, dict) and isinstance(rv, dict):
            for name in sorted(set(lv) | set(rv)):
                if lv.get(name) != rv.get(name):
                    return (
                        f"step {name!r}: {lv.get(name)!r} != {rv.get(name)!r}"
                    )
        return f"{key}: {lv!r} != {rv!r}"
    return "fingerprints differ"
