"""Node-deletion shrinking of failing workflows.

When an oracle flags a seed, the generated workflow may have a dozen
steps; the disagreement usually hinges on two or three.  The shrinker
greedily deletes one node at a time (dropping its edges; downstream
inputs become external artifacts, guards referencing it evaluate
false — both valid IR), keeping any deletion under which the failure
reproduces, until no single deletion preserves it.  The result is a
1-minimal repro in the delta-debugging sense.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..ir.graph import WorkflowIR
from .generator import generate_ir
from .oracles import ORACLES, SHRINKABLE_CHECKS, OracleOutcome, corpus_ir


def delete_node(ir: WorkflowIR, name: str) -> WorkflowIR:
    """A copy of ``ir`` without ``name`` (and without its edges)."""
    candidate = WorkflowIR(name=ir.name, config=dict(ir.config))
    for node_name in ir.nodes:
        if node_name != name:
            candidate.add_node(ir.nodes[node_name])
    for parent, child in sorted(ir.edges):
        if parent != name and child != name:
            candidate.add_edge(parent, child)
    return candidate


def shrink_ir(
    ir: WorkflowIR,
    still_fails: Callable[[WorkflowIR], bool],
    max_evaluations: int = 500,
) -> WorkflowIR:
    """Greedily minimize ``ir`` while ``still_fails`` holds.

    ``still_fails`` is evaluated on candidate workflows; an exception
    inside it counts as a failure (the reduced workflow still breaks
    the system under test, just louder).  Deterministic: candidates are
    tried in sorted node order, first accepted deletion wins each round.
    """

    def failing(candidate: WorkflowIR) -> bool:
        try:
            return bool(still_fails(candidate))
        except Exception:
            return True

    evaluations = 0
    current = ir
    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        for name in sorted(current.nodes):
            if len(current.nodes) <= 1:
                return current
            candidate = delete_node(current, name)
            evaluations += 1
            if failing(candidate):
                current = candidate
                progress = True
                break
            if evaluations >= max_evaluations:
                break
    return current


def shrink_failure(
    outcome: OracleOutcome,
    source: str = "synthetic",
) -> Optional[Tuple[WorkflowIR, OracleOutcome]]:
    """Shrink the workflow behind a failing oracle outcome.

    Re-derives the seed's workflow (fuzzer-generated, or corpus-drawn
    when ``source="corpus"``), minimizes it against the same oracle
    check, and returns ``(minimal_ir, outcome_on_minimal)`` — or None
    when the failure no longer reproduces (flaky environment, which
    the determinism oracles exist to rule out).
    """
    check = SHRINKABLE_CHECKS[outcome.oracle]
    if source == "corpus":
        ir = corpus_ir(outcome.seed)
    else:
        ir = generate_ir(outcome.seed, ORACLES[outcome.oracle].config)
    if check(ir, outcome.seed).ok:
        return None

    def still_fails(candidate: WorkflowIR) -> bool:
        return not check(candidate, outcome.seed).ok

    minimal = shrink_ir(ir, still_fails)
    return minimal, check(minimal, outcome.seed)
