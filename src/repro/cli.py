"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list                # enumerate experiments
    python -m repro run fig7           # run one and print its report
    python -m repro run table2 fig8    # run several
    python -m repro version
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from . import __paper__, __version__

#: Short experiment names -> (module path, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "fig5": ("repro.experiments.fig5_activity", "workflow activity distributions"),
    "fig6": ("repro.experiments.fig6_migration", "12-month migration: CUR/MUR/WCR"),
    "fig7": ("repro.experiments.fig7_caching", "caching vs No/ALL, 3 scenarios"),
    "fig8": ("repro.experiments.fig8_autotune", "automatic HP configuration"),
    "fig11-13": ("repro.experiments.fig11_13_policies", "Couler vs FIFO vs LRU"),
    "fig14-16": ("repro.experiments.fig14_16_cache_sizes", "cache sizes 10/20/30G"),
    "fig17": ("repro.experiments.fig17_datacache", "table/file data caching"),
    "table2": ("repro.experiments.table2_passk", "pass@k for NL -> code"),
    "table3": ("repro.experiments.table3_cost", "generation cost analysis"),
    "table4": ("repro.experiments.table4_learning", "engine learning comparison"),
    "ablation-cache": (
        "repro.experiments.ablation_cache_score",
        "Eq. 6 component ablation",
    ),
    "ablation-split": (
        "repro.experiments.ablation_split_budget",
        "Algorithm 3 budget sweep",
    ),
    "ablation-reuse": (
        "repro.experiments.ablation_reuse",
        "cached-step skipping (reuse of intermediate results)",
    ),
    "robustness": (
        "repro.experiments.robustness_runner",
        "fault-injected fleet: recovery, determinism, invariants",
    ),
    "sql-nl": (
        "repro.experiments.sql_nl_pipeline",
        "SQL+NL scenario corpus e2e: frontends -> caching/splitting -> admission",
    ),
    "adaptive-ablation": (
        "repro.experiments.adaptive_ablation",
        "adaptive PolicyConfig controller vs static paper defaults",
    ),
}


def _load_driver(name: str):
    import importlib

    module_path, _ = EXPERIMENTS[name]
    return importlib.import_module(module_path)


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_module, description) in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"try `python -m repro list`",
            file=sys.stderr,
        )
        return 2
    for name in args.experiments:
        driver = _load_driver(name)
        print(f"== {name} ==")
        results = driver.run()
        print(driver.report(results))
        print()
    return 0


def cmd_version(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} — reproduction of: {__paper__}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one scenario with tracing on; export Chrome JSON + metrics."""
    from .caching.policy import POLICY_REGISTRY
    from .experiments.caching_runner import run_scenario
    from .obs.critical_path import critical_path
    from .obs.metrics import MetricsRegistry
    from .obs.trace import Tracer
    from .workloads.scenarios import SCENARIOS

    if args.scenario not in SCENARIOS:
        print(
            f"unknown scenario {args.scenario!r}; choose from {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    if args.policy not in POLICY_REGISTRY:
        print(
            f"unknown cache policy {args.policy!r}; "
            f"choose from {sorted(POLICY_REGISTRY)}",
            file=sys.stderr,
        )
        return 2

    tracer = Tracer()
    metrics = MetricsRegistry()
    result = run_scenario(
        args.scenario,
        policy=args.policy,
        cache_gb=args.cache_gb,
        iterations=args.iterations,
        seed=args.seed,
        tracer=tracer,
        metrics=metrics,
    )

    tracer.write_chrome(args.out)
    print(
        f"{args.scenario}: {args.iterations} iteration(s), policy={args.policy}, "
        f"makespan {result.total_time_s:.0f}s, hit ratio {result.hit_ratio:.2%}"
    )
    print(f"wrote {len(tracer)} trace events to {args.out} "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    for root in tracer.roots():
        print()
        print(critical_path(tracer, root.name).report())
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.snapshot())
        print(f"\nwrote metrics snapshot to {args.metrics_out}")
    else:
        print()
        print(metrics.snapshot(), end="")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the fault-injected fleet; optionally export its Chrome trace."""
    from .experiments import robustness_runner
    from .obs.trace import Tracer

    if args.journal:
        results = robustness_runner.run_journal(
            seed=args.seed, num_workflows=args.workflows, replicas=args.replicas
        )
        print(robustness_runner.report_journal(results))
        return 0 if robustness_runner.journal_ok(results) else 1

    tracer = Tracer() if args.trace_out else None
    results = robustness_runner.run(
        seed=args.seed, num_workflows=args.workflows, tracer=tracer
    )
    print(robustness_runner.report(results))
    if args.trace_out:
        tracer.write_chrome(args.trace_out)
        print(
            f"\nwrote {len(tracer)} trace events to {args.trace_out} "
            "(chaos faults appear as their own tracks)"
        )
    ok = (
        results["completed"] == results["total"]
        and results["deterministic"]
        and not results["invariant_violations"]
    )
    return 0 if ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """Sweep seeds through the differential oracles (CI gate).

    Prints per-oracle pass counts and one aggregate fingerprint digest;
    the digest is identical across runs of the same sweep, which is how
    CI asserts determinism (run twice, diff the digest lines).  On
    failure, the first failing workflow is shrunk by node deletion to a
    minimal repro and printed as IR JSON.
    """
    from .ir.serialize import ir_to_json
    from .verify import run_suite
    from .verify.oracles import CORPUS_ORACLES, ORACLES
    from .verify.shrink import shrink_failure

    valid = ORACLES if args.source == "synthetic" else dict.fromkeys(CORPUS_ORACLES)
    oracle_names = args.oracles.split(",") if args.oracles else None
    if oracle_names:
        unknown = [name for name in oracle_names if name not in valid]
        if unknown:
            print(
                f"unknown oracle(s) for source={args.source}: "
                f"{', '.join(unknown)}; choose from {', '.join(sorted(valid))}",
                file=sys.stderr,
            )
            return 2
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    report = run_suite(seeds, oracle_names, source=args.source)
    for oracle, (passed, total) in sorted(report.counts().items()):
        print(f"{oracle:12s} {passed}/{total}")
    print(f"aggregate fingerprint digest: {report.aggregate_digest()}")
    if report.ok:
        print(f"verify: all oracles passed over {args.seeds} seed(s)")
        return 0
    for outcome in report.failures[:5]:
        print(
            f"FAIL {outcome.oracle} seed={outcome.seed}: {outcome.detail}",
            file=sys.stderr,
        )
    if len(report.failures) > 5:
        print(f"... and {len(report.failures) - 5} more", file=sys.stderr)
    if not args.no_shrink:
        first = report.failures[0]
        shrunk = shrink_failure(first, source=args.source)
        if shrunk is None:
            print(
                f"shrink: failure of {first.oracle} seed={first.seed} "
                "did not reproduce on regeneration",
                file=sys.stderr,
            )
        else:
            minimal, on_minimal = shrunk
            print(
                f"minimal repro for {first.oracle} seed={first.seed} "
                f"({len(minimal.nodes)} node(s)): {on_minimal.detail}"
            )
            print(ir_to_json(minimal))
    return 1


def cmd_corpus(args: argparse.Namespace) -> int:
    """Generate / describe / run the seeded SQL+NL scenario corpus.

    ``generate`` prints the corpus digest (and optionally every source
    script) — CI generates twice and diffs the digest line.
    ``describe`` prints the per-persona composition.  ``run`` executes
    the corpus end to end through caching, splitting and admission.
    """
    import json

    from .workloads.corpus import CorpusSpec, build_corpus

    spec = CorpusSpec(seed=args.seed, size=args.size)
    corpus = build_corpus(spec)
    if args.action == "generate":
        if args.show_sources:
            for entry in corpus.entries:
                print(f"-- >>> {entry.name} [{entry.kind}, {entry.persona}]")
                print(entry.source)
        print(f"corpus digest: {corpus.digest()}")
        return 0
    if args.action == "describe":
        print(json.dumps(corpus.describe(), indent=2, sort_keys=True))
        return 0
    # action == "run": the e2e experiment over this exact corpus.
    from .experiments import sql_nl_pipeline

    result = sql_nl_pipeline.run(
        engine=args.engine, cache_gb=args.cache_gb, corpus=corpus
    )
    print(sql_nl_pipeline.report(result))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile the engine hot path on a deterministic synthetic fleet."""
    from .control.policy import PolicyConfig
    from .engine.config import EngineConfig
    from .profiling import profile_run

    config = EngineConfig(
        engine=args.engine,
        fairness="weighted-fair",
        policy=PolicyConfig(aging_rate=0.01),
    )
    report = profile_run(
        args.workflows,
        seed=args.seed,
        config=config,
        top=args.top,
        profile=not args.no_cprofile,
    )
    print(report.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run experiments from the Couler (ICDE 2024) reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=cmd_list
    )
    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    run_parser.set_defaults(func=cmd_run)
    sub.add_parser("version", help="print version").set_defaults(func=cmd_version)

    trace_parser = sub.add_parser(
        "trace",
        help="run a scenario with tracing and export a Chrome trace + metrics",
    )
    trace_parser.add_argument(
        "--scenario", default="image-segmentation", help="workload scenario name"
    )
    trace_parser.add_argument(
        "--policy", default="couler", help="cache policy (no/all/couler/fifo/lru)"
    )
    trace_parser.add_argument(
        "--cache-gb", type=float, default=30.0, help="cache capacity in GiB"
    )
    trace_parser.add_argument(
        "--iterations", type=int, default=1, help="development iterations to chain"
    )
    trace_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    trace_parser.add_argument(
        "--out", default="trace.json", help="Chrome trace_event JSON output path"
    )
    trace_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the metrics snapshot here instead of stdout",
    )
    trace_parser.set_defaults(func=cmd_trace)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run the fault-injected fleet (exit 1 on recovery regression)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    chaos_parser.add_argument(
        "--workflows", type=int, default=8, help="fleet size to storm"
    )
    chaos_parser.add_argument(
        "--trace-out",
        default=None,
        help="also write a Chrome trace_event JSON of the stormy run",
    )
    chaos_parser.add_argument(
        "--journal",
        action="store_true",
        help="storm the journal-backed sharded fleet instead: hard-kill "
        "replicas mid-run and recover by journal replay (exit 1 on any "
        "replay regression)",
    )
    chaos_parser.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="replica count for the --journal fleet",
    )
    chaos_parser.set_defaults(func=cmd_chaos)

    verify_parser = sub.add_parser(
        "verify",
        help="sweep seeds through the differential oracles "
        "(exit 1 on any inequivalence, printing a shrunk repro)",
    )
    verify_parser.add_argument(
        "--seeds", type=int, default=25, help="number of seeds to sweep"
    )
    verify_parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed of the sweep"
    )
    verify_parser.add_argument(
        "--oracles",
        default=None,
        help="comma-separated subset (backends,cache,engine_fast,fairness,"
        "journal,replay,scores,split,submitters); default all",
    )
    verify_parser.add_argument(
        "--source",
        choices=("synthetic", "corpus"),
        default="synthetic",
        help="workflow source: the seeded fuzzer (synthetic) or "
        "frontend-compiled scenario-corpus workflows (corpus)",
    )
    verify_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking the first failing workflow",
    )
    verify_parser.set_defaults(func=cmd_verify)

    corpus_parser = sub.add_parser(
        "corpus",
        help="generate, describe or run the seeded SQL+NL scenario corpus",
    )
    corpus_parser.add_argument(
        "action",
        choices=("generate", "describe", "run"),
        help="generate: print the deterministic digest; describe: "
        "per-persona composition; run: execute end-to-end through "
        "caching + splitting + admission",
    )
    corpus_parser.add_argument("--seed", type=int, default=0, help="corpus seed")
    corpus_parser.add_argument(
        "--size", type=int, default=24, help="number of corpus entries"
    )
    corpus_parser.add_argument(
        "--engine",
        choices=("fast", "naive"),
        default="fast",
        help="engine hot-path mode for `run`",
    )
    corpus_parser.add_argument(
        "--cache-gb",
        type=float,
        default=2.0,
        help="shared artifact cache capacity for `run` (GiB)",
    )
    corpus_parser.add_argument(
        "--show-sources",
        action="store_true",
        help="with `generate`: also print every SQL script / NL description",
    )
    corpus_parser.set_defaults(func=cmd_corpus)

    profile_parser = sub.add_parser(
        "profile",
        help="measure per-workflow engine cost on a synthetic fleet "
        "(compare --engine fast vs naive)",
    )
    profile_parser.add_argument(
        "--workflows", type=int, default=1000, help="fleet size to run"
    )
    profile_parser.add_argument(
        "--seed", type=int, default=0, help="fleet generation seed"
    )
    profile_parser.add_argument(
        "--engine",
        choices=("fast", "naive"),
        default="fast",
        help="hot-path implementation to profile",
    )
    profile_parser.add_argument(
        "--top", type=int, default=15, help="cProfile hotspot rows to print"
    )
    profile_parser.add_argument(
        "--no-cprofile",
        action="store_true",
        help="skip cProfile (pure timing; ~2x lower overhead)",
    )
    profile_parser.set_defaults(func=cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
