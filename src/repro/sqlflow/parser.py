"""Parser for the SQLFlow dialect (paper Appendix B.E).

SQLFlow extends SELECT with two clauses:

``SELECT ... FROM t TO TRAIN Model WITH k=v, ... COLUMN c1, c2 LABEL l
INTO model_table`` — train a model over the query result.

``SELECT ... FROM t TO PREDICT t.out.col USING model_table`` — apply a
trained model.

The grammar here is a hand-written recursive-descent parser over a
small tokenizer: enough to round-trip the paper's examples and to
reject malformed statements with positioned errors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


class SQLFlowSyntaxError(ValueError):
    """Malformed SQLFlow statement."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<bracket>\[[^\]]*\])
  | (?P<punct>[*,=;()])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLFlowSyntaxError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup or "ws"
        if kind in ("ws", "comment"):
            # SQL line comments (``-- ...``) are whitespace to the
            # grammar; real scripts are full of them.
            continue
        tokens.append((kind, match.group()))
    return tokens


ScalarValue = Union[int, float, str, list]


@dataclass
class TrainStatement:
    """``SELECT ... TO TRAIN ...`` parsed form."""

    select_columns: List[str]
    table: str
    estimator: str
    attributes: Dict[str, ScalarValue] = field(default_factory=dict)
    feature_columns: List[str] = field(default_factory=list)
    label: Optional[str] = None
    into: Optional[str] = None


@dataclass
class PredictStatement:
    """``SELECT ... TO PREDICT ...`` parsed form."""

    select_columns: List[str]
    table: str
    result_table: str
    model: str


Statement = Union[TrainStatement, PredictStatement]


class _Cursor:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SQLFlowSyntaxError("unexpected end of statement")
        self.index += 1
        return token

    def expect_keyword(self, *keywords: str) -> str:
        kind, value = self.next()
        if kind != "ident" or value.upper() not in keywords:
            raise SQLFlowSyntaxError(
                f"expected {' or '.join(keywords)}, found {value!r}"
            )
        return value.upper()

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token[0] == "ident"
            and token[1].upper() == keyword
        )


def _parse_value(cursor: _Cursor) -> ScalarValue:
    kind, value = cursor.next()
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "string":
        return value[1:-1]
    if kind == "bracket":
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [int(x) if x.strip().isdigit() else x.strip() for x in inner.split(",")]
    if kind == "ident":
        return value
    raise SQLFlowSyntaxError(f"cannot parse value {value!r}")


def _unquote(value: str) -> str:
    return value[1:-1]


def _parse_column_list(cursor: _Cursor, stop_keywords: Tuple[str, ...]) -> List[str]:
    columns: List[str] = []
    while True:
        token = cursor.peek()
        if token is None:
            break
        kind, value = token
        if kind == "ident" and value.upper() in stop_keywords:
            break
        if kind == "punct" and value == ";":
            break
        cursor.next()
        if kind == "punct" and value == ",":
            continue
        if kind == "string":
            # Quoted identifiers ("order", 'select') are legal column
            # names; keep them, minus the quotes.
            columns.append(_unquote(value))
        elif kind == "ident" or (kind == "punct" and value == "*"):
            columns.append(value)
        else:
            raise SQLFlowSyntaxError(
                f"unexpected {value!r} in column list"
            )
    return columns


def _parse_name(cursor: _Cursor, what: str) -> str:
    """A table/model/column name: an identifier or a quoted string."""
    kind, value = cursor.next()
    if kind == "ident":
        return value
    if kind == "string":
        return _unquote(value)
    raise SQLFlowSyntaxError(f"expected {what}, found {value!r}")


def _parse_statement(cursor: _Cursor) -> Statement:
    cursor.expect_keyword("SELECT")
    select_columns = _parse_column_list(cursor, ("FROM",))
    cursor.expect_keyword("FROM")
    table = _parse_name(cursor, "table name")
    cursor.expect_keyword("TO")
    action = cursor.expect_keyword("TRAIN", "PREDICT")
    if action == "TRAIN":
        return _parse_train(cursor, select_columns, table)
    return _parse_predict(cursor, select_columns, table)


def _finish_statement(cursor: _Cursor) -> None:
    """Consume one optional terminating ``;``."""
    token = cursor.peek()
    if token is not None and token == ("punct", ";"):
        cursor.next()


def parse(text: str) -> Statement:
    """Parse exactly one SQLFlow statement (TRAIN or PREDICT).

    One trailing ``;`` is allowed; anything after it is an error — a
    second statement must go through :func:`parse_many`.
    """
    cursor = _Cursor(tokenize(text))
    statement = _parse_statement(cursor)
    _finish_statement(cursor)
    leftover = cursor.peek()
    if leftover is not None:
        raise SQLFlowSyntaxError(
            f"unexpected trailing input starting at {leftover[1]!r}; "
            "use parse_many() for multi-statement scripts"
        )
    return statement


def _skip_blank_statements(cursor: _Cursor) -> None:
    """Consume empty statements (stray ``;`` runs between real ones)."""
    while cursor.peek() == ("punct", ";"):
        cursor.next()


def parse_many(text: str) -> List[Statement]:
    """Parse a ``;``-separated script of SQLFlow statements.

    Blank statements — consecutive ``;`` separators, or separators with
    only whitespace/comments between them — are skipped, matching how
    SQL script runners treat them.
    """
    cursor = _Cursor(tokenize(text))
    statements: List[Statement] = []
    _skip_blank_statements(cursor)
    while cursor.peek() is not None:
        statements.append(_parse_statement(cursor))
        _finish_statement(cursor)
        _skip_blank_statements(cursor)
    return statements


def _parse_train(cursor: _Cursor, select_columns: List[str], table: str) -> TrainStatement:
    estimator = _parse_name(cursor, "estimator name")
    statement = TrainStatement(
        select_columns=select_columns, table=table, estimator=estimator
    )
    if cursor.at_keyword("WITH"):
        cursor.next()
        while True:
            kind, key = cursor.next()
            if kind != "ident":
                raise SQLFlowSyntaxError(f"expected attribute name, found {key!r}")
            kind, eq = cursor.next()
            if eq != "=":
                raise SQLFlowSyntaxError(f"expected '=' after {key!r}")
            statement.attributes[key] = _parse_value(cursor)
            token = cursor.peek()
            if token is not None and token[1] == ",":
                cursor.next()
                continue
            break
    if cursor.at_keyword("COLUMN"):
        cursor.next()
        statement.feature_columns = _parse_column_list(cursor, ("LABEL", "INTO"))
    if cursor.at_keyword("LABEL"):
        cursor.next()
        statement.label = _parse_name(cursor, "label column")
    if cursor.at_keyword("INTO"):
        cursor.next()
        statement.into = _parse_name(cursor, "model table")
    return statement


def _parse_predict(
    cursor: _Cursor, select_columns: List[str], table: str
) -> PredictStatement:
    result_table = _parse_name(cursor, "result table")
    cursor.expect_keyword("USING")
    model = _parse_name(cursor, "model table")
    return PredictStatement(
        select_columns=select_columns,
        table=table,
        result_table=result_table,
        model=model,
    )
