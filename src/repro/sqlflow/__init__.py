"""SQLFlow frontend (paper Appendix B.E): SQL -> Couler workflows."""

from .parser import (
    PredictStatement,
    SQLFlowSyntaxError,
    Statement,
    TrainStatement,
    parse,
    parse_many,
    tokenize,
)
from .translate import (
    sql_script_to_irs,
    sql_to_ir,
    statement_to_ir,
    translate_predict,
    translate_train,
)

__all__ = [
    "PredictStatement",
    "SQLFlowSyntaxError",
    "Statement",
    "TrainStatement",
    "parse",
    "parse_many",
    "sql_script_to_irs",
    "sql_to_ir",
    "statement_to_ir",
    "tokenize",
    "translate_predict",
    "translate_train",
]
