"""SQLFlow frontend (paper Appendix B.E): SQL -> Couler workflows."""

from .parser import (
    PredictStatement,
    SQLFlowSyntaxError,
    Statement,
    TrainStatement,
    parse,
    tokenize,
)
from .translate import sql_to_ir, translate_predict, translate_train

__all__ = [
    "PredictStatement",
    "SQLFlowSyntaxError",
    "Statement",
    "TrainStatement",
    "parse",
    "sql_to_ir",
    "tokenize",
    "translate_predict",
    "translate_train",
]
