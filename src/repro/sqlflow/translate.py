"""SQLFlow -> Couler IR translation (paper Appendix B.E).

"Typically, a SQLFlow SQL statement is converted into Couler
programming code, which then initiates a workflow in Kubernetes" —
Couler is SQLFlow's default backend.  A TRAIN statement lowers to a
three-step workflow (extract data -> train -> save model); a PREDICT
statement lowers to extract -> predict -> write results.
"""

from __future__ import annotations

from typing import Optional

from .. import core as couler
from ..ir.graph import WorkflowIR
from ..ir.nodes import ArtifactDecl, ArtifactStorage, SimHint
from ..k8s.resources import ResourceQuantity
from typing import List

from .parser import PredictStatement, Statement, TrainStatement, parse, parse_many


def _extract_step(table: str, columns, size_bytes: int) -> couler.StepOutput:
    select = ", ".join(columns) if columns else "*"
    return couler.run_container(
        image="sqlflow-extract:v1",
        command=["python", "extract.py"],
        args=[f"--query=SELECT {select} FROM {table}"],
        step_name=f"extract-{table.replace('.', '-')}",
        output=ArtifactDecl(
            name="rows",
            storage=ArtifactStorage.OSS,
            path=f"/data/{table}",
            size_bytes=size_bytes,
        ),
        sim=SimHint(duration_s=120.0),
    )


def translate_train(statement: TrainStatement) -> couler.StepOutput:
    """Lower a TRAIN statement onto the current Couler context."""
    rows = _extract_step(statement.table, statement.select_columns, 256 * 2**20)
    attributes = [f"--{k}={v}" for k, v in sorted(statement.attributes.items())]
    model = couler.run_container(
        image="sqlflow-train:v1",
        command=["python", "train.py"],
        args=[f"--estimator={statement.estimator}"]
        + attributes
        + [f"--features={','.join(statement.feature_columns)}"]
        + ([f"--label={statement.label}"] if statement.label else []),
        step_name=f"train-{statement.estimator.lower()}",
        resources=ResourceQuantity(cpu=4.0, memory=8 * 2**30),
        input=rows,
        output=ArtifactDecl(
            name="model",
            storage=ArtifactStorage.OSS,
            path=f"/models/{statement.into or statement.estimator}",
            size_bytes=128 * 2**20,
        ),
        sim=SimHint(duration_s=600.0),
    )
    if statement.into:
        return couler.run_container(
            image="sqlflow-save:v1",
            command=["python", "save_model.py"],
            args=[f"--into={statement.into}"],
            step_name="save-model",
            input=model,
            sim=SimHint(duration_s=30.0),
        )
    return model


def translate_predict(statement: PredictStatement) -> couler.StepOutput:
    """Lower a PREDICT statement onto the current Couler context."""
    rows = _extract_step(statement.table, statement.select_columns, 128 * 2**20)
    prediction = couler.run_container(
        image="sqlflow-predict:v1",
        command=["python", "predict.py"],
        args=[f"--model={statement.model}", f"--result={statement.result_table}"],
        step_name="predict",
        resources=ResourceQuantity(cpu=2.0, memory=4 * 2**30),
        input=rows,
        output=ArtifactDecl(
            name="predictions",
            storage=ArtifactStorage.OSS,
            path=f"/data/{statement.result_table}",
            size_bytes=64 * 2**20,
        ),
        sim=SimHint(duration_s=180.0),
    )
    return couler.run_container(
        image="sqlflow-write:v1",
        command=["python", "write_results.py"],
        args=[f"--table={statement.result_table}"],
        step_name="write-results",
        input=prediction,
        sim=SimHint(duration_s=60.0),
    )


def sql_to_ir(sql: str, workflow_name: Optional[str] = None) -> WorkflowIR:
    """Parse one SQLFlow statement and return the compiled workflow IR."""
    return statement_to_ir(parse(sql), workflow_name)


def sql_script_to_irs(script: str) -> List[WorkflowIR]:
    """Translate a ``;``-separated SQLFlow script, one workflow per
    statement (the paper's train-then-predict pipelines)."""
    return [statement_to_ir(statement) for statement in parse_many(script)]


def statement_to_ir(
    statement: Statement, workflow_name: Optional[str] = None
) -> WorkflowIR:
    """Lower one parsed statement to a workflow IR."""
    name = workflow_name or (
        f"sqlflow-train-{statement.estimator.lower()}"
        if isinstance(statement, TrainStatement)
        else "sqlflow-predict"
    )
    couler.reset_context(name)
    try:
        if isinstance(statement, TrainStatement):
            translate_train(statement)
        else:
            translate_predict(statement)
        return couler.workflow_ir(optimize=False)
    finally:
        couler.reset_context()
