"""A tiny etcd stand-in: versioned key-value store with quota errors.

The paper's failure handler (Appendix B.B) names two production error
patterns the retry policy must absorb: ``ExceededQuotaErr`` (etcd space
quota exceeded while updating) and ``TooManyRequestsErr`` (API-server
overload).  This module models the etcd side: a KV store with an overall
byte quota, per-key revisions, and optional fault injection so tests can
exercise the retry paths deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple


class EtcdError(RuntimeError):
    """Base class for simulated etcd failures."""


class ExceededQuotaErr(EtcdError):
    """etcd space quota exceeded during an update (retryable)."""


class KeyNotFoundError(EtcdError, KeyError):
    """Requested key does not exist."""


class RevisionConflictError(EtcdError):
    """Compare-and-swap failed: the stored revision moved on."""


@dataclass
class _Entry:
    value: bytes
    revision: int


@dataclass
class EtcdStore:
    """Byte-quota-bounded KV store with monotonic revisions.

    Parameters
    ----------
    quota_bytes:
        Total bytes of stored values allowed; writes beyond this raise
        :class:`ExceededQuotaErr`, matching the production pattern the
        workflow controller must retry.
    fault_injector:
        Optional callable ``(op, key) -> Exception | None`` consulted
        before every operation; returning an exception raises it.  Used
        by failure-injection tests.
    """

    quota_bytes: int = 8 * 1024 * 1024
    fault_injector: Optional[Callable[[str, str], Optional[Exception]]] = None
    _data: Dict[str, _Entry] = field(default_factory=dict)
    _revision: int = 0
    _used: int = 0

    def _check_fault(self, op: str, key: str) -> None:
        if self.fault_injector is not None:
            err = self.fault_injector(op, key)
            if err is not None:
                raise err

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def revision(self) -> int:
        return self._revision

    def put(self, key: str, value: bytes) -> int:
        """Store ``value`` under ``key``; returns the new revision."""
        self._check_fault("put", key)
        old = self._data.get(key)
        new_used = self._used - (len(old.value) if old else 0) + len(value)
        if new_used > self.quota_bytes:
            raise ExceededQuotaErr(
                f"etcd quota exceeded: {new_used} > {self.quota_bytes} bytes"
            )
        self._revision += 1
        self._data[key] = _Entry(value=value, revision=self._revision)
        self._used = new_used
        return self._revision

    def get(self, key: str) -> bytes:
        self._check_fault("get", key)
        entry = self._data.get(key)
        if entry is None:
            raise KeyNotFoundError(key)
        return entry.value

    def get_with_revision(self, key: str) -> Tuple[bytes, int]:
        entry = self._data.get(key)
        if entry is None:
            raise KeyNotFoundError(key)
        return entry.value, entry.revision

    def compare_and_put(self, key: str, value: bytes, expected_revision: int) -> int:
        """Atomic update guarded on the key's current revision."""
        self._check_fault("cas", key)
        entry = self._data.get(key)
        current = entry.revision if entry else 0
        if current != expected_revision:
            raise RevisionConflictError(
                f"{key}: expected revision {expected_revision}, found {current}"
            )
        return self.put(key, value)

    def delete(self, key: str) -> None:
        self._check_fault("delete", key)
        entry = self._data.pop(key, None)
        if entry is None:
            raise KeyNotFoundError(key)
        self._used -= len(entry.value)
        self._revision += 1

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self, prefix: str = "") -> Iterator[str]:
        """Iterate keys under ``prefix`` in sorted order."""
        for key in sorted(self._data):
            if key.startswith(prefix):
                yield key

    def compact(self) -> None:
        """No-op placeholder for etcd compaction; kept for API parity."""
