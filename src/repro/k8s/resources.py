"""Resource quantities for the simulated Kubernetes cluster.

Kubernetes expresses compute resources as quantity strings such as
``"500m"`` (half a CPU core), ``"2Gi"`` (two gibibytes) or plain integers.
This module provides :class:`ResourceQuantity`, a small value type holding
CPU cores, memory bytes, and GPU count, together with the parsing rules
used by pod specs throughout the simulator.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

_MEMORY_SUFFIXES = {
    "": 1,
    "k": 10**3,
    "M": 10**6,
    "G": 10**9,
    "T": 10**12,
    "P": 10**15,
    "Ki": 2**10,
    "Mi": 2**20,
    "Gi": 2**30,
    "Ti": 2**40,
    "Pi": 2**50,
}

_MEMORY_RE = re.compile(r"^([0-9]*\.?[0-9]+)(k|M|G|T|P|Ki|Mi|Gi|Ti|Pi)?$")


class ResourceError(ValueError):
    """Raised for malformed resource quantity strings."""


def parse_cpu(value: "str | int | float") -> float:
    """Parse a Kubernetes CPU quantity into a float number of cores.

    Accepts millicore strings (``"1500m"``), plain numerics (``2``,
    ``"0.5"``) and floats.

    >>> parse_cpu("500m")
    0.5
    >>> parse_cpu(2)
    2.0
    """
    if isinstance(value, (int, float)):
        cores = float(value)
    else:
        text = value.strip()
        if text.endswith("m"):
            try:
                cores = float(text[:-1]) / 1000.0
            except ValueError as exc:
                raise ResourceError(f"invalid CPU quantity: {value!r}") from exc
        else:
            try:
                cores = float(text)
            except ValueError as exc:
                raise ResourceError(f"invalid CPU quantity: {value!r}") from exc
    if cores < 0 or not math.isfinite(cores):
        raise ResourceError(f"CPU quantity must be finite and >= 0: {value!r}")
    return cores


def parse_memory(value: "str | int | float") -> int:
    """Parse a Kubernetes memory quantity into bytes.

    >>> parse_memory("2Gi")
    2147483648
    >>> parse_memory("500M")
    500000000
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ResourceError(f"memory quantity must be >= 0: {value!r}")
        return int(value)
    match = _MEMORY_RE.match(value.strip())
    if not match:
        raise ResourceError(f"invalid memory quantity: {value!r}")
    number, suffix = match.groups()
    return int(float(number) * _MEMORY_SUFFIXES[suffix or ""])


def format_memory(num_bytes: int) -> str:
    """Render a byte count using the largest exact-ish binary suffix."""
    for suffix in ("Pi", "Ti", "Gi", "Mi", "Ki"):
        unit = _MEMORY_SUFFIXES[suffix]
        if num_bytes >= unit:
            quotient = num_bytes / unit
            if quotient == int(quotient):
                return f"{int(quotient)}{suffix}"
            return f"{quotient:.2f}{suffix}"
    return str(int(num_bytes))


@dataclass(frozen=True)
class ResourceQuantity:
    """An immutable bundle of CPU cores, memory bytes, and GPU count.

    Supports arithmetic (``+``/``-``), containment comparison via
    :meth:`fits_within`, and parsing from Kubernetes-style resource dicts.
    """

    cpu: float = 0.0
    memory: int = 0
    gpu: int = 0

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.memory < 0 or self.gpu < 0:
            raise ResourceError(f"resource components must be >= 0: {self}")

    @classmethod
    def parse(cls, spec: "dict | None") -> "ResourceQuantity":
        """Build from a Kubernetes ``resources.requests``-style mapping.

        Unknown keys raise :class:`ResourceError` so that typos in
        workload definitions fail loudly.
        """
        if not spec:
            return cls()
        known = {"cpu", "memory", "gpu", "nvidia.com/gpu"}
        unknown = set(spec) - known
        if unknown:
            raise ResourceError(f"unknown resource keys: {sorted(unknown)}")
        gpu = spec.get("gpu", spec.get("nvidia.com/gpu", 0))
        return cls(
            cpu=parse_cpu(spec.get("cpu", 0)),
            memory=parse_memory(spec.get("memory", 0)),
            gpu=int(gpu),
        )

    def to_dict(self) -> dict:
        """Render back to a Kubernetes-style resource mapping."""
        out: dict = {}
        if self.cpu:
            millis = round(self.cpu * 1000)
            out["cpu"] = f"{millis}m" if millis % 1000 else str(millis // 1000)
        if self.memory:
            out["memory"] = format_memory(self.memory)
        if self.gpu:
            out["nvidia.com/gpu"] = self.gpu
        return out

    def __add__(self, other: "ResourceQuantity") -> "ResourceQuantity":
        return ResourceQuantity(
            cpu=self.cpu + other.cpu,
            memory=self.memory + other.memory,
            gpu=self.gpu + other.gpu,
        )

    def __sub__(self, other: "ResourceQuantity") -> "ResourceQuantity":
        return ResourceQuantity(
            cpu=max(0.0, self.cpu - other.cpu),
            memory=max(0, self.memory - other.memory),
            gpu=max(0, self.gpu - other.gpu),
        )

    def fits_within(self, capacity: "ResourceQuantity") -> bool:
        """Return True if this request fits inside ``capacity``.

        A tiny epsilon absorbs float drift in repeated CPU arithmetic.
        """
        eps = 1e-9
        return (
            self.cpu <= capacity.cpu + eps
            and self.memory <= capacity.memory
            and self.gpu <= capacity.gpu
        )

    def is_zero(self) -> bool:
        return self.cpu == 0 and self.memory == 0 and self.gpu == 0


ZERO = ResourceQuantity()
