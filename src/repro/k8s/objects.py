"""Kubernetes-style API objects for the simulated cluster.

The simulator stores every object as a typed Python wrapper around a plain
``dict`` manifest, mirroring how real Kubernetes objects are JSON documents
with ``apiVersion`` / ``kind`` / ``metadata`` / ``spec`` / ``status``
sections.  Keeping manifests as dicts lets the Argo backend emit the exact
YAML the paper's workflow operator consumes, and lets the API server
enforce size limits on the serialized form (the 2 MB CRD constraint that
motivates Algorithm 3).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .resources import ResourceQuantity


class PodPhase(str, Enum):
    """Lifecycle phases of a simulated pod (matches Kubernetes)."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"

    def is_terminal(self) -> bool:
        return self in (PodPhase.SUCCEEDED, PodPhase.FAILED)


@dataclass
class ObjectMeta:
    """Metadata carried by every API object."""

    name: str
    namespace: str = "default"
    labels: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)
    uid: Optional[str] = None
    creation_time: Optional[float] = None

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "namespace": self.namespace}
        if self.labels:
            out["labels"] = dict(self.labels)
        if self.annotations:
            out["annotations"] = dict(self.annotations)
        if self.uid is not None:
            out["uid"] = self.uid
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ObjectMeta":
        return cls(
            name=data["name"],
            namespace=data.get("namespace", "default"),
            labels=dict(data.get("labels", {})),
            annotations=dict(data.get("annotations", {})),
            uid=data.get("uid"),
        )


@dataclass
class APIObject:
    """Base wrapper for a manifest stored in the simulated API server."""

    api_version: str
    kind: str
    metadata: ObjectMeta
    spec: dict = field(default_factory=dict)
    status: dict = field(default_factory=dict)
    resource_version: int = 0

    @property
    def key(self) -> str:
        """Unique storage key, e.g. ``Pod/default/train-step-1``."""
        return f"{self.kind}/{self.metadata.namespace}/{self.metadata.name}"

    def to_dict(self) -> dict:
        return {
            "apiVersion": self.api_version,
            "kind": self.kind,
            "metadata": self.metadata.to_dict(),
            "spec": copy.deepcopy(self.spec),
            "status": copy.deepcopy(self.status),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "APIObject":
        return cls(
            api_version=data.get("apiVersion", "v1"),
            kind=data["kind"],
            metadata=ObjectMeta.from_dict(data.get("metadata", {})),
            spec=copy.deepcopy(data.get("spec", {})),
            status=copy.deepcopy(data.get("status", {})),
        )

    def serialized_size(self) -> int:
        """Size in bytes of the JSON-serialized manifest.

        This is the quantity the API server's CRD size limit applies to
        and the ``alpha`` term of the workflow split budget (Sec. IV.B).
        """
        return len(json.dumps(self.to_dict(), sort_keys=True).encode("utf-8"))


@dataclass
class Pod(APIObject):
    """A simulated pod: a unit of step execution with resource requests.

    Simulation hints (duration, output artifact size, failure profile)
    ride in ``metadata.annotations`` under ``sim/*`` keys, the same way a
    real operator would attach scheduling hints.
    """

    def __init__(
        self,
        name: str,
        requests: Optional[ResourceQuantity] = None,
        namespace: str = "default",
        labels: Optional[dict] = None,
        annotations: Optional[dict] = None,
        spec: Optional[dict] = None,
    ) -> None:
        super().__init__(
            api_version="v1",
            kind="Pod",
            metadata=ObjectMeta(
                name=name,
                namespace=namespace,
                labels=dict(labels or {}),
                annotations=dict(annotations or {}),
            ),
            spec=dict(spec or {}),
            status={"phase": PodPhase.PENDING.value},
        )
        self._requests = requests or ResourceQuantity()

    @property
    def requests(self) -> ResourceQuantity:
        return self._requests

    @property
    def phase(self) -> PodPhase:
        return PodPhase(self.status.get("phase", PodPhase.PENDING.value))

    @phase.setter
    def phase(self, value: PodPhase) -> None:
        self.status["phase"] = value.value

    @property
    def node_name(self) -> Optional[str]:
        return self.spec.get("nodeName")

    @node_name.setter
    def node_name(self, value: Optional[str]) -> None:
        if value is None:
            self.spec.pop("nodeName", None)
        else:
            self.spec["nodeName"] = value

    @property
    def reason(self) -> Optional[str]:
        """Machine-readable cause of the current phase (e.g. ``Evicted``,
        ``NodeLost``), mirroring ``status.reason`` on real pods."""
        return self.status.get("reason")

    @reason.setter
    def reason(self, value: Optional[str]) -> None:
        if value is None:
            self.status.pop("reason", None)
        else:
            self.status["reason"] = value


def make_crd(
    kind: str,
    name: str,
    spec: dict,
    group: str = "argoproj.io",
    version: str = "v1alpha1",
    namespace: str = "default",
    annotations: Optional[dict] = None,
) -> APIObject:
    """Construct a Custom Resource object (e.g. an Argo ``Workflow``)."""
    return APIObject(
        api_version=f"{group}/{version}",
        kind=kind,
        metadata=ObjectMeta(
            name=name, namespace=namespace, annotations=dict(annotations or {})
        ),
        spec=copy.deepcopy(spec),
    )


def crd_yaml_size(manifest: dict) -> int:
    """Byte size of a manifest as YAML — the budget unit in Algorithm 3."""
    import yaml

    return len(yaml.safe_dump(manifest, sort_keys=False).encode("utf-8"))
