"""Simulated cluster: nodes with capacity and a pod bin-packing scheduler.

The paper's production environment is a shared Ant Group cluster
(~1.6M CPU cores, 4.5k GPUs).  The simulator scales this down to a
configurable set of :class:`Node` objects; the :class:`Scheduler` places
pending pods on nodes best-fit by remaining CPU, which is sufficient to
reproduce utilization-over-time curves (Figs. 7, 11–16) since those
depend on aggregate capacity pressure, not on a specific packing
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .objects import Pod, PodPhase
from .resources import ResourceQuantity


class SchedulingError(RuntimeError):
    """Raised when a pod can never fit on any node (infeasible request)."""


@dataclass
class Node:
    """A schedulable machine with fixed capacity and a lifecycle.

    ``ready`` is the node's health: the chaos layer flips it on injected
    crashes and the scheduler never binds onto a not-ready node.
    """

    name: str
    capacity: ResourceQuantity
    allocated: ResourceQuantity = field(default_factory=ResourceQuantity)
    pods: Dict[str, Pod] = field(default_factory=dict)
    ready: bool = True

    @property
    def free(self) -> ResourceQuantity:
        return self.capacity - self.allocated

    def can_fit(self, requests: ResourceQuantity) -> bool:
        return self.ready and requests.fits_within(self.free)

    def bind(self, pod: Pod) -> None:
        if not self.ready:
            raise SchedulingError(f"node {self.name} is not ready")
        if not self.can_fit(pod.requests):
            raise SchedulingError(f"pod {pod.metadata.name} does not fit on {self.name}")
        self.allocated = self.allocated + pod.requests
        self.pods[pod.metadata.name] = pod
        pod.node_name = self.name

    def release(self, pod: Pod) -> None:
        if pod.metadata.name in self.pods:
            del self.pods[pod.metadata.name]
            self.allocated = self.allocated - pod.requests
        # Always clear the pod-side pointer: a binding that survives
        # release is how stale-node reads (and double releases against
        # the wrong node) start.
        if pod.node_name == self.name:
            pod.node_name = None

    def evict(self, pod: Pod) -> None:
        """Remove a pod (preemption / node-pressure eviction)."""
        self.release(pod)
        pod.phase = PodPhase.FAILED
        pod.reason = "Evicted"

    def fail(self) -> List[Pod]:
        """Crash the node: mark not-ready and displace every pod.

        Returns the displaced pods (bindings cleared, phase Failed) so
        the operator can requeue the work they carried.
        """
        self.ready = False
        displaced = list(self.pods.values())
        self.pods.clear()
        self.allocated = ResourceQuantity()
        for pod in displaced:
            pod.node_name = None
            pod.phase = PodPhase.FAILED
            pod.reason = "NodeLost"
        return displaced

    def recover(self) -> None:
        """Bring a crashed node back, empty and schedulable."""
        self.ready = True


@dataclass
class Cluster:
    """A named collection of nodes plus utilization accounting.

    The multi-cluster workflow queue (Appendix B.A) schedules across
    several :class:`Cluster` instances with different shapes (GPU-heavy,
    CPU-heavy, storage-distant).
    """

    name: str = "cluster-a"
    nodes: List[Node] = field(default_factory=list)
    #: Relative network distance to the storage cluster; scales remote
    #: read latency in the data-caching experiments (Appendix D.C).
    storage_distance: float = 1.0
    #: Lazily built name -> Node index (release/lookup used to scan the
    #: node list linearly, which is O(n) per released pod).
    _by_name: Optional[Dict[str, Node]] = field(
        default=None, repr=False, compare=False
    )
    #: Memoized total capacity, guarded by node count (see ``capacity``).
    _capacity_cache: Optional[Tuple[int, ResourceQuantity]] = field(
        default=None, repr=False, compare=False
    )

    def node(self, name: str) -> Optional[Node]:
        """O(1) node lookup by name."""
        if self._by_name is None or len(self._by_name) != len(self.nodes):
            self._by_name = {node.name: node for node in self.nodes}
        return self._by_name.get(name)

    def ready_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.ready]

    @classmethod
    def uniform(
        cls,
        name: str,
        num_nodes: int,
        cpu_per_node: float,
        memory_per_node: int,
        gpu_per_node: int = 0,
        storage_distance: float = 1.0,
    ) -> "Cluster":
        """Build a homogeneous cluster."""
        nodes = [
            Node(
                name=f"{name}-node-{i}",
                capacity=ResourceQuantity(
                    cpu=cpu_per_node, memory=memory_per_node, gpu=gpu_per_node
                ),
            )
            for i in range(num_nodes)
        ]
        return cls(name=name, nodes=nodes, storage_distance=storage_distance)

    @property
    def capacity(self) -> ResourceQuantity:
        # Memoized while the node list is unchanged (guarded by length,
        # like the ``_by_name`` index): admission placement reads this
        # millions of times per fleet run, and node *capacity* is fixed
        # even when nodes crash (``ready`` flips, the hardware remains).
        cache = self._capacity_cache
        if cache is not None and cache[0] == len(self.nodes):
            return cache[1]
        total = ResourceQuantity()
        for node in self.nodes:
            total = total + node.capacity
        self._capacity_cache = (len(self.nodes), total)
        return total

    @property
    def allocated(self) -> ResourceQuantity:
        total = ResourceQuantity()
        for node in self.nodes:
            total = total + node.allocated
        return total

    def utilization(self) -> dict:
        """Fractional CPU / memory / GPU utilization right now."""
        cap, alloc = self.capacity, self.allocated
        return {
            "cpu": alloc.cpu / cap.cpu if cap.cpu else 0.0,
            "memory": alloc.memory / cap.memory if cap.memory else 0.0,
            "gpu": alloc.gpu / cap.gpu if cap.gpu else 0.0,
        }

    def running_pods(self) -> List[Pod]:
        return [
            pod
            for node in self.nodes
            for pod in node.pods.values()
            if pod.phase == PodPhase.RUNNING
        ]


class Scheduler:
    """Best-fit decreasing pod scheduler over one cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def feasible(self, requests: ResourceQuantity) -> bool:
        """True if some node could ever host this request when empty."""
        return any(requests.fits_within(node.capacity) for node in self.cluster.nodes)

    def try_schedule(self, pod: Pod) -> Optional[Node]:
        """Bind ``pod`` to the node with the least leftover CPU that fits.

        Returns the chosen node, or ``None`` if no node currently has
        room (the pod stays Pending).  Not-ready (crashed) nodes are
        never candidates, but still count toward :meth:`feasible` — a
        pod that only pends because of an outage must wait, not error.
        Raises :class:`SchedulingError` when the request exceeds every
        node's total capacity, since such a pod would pend forever.
        """
        if not self.feasible(pod.requests):
            raise SchedulingError(
                f"pod {pod.metadata.name} requests {pod.requests} "
                f"exceed every node's capacity"
            )
        best: Optional[Node] = None
        best_leftover = float("inf")
        for node in self.cluster.nodes:
            if node.can_fit(pod.requests):
                leftover = node.free.cpu - pod.requests.cpu
                if leftover < best_leftover:
                    best, best_leftover = node, leftover
        if best is not None:
            best.bind(pod)
        return best

    def release(self, pod: Pod) -> None:
        node_name = pod.node_name
        if node_name is None:
            return
        node = self.cluster.node(node_name)
        if node is not None:
            node.release(pod)
        # A binding onto a node the cluster no longer knows is stale by
        # definition; clear it so the pod cannot be "released" twice.
        pod.node_name = None
