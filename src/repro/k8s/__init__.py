"""Simulated Kubernetes substrate: resources, objects, etcd, API server,
nodes, and a pod scheduler.

The paper deploys Couler on a production Kubernetes cluster; this package
is the laptop-scale stand-in.  It preserves the behaviours the paper's
algorithms depend on: CRD size limits (Algorithm 3's trigger), resource-
bounded pod scheduling (utilization figures), etcd quota / API-server
overload errors (the failure handler's retry patterns), and watch-event
delivery (the workflow operator's reconcile loop).
"""

from .apiserver import (
    APIServer,
    APIServerError,
    AlreadyExistsError,
    CRDTooLargeError,
    EventType,
    NotFoundError,
    TooManyRequestsErr,
    WatchEvent,
    DEFAULT_CRD_SIZE_LIMIT,
)
from .cluster import Cluster, Node, Scheduler, SchedulingError
from .etcd import EtcdStore, ExceededQuotaErr, KeyNotFoundError, RevisionConflictError
from .objects import APIObject, ObjectMeta, Pod, PodPhase, crd_yaml_size, make_crd
from .resources import ResourceQuantity, ResourceError, parse_cpu, parse_memory

__all__ = [
    "APIServer",
    "APIServerError",
    "APIObject",
    "AlreadyExistsError",
    "CRDTooLargeError",
    "Cluster",
    "DEFAULT_CRD_SIZE_LIMIT",
    "EtcdStore",
    "EventType",
    "ExceededQuotaErr",
    "KeyNotFoundError",
    "Node",
    "NotFoundError",
    "ObjectMeta",
    "Pod",
    "PodPhase",
    "ResourceError",
    "ResourceQuantity",
    "RevisionConflictError",
    "Scheduler",
    "SchedulingError",
    "TooManyRequestsErr",
    "WatchEvent",
    "crd_yaml_size",
    "make_crd",
    "parse_cpu",
    "parse_memory",
]
