"""Simulated Kubernetes API server.

Stores :class:`~repro.k8s.objects.APIObject` manifests in an
:class:`~repro.k8s.etcd.EtcdStore`, enforces the CRD size limit that
motivates the paper's big-workflow splitting (Sec. IV.B: "the size of
YAML can not [be] bigger than 2MB in practice"), rate-limits bursts with
``TooManyRequestsErr``, and delivers watch events to registered
informers the way a real controller runtime would.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterator, List, Optional

from .etcd import EtcdStore, KeyNotFoundError
from .objects import APIObject

#: Production limit from the paper: CRDs larger than this are rejected.
DEFAULT_CRD_SIZE_LIMIT = 2 * 1024 * 1024


class APIServerError(RuntimeError):
    """Base class for API-server-level failures."""


class TooManyRequestsErr(APIServerError):
    """API server overloaded (retryable; paper Appendix B.B)."""


class CRDTooLargeError(APIServerError):
    """Manifest exceeds the CRD size limit — the trigger for Algorithm 3."""


class AlreadyExistsError(APIServerError):
    """Create of an object whose key already exists."""


class NotFoundError(APIServerError, KeyError):
    """Get/update/delete of a missing object."""


class EventType(str, Enum):
    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass(frozen=True)
class WatchEvent:
    type: EventType
    obj: APIObject


WatchHandler = Callable[[WatchEvent], None]


@dataclass
class APIServer:
    """The cluster's object store front-end.

    Parameters
    ----------
    etcd:
        Backing store; a fresh quota-bounded store is created by default.
    crd_size_limit:
        Maximum serialized manifest size accepted for custom resources.
    rate_limit:
        If set, the number of requests allowed per call to
        :meth:`tick`; further requests raise
        :class:`TooManyRequestsErr` until the next tick.  ``None``
        disables rate limiting (the default for unit tests).
    """

    etcd: EtcdStore = field(default_factory=EtcdStore)
    crd_size_limit: int = DEFAULT_CRD_SIZE_LIMIT
    rate_limit: Optional[int] = None
    _objects: Dict[str, APIObject] = field(default_factory=dict)
    _watchers: Dict[str, List[WatchHandler]] = field(default_factory=dict)
    _requests_this_window: int = 0
    request_count: int = 0

    # ------------------------------------------------------------------ utils

    def tick(self) -> None:
        """Open a new rate-limit window (called once per sim step)."""
        self._requests_this_window = 0

    def _admit(self) -> None:
        self.request_count += 1
        if self.rate_limit is not None:
            self._requests_this_window += 1
            if self._requests_this_window > self.rate_limit:
                raise TooManyRequestsErr(
                    f"rate limit of {self.rate_limit} requests/window exceeded"
                )

    def _persist(self, obj: APIObject) -> None:
        payload = json.dumps(obj.to_dict(), sort_keys=True).encode("utf-8")
        self.etcd.put(obj.key, payload)

    def _is_custom_resource(self, obj: APIObject) -> bool:
        return "/" in obj.api_version and not obj.api_version.startswith("v")

    def _check_size(self, obj: APIObject) -> None:
        if self._is_custom_resource(obj):
            size = obj.serialized_size()
            if size > self.crd_size_limit:
                raise CRDTooLargeError(
                    f"{obj.key}: manifest is {size} bytes, "
                    f"limit is {self.crd_size_limit}"
                )

    def _notify(self, event: WatchEvent) -> None:
        for handler in self._watchers.get(event.obj.kind, []):
            handler(event)
        for handler in self._watchers.get("*", []):
            handler(event)

    # ------------------------------------------------------------------- CRUD

    def create(self, obj: APIObject) -> APIObject:
        self._admit()
        self._check_size(obj)
        if obj.key in self._objects:
            raise AlreadyExistsError(obj.key)
        obj.resource_version = self.etcd.revision + 1
        self._objects[obj.key] = obj
        self._persist(obj)
        self._notify(WatchEvent(EventType.ADDED, obj))
        return obj

    def get(self, kind: str, name: str, namespace: str = "default") -> APIObject:
        self._admit()
        key = f"{kind}/{namespace}/{name}"
        obj = self._objects.get(key)
        if obj is None:
            raise NotFoundError(key)
        return obj

    def update(self, obj: APIObject) -> APIObject:
        self._admit()
        self._check_size(obj)
        if obj.key not in self._objects:
            raise NotFoundError(obj.key)
        obj.resource_version = self.etcd.revision + 1
        self._objects[obj.key] = obj
        self._persist(obj)
        self._notify(WatchEvent(EventType.MODIFIED, obj))
        return obj

    def update_status(self, obj: APIObject) -> APIObject:
        """Status-subresource update: skips the CRD size check like k8s."""
        self._admit()
        if obj.key not in self._objects:
            raise NotFoundError(obj.key)
        obj.resource_version = self.etcd.revision + 1
        self._objects[obj.key] = obj
        self._persist(obj)
        self._notify(WatchEvent(EventType.MODIFIED, obj))
        return obj

    def delete(self, kind: str, name: str, namespace: str = "default") -> None:
        self._admit()
        key = f"{kind}/{namespace}/{name}"
        obj = self._objects.pop(key, None)
        if obj is None:
            raise NotFoundError(key)
        try:
            self.etcd.delete(key)
        except KeyNotFoundError:
            pass
        self._notify(WatchEvent(EventType.DELETED, obj))

    def list(self, kind: str, namespace: Optional[str] = None) -> List[APIObject]:
        self._admit()
        out = []
        for key in sorted(self._objects):
            obj = self._objects[key]
            if obj.kind != kind:
                continue
            if namespace is not None and obj.metadata.namespace != namespace:
                continue
            out.append(obj)
        return out

    def iter_all(self) -> Iterator[APIObject]:
        for key in sorted(self._objects):
            yield self._objects[key]

    # ------------------------------------------------------------------ watch

    def watch(self, kind: str, handler: WatchHandler) -> None:
        """Register ``handler`` for events on ``kind`` (``"*"`` = all)."""
        self._watchers.setdefault(kind, []).append(handler)
