"""Resource-request optimization (paper Sec. II.D).

"The considerations for this plan include optimizing large workflows,
**resource request optimization**, and the reuse of intermediate
results."  Users habitually over-request; the server maintains
historical usage profiles per container image and rewrites requests to
a safe quantile of observed usage, which lets more pods pack onto the
same cluster.

:class:`HistoricalProfiles` accumulates observed usage samples (fed by
completed runs or offline profiling); :class:`ResourceRightSizingPass`
is the IR pass that applies the recommendations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..k8s.resources import ResourceQuantity
from .graph import WorkflowIR
from .passes import IRPass


@dataclass
class _UsageSamples:
    cpu: List[float] = field(default_factory=list)
    memory: List[int] = field(default_factory=list)


def _quantile(values: List[float], q: float) -> float:
    if not values:
        raise ValueError("no samples")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass
class HistoricalProfiles:
    """Per-image observed resource usage, with quantile recommendations.

    ``headroom`` multiplies the recommended quantile so transient spikes
    do not evict the pod; ``min_samples`` guards against rewriting
    requests off a handful of observations.
    """

    quantile: float = 0.95
    headroom: float = 1.2
    min_samples: int = 5
    _samples: Dict[str, _UsageSamples] = field(default_factory=dict)

    def record(self, image: str, cpu_used: float, memory_used: int) -> None:
        """Ingest one observed usage sample for ``image``."""
        if cpu_used < 0 or memory_used < 0:
            raise ValueError("usage samples must be >= 0")
        bucket = self._samples.setdefault(image, _UsageSamples())
        bucket.cpu.append(cpu_used)
        bucket.memory.append(memory_used)

    def sample_count(self, image: str) -> int:
        bucket = self._samples.get(image)
        return len(bucket.cpu) if bucket else 0

    def recommendation(self, image: str) -> Optional[ResourceQuantity]:
        """Quantile-with-headroom request, or None without enough data."""
        bucket = self._samples.get(image)
        if bucket is None or len(bucket.cpu) < self.min_samples:
            return None
        return ResourceQuantity(
            cpu=_quantile(bucket.cpu, self.quantile) * self.headroom,
            memory=int(_quantile([float(m) for m in bucket.memory], self.quantile)
                       * self.headroom),
        )


class ResourceRightSizingPass(IRPass):
    """Shrink (never grow) over-provisioned requests from history.

    Only *reductions* are applied: if the historical recommendation is
    above the user's request, the user knew something the profile does
    not (a new workload shape), and their request stands.  GPU counts
    are never touched — they are allocation units, not rates.
    """

    name = "resource-rightsizing"

    def __init__(self, profiles: HistoricalProfiles) -> None:
        self.profiles = profiles
        #: (node name, old, new) rewrites from the latest run, for audit.
        self.rewrites: List[tuple] = []

    def run(self, ir: WorkflowIR) -> WorkflowIR:
        self.rewrites = []
        for node in ir.nodes.values():
            recommended = self.profiles.recommendation(node.image)
            if recommended is None:
                continue
            new_cpu = min(node.resources.cpu, recommended.cpu) or node.resources.cpu
            new_memory = (
                min(node.resources.memory, recommended.memory)
                or node.resources.memory
            )
            if (new_cpu, new_memory) == (node.resources.cpu, node.resources.memory):
                continue
            old = node.resources
            node.resources = ResourceQuantity(
                cpu=new_cpu, memory=new_memory, gpu=old.gpu
            )
            self.rewrites.append((node.name, old, node.resources))
        return ir
