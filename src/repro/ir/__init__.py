"""Workflow Intermediate Representation (paper Sec. II.C).

The engine-agnostic DAG every frontend lowers to and every backend
compiles from, plus the optimization pass framework.
"""

from .graph import WorkflowIR
from .nodes import (
    ArtifactDecl,
    ArtifactStorage,
    IRError,
    IRNode,
    OpKind,
    SimHint,
    validate_name,
)
from .passes import (
    DeadNodeEliminationPass,
    FinalizeArtifactsPass,
    IRPass,
    PassManager,
    ResourceDefaultsPass,
    ValidatePass,
)
from .rightsizing import HistoricalProfiles, ResourceRightSizingPass
from .serialize import ir_from_dict, ir_from_json, ir_to_dict, ir_to_json
from .visualize import to_dot

__all__ = [
    "ArtifactDecl",
    "ArtifactStorage",
    "DeadNodeEliminationPass",
    "FinalizeArtifactsPass",
    "HistoricalProfiles",
    "IRError",
    "IRNode",
    "IRPass",
    "OpKind",
    "PassManager",
    "ResourceDefaultsPass",
    "ResourceRightSizingPass",
    "SimHint",
    "ValidatePass",
    "WorkflowIR",
    "ir_from_dict",
    "ir_from_json",
    "ir_to_dict",
    "ir_to_json",
    "to_dot",
    "validate_name",
]
