"""Workflow visualization: IR -> Graphviz DOT.

The paper notes that the explicit DAG definition "helps data engineers
to debug a failed workflow more easily, and build a complicated workflow
with hundred nodes" — debugging hundred-node graphs needs a picture.
:func:`to_dot` renders any IR as DOT text; pass an execution record to
colour nodes by status (green Succeeded, red Failed, grey Skipped/
Cached, yellow Running), which is exactly the triage view an SRE wants.
"""

from __future__ import annotations

from typing import Optional

from ..engine.status import StepStatus, WorkflowRecord
from .graph import WorkflowIR

_STATUS_FILL = {
    StepStatus.SUCCEEDED: "#c8e6c9",  # green
    StepStatus.FAILED: "#ffcdd2",  # red
    StepStatus.RUNNING: "#fff9c4",  # yellow
    StepStatus.SKIPPED: "#e0e0e0",  # grey
    StepStatus.CACHED: "#b3e5fc",  # blue-grey (served from cache)
    StepStatus.PENDING: "#ffffff",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(
    ir: WorkflowIR,
    record: Optional[WorkflowRecord] = None,
    include_conditions: bool = True,
) -> str:
    """Render the workflow DAG as Graphviz DOT text.

    With ``record``, nodes are filled by execution status and labelled
    with attempts/errors — the failed-workflow triage view.
    """
    lines = [
        f'digraph "{_escape(ir.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fillcolor="#ffffff", '
        'fontname="Helvetica"];',
    ]
    for name in ir.topological_order():
        node = ir.nodes[name]
        label_parts = [name, node.image]
        attrs = []
        if record is not None and name in record.steps:
            step = record.steps[name]
            attrs.append(f'fillcolor="{_STATUS_FILL[step.status]}"')
            label_parts.append(step.status.value)
            if step.attempts > 1:
                label_parts.append(f"attempts={step.attempts}")
            if step.last_error:
                label_parts.append(step.last_error)
        if include_conditions and node.when:
            label_parts.append(f"when: {node.when}")
        label = _escape("\\n".join(label_parts))
        attr_text = (", " + ", ".join(attrs)) if attrs else ""
        lines.append(f'  "{_escape(name)}" [label="{label}"{attr_text}];')
    for parent, child in sorted(ir.edges):
        lines.append(f'  "{_escape(parent)}" -> "{_escape(child)}";')
    lines.append("}")
    return "\n".join(lines)
