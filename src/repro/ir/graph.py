"""The workflow Intermediate Representation: a DAG of IR nodes.

The IR is the paper's pivot: frontends lower to it, optimizers rewrite
it (Sec. II.C), and backends compile it to engine formats.  It is
deliberately free of engine-specific concepts — only nodes, dependency
edges, and artifact declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine.spec import ArtifactSpec, ExecutableStep, ExecutableWorkflow, FailureProfile
from .nodes import IRError, IRNode, validate_name


@dataclass
class WorkflowIR:
    """An engine-agnostic workflow DAG."""

    name: str = "workflow"
    nodes: Dict[str, IRNode] = field(default_factory=dict)
    #: Dependency edges as (parent, child) node-name pairs.
    edges: Set[Tuple[str, str]] = field(default_factory=set)
    #: Free-form engine configuration (paper: G = <J, E, C>).
    config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_name(self.name)

    # ------------------------------------------------------------- building

    def add_node(self, node: IRNode) -> IRNode:
        if node.name in self.nodes:
            raise IRError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        return node

    def add_edge(self, parent: str, child: str) -> None:
        if parent not in self.nodes:
            raise IRError(f"edge references unknown node {parent!r}")
        if child not in self.nodes:
            raise IRError(f"edge references unknown node {child!r}")
        if parent == child:
            raise IRError(f"self-edge on node {parent!r}")
        self.edges.add((parent, child))

    # -------------------------------------------------------------- queries

    def parents(self, name: str) -> List[str]:
        return sorted(p for p, c in self.edges if c == name)

    def children(self, name: str) -> List[str]:
        return sorted(c for p, c in self.edges if p == name)

    def roots(self) -> List[str]:
        have_parents = {c for _, c in self.edges}
        return sorted(n for n in self.nodes if n not in have_parents)

    def leaves(self) -> List[str]:
        have_children = {p for p, _ in self.edges}
        return sorted(n for n in self.nodes if n not in have_children)

    def __len__(self) -> int:
        return len(self.nodes)

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises :class:`IRError` on cycles."""
        indegree = {name: 0 for name in self.nodes}
        for _, child in self.edges:
            indegree[child] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in self.children(node):
                indegree[child] -= 1
                if indegree[child] == 0:
                    # Insert keeping 'ready' sorted for determinism.
                    lo, hi = 0, len(ready)
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if ready[mid] < child:
                            lo = mid + 1
                        else:
                            hi = mid
                    ready.insert(lo, child)
        if len(order) != len(self.nodes):
            raise IRError(f"workflow {self.name} contains a cycle")
        return order

    def validate(self) -> None:
        """Full structural validation: references, acyclicity, artifacts."""
        self.topological_order()
        producers: Dict[str, str] = {}
        for node in self.nodes.values():
            for artifact in node.outputs:
                uid = artifact.uid or f"{self.name}/{node.name}/{artifact.name}"
                if uid in producers:
                    raise IRError(
                        f"artifact uid {uid!r} produced by both "
                        f"{producers[uid]} and {node.name}"
                    )
                producers[uid] = node.name

    # --------------------------------------------------------- finalization

    def finalize_artifacts(self) -> None:
        """Assign uids to output artifacts that do not have one yet."""
        for node in self.nodes.values():
            node.outputs = [
                a if a.uid else a.with_uid(f"{self.name}/{node.name}/{a.name}")
                for a in node.outputs
            ]

    def subgraph(self, names: Iterable[str], name: Optional[str] = None) -> "WorkflowIR":
        """Induced subgraph over ``names`` (edges inside the set only)."""
        keep = set(names)
        unknown = keep - set(self.nodes)
        if unknown:
            raise IRError(f"subgraph references unknown nodes: {sorted(unknown)}")
        sub = WorkflowIR(name=name or f"{self.name}-sub", config=dict(self.config))
        for node_name in sorted(keep):
            sub.nodes[node_name] = self.nodes[node_name]
        sub.edges = {(p, c) for p, c in self.edges if p in keep and c in keep}
        return sub

    # ------------------------------------------------------------ lowering

    def to_executable(self) -> ExecutableWorkflow:
        """Direct lowering to the engine model (bypasses backends).

        Production lowering goes IR -> Argo manifest -> operator; this
        shortcut exists for tests and for optimizers that need to cost a
        candidate IR without a round trip.  Both paths must agree — an
        integration test pins that.
        """
        self.finalize_artifacts()
        self.validate()
        workflow = ExecutableWorkflow(name=self.name)
        for node_name in self.topological_order():
            node = self.nodes[node_name]
            workflow.add_step(
                ExecutableStep(
                    name=node.name,
                    duration_s=node.sim.duration_s,
                    requests=node.resources,
                    dependencies=self.parents(node.name),
                    inputs=[
                        ArtifactSpec(
                            uid=a.uid or f"external/{a.name}",
                            size_bytes=a.size_bytes,
                            kind=a.storage.value,
                        )
                        for a in node.inputs
                    ],
                    outputs=[
                        ArtifactSpec(
                            uid=a.uid or f"{self.name}/{node.name}/{a.name}",
                            size_bytes=a.size_bytes,
                            kind=a.storage.value,
                        )
                        for a in node.outputs
                    ],
                    failure=FailureProfile(
                        rate=node.sim.failure_rate, pattern=node.sim.failure_pattern
                    ),
                    uses_gpu=node.sim.uses_gpu,
                    retry_limit=node.retries,
                    when_expr=node.when,
                    result_options=tuple(node.sim.result_options),
                )
            )
        workflow.validate()
        return workflow

    # ------------------------------------------------------------- metrics

    def stats(self) -> dict:
        """Structural summary used by the optimizer and reports."""
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "roots": len(self.roots()),
            "leaves": len(self.leaves()),
            "max_width": self.max_parallel_width(),
            "critical_path_s": self.critical_path_seconds(),
        }

    def max_parallel_width(self) -> int:
        """Largest antichain by level (how many nodes share a depth)."""
        depth: Dict[str, int] = {}
        for node in self.topological_order():
            parent_depths = [depth[p] for p in self.parents(node)]
            depth[node] = (max(parent_depths) + 1) if parent_depths else 0
        if not depth:
            return 0
        counts: Dict[int, int] = {}
        for d in depth.values():
            counts[d] = counts.get(d, 0) + 1
        return max(counts.values())

    def critical_path_seconds(self) -> float:
        """Longest duration-weighted path (Eq. 1's T with infinite nodes)."""
        finish: Dict[str, float] = {}
        for node_name in self.topological_order():
            node = self.nodes[node_name]
            start = max((finish[p] for p in self.parents(node_name)), default=0.0)
            finish[node_name] = start + node.sim.duration_s
        return max(finish.values(), default=0.0)
