"""IR <-> plain-dict serialization.

The Couler server persists workflow metadata into a database for
automated management (paper Appendix B.B: failed workflows are fetched
back and restarted); this module provides the stable wire format for
that, plus JSON helpers.
"""

from __future__ import annotations

import json

from ..k8s.resources import ResourceQuantity
from .graph import WorkflowIR
from .nodes import ArtifactDecl, ArtifactStorage, IRNode, OpKind, SimHint

FORMAT_VERSION = 1


def artifact_to_dict(artifact: ArtifactDecl) -> dict:
    return {
        "name": artifact.name,
        "storage": artifact.storage.value,
        "path": artifact.path,
        "size_bytes": artifact.size_bytes,
        "is_global": artifact.is_global,
        "uid": artifact.uid,
    }


def artifact_from_dict(data: dict) -> ArtifactDecl:
    return ArtifactDecl(
        name=data["name"],
        storage=ArtifactStorage(data.get("storage", "parameter")),
        path=data.get("path"),
        size_bytes=int(data.get("size_bytes", 1024)),
        is_global=bool(data.get("is_global", False)),
        uid=data.get("uid"),
    )


def node_to_dict(node: IRNode) -> dict:
    return {
        "name": node.name,
        "op": node.op.value,
        "image": node.image,
        "command": list(node.command),
        "args": list(node.args),
        "source": node.source,
        "job_params": dict(node.job_params),
        # Raw numbers, not Kubernetes quantity strings: "3.00Gi"-style
        # rendering rounds to two decimals and sub-millicore CPUs
        # collapse to "0", so string forms don't round-trip.  parse()
        # accepts numerics exactly (and still reads old string payloads).
        "resources": {
            "cpu": node.resources.cpu,
            "memory": node.resources.memory,
            "gpu": node.resources.gpu,
        },
        "inputs": [artifact_to_dict(a) for a in node.inputs],
        "outputs": [artifact_to_dict(a) for a in node.outputs],
        "when": node.when,
        "retries": node.retries,
        "sim": {
            "duration_s": node.sim.duration_s,
            "failure_rate": node.sim.failure_rate,
            "failure_pattern": node.sim.failure_pattern,
            "uses_gpu": node.sim.uses_gpu,
            "result_options": list(node.sim.result_options),
        },
    }


def node_from_dict(data: dict) -> IRNode:
    sim = data.get("sim", {})
    return IRNode(
        name=data["name"],
        op=OpKind(data["op"]),
        image=data.get("image", "alpine:3.6"),
        command=list(data.get("command", [])),
        args=list(data.get("args", [])),
        source=data.get("source"),
        job_params=dict(data.get("job_params", {})),
        resources=ResourceQuantity.parse(data.get("resources", {})),
        inputs=[artifact_from_dict(a) for a in data.get("inputs", [])],
        outputs=[artifact_from_dict(a) for a in data.get("outputs", [])],
        when=data.get("when"),
        retries=data.get("retries"),
        sim=SimHint(
            duration_s=float(sim.get("duration_s", 60.0)),
            failure_rate=float(sim.get("failure_rate", 0.0)),
            failure_pattern=sim.get("failure_pattern", "PodCrashErr"),
            uses_gpu=bool(sim.get("uses_gpu", False)),
            result_options=tuple(sim.get("result_options", ())),
        ),
    )


def ir_to_dict(ir: WorkflowIR) -> dict:
    """Serialize a workflow IR to a stable plain-dict form."""
    return {
        "version": FORMAT_VERSION,
        "name": ir.name,
        "config": dict(ir.config),
        "nodes": [node_to_dict(ir.nodes[n]) for n in sorted(ir.nodes)],
        "edges": sorted([list(edge) for edge in ir.edges]),
    }


def ir_from_dict(data: dict) -> WorkflowIR:
    """Inverse of :func:`ir_to_dict`."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported IR format version: {version}")
    ir = WorkflowIR(name=data["name"], config=dict(data.get("config", {})))
    for node_data in data.get("nodes", []):
        ir.add_node(node_from_dict(node_data))
    for parent, child in data.get("edges", []):
        ir.add_edge(parent, child)
    return ir


def ir_to_json(ir: WorkflowIR, indent: int = 2) -> str:
    return json.dumps(ir_to_dict(ir), indent=indent, sort_keys=False)


def ir_from_json(text: str) -> WorkflowIR:
    return ir_from_dict(json.loads(text))
