"""IR node types.

Every frontend (Python DSL, NL pipeline, SQLFlow, GUI) lowers to these
nodes; every backend (Argo, Airflow, Tekton) compiles from them.  A node
is one schedulable unit of work — a container, a script-in-container, or
a distributed job — plus the declarations optimizers need: resource
requests, artifact I/O, an optional run condition, and simulation hints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..k8s.resources import ResourceQuantity


class IRError(ValueError):
    """Raised for malformed IR constructs."""


_NAME_RE = re.compile(r"^[a-zA-Z0-9]([a-zA-Z0-9._-]*[a-zA-Z0-9])?$")


def validate_name(name: str) -> str:
    """Step/workflow names must be DNS-label-ish (Kubernetes rules)."""
    if not _NAME_RE.match(name):
        raise IRError(f"invalid name {name!r}: must match {_NAME_RE.pattern}")
    return name


class OpKind(str, Enum):
    """What a node runs."""

    CONTAINER = "container"
    SCRIPT = "script"
    JOB = "job"


class ArtifactStorage(str, Enum):
    """Physical storage classes an artifact can be registered to
    (paper Table VI)."""

    PARAMETER = "parameter"
    HDFS = "hdfs"
    S3 = "s3"
    OSS = "oss"
    GCS = "gcs"
    GIT = "git"
    LOCAL = "local"


@dataclass(frozen=True)
class ArtifactDecl:
    """An artifact produced or consumed by a node.

    ``uid`` is filled when the IR is finalized
    (``<workflow>/<node>/<name>`` for outputs); inputs referencing
    another node's output share its uid.
    """

    name: str
    storage: ArtifactStorage = ArtifactStorage.PARAMETER
    path: Optional[str] = None
    size_bytes: int = 1024
    is_global: bool = False
    uid: Optional[str] = None

    def with_uid(self, uid: str) -> "ArtifactDecl":
        return ArtifactDecl(
            name=self.name,
            storage=self.storage,
            path=self.path,
            size_bytes=self.size_bytes,
            is_global=self.is_global,
            uid=uid,
        )


@dataclass(frozen=True)
class SimHint:
    """Simulation quantities attached to a node.

    The production system observes real durations; the simulator needs
    them declared.  These hints flow through backends as annotations and
    end up in :class:`repro.engine.spec.ExecutableStep`.

    ``result_options`` declares the possible values of the step's
    ``result`` output (e.g. ``("heads", "tails")`` for the coin flip);
    the engine draws one at completion, and downstream ``when``
    conditions evaluate against it — so conditional branches genuinely
    run or are Skipped in the simulation.
    """

    duration_s: float = 60.0
    failure_rate: float = 0.0
    failure_pattern: str = "PodCrashErr"
    uses_gpu: bool = False
    result_options: tuple = ()


@dataclass
class IRNode:
    """One unit of work in the workflow DAG."""

    name: str
    op: OpKind
    image: str = "alpine:3.6"
    command: List[str] = field(default_factory=list)
    args: List[str] = field(default_factory=list)
    #: Script source (OpKind.SCRIPT only).
    source: Optional[str] = None
    #: Distributed-job parameters (OpKind.JOB only), e.g. num_ps/num_workers.
    job_params: Dict[str, object] = field(default_factory=dict)
    resources: ResourceQuantity = field(default_factory=lambda: ResourceQuantity(cpu=1.0))
    inputs: List[ArtifactDecl] = field(default_factory=list)
    outputs: List[ArtifactDecl] = field(default_factory=list)
    #: Argo-style run condition, e.g. ``"{{flip.result}} == heads"``.
    when: Optional[str] = None
    #: Per-step retry limit (renders as Argo ``retryStrategy.limit``);
    #: None defers to the operator's global retry policy.
    retries: Optional[int] = None
    sim: SimHint = field(default_factory=SimHint)

    def __post_init__(self) -> None:
        validate_name(self.name)
        if self.op == OpKind.SCRIPT and self.source is None:
            raise IRError(f"script node {self.name} requires source")
        if self.op != OpKind.SCRIPT and self.source is not None:
            raise IRError(f"non-script node {self.name} cannot carry source")

    def output(self, name: str) -> ArtifactDecl:
        for artifact in self.outputs:
            if artifact.name == name:
                return artifact
        raise IRError(f"node {self.name} has no output named {name!r}")
