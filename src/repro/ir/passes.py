"""IR optimization pass framework.

The paper (Sec. II.D): "All optimizations adhere to a predefined
interface, incorporating their specific implementations."  That
interface is :class:`IRPass`; the Couler server composes passes into a
:class:`PassManager` and runs them over the IR before generating the
final workflow.  Passes here are workflow-shape transformations; the
big-workflow splitter (Algorithm 3) lives in ``repro.parallelism``
because it maps one IR to *several* and so has its own driver.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List

from ..k8s.resources import ResourceQuantity
from .graph import WorkflowIR


class IRPass(ABC):
    """One IR-to-IR rewrite with a stable name for reporting."""

    name: str = "abstract"

    @abstractmethod
    def run(self, ir: WorkflowIR) -> WorkflowIR:
        """Return the rewritten IR (may mutate and return the input)."""


class ValidatePass(IRPass):
    """Structural validation; always first and last in the pipeline."""

    name = "validate"

    def run(self, ir: WorkflowIR) -> WorkflowIR:
        ir.validate()
        return ir


class FinalizeArtifactsPass(IRPass):
    """Assign uids to declared output artifacts."""

    name = "finalize-artifacts"

    def run(self, ir: WorkflowIR) -> WorkflowIR:
        ir.finalize_artifacts()
        return ir


class ResourceDefaultsPass(IRPass):
    """Fill in missing resource requests with configured defaults.

    The paper's resource-request optimization fills requests from
    historical profiles; here the "profile" is a static default, which
    is enough to keep every pod schedulable in the simulator.
    """

    name = "resource-defaults"

    def __init__(self, default_cpu: float = 1.0, default_memory: int = 2**30) -> None:
        self.default_cpu = default_cpu
        self.default_memory = default_memory

    def run(self, ir: WorkflowIR) -> WorkflowIR:
        for node in ir.nodes.values():
            if node.resources.is_zero():
                node.resources = ResourceQuantity(
                    cpu=self.default_cpu, memory=self.default_memory
                )
            elif node.resources.memory == 0:
                node.resources = ResourceQuantity(
                    cpu=node.resources.cpu,
                    memory=self.default_memory,
                    gpu=node.resources.gpu,
                )
        return ir


class DeadNodeEliminationPass(IRPass):
    """Drop nodes that neither produce consumed artifacts nor sink edges.

    A node is live if it is a leaf of the DAG, has children, or produces
    an artifact some other node consumes.  Isolated, output-free nodes
    (typically left behind by frontend edits) are removed.
    """

    name = "dead-node-elimination"

    def run(self, ir: WorkflowIR) -> WorkflowIR:
        consumed = {
            a.uid
            for node in ir.nodes.values()
            for a in node.inputs
            if a.uid is not None
        }
        dead = []
        for name, node in ir.nodes.items():
            isolated = not ir.parents(name) and not ir.children(name)
            produces_consumed = any(a.uid in consumed for a in node.outputs if a.uid)
            if isolated and not produces_consumed and len(ir.nodes) > 1 and not node.outputs:
                dead.append(name)
        for name in dead:
            del ir.nodes[name]
        return ir


@dataclass
class PassManager:
    """Runs an ordered pipeline of IR passes, recording what ran."""

    passes: List[IRPass] = field(default_factory=list)
    history: List[str] = field(default_factory=list)

    @classmethod
    def default(cls) -> "PassManager":
        """The standard server-side pipeline."""
        return cls(
            passes=[
                ValidatePass(),
                ResourceDefaultsPass(),
                FinalizeArtifactsPass(),
                DeadNodeEliminationPass(),
                ValidatePass(),
            ]
        )

    def add(self, ir_pass: IRPass) -> "PassManager":
        self.passes.append(ir_pass)
        return self

    def run(self, ir: WorkflowIR) -> WorkflowIR:
        for ir_pass in self.passes:
            ir = ir_pass.run(ir)
            self.history.append(ir_pass.name)
        return ir
