"""Workflow generators (paper Sec. II.F): IR -> engine-native formats."""

from .airflow import AirflowBackend
from .argo import ArgoBackend
from .base import (
    Backend,
    BackendInfo,
    Submitter,
    available_backends,
    make_backend,
    register_backend,
    submission_record,
)
from .tekton import TektonBackend

__all__ = [
    "AirflowBackend",
    "ArgoBackend",
    "Backend",
    "BackendInfo",
    "Submitter",
    "TektonBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "submission_record",
]
