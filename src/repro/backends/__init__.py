"""Workflow generators (paper Sec. II.F): IR -> engine-native formats."""

from .airflow import AirflowBackend
from .argo import ArgoBackend
from .base import Backend, BackendInfo, available_backends, make_backend, register_backend
from .tekton import TektonBackend

__all__ = [
    "AirflowBackend",
    "ArgoBackend",
    "Backend",
    "BackendInfo",
    "TektonBackend",
    "available_backends",
    "make_backend",
    "register_backend",
]
