"""Tekton Pipelines backend: IR -> Tekton ``Pipeline``/``PipelineRun``.

Tekton models a workflow as a ``Pipeline`` of tasks with ``runAfter``
dependencies; each IR node becomes an inline task spec with a single
step.  Conditions compile to ``when`` expressions on the pipeline task.
"""

from __future__ import annotations

from typing import List

from ..ir.graph import WorkflowIR
from ..ir.nodes import IRNode, OpKind
from .base import Backend, BackendInfo, register_backend


def _task_for(node: IRNode) -> dict:
    step: dict = {"name": "main", "image": node.image}
    if node.op == OpKind.SCRIPT:
        step["script"] = node.source or ""
    else:
        if node.command:
            step["command"] = list(node.command)
        if node.args:
            step["args"] = [str(a) for a in node.args]
    requests = node.resources.to_dict()
    if requests:
        step["computeResources"] = {"requests": requests}
    task: dict = {
        "name": node.name,
        "taskSpec": {"steps": [step]},
    }
    if node.op == OpKind.JOB:
        task["taskSpec"]["description"] = f"distributed job: {node.job_params}"
    return task


@register_backend
class TektonBackend(Backend):
    """IR -> Tekton Pipeline + PipelineRun manifests."""

    info = BackendInfo(name="tekton", output_format="yaml", api_coverage=0.55)

    def compile(self, ir: WorkflowIR) -> dict:
        ir = self.prepare(ir)
        tasks: List[dict] = []
        for name in ir.topological_order():
            node = ir.nodes[name]
            task = _task_for(node)
            parents = ir.parents(name)
            if parents:
                task["runAfter"] = parents
            if node.when:
                task["when"] = [
                    {
                        "input": node.when.split(" ")[0],
                        "operator": "in",
                        "values": [node.when.split(" ")[-1]],
                    }
                ]
            tasks.append(task)
        pipeline = {
            "apiVersion": "tekton.dev/v1",
            "kind": "Pipeline",
            "metadata": {"name": ir.name},
            "spec": {"tasks": tasks},
        }
        run = {
            "apiVersion": "tekton.dev/v1",
            "kind": "PipelineRun",
            "metadata": {"name": f"{ir.name}-run"},
            "spec": {"pipelineRef": {"name": ir.name}},
        }
        return {"pipeline": pipeline, "pipelineRun": run}
