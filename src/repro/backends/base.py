"""Backend interface: compile IR to an engine-native workflow format.

The paper's workflow generator (Sec. II.F) converts the IR DAG into an
executable format per engine — YAML for Argo, Python DAG source for
Airflow, YAML for Tekton.  Each backend also reports its API coverage
relative to Couler's interface, the quantity the paper cites ("over 90%
of the Argo API, approximately 40–50% of the Airflow API").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Protocol, runtime_checkable

from ..ir.graph import WorkflowIR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.config import EngineConfig


@runtime_checkable
class Submitter(Protocol):
    """The one submission contract every execution frontend honours.

    ``submit(ir)`` takes a finalized :class:`WorkflowIR` and returns a
    *record-shaped* result: either a
    :class:`~repro.engine.status.WorkflowRecord` itself or an object
    exposing one as ``.record`` (service handles, code-generating
    submitter results).  ``couler.run(submitter=...)`` accepts anything
    conforming — the local single-tenant submitter, the Couler service
    facade, the event-driven admission pipeline, or the Airflow/Tekton
    generators — interchangeably.  Use :func:`submission_record` to
    normalize the result back to a record.

    ``config`` is the validated
    :class:`~repro.engine.config.EngineConfig` the frontend was built
    with — the v1 introspection point (``submitter.config.describe()``)
    that replaced the scattered per-feature attributes.  The protocol
    is ``runtime_checkable``, so conformance (including the ``config``
    data member) is what ``couler.run()`` checks before submitting.
    """

    #: The knob bundle this frontend honours.
    config: "EngineConfig"

    def submit(self, ir: WorkflowIR):  # pragma: no cover - protocol stub
        """Run (or hand off) the workflow; return a record-shaped result."""
        ...


def submission_record(result):
    """Extract the :class:`WorkflowRecord` from any Submitter result.

    Returns the result itself when it already is a record, its
    ``.record`` attribute when present (service handles, simulated
    code-generation previews), or ``None`` for generate-only
    submissions that never executed.
    """
    from ..engine.status import WorkflowRecord

    if isinstance(result, WorkflowRecord):
        return result
    return getattr(result, "record", None)


@dataclass(frozen=True)
class BackendInfo:
    """Static facts about a backend."""

    name: str
    output_format: str
    #: Fraction of the engine's native API surface Couler's unified
    #: interface can express through this backend.
    api_coverage: float


class Backend(ABC):
    """Compiles a validated :class:`WorkflowIR` into an engine format."""

    info: BackendInfo

    @abstractmethod
    def compile(self, ir: WorkflowIR) -> object:
        """Return the engine-native representation (dict or source str)."""

    def compile_to_text(self, ir: WorkflowIR) -> str:
        """Render the compiled form as text (YAML or source code)."""
        compiled = self.compile(ir)
        if isinstance(compiled, str):
            return compiled
        import yaml

        return yaml.safe_dump(compiled, sort_keys=False)

    def prepare(self, ir: WorkflowIR) -> WorkflowIR:
        """Finalize the IR before compilation (shared by all backends)."""
        ir.finalize_artifacts()
        ir.validate()
        return ir


_REGISTRY: Dict[str, type] = {}


def register_backend(cls: type) -> type:
    """Class decorator adding a backend to the registry."""
    _REGISTRY[cls.info.name] = cls
    return cls


def make_backend(name: str) -> Backend:
    """Instantiate a registered backend by name (argo/airflow/tekton)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> Dict[str, BackendInfo]:
    return {name: cls.info for name, cls in sorted(_REGISTRY.items())}
