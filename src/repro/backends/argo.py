"""Argo Workflows backend: IR -> Argo ``Workflow`` CRD manifest.

Produces the YAML-equivalent dict the simulated operator consumes
(``repro.engine.spec.parse_argo_manifest``): one container/script
template per IR node carrying the ``sim/step-profile`` annotation, plus
a DAG entrypoint template with tasks, dependencies and ``when`` clauses.
"""

from __future__ import annotations

import json
from typing import List

from ..engine.spec import SIM_ANNOTATION
from ..ir.graph import WorkflowIR
from ..ir.nodes import IRNode, OpKind
from .base import Backend, BackendInfo, register_backend


def _artifact_specs(node: IRNode, which: str) -> List[dict]:
    decls = node.inputs if which == "inputs" else node.outputs
    return [
        {
            "uid": a.uid or f"external/{a.name}",
            "size_bytes": a.size_bytes,
            "kind": a.storage.value,
        }
        for a in decls
    ]


def _template_for(node: IRNode) -> dict:
    """One Argo template per IR node."""
    profile = {
        "result_options": list(node.sim.result_options),
        "duration_s": node.sim.duration_s,
        "inputs": _artifact_specs(node, "inputs"),
        "outputs": _artifact_specs(node, "outputs"),
        "failure_rate": node.sim.failure_rate,
        "failure_pattern": node.sim.failure_pattern,
        "uses_gpu": node.sim.uses_gpu,
    }
    template: dict = {
        "name": node.name,
        "metadata": {"annotations": {SIM_ANNOTATION: json.dumps(profile, sort_keys=True)}},
    }
    if node.retries is not None:
        template["retryStrategy"] = {
            "limit": node.retries,
            "retryPolicy": "OnTransientError",
        }
    runtime: dict = {"image": node.image}
    requests = node.resources.to_dict()
    if requests:
        runtime["resources"] = {"requests": requests}
    if node.op == OpKind.SCRIPT:
        runtime["command"] = ["python"]
        runtime["source"] = node.source
        template["script"] = runtime
    else:
        if node.command:
            runtime["command"] = list(node.command)
        if node.args:
            runtime["args"] = list(node.args)
        if node.op == OpKind.JOB:
            # Distributed jobs render as a resource template in real
            # Argo; the simulator treats them as one fat container.
            template["metadata"]["annotations"]["sim/job-params"] = json.dumps(
                node.job_params, sort_keys=True
            )
        template["container"] = runtime
    outputs = [
        {
            "name": a.name,
            "parameter" if a.storage.value == "parameter" else "artifact": {
                "path": a.path or f"/tmp/{a.name}"
            },
        }
        for a in node.outputs
    ]
    if outputs:
        template["outputs"] = {"parameters": outputs}
    return template


@register_backend
class ArgoBackend(Backend):
    """IR -> Argo Workflow manifest (the paper's primary engine)."""

    info = BackendInfo(name="argo", output_format="yaml", api_coverage=0.90)

    def compile(self, ir: WorkflowIR) -> dict:
        ir = self.prepare(ir)
        tasks = []
        for name in ir.topological_order():
            node = ir.nodes[name]
            task: dict = {"name": name, "template": name}
            parents = ir.parents(name)
            if parents:
                task["dependencies"] = parents
            if node.when:
                task["when"] = node.when
            tasks.append(task)
        templates = [_template_for(ir.nodes[n]) for n in ir.topological_order()]
        templates.append({"name": "main", "dag": {"tasks": tasks}})
        return {
            "apiVersion": "argoproj.io/v1alpha1",
            "kind": "Workflow",
            "metadata": {"name": ir.name, "namespace": "default"},
            "spec": {"entrypoint": "main", "templates": templates},
        }
