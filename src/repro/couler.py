"""Stable v1 Couler API facade.

This module is the supported import surface for user code::

    from repro import couler

    couler.run_container(image="whalesay:latest", command=["cowsay"],
                         args=["hello"], step_name="A")
    record = couler.run(submitter=couler.ArgoSubmitter())

Everything listed in ``__all__`` here is covered by the v1 stability
contract: names are not removed or re-ordered, optional parameters on
the ``run_*`` step constructors are keyword-only so new options never
shift call sites, and any submitter conforming to the
:class:`~repro.backends.base.Submitter` protocol plugs into
:func:`run` interchangeably.

``repro.core`` remains as the historical import path and re-exports
the same names; new code should import :mod:`repro.couler`.

The caching surface (Algorithm 2) is part of v1 as of this release:
:class:`CacheManager` attaches automatic artifact caching to a run,
:class:`ScoreWeights` tunes the Eq. 6 importance factor, and custom
admission policies subclass :class:`CachePolicy` and implement
``decide(decision: CacheDecision)``.

The multi-tenant fairness surface is part of v1 as of this release:
``AdmissionSubmitter(fairness="drf", slo_class="serving")`` selects a
cross-tenant ordering policy (``strict-priority`` / ``weighted-fair`` /
``drf``) and an SLO lane for the submission; both are keyword-only with
back-compat defaults, so existing call sites behave bit-identically.
Custom policies subclass :class:`FairnessPolicy` and implement
``key(...)``; :class:`LaneConfig` describes custom SLO lanes.

The journal-backed engine is part of v1 as of this release, **opt-in
and default-off**: ``ArgoSubmitter(journaled=True)`` /
``AdmissionSubmitter(journaled=True)`` record every admission decision
and step event into a :class:`Journal`, from which a fresh engine
replica recovers by pure replay (``resume_from_journal``) —
:class:`ShardedOperatorFleet` is the multi-replica driver.  With
``journaled`` left off, nothing is journaled and execution is
bit-identical to previous releases.

The unified engine configuration is part of v1 as of this release:
every submitter accepts a keyword-only
``config=``\\ :class:`EngineConfig` bundle that consolidates the
per-feature kwargs (``journaled=``, ``fairness=``, ``slo_class=``, the
backpressure and preemption knobs) into one construction-time-validated
object, introspectable as ``submitter.config``.  The legacy kwargs
keep working through a once-per-process ``DeprecationWarning`` bridge
and are scheduled for removal in v2.  ``EngineConfig(engine="naive")``
selects the straight-line reference hot paths the ``engine_fast``
verify oracle diffs against; :func:`profile_run` (also
``python -m repro profile``) measures per-workflow engine cost under
either mode on a deterministic synthetic fleet.
"""

from .backends.base import Submitter, submission_record
from .caching import (
    CacheDecision,
    CacheManager,
    CachePolicy,
    ScoreWeights,
    make_policy,
)
from .core.api import (
    PENDING,
    StepOutput,
    bigger,
    bigger_equal,
    concurrent,
    dag,
    equal,
    exec_while,
    map,  # noqa: A004 - matches the paper's couler.map
    not_equal,
    run,
    run_container,
    run_job,
    run_script,
    set_dependencies,
    smaller,
    smaller_equal,
    when,
    workflow_ir,
)
from .core.artifacts import (
    create_gcs_artifact,
    create_git_artifact,
    create_hdfs_artifact,
    create_oss_artifact,
    create_parameter_artifact,
    create_s3_artifact,
)
from .control import AdaptationLog, AdaptationResult, Controller, PolicyConfig
from .core.conditions import Condition, OutputRef
from .core.context import WorkflowContext, get_context, reset_context, workflow
from .core.submitter import (
    AdmissionSubmitter,
    AirflowSubmitter,
    ArgoSubmitter,
    LocalSubmitter,
    SubmissionResult,
    TektonSubmitter,
    default_environment,
    default_multicluster,
)
from .engine.config import DEFAULT_CONFIG, EngineConfig
from .engine.fairness import (
    SLO_BATCH,
    SLO_SERVING,
    FairnessPolicy,
    LaneConfig,
    make_fairness_policy,
)
from .engine.journal import Journal, JournalRecord
from .engine.replicas import ShardedOperatorFleet
from .profiling import ProfileReport, profile_run

__all__ = [
    # submission contract
    "Submitter",
    "submission_record",
    # submitters
    "AdmissionSubmitter",
    "AirflowSubmitter",
    "ArgoSubmitter",
    "LocalSubmitter",
    "SubmissionResult",
    "TektonSubmitter",
    "default_environment",
    "default_multicluster",
    # step definition
    "PENDING",
    "StepOutput",
    "run_container",
    "run_job",
    "run_script",
    # control flow
    "concurrent",
    "exec_while",
    "map",
    "when",
    # explicit DAG structure
    "dag",
    "set_dependencies",
    # conditions
    "Condition",
    "OutputRef",
    "bigger",
    "bigger_equal",
    "equal",
    "not_equal",
    "smaller",
    "smaller_equal",
    # caching (Algorithm 2)
    "CacheDecision",
    "CacheManager",
    "CachePolicy",
    "ScoreWeights",
    "make_policy",
    # multi-tenant fairness & SLO lanes
    "FairnessPolicy",
    "LaneConfig",
    "SLO_BATCH",
    "SLO_SERVING",
    "make_fairness_policy",
    # unified engine configuration & profiling
    "DEFAULT_CONFIG",
    "EngineConfig",
    "ProfileReport",
    "profile_run",
    # adaptive policy control
    "AdaptationLog",
    "AdaptationResult",
    "Controller",
    "PolicyConfig",
    # journal-backed engine (opt-in via journaled=True)
    "Journal",
    "JournalRecord",
    "ShardedOperatorFleet",
    # artifacts
    "create_gcs_artifact",
    "create_git_artifact",
    "create_hdfs_artifact",
    "create_oss_artifact",
    "create_parameter_artifact",
    "create_s3_artifact",
    # workflow context & finalization
    "WorkflowContext",
    "get_context",
    "reset_context",
    "run",
    "workflow",
    "workflow_ir",
]
