"""Staged execution of a split workflow plan.

After Algorithm 3 splits a big workflow, the parts must run as if they
were still one DAG: a part starts only when every part it depends on
has succeeded.  :class:`StagedSubmitter` wires the parts onto one
operator with completion callbacks; the aggregate behaves like the
original workflow while every individual CRD stays within budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..backends.argo import ArgoBackend
from ..engine.operator import WorkflowOperator
from ..engine.status import WorkflowPhase, WorkflowRecord
from .splitter import SplitPlan


class StagedExecutionError(RuntimeError):
    """Raised when a part fails, aborting downstream parts."""


@dataclass
class StagedResult:
    """Aggregate outcome of a staged split execution."""

    plan: SplitPlan
    records: List[Optional[WorkflowRecord]] = field(default_factory=list)
    submit_time: float = 0.0
    finish_time: float = 0.0
    aborted_parts: List[int] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def succeeded(self) -> bool:
        return not self.aborted_parts and all(
            r is not None and r.phase == WorkflowPhase.SUCCEEDED for r in self.records
        )


class StagedSubmitter:
    """Submits split parts in dependency order on one operator."""

    def __init__(self, operator: WorkflowOperator, use_manifests: bool = True) -> None:
        self.operator = operator
        #: Compile each part through the Argo backend before submitting
        #: (exercising the CRD size check); False submits the IR directly.
        self.use_manifests = use_manifests
        self._backend = ArgoBackend()

    def execute(self, plan: SplitPlan) -> StagedResult:
        """Run the whole plan to completion; returns aggregate results."""
        result = StagedResult(plan=plan, records=[None] * plan.num_parts)
        result.submit_time = self.operator.clock.now

        remaining_deps: Dict[int, int] = {
            i: len(plan.part_dependencies(i)) for i in range(plan.num_parts)
        }
        dependents: Dict[int, List[int]] = {i: [] for i in range(plan.num_parts)}
        for src, dst in plan.cross_edges:
            dependents[src].append(dst)
        failed = {"flag": False}
        #: Step results accumulated across completed parts.  A ``when``
        #: guard may reference a step that landed in an upstream part;
        #: without forwarding these, such guards would see "never ran"
        #: and silently skip — diverging from monolithic execution.
        known_results: Dict[str, Optional[str]] = {}

        def submit_part(index: int) -> None:
            if failed["flag"]:
                result.aborted_parts.append(index)
                return
            part = plan.parts[index]

            def on_complete(record: WorkflowRecord) -> None:
                result.records[index] = record
                known_results.update(record.results)
                if record.phase != WorkflowPhase.SUCCEEDED:
                    failed["flag"] = True
                    return
                for dependent in sorted(dependents[index]):
                    remaining_deps[dependent] -= 1
                    if remaining_deps[dependent] == 0:
                        submit_part(dependent)

            if self.use_manifests:
                manifest = self._backend.compile(part)
                self.operator.submit_manifest(
                    manifest,
                    on_complete=on_complete,
                    initial_results=dict(known_results),
                )
            else:
                self.operator.submit(
                    part.to_executable(),
                    on_complete=on_complete,
                    initial_results=dict(known_results),
                )

        for index in range(plan.num_parts):
            if remaining_deps[index] == 0:
                submit_part(index)

        self.operator.run_to_completion()
        result.finish_time = self.operator.clock.now
        for index, record in enumerate(result.records):
            if record is None and index not in result.aborted_parts:
                result.aborted_parts.append(index)
        return result
