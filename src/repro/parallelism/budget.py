"""Workflow budget model (paper Sec. IV.B).

A workflow's *budget* decides whether it must be split:
``C = alpha + beta + gamma`` where alpha is the serialized CRD (YAML)
size, beta the number of steps, and gamma the number of pods.  The
production default — and this module's — is the YAML size with the
2 MB Kubernetes practical limit, plus a 200-step guard.

Exact YAML sizing requires compiling the IR through the Argo backend,
which is O(n) per query; the splitter instead uses a calibrated
per-node estimate (measured from real single-node compilations) and the
split plan is re-verified with exact sizes at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import yaml

from ..backends.argo import ArgoBackend
from ..ir.graph import WorkflowIR

#: The paper's practical CRD limit.
DEFAULT_MAX_YAML_BYTES = 2 * 1024 * 1024
#: The paper's step-count guard ("beta exceeds 200").
DEFAULT_MAX_STEPS = 200


@dataclass(frozen=True)
class BudgetCost:
    """Measured or estimated cost of a workflow (or node subset)."""

    yaml_bytes: int
    steps: int
    pods: int


@dataclass
class BudgetModel:
    """Budget thresholds plus cost estimation for the splitter."""

    max_yaml_bytes: int = DEFAULT_MAX_YAML_BYTES
    max_steps: int = DEFAULT_MAX_STEPS
    max_pods: Optional[int] = None
    #: Fixed manifest overhead (metadata, entrypoint template).
    base_bytes: int = 512
    _backend: ArgoBackend = field(default_factory=ArgoBackend, repr=False)

    # ------------------------------------------------------------- measuring

    def exact_cost(self, ir: WorkflowIR) -> BudgetCost:
        """Compile through the Argo backend and measure the real YAML."""
        manifest = self._backend.compile(ir)
        size = len(yaml.safe_dump(manifest, sort_keys=False).encode("utf-8"))
        steps = len(ir.nodes)
        pods = sum(
            max(1, int(n.job_params.get("num_ps", 0)) + int(n.job_params.get("num_workers", 0)))
            if n.job_params
            else 1
            for n in ir.nodes.values()
        )
        return BudgetCost(yaml_bytes=size, steps=steps, pods=pods)

    def estimate_node_bytes(self, ir: WorkflowIR, name: str) -> int:
        """Estimated YAML contribution of one node (template + task)."""
        single = ir.subgraph([name], name="probe")
        cost = self.exact_cost(single)
        return max(64, cost.yaml_bytes - self.base_bytes)

    #: YAML bytes one DAG-task dependency entry adds (``- parent-name``).
    edge_bytes: int = 48
    #: Safety factor on estimates so a part never lands over the limit.
    estimate_margin: float = 1.05

    def estimate_cost(self, ir: WorkflowIR, names: Iterable[str], node_bytes: dict) -> BudgetCost:
        """Cheap cost estimate for a node subset using cached sizes.

        Per-node sizes come from single-node compilations, which miss
        the ``dependencies`` entries of the DAG template — those are
        added per internal edge, with a safety margin on top.
        """
        names = list(names)
        name_set = set(names)
        internal_edges = sum(
            1 for parent, child in ir.edges if parent in name_set and child in name_set
        )
        size = int(
            (
                self.base_bytes
                + sum(node_bytes[n] for n in names)
                + self.edge_bytes * internal_edges
            )
            * self.estimate_margin
        )
        pods = 0
        for n in names:
            node = ir.nodes[n]
            if node.job_params:
                pods += max(
                    1,
                    int(node.job_params.get("num_ps", 0))
                    + int(node.job_params.get("num_workers", 0)),
                )
            else:
                pods += 1
        return BudgetCost(yaml_bytes=size, steps=len(names), pods=pods)

    # -------------------------------------------------------------- deciding

    def within(self, cost: BudgetCost) -> bool:
        if cost.yaml_bytes > self.max_yaml_bytes:
            return False
        if cost.steps > self.max_steps:
            return False
        if self.max_pods is not None and cost.pods > self.max_pods:
            return False
        return True

    def needs_split(self, ir: WorkflowIR) -> bool:
        """Does this workflow exceed the budget as a single CRD?"""
        return not self.within(self.exact_cost(ir))
