"""Big-workflow auto-parallelism: Algorithm 3.

Workflows with hundreds of nodes overflow the Kubernetes CRD size limit
(the API server rejects YAML past ~2 MB), so the optimizer splits the
DAG into multiple sub-workflows, each within budget, scheduled so that
cross-sub-workflow dependencies are honoured.

The algorithm walks the DAG depth-first and greedily packs vertices
into the current candidate sub-workflow until adding one more would
exceed the budget, then flushes the candidate and starts a new one —
exactly the paper's SplitWorkflow.  Packing happens along a *DFS-derived
topological order* (reverse postorder): any edge u -> v places u at or
before v's chunk, so the resulting sub-workflow dependency graph is
always acyclic and the runtime stays O(|V| + |E|).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..ir.graph import WorkflowIR
from .budget import BudgetCost, BudgetModel


class SplitError(RuntimeError):
    """Raised when a workflow cannot be split within the budget."""


@dataclass
class SplitPlan:
    """The output of the splitter: sub-workflows plus their wiring."""

    original_name: str
    parts: List[WorkflowIR] = field(default_factory=list)
    #: Which part each original node landed in.
    assignment: Dict[str, int] = field(default_factory=dict)
    #: Cross-part dependency edges as (from_part, to_part) indices.
    cross_edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: Original edges that now cross parts, as (parent, child) names.
    cut_edges: Set[Tuple[str, str]] = field(default_factory=set)
    costs: List[BudgetCost] = field(default_factory=list)

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    def part_dependencies(self, index: int) -> List[int]:
        return sorted({src for src, dst in self.cross_edges if dst == index})

    def topological_part_order(self) -> List[int]:
        indegree = {i: 0 for i in range(self.num_parts)}
        for _, dst in self.cross_edges:
            indegree[dst] += 1
        ready = sorted(i for i, d in indegree.items() if d == 0)
        order: List[int] = []
        while ready:
            part = ready.pop(0)
            order.append(part)
            for src, dst in sorted(self.cross_edges):
                if src == part:
                    indegree[dst] -= 1
                    if indegree[dst] == 0 and dst not in order and dst not in ready:
                        ready.append(dst)
            ready.sort()
        if len(order) != self.num_parts:
            raise SplitError("cyclic dependencies between split parts")
        return order


def _dfs_topological_order(ir: WorkflowIR) -> List[str]:
    """Reverse DFS postorder = a topological order, visiting roots in
    name order for determinism (iterative to handle deep graphs)."""
    visited: Set[str] = set()
    postorder: List[str] = []
    for root in ir.roots() or sorted(ir.nodes):
        if root in visited:
            continue
        stack: List[Tuple[str, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                postorder.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for child in reversed(ir.children(node)):
                if child not in visited:
                    stack.append((child, False))
    # Isolated nodes unreachable from roots (cannot happen in a DAG with
    # roots() = indegree-0 set, but keep the invariant explicit).
    for node in sorted(ir.nodes):
        if node not in visited:
            postorder.append(node)
    return list(reversed(postorder))


class WorkflowSplitter:
    """Algorithm 3 driver."""

    def __init__(self, budget: BudgetModel | None = None) -> None:
        self.budget = budget or BudgetModel()

    def split(self, ir: WorkflowIR) -> SplitPlan:
        """Split ``ir`` into budget-compliant sub-workflows.

        A workflow already within budget returns a single-part plan
        (the algorithm's early return at line 10–12).
        """
        ir.finalize_artifacts()
        ir.validate()
        plan = SplitPlan(original_name=ir.name)
        whole_cost = self.budget.exact_cost(ir)
        if self.budget.within(whole_cost):
            plan.parts = [ir]
            plan.assignment = {name: 0 for name in ir.nodes}
            plan.costs = [whole_cost]
            return plan

        node_bytes = {
            name: self.budget.estimate_node_bytes(ir, name) for name in ir.nodes
        }
        order = _dfs_topological_order(ir)

        # Self-calibration: per-node estimates from single-node compiles
        # miss structure shared across templates; scale them against an
        # exact compile of one sample chunk so estimates track reality.
        sample = order[: min(50, len(order))]
        estimated = self.budget.estimate_cost(ir, sample, node_bytes)
        actual = self.budget.exact_cost(ir.subgraph(sample, name="calibration"))
        if estimated.yaml_bytes > 0 and actual.yaml_bytes > estimated.yaml_bytes:
            scale = actual.yaml_bytes / estimated.yaml_bytes
            node_bytes = {name: int(size * scale) + 1 for name, size in node_bytes.items()}

        oversized = [
            name
            for name, size in node_bytes.items()
            if size + self.budget.base_bytes > self.budget.max_yaml_bytes
        ]
        if oversized:
            raise SplitError(
                f"nodes exceed the budget even alone: {sorted(oversized)}"
            )
        chunks: List[List[str]] = []
        candidate: List[str] = []
        for vertex in order:
            trial = candidate + [vertex]
            cost = self.budget.estimate_cost(ir, trial, node_bytes)
            if candidate and not self.budget.within(cost):
                chunks.append(candidate)
                candidate = [vertex]
            else:
                candidate = trial
        if candidate:
            chunks.append(candidate)

        # Exact verification with halving fallback: any chunk whose real
        # compiled size still exceeds the budget is split in two along
        # the same order (the estimate is conservative, so this is rare
        # and terminates: a single node always fits per the check above).
        verified: List[List[str]] = []
        pending = list(chunks)
        while pending:
            chunk = pending.pop(0)
            cost = self.budget.exact_cost(ir.subgraph(chunk, name="verify"))
            if self.budget.within(cost) or len(chunk) == 1:
                verified.append(chunk)
            else:
                middle = len(chunk) // 2
                pending.insert(0, chunk[middle:])
                pending.insert(0, chunk[:middle])
        chunks = verified

        for index, chunk in enumerate(chunks):
            part = ir.subgraph(chunk, name=f"{ir.name}-part-{index}")
            plan.parts.append(part)
            for name in chunk:
                plan.assignment[name] = index

        for parent, child in ir.edges:
            src, dst = plan.assignment[parent], plan.assignment[child]
            if src != dst:
                plan.cross_edges.add((src, dst))
                plan.cut_edges.add((parent, child))

        plan.costs = [self.budget.exact_cost(part) for part in plan.parts]
        for index, cost in enumerate(plan.costs):
            if not self.budget.within(cost):
                raise SplitError(
                    f"part {index} still exceeds the budget after split: {cost}"
                )
        plan.topological_part_order()  # raises on cyclic part graph
        self._check_partition(ir, plan)
        return plan

    @staticmethod
    def _check_partition(ir: WorkflowIR, plan: SplitPlan) -> None:
        part_nodes = [set(p.nodes) for p in plan.parts]
        union: Set[str] = set()
        for nodes in part_nodes:
            overlap = union & nodes
            if overlap:
                raise SplitError(f"nodes assigned to multiple parts: {sorted(overlap)}")
            union |= nodes
        if union != set(ir.nodes):
            missing = set(ir.nodes) - union
            raise SplitError(f"nodes missing from the split: {sorted(missing)}")
        kept = set()
        for part in plan.parts:
            kept |= part.edges
        if kept | plan.cut_edges != ir.edges:
            raise SplitError("split dropped dependency edges")
