"""Big-workflow auto-parallelism (paper Sec. IV.B, Algorithm 3)."""

from .budget import (
    BudgetCost,
    BudgetModel,
    DEFAULT_MAX_STEPS,
    DEFAULT_MAX_YAML_BYTES,
)
from .splitter import SplitError, SplitPlan, WorkflowSplitter
from .stitch import StagedExecutionError, StagedResult, StagedSubmitter

__all__ = [
    "BudgetCost",
    "BudgetModel",
    "DEFAULT_MAX_STEPS",
    "DEFAULT_MAX_YAML_BYTES",
    "SplitError",
    "SplitPlan",
    "StagedExecutionError",
    "StagedResult",
    "StagedSubmitter",
    "WorkflowSplitter",
]
