"""Workflow-building context for the unified programming interface.

Couler's DSL is imperative: module-level calls like
``couler.run_container(...)`` accumulate into an implicit "current
workflow", exactly as in the paper's code listings.  This module holds
that mutable builder state — the IR under construction, the implicit
sequential chain, parallel-group and condition scopes — and the
accessors the API functions use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.graph import WorkflowIR


@dataclass
class WorkflowContext:
    """Mutable state while a workflow definition is being executed."""

    ir: WorkflowIR = field(default_factory=lambda: WorkflowIR(name="couler-workflow"))
    #: Tail of the implicit sequential chain: the steps a newly defined
    #: step depends on when no explicit dependency is given.
    last_steps: List[str] = field(default_factory=list)
    #: True once dag()/set_dependencies() is used: implicit chaining off.
    explicit_mode: bool = False
    #: Inside dag(), run_* calls with an existing step_name return the
    #: existing node instead of erroring (Code 1 re-mentions job "A").
    reuse_existing: bool = False
    #: Condition scopes opened by when(); innermost last.
    condition_stack: List[str] = field(default_factory=list)
    #: Steps the active condition's predicate references (dependencies).
    condition_sources: List[List[str]] = field(default_factory=list)
    #: Per-basename counters for automatic step-name uniquification.
    name_counters: Dict[str, int] = field(default_factory=dict)
    #: Name of the step most recently created or reused (dag() wiring).
    last_touched: Optional[str] = None

    def unique_name(self, base: str) -> str:
        """Return ``base`` or ``base-<n>`` so node names stay unique."""
        if base not in self.ir.nodes and base not in self.name_counters:
            self.name_counters[base] = 1
            return base
        count = self.name_counters.get(base, 1) + 1
        self.name_counters[base] = count
        candidate = f"{base}-{count}"
        while candidate in self.ir.nodes:
            count += 1
            self.name_counters[base] = count
            candidate = f"{base}-{count}"
        return candidate


_LOCAL = threading.local()


def get_context() -> WorkflowContext:
    """The current thread's workflow context (created on first use)."""
    ctx = getattr(_LOCAL, "ctx", None)
    if ctx is None:
        ctx = WorkflowContext()
        _LOCAL.ctx = ctx
    return ctx


def reset_context(name: Optional[str] = None) -> WorkflowContext:
    """Start a fresh workflow definition; returns the new context."""
    ctx = WorkflowContext()
    if name is not None:
        ctx.ir.name = name
    _LOCAL.ctx = ctx
    return ctx


class workflow:
    """Context manager scoping one workflow definition.

    >>> with workflow("my-flow"):
    ...     couler.run_container(image="alpine", step_name="hello")
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._ctx: Optional[WorkflowContext] = None

    def __enter__(self) -> WorkflowContext:
        self._ctx = reset_context(self.name)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        # Leave the context in place: couler.run() consumes it.
        return None
