"""The Couler unified programming interface (paper Sec. II.B, Appendix A).

Use this package the way the paper's listings use the ``couler``
module::

    from repro import core as couler

    def job(name):
        couler.run_container(image="whalesay:latest", command=["cowsay"],
                             args=[name], step_name=name)

    couler.dag([
        [lambda: job("A")],
        [lambda: job("A"), lambda: job("B")],   # A -> B
    ])
    record = couler.run(submitter=couler.ArgoSubmitter())
"""

from .api import (
    PENDING,
    StepOutput,
    bigger,
    bigger_equal,
    concurrent,
    dag,
    equal,
    exec_while,
    map,  # noqa: A004 - matches the paper's couler.map
    not_equal,
    run,
    run_container,
    run_job,
    run_script,
    set_dependencies,
    smaller,
    smaller_equal,
    when,
    workflow_ir,
)
from .artifacts import (
    create_gcs_artifact,
    create_git_artifact,
    create_hdfs_artifact,
    create_oss_artifact,
    create_parameter_artifact,
    create_s3_artifact,
)
from .conditions import Condition, OutputRef
from .context import WorkflowContext, get_context, reset_context, workflow
from .submitter import (
    AirflowSubmitter,
    ArgoSubmitter,
    LocalSubmitter,
    SubmissionResult,
    TektonSubmitter,
    default_environment,
)

__all__ = [
    "AirflowSubmitter",
    "ArgoSubmitter",
    "Condition",
    "LocalSubmitter",
    "OutputRef",
    "PENDING",
    "StepOutput",
    "SubmissionResult",
    "TektonSubmitter",
    "WorkflowContext",
    "bigger",
    "bigger_equal",
    "concurrent",
    "create_gcs_artifact",
    "create_git_artifact",
    "create_hdfs_artifact",
    "create_oss_artifact",
    "create_parameter_artifact",
    "create_s3_artifact",
    "dag",
    "default_environment",
    "equal",
    "exec_while",
    "get_context",
    "map",
    "not_equal",
    "reset_context",
    "run",
    "run_container",
    "run_job",
    "run_script",
    "set_dependencies",
    "smaller",
    "smaller_equal",
    "when",
    "workflow",
    "workflow_ir",
]
