"""The Couler unified programming interface (paper Sec. II.B, Appendix A).

Prefer the stable v1 facade :mod:`repro.couler` for new code; this
package remains the implementation home and re-exports the same
surface for backward compatibility.

Use this package the way the paper's listings use the ``couler``
module::

    from repro import couler

    def job(name):
        couler.run_container(image="whalesay:latest", command=["cowsay"],
                             args=[name], step_name=name)

    couler.dag([
        [lambda: job("A")],
        [lambda: job("A"), lambda: job("B")],   # A -> B
    ])
    record = couler.run(submitter=couler.ArgoSubmitter())
"""

from .api import (
    PENDING,
    StepOutput,
    bigger,
    bigger_equal,
    concurrent,
    dag,
    equal,
    exec_while,
    map,  # noqa: A004 - matches the paper's couler.map
    not_equal,
    run,
    run_container,
    run_job,
    run_script,
    set_dependencies,
    smaller,
    smaller_equal,
    when,
    workflow_ir,
)
from .artifacts import (
    create_gcs_artifact,
    create_git_artifact,
    create_hdfs_artifact,
    create_oss_artifact,
    create_parameter_artifact,
    create_s3_artifact,
)
from .conditions import Condition, OutputRef
from .context import WorkflowContext, get_context, reset_context, workflow
from .submitter import (
    AdmissionSubmitter,
    AirflowSubmitter,
    ArgoSubmitter,
    LocalSubmitter,
    SubmissionResult,
    TektonSubmitter,
    default_environment,
    default_multicluster,
)

__all__ = [
    "AdmissionSubmitter",
    "AirflowSubmitter",
    "ArgoSubmitter",
    "Condition",
    "LocalSubmitter",
    "OutputRef",
    "PENDING",
    "StepOutput",
    "SubmissionResult",
    "TektonSubmitter",
    "WorkflowContext",
    "bigger",
    "bigger_equal",
    "concurrent",
    "create_gcs_artifact",
    "create_git_artifact",
    "create_hdfs_artifact",
    "create_oss_artifact",
    "create_parameter_artifact",
    "create_s3_artifact",
    "dag",
    "default_environment",
    "default_multicluster",
    "equal",
    "exec_while",
    "get_context",
    "map",
    "not_equal",
    "reset_context",
    "run",
    "run_container",
    "run_job",
    "run_script",
    "set_dependencies",
    "smaller",
    "smaller_equal",
    "when",
    "workflow",
    "workflow_ir",
]
