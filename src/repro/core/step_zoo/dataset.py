"""Training dataset descriptor used by step-zoo estimators (paper Code 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...ir.nodes import ArtifactDecl, ArtifactStorage


@dataclass
class Dataset:
    """A table-backed training dataset.

    Mirrors the paper's ``Dataset(table_name=..., feature_cols=...,
    label_col=...)`` constructor from the AutoML listing.
    """

    table_name: str
    feature_cols: str = "*"
    label_col: Optional[str] = None
    #: Approximate on-storage size; drives simulated read times.
    size_bytes: int = 256 * 2**20

    def feature_list(self) -> List[str]:
        return [c.strip() for c in self.feature_cols.split(",") if c.strip()]

    def as_input_artifact(self) -> ArtifactDecl:
        """Declare the table as an external input artifact."""
        return ArtifactDecl(
            name=f"table-{self.table_name}",
            storage=ArtifactStorage.OSS,
            path=f"odps://{self.table_name}",
            size_bytes=self.size_bytes,
            uid=f"external/table/{self.table_name}",
        )
