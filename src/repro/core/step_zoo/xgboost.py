"""XGBoost training step (paper Code 7)."""

from __future__ import annotations

from typing import Optional

from ...ir.nodes import ArtifactDecl, ArtifactStorage, SimHint
from ...k8s.resources import ResourceQuantity
from .. import api
from .dataset import Dataset


def train(
    datasource: Dataset,
    model_params: Optional[dict] = None,
    train_params: Optional[dict] = None,
    image: str = "xgboost-image",
    step_name: str = "xgboost-train",
    sim: Optional[SimHint] = None,
) -> api.StepOutput:
    """Train an XGBoost model over a table-backed dataset.

    Mirrors ``xgboost.train(datasource=..., model_params=...,
    train_params=..., image=...)`` from the AutoML listing.
    """
    model_params = dict(model_params or {"objective": "binary:logistic"})
    train_params = dict(train_params or {"num_boost_round": 10, "max_depth": 5})
    model = ArtifactDecl(
        name="model",
        storage=ArtifactStorage.OSS,
        path=f"/models/{step_name}",
        size_bytes=64 * 2**20,
    )
    args = [
        f"--table={datasource.table_name}",
        f"--features={datasource.feature_cols}",
        f"--label={datasource.label_col}",
    ]
    args += [f"--{k}={v}" for k, v in sorted(model_params.items())]
    args += [f"--{k}={v}" for k, v in sorted(train_params.items())]
    return api.run_container(
        image=image,
        command=["python", "train_xgboost.py"],
        args=args,
        step_name=step_name,
        resources=ResourceQuantity(cpu=4.0, memory=8 * 2**30),
        input=datasource.as_input_artifact(),
        output=model,
        sim=sim or SimHint(duration_s=300.0),
    )
