"""TensorFlow distributed-training steps (paper Code 6).

``tf.train(num_ps=1, num_workers=1, command=..., image=...,
input_batch_size=...)`` starts a parameter-server training job as one
workflow step.
"""

from __future__ import annotations

from typing import Optional

from ...ir.nodes import ArtifactDecl, ArtifactStorage, SimHint
from ...k8s.resources import ResourceQuantity
from .. import api


def train(
    command: str,
    image: str,
    num_ps: int = 1,
    num_workers: int = 1,
    input_batch_size: int = 128,
    step_name: Optional[str] = None,
    resources: Optional[ResourceQuantity] = None,
    model_size_bytes: int = 256 * 2**20,
    sim: Optional[SimHint] = None,
) -> api.StepOutput:
    """Start a distributed TensorFlow training job.

    Returns a :class:`~repro.core.api.StepOutput` whose artifact is the
    trained model checkpoint; downstream evaluation steps consume it.
    """
    name = step_name or f"tf-train-bs{input_batch_size}"
    model = ArtifactDecl(
        name="model",
        storage=ArtifactStorage.OSS,
        path=f"/models/{name}",
        size_bytes=model_size_bytes,
    )
    return api.run_job(
        image=image,
        command=command,
        kind="TFJob",
        num_ps=num_ps,
        num_workers=num_workers,
        step_name=name,
        resources=resources or ResourceQuantity(cpu=4.0, memory=8 * 2**30),
        output=model,
        sim=sim or SimHint(duration_s=600.0, uses_gpu=False),
    )


def evaluate(
    model: api.StepOutput,
    image: str = "model-evaluation:v1",
    step_name: Optional[str] = None,
    sim: Optional[SimHint] = None,
) -> api.StepOutput:
    """Evaluate a trained model produced by :func:`train`."""
    return api.run_container(
        image=image,
        command=["python", "model_eval.py"],
        args=[model],
        step_name=step_name or f"eval-{model.step_name}",
        input=model,
        sim=sim or SimHint(duration_s=120.0),
    )
