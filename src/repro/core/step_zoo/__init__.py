"""The step zoo: reusable training/evaluation steps (paper Appendix A/E).

Pre-packaged steps wrapping the unified interface, mirroring the
``couler.steps.tensorflow`` idiom of Code 6 and the estimator style of
Code 7 (XGBoost / LightGBM).  The GUI's "model zoo" (Appendix B.D) maps
onto these same steps.
"""

from . import lightgbm, pytorch, tensorflow, xgboost
from .dataset import Dataset

__all__ = ["Dataset", "lightgbm", "pytorch", "tensorflow", "xgboost"]
