"""PyTorch distributed-training step.

Not shown in the paper's listings but part of the production step zoo
(ViT / nanoGPT scenarios in the evaluation train PyTorch models).
"""

from __future__ import annotations

from typing import Optional

from ...ir.nodes import ArtifactDecl, ArtifactStorage, SimHint
from ...k8s.resources import ResourceQuantity
from .. import api


def train(
    command: str,
    image: str,
    num_workers: int = 1,
    step_name: Optional[str] = None,
    resources: Optional[ResourceQuantity] = None,
    model_size_bytes: int = 512 * 2**20,
    uses_gpu: bool = True,
    sim: Optional[SimHint] = None,
) -> api.StepOutput:
    """Start a distributed PyTorch (DDP-style) training job."""
    name = step_name or "pytorch-train"
    model = ArtifactDecl(
        name="model",
        storage=ArtifactStorage.OSS,
        path=f"/models/{name}",
        size_bytes=model_size_bytes,
    )
    per_worker = resources or ResourceQuantity(
        cpu=4.0, memory=16 * 2**30, gpu=1 if uses_gpu else 0
    )
    return api.run_job(
        image=image,
        command=command,
        kind="PyTorchJob",
        num_ps=0,
        num_workers=num_workers,
        step_name=name,
        resources=per_worker,
        output=model,
        sim=sim or SimHint(duration_s=900.0, uses_gpu=uses_gpu),
    )
