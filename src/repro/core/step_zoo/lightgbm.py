"""LightGBM estimator step (paper Code 7)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...ir.nodes import ArtifactDecl, ArtifactStorage, SimHint
from ...k8s.resources import ResourceQuantity
from .. import api
from .dataset import Dataset


@dataclass
class LightGBMEstimator:
    """Estimator-style wrapper: configure, then ``fit(dataset)``.

    Mirrors the paper's ``LightGBMEstimator`` usage:
    ``lgb.set_hyperparameters(num_leaves=63); lgb.fit(train_data)``.
    """

    image: str = "lightgbm-image"
    model_path: str = "lightgbm_model"
    hyperparameters: dict = field(default_factory=dict)
    step_name: str = "lightgbm-train"
    sim: Optional[SimHint] = None

    def set_hyperparameters(self, **params) -> "LightGBMEstimator":
        self.hyperparameters.update(params)
        return self

    def fit(self, datasource: Dataset) -> api.StepOutput:
        model = ArtifactDecl(
            name="model",
            storage=ArtifactStorage.OSS,
            path=self.model_path,
            size_bytes=32 * 2**20,
        )
        args = [
            f"--table={datasource.table_name}",
            f"--features={datasource.feature_cols}",
            f"--label={datasource.label_col}",
        ]
        args += [f"--{k}={v}" for k, v in sorted(self.hyperparameters.items())]
        return api.run_container(
            image=self.image,
            command=["python", "train_lightgbm.py"],
            args=args,
            step_name=self.step_name,
            resources=ResourceQuantity(cpu=4.0, memory=8 * 2**30),
            input=datasource.as_input_artifact(),
            output=model,
            sim=self.sim or SimHint(duration_s=240.0),
        )
