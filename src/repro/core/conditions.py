"""Condition expressions for workflow control flow (``couler.when``).

A condition compares a step's output against a value (or another
output) and renders to the Argo-style expression string the backends
emit, e.g. ``"{{flip-coin.result}} == heads"`` (Code 3 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union


@dataclass(frozen=True)
class OutputRef:
    """A reference to a step's result/output used inside conditions."""

    step_name: str
    output_name: str = "result"

    def render(self) -> str:
        return f"{{{{{self.step_name}.{self.output_name}}}}}"


Operand = Union[OutputRef, str, int, float]


def _render_operand(value: Operand) -> str:
    if isinstance(value, OutputRef):
        return value.render()
    return str(value)


def _source_steps(*operands: Operand) -> List[str]:
    return [op.step_name for op in operands if isinstance(op, OutputRef)]


@dataclass(frozen=True)
class Condition:
    """A binary comparison between two operands."""

    left: Operand
    operator: str
    right: Operand

    def render(self) -> str:
        return f"{_render_operand(self.left)} {self.operator} {_render_operand(self.right)}"

    def source_steps(self) -> List[str]:
        """Steps whose outputs this condition reads (become dependencies)."""
        return _source_steps(self.left, self.right)

    def __str__(self) -> str:
        return self.render()


def equal(left: Operand, right: Operand) -> Condition:
    """``couler.equal(result, "heads")``."""
    return Condition(left, "==", right)


def not_equal(left: Operand, right: Operand) -> Condition:
    return Condition(left, "!=", right)


def bigger(left: Operand, right: Operand) -> Condition:
    return Condition(left, ">", right)


def smaller(left: Operand, right: Operand) -> Condition:
    return Condition(left, "<", right)


def bigger_equal(left: Operand, right: Operand) -> Condition:
    return Condition(left, ">=", right)


def smaller_equal(left: Operand, right: Operand) -> Condition:
    return Condition(left, "<=", right)
