"""User-facing artifact constructors (paper Table VI).

Couler registers artifacts against different physical storage classes
(parameter, HDFS, S3, OSS, GCS, Git).  Each constructor returns an
:class:`~repro.ir.nodes.ArtifactDecl` that steps can declare as output
(``output=...``) or input, and that :func:`create_parameter_artifact`
style code can interpolate into container args via ``.path``.
"""

from __future__ import annotations

from typing import Optional

from ..ir.nodes import ArtifactDecl, ArtifactStorage


def _make(
    name: str,
    storage: ArtifactStorage,
    path: Optional[str],
    size_bytes: int,
    is_global: bool,
) -> ArtifactDecl:
    return ArtifactDecl(
        name=name,
        storage=storage,
        path=path,
        size_bytes=size_bytes,
        is_global=is_global,
    )


def create_parameter_artifact(
    path: str,
    name: str = "output",
    is_global: bool = False,
    size_bytes: int = 1024,
) -> ArtifactDecl:
    """A small parameter passed between steps (paper Code 2)."""
    return _make(name, ArtifactStorage.PARAMETER, path, size_bytes, is_global)


def create_hdfs_artifact(
    path: str, name: str = "hdfs-artifact", size_bytes: int = 2**20, is_global: bool = False
) -> ArtifactDecl:
    """An artifact stored on HDFS."""
    return _make(name, ArtifactStorage.HDFS, path, size_bytes, is_global)


def create_s3_artifact(
    path: str, name: str = "s3-artifact", size_bytes: int = 2**20, is_global: bool = False
) -> ArtifactDecl:
    """An artifact stored on Amazon S3."""
    return _make(name, ArtifactStorage.S3, path, size_bytes, is_global)


def create_oss_artifact(
    path: str, name: str = "oss-artifact", size_bytes: int = 2**20, is_global: bool = False
) -> ArtifactDecl:
    """An artifact stored on Alibaba OSS."""
    return _make(name, ArtifactStorage.OSS, path, size_bytes, is_global)


def create_gcs_artifact(
    path: str, name: str = "gcs-artifact", size_bytes: int = 2**20, is_global: bool = False
) -> ArtifactDecl:
    """An artifact stored on Google GCS."""
    return _make(name, ArtifactStorage.GCS, path, size_bytes, is_global)


def create_git_artifact(
    repo: str, revision: str = "main", name: str = "git-artifact", size_bytes: int = 2**20
) -> ArtifactDecl:
    """A Git checkout artifact; ``path`` holds ``repo@revision``."""
    return _make(name, ArtifactStorage.GIT, f"{repo}@{revision}", size_bytes, False)
