"""The unified programming interface (paper Table V).

This module is the public Couler DSL.  It mirrors the paper's API
surface and listing semantics:

====================  =====================================================
``run_script()``      Run a script in a pod
``run_container()``   Start a container
``run_job()``         Start a distributed (e.g. TensorFlow) job
``when()``            Conditional execution
``map()``             Start multiple instances of one job
``concurrent()``      Run multiple jobs at the same time
``exec_while()``      Run a function until a condition is met
``dag()``             Explicit DAG definition (paper Code 1 / Code 4)
``set_dependencies``  Explicit dependencies by step name
``run()``             Optimize + submit via a Submitter
====================  =====================================================

Steps defined without explicit structure chain sequentially (implicit
mode, preferred by data scientists per Appendix A); ``dag()`` and
``set_dependencies()`` switch the definition to explicit mode.
"""

from __future__ import annotations

import inspect
import re
import textwrap
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Union

from ..ir.graph import WorkflowIR
from ..ir.nodes import ArtifactDecl, ArtifactStorage, IRNode, OpKind, SimHint
from ..ir.passes import PassManager
from ..k8s.resources import ResourceQuantity
from . import conditions as _cond
from .conditions import Condition, OutputRef
from .context import WorkflowContext, get_context, reset_context, workflow  # noqa: F401

#: Placeholder operand used by one-argument ``equal`` inside exec_while.
PENDING = OutputRef("__pending__", "result")


@dataclass(frozen=True)
class StepOutput:
    """Handle to a defined step, returned by every ``run_*`` call.

    Passing a :class:`StepOutput` as another step's ``input`` (or inside
    its ``args``) creates a dependency edge, mirroring the
    producer/consumer listing in paper Code 2.
    """

    step_name: str
    artifact: Optional[ArtifactDecl] = None

    @property
    def path(self) -> Optional[str]:
        return self.artifact.path if self.artifact else None

    def ref(self, output_name: str = "result") -> OutputRef:
        return OutputRef(self.step_name, output_name)


InputLike = Union[StepOutput, ArtifactDecl]
ArgLike = Union[str, int, float, StepOutput, OutputRef, ArtifactDecl]


def _sanitize(base: str) -> str:
    base = base.split("/")[-1].split(":")[0]
    base = re.sub(r"[^a-zA-Z0-9.-]+", "-", base).strip("-.")
    return base or "step"


def _as_operand(value):
    if isinstance(value, StepOutput):
        return value.ref()
    return value


# ---------------------------------------------------------------- conditions


def equal(left, right=None) -> Condition:
    """Equality condition.  One-argument form (paper Code 5) leaves the
    subject pending for :func:`exec_while` to bind."""
    if right is None:
        return Condition(PENDING, "==", _as_operand(left))
    return _cond.equal(_as_operand(left), _as_operand(right))


def not_equal(left, right=None) -> Condition:
    if right is None:
        return Condition(PENDING, "!=", _as_operand(left))
    return _cond.not_equal(_as_operand(left), _as_operand(right))


def bigger(left, right) -> Condition:
    return _cond.bigger(_as_operand(left), _as_operand(right))


def smaller(left, right) -> Condition:
    return _cond.smaller(_as_operand(left), _as_operand(right))


def bigger_equal(left, right) -> Condition:
    return _cond.bigger_equal(_as_operand(left), _as_operand(right))


def smaller_equal(left, right) -> Condition:
    return _cond.smaller_equal(_as_operand(left), _as_operand(right))


# ------------------------------------------------------------- step creation


def _normalize_inputs(input_: "InputLike | Sequence[InputLike] | None"):
    if input_ is None:
        return []
    if isinstance(input_, (StepOutput, ArtifactDecl)):
        return [input_]
    return list(input_)


def _normalize_outputs(output, ctx: WorkflowContext, step_name: str):
    if output is None:
        decls: List[ArtifactDecl] = []
    elif isinstance(output, ArtifactDecl):
        decls = [output]
    else:
        decls = list(output)
    finalized = []
    for decl in decls:
        uid = decl.uid or f"{ctx.ir.name}/{step_name}/{decl.name}"
        finalized.append(decl.with_uid(uid))
    return finalized


def _add_step(
    ctx: WorkflowContext,
    op: OpKind,
    image: str,
    command: Optional[Sequence[str]],
    args: Optional[Sequence[ArgLike]],
    step_name: Optional[str],
    resources: Optional[ResourceQuantity],
    output,
    input_,
    sim: Optional[SimHint],
    source: Optional[str] = None,
    job_params: Optional[dict] = None,
) -> StepOutput:
    base = _sanitize(step_name or image)
    if ctx.reuse_existing and base in ctx.ir.nodes:
        ctx.last_touched = base  # type: ignore[attr-defined]
        node = ctx.ir.nodes[base]
        artifact = node.outputs[0] if node.outputs else None
        return StepOutput(step_name=base, artifact=artifact)
    name = ctx.unique_name(base)

    dependencies: List[str] = []
    inputs: List[ArtifactDecl] = []
    for item in _normalize_inputs(input_):
        if isinstance(item, StepOutput):
            if item.artifact is not None:
                inputs.append(item.artifact)
            dependencies.append(item.step_name)
        else:
            inputs.append(item)
            producer = _find_producer(ctx.ir, item)
            if producer is not None:
                dependencies.append(producer)

    rendered_args: List[str] = []
    for arg in args or []:
        if isinstance(arg, StepOutput):
            rendered_args.append(arg.ref().render())
            dependencies.append(arg.step_name)
        elif isinstance(arg, OutputRef):
            rendered_args.append(arg.render())
            dependencies.append(arg.step_name)
        elif isinstance(arg, ArtifactDecl):
            rendered_args.append(arg.path or arg.name)
        else:
            rendered_args.append(str(arg))

    when = None
    if ctx.condition_stack:
        when = " && ".join(ctx.condition_stack)
        for sources in ctx.condition_sources:
            dependencies.extend(sources)

    node = IRNode(
        name=name,
        op=op,
        image=image,
        command=list(command or []),
        args=rendered_args,
        source=source,
        job_params=dict(job_params or {}),
        resources=resources or ResourceQuantity(cpu=1.0),
        inputs=inputs,
        outputs=_normalize_outputs(output, ctx, name),
        when=when,
        sim=sim or SimHint(),
    )
    ctx.ir.add_node(node)

    explicit_deps = sorted(set(dependencies) - {name})
    for dep in explicit_deps:
        if dep in ctx.ir.nodes:
            ctx.ir.add_edge(dep, name)
    if not ctx.explicit_mode and not explicit_deps:
        for dep in ctx.last_steps:
            ctx.ir.add_edge(dep, name)
        explicit_deps = list(ctx.last_steps)
    ctx.last_steps = [s for s in ctx.last_steps if s not in explicit_deps] + [name]
    ctx.last_touched = name  # type: ignore[attr-defined]

    artifact = node.outputs[0] if node.outputs else None
    return StepOutput(step_name=name, artifact=artifact)


def _find_producer(ir: WorkflowIR, artifact: ArtifactDecl) -> Optional[str]:
    if artifact.uid is None:
        return None
    for node in ir.nodes.values():
        for out in node.outputs:
            if out.uid == artifact.uid:
                return node.name
    return None


def run_container(
    image: str,
    *,
    command: Optional[Sequence[str]] = None,
    args: Optional[Sequence[ArgLike]] = None,
    step_name: Optional[str] = None,
    resources: Optional[ResourceQuantity] = None,
    output=None,
    input=None,  # noqa: A002 - matches the paper's API
    sim: Optional[SimHint] = None,
) -> StepOutput:
    """Start a container as one workflow step (paper Table V).

    Only ``image`` is positional; every optional parameter is
    keyword-only (stable v1 API contract — new options can be added
    without shifting argument positions).
    """
    ctx = get_context()
    return _add_step(
        ctx, OpKind.CONTAINER, image, command, args, step_name, resources,
        output, input, sim,
    )


def run_script(
    image: str,
    source: "Callable | str",
    *,
    step_name: Optional[str] = None,
    args: Optional[Sequence[ArgLike]] = None,
    resources: Optional[ResourceQuantity] = None,
    output=None,
    input=None,  # noqa: A002
    sim: Optional[SimHint] = None,
) -> StepOutput:
    """Run a Python function (or script text) inside a pod.

    Script steps implicitly expose a small ``result`` parameter output
    so conditions can branch on what the script printed (paper Code 3).
    """
    ctx = get_context()
    if callable(source):
        try:
            text = textwrap.dedent(inspect.getsource(source))
        except (OSError, TypeError):
            text = f"# <source of {getattr(source, '__name__', 'callable')} unavailable>"
    else:
        text = str(source)
    result = ArtifactDecl(name="result", storage=ArtifactStorage.PARAMETER, size_bytes=64)
    out = _normalize_or_default(output, result)
    return _add_step(
        ctx, OpKind.SCRIPT, image, None, args, step_name, resources,
        out, input, sim, source=text,
    )


def _normalize_or_default(output, default: ArtifactDecl):
    if output is None:
        return [default]
    if isinstance(output, ArtifactDecl):
        return [output, default]
    return list(output) + [default]


def run_job(
    image: str,
    command: "Sequence[str] | str",
    *,
    kind: str = "TFJob",
    num_ps: int = 0,
    num_workers: int = 1,
    step_name: Optional[str] = None,
    resources: Optional[ResourceQuantity] = None,
    output=None,
    input=None,  # noqa: A002
    sim: Optional[SimHint] = None,
) -> StepOutput:
    """Start a distributed training job (parameter servers + workers)."""
    ctx = get_context()
    if isinstance(command, str):
        command = command.split()
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    job_params = {"kind": kind, "num_ps": num_ps, "num_workers": num_workers}
    per_worker = resources or ResourceQuantity(cpu=2.0)
    total = ResourceQuantity(
        cpu=per_worker.cpu * (num_ps + num_workers),
        memory=per_worker.memory * (num_ps + num_workers),
        gpu=per_worker.gpu * num_workers,
    )
    return _add_step(
        ctx, OpKind.JOB, image, command, None, step_name, total,
        output, input, sim, job_params=job_params,
    )


# ------------------------------------------------------------- control flow


def when(condition: Condition, thunk: Callable[[], object]) -> object:
    """Run ``thunk``'s steps only when ``condition`` holds (Code 3)."""
    ctx = get_context()
    ctx.condition_stack.append(condition.render())
    ctx.condition_sources.append(condition.source_steps())
    try:
        return thunk()
    finally:
        ctx.condition_stack.pop()
        ctx.condition_sources.pop()


def map(fn: Callable[[object], object], items: Iterable[object]) -> List[object]:  # noqa: A001
    """Start one instance of ``fn`` per item, all in parallel (Code 6)."""
    ctx = get_context()
    pre_tail = list(ctx.last_steps)
    tails: List[str] = []
    results: List[object] = []
    for item in items:
        ctx.last_steps = list(pre_tail)
        results.append(fn(item))
        tails.extend(s for s in ctx.last_steps if s not in pre_tail)
    seen = set()
    ctx.last_steps = [t for t in tails if not (t in seen or seen.add(t))]
    return results


def concurrent(thunks: Sequence[Callable[[], object]]) -> List[object]:
    """Run several job-definitions in parallel (paper Code 7)."""
    return map(lambda thunk: thunk(), list(thunks))


def exec_while(
    condition: Condition,
    thunk: Callable[[], StepOutput],
    max_iterations: int = 3,
) -> StepOutput:
    """Repeat ``thunk`` while its output matches ``condition`` (Code 5).

    Real engines execute recursion natively; a static DAG cannot, so
    the loop is unrolled to ``max_iterations`` conditional steps — each
    iteration guarded on the previous iteration's result.  This is the
    documented simulation-side bound on recursion depth.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    ctx = get_context()
    prev = thunk()
    if not isinstance(prev, StepOutput):
        raise TypeError("exec_while thunk must return the StepOutput of a step")
    for _ in range(max_iterations - 1):
        bound = Condition(prev.ref(), condition.operator, condition.right)
        ctx.condition_stack.append(bound.render())
        ctx.condition_sources.append(bound.source_steps())
        try:
            prev = thunk()
        finally:
            ctx.condition_stack.pop()
            ctx.condition_sources.pop()
    return prev


# ------------------------------------------------------------- explicit DAG


def _require_step(ctx: WorkflowContext, name: Optional[str], where: str) -> str:
    """Resolve an edge endpoint to a defined step or fail loudly.

    A mistyped (or never-defined) step name in an explicit dependency
    used to surface later as an opaque IR error; naming the offending
    step at the definition site is part of the v1 API contract.
    """
    from ..engine.spec import SpecError

    if name is None:
        raise SpecError(
            f"{where} references a thunk that defined no step; every "
            "element must call a run_* function"
        )
    if name not in ctx.ir.nodes:
        known = ", ".join(sorted(ctx.ir.nodes)) or "<none>"
        raise SpecError(
            f"{where} references undefined step {name!r}; defined steps: {known}"
        )
    return name


def dag(dependency_lists: Sequence[Sequence[Callable[[], object]]]) -> None:
    """Explicitly define the DAG (paper Code 1 / Code 4).

    Each element is a list of thunks: ``[a]`` declares step *a*;
    ``[a, b]`` declares the edge *a → b*.  Re-mentioning a step by name
    reuses it instead of redefining.
    """
    ctx = get_context()
    ctx.explicit_mode = True
    ctx.reuse_existing = True
    try:
        for element in dependency_lists:
            thunks = list(element)
            if not thunks:
                continue
            touched: List[str] = []
            for thunk in thunks:
                ctx.last_touched = None  # type: ignore[attr-defined]
                thunk()
                touched.append(
                    _require_step(ctx, getattr(ctx, "last_touched", None), "dag() edge")
                )
            for parent, child in zip(touched, touched[1:]):
                if parent != child:
                    ctx.ir.add_edge(parent, child)
    finally:
        ctx.reuse_existing = False


def set_dependencies(
    fn: Callable[[], object],
    dependencies: Sequence[Sequence[str]],
) -> None:
    """Define steps via ``fn`` then wire edges by step name.

    ``dependencies`` is a list of ``[upstream, downstream]`` name pairs
    (single-element lists declare an isolated step and are ignored for
    edges).  A pair naming a step ``fn`` never defined raises
    :class:`~repro.engine.spec.SpecError` identifying that step.
    """
    ctx = get_context()
    ctx.explicit_mode = True
    fn()
    for pair in dependencies:
        names = list(pair)
        if len(names) > 2:
            raise ValueError(f"dependency element must have <= 2 names: {names}")
        for name in names:
            _require_step(ctx, name, "set_dependencies()")
        if len(names) == 2:
            ctx.ir.add_edge(names[0], names[1])


# --------------------------------------------------------------- finalizing


def workflow_ir(optimize: bool = True) -> WorkflowIR:
    """Snapshot the current definition as IR (optionally optimized)."""
    ctx = get_context()
    ir = ctx.ir
    if optimize:
        ir = PassManager.default().run(ir)
    else:
        ir.finalize_artifacts()
        ir.validate()
    return ir


def run(submitter=None, optimize: bool = True):
    """Optimize the current workflow and submit it (paper Code 1 line 22).

    Returns whatever the submitter returns (for the simulated Argo
    submitter: the workflow's :class:`~repro.engine.status.WorkflowRecord`).
    The definition context is reset afterwards, so the next ``run_*``
    call starts a fresh workflow.

    ``submitter`` may be anything conforming to the
    :class:`~repro.backends.base.Submitter` protocol — the default
    local submitter, the Couler service, the event-driven admission
    pipeline, or a code-generating submitter — interchangeably.
    """
    from ..backends.base import Submitter
    from .submitter import LocalSubmitter

    if submitter is not None and not isinstance(submitter, Submitter):
        raise TypeError(
            f"submitter {submitter!r} does not conform to the Submitter "
            "protocol: it must define submit(ir) returning a "
            "record-shaped result"
        )
    ir = workflow_ir(optimize=optimize)
    submitter = submitter or LocalSubmitter()
    try:
        return submitter.submit(ir)
    finally:
        reset_context()
