"""Submitters: take an optimized IR and run it on a workflow engine.

``couler.run(submitter=ArgoSubmitter())`` is the paper's submission
idiom (Code 1 lines 20–22).  :class:`ArgoSubmitter` compiles the IR to
an Argo manifest and drives it through the simulated operator;
:class:`LocalSubmitter` is the convenience wrapper that builds its own
single-tenant environment.  :class:`AirflowSubmitter` and
:class:`TektonSubmitter` generate engine-native definitions (and can
optionally preview-execute the IR on the local engine, since no real
Airflow/Tekton deployment exists in this environment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..backends.airflow import AirflowBackend
from ..backends.argo import ArgoBackend
from ..backends.tekton import TektonBackend
from ..engine.operator import WorkflowOperator
from ..engine.simclock import SimClock
from ..engine.status import WorkflowRecord
from ..ir.graph import WorkflowIR
from ..k8s.apiserver import APIServer
from ..k8s.cluster import Cluster


def default_environment(
    num_nodes: int = 8,
    cpu_per_node: float = 16.0,
    memory_per_node: int = 64 * 2**30,
    gpu_per_node: int = 2,
    cache_manager=None,
    seed: int = 0,
) -> WorkflowOperator:
    """A fresh single-tenant simulated environment for one submission."""
    clock = SimClock()
    cluster = Cluster.uniform(
        "local",
        num_nodes,
        cpu_per_node=cpu_per_node,
        memory_per_node=memory_per_node,
        gpu_per_node=gpu_per_node,
    )
    return WorkflowOperator(
        clock,
        cluster,
        cache_manager=cache_manager,
        api_server=APIServer(),
        seed=seed,
    )


@dataclass
class SubmissionResult:
    """What a code-generating submitter returns."""

    engine: str
    payload: object
    record: Optional[WorkflowRecord] = None


class ArgoSubmitter:
    """Compile to an Argo manifest and execute on the simulated operator.

    Pass an existing ``operator`` to share a cluster across
    submissions; otherwise a fresh default environment is built.
    """

    def __init__(
        self,
        operator: Optional[WorkflowOperator] = None,
        run_to_completion: bool = True,
    ) -> None:
        self.operator = operator or default_environment()
        self.run_to_completion = run_to_completion
        self.backend = ArgoBackend()
        self.last_manifest: Optional[dict] = None

    def submit(self, ir: WorkflowIR) -> WorkflowRecord:
        manifest = self.backend.compile(ir)
        self.last_manifest = manifest
        record = self.operator.submit_manifest(manifest)
        if self.run_to_completion:
            self.operator.run_to_completion()
        return record


class LocalSubmitter(ArgoSubmitter):
    """Single-tenant convenience submitter (used by ``couler.run()``
    when no submitter is given)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(operator=default_environment(seed=seed))


@dataclass
class AirflowSubmitter:
    """Generate an Airflow DAG module from the IR.

    ``simulate=True`` additionally executes the IR on a local simulated
    engine so callers can preview runtime behaviour; the generated
    source is what a real deployment would ship to Airflow.
    """

    simulate: bool = False
    backend: AirflowBackend = field(default_factory=AirflowBackend)

    def submit(self, ir: WorkflowIR) -> SubmissionResult:
        source = self.backend.compile(ir)
        record = None
        if self.simulate:
            operator = default_environment()
            record = operator.submit(ir.to_executable())
            operator.run_to_completion()
        return SubmissionResult(engine="airflow", payload=source, record=record)


@dataclass
class TektonSubmitter:
    """Generate Tekton Pipeline/PipelineRun manifests from the IR."""

    simulate: bool = False
    backend: TektonBackend = field(default_factory=TektonBackend)

    def submit(self, ir: WorkflowIR) -> SubmissionResult:
        manifests = self.backend.compile(ir)
        record = None
        if self.simulate:
            operator = default_environment()
            record = operator.submit(ir.to_executable())
            operator.run_to_completion()
        return SubmissionResult(engine="tekton", payload=manifests, record=record)
