"""Submitters: take an optimized IR and run it on a workflow engine.

``couler.run(submitter=ArgoSubmitter())`` is the paper's submission
idiom (Code 1 lines 20–22).  Every submitter here conforms to the
:class:`~repro.backends.base.Submitter` protocol (``submit(ir)`` →
record-shaped result): :class:`ArgoSubmitter` compiles the IR to an
Argo manifest and drives it through the simulated operator;
:class:`LocalSubmitter` is the convenience wrapper that builds its own
single-tenant environment; :class:`AdmissionSubmitter` routes the IR
through the event-driven multi-cluster admission pipeline; and
:class:`AirflowSubmitter` / :class:`TektonSubmitter` generate
engine-native definitions (optionally preview-executing the IR on the
local engine, since no real Airflow/Tekton deployment exists in this
environment).

Engine knobs ride in one place: every submitter accepts a keyword-only
``config=``\\ :class:`~repro.engine.config.EngineConfig` bundle,
validated at construction.  The per-feature legacy kwargs
(``journaled=``, ``fairness=``, ``slo_class=``) keep working through a
once-per-process deprecation bridge and resolve to the equivalent
config — both spellings are proven bit-identical by
``tests/test_engine_config.py``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Set

from ..backends.airflow import AirflowBackend
from ..backends.argo import ArgoBackend
from ..backends.tekton import TektonBackend
from ..engine.admission import AdmissionError, AdmissionPipeline
from ..engine.config import DEFAULT_CONFIG, EngineConfig
from ..engine.journal import Journal
from ..engine.operator import WorkflowOperator
from ..engine.simclock import SimClock
from ..engine.status import WorkflowRecord
from ..ir.graph import WorkflowIR
from ..k8s.apiserver import APIServer
from ..k8s.cluster import Cluster

#: Legacy kwargs that already warned — the bridge warns once per
#: process per *kwarg*, shared across submitter types (migrating one
#: spelling means migrating it everywhere, so one nudge suffices).
_legacy_warned: Set[str] = set()


def _warn_legacy(owner: str, kwarg: str, replacement: str) -> None:
    if kwarg in _legacy_warned:
        return
    _legacy_warned.add(kwarg)
    warnings.warn(
        f"{owner}({kwarg}=...) is deprecated and will be removed in v2; "
        f"pass config=EngineConfig({replacement}) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _bridge_legacy(
    owner: str, config: Optional[EngineConfig], **legacy: object
) -> EngineConfig:
    """Resolve legacy kwargs and ``config=`` into one EngineConfig.

    Legacy kwargs use ``None`` as the *unset* sentinel; any explicitly
    passed one warns (once per process) and folds into the config.
    Mixing an explicit ``config=`` with legacy kwargs is rejected —
    silently merging them would hide which spelling won.
    """
    passed = {kwarg: value for kwarg, value in legacy.items() if value is not None}
    if passed and config is not None:
        # Reject *before* warning: a rejected mixed call must not
        # consume the once-per-process warning budget, or the caller
        # who later uses the legacy spelling correctly never hears
        # about the deprecation.
        raise ValueError(
            f"{owner}: pass config= or the legacy kwargs "
            f"({', '.join(sorted(passed))}), not both"
        )
    for kwarg, value in passed.items():
        _warn_legacy(owner, kwarg, f"{kwarg}={value!r}")
    if passed:
        return EngineConfig(**passed)  # type: ignore[arg-type]
    return config if config is not None else DEFAULT_CONFIG


def default_environment(
    num_nodes: int = 8,
    cpu_per_node: float = 16.0,
    memory_per_node: int = 64 * 2**30,
    gpu_per_node: int = 2,
    cache_manager=None,
    seed: int = 0,
    journal: Optional[Journal] = None,
    fast: bool = True,
) -> WorkflowOperator:
    """A fresh single-tenant simulated environment for one submission."""
    clock = SimClock()
    cluster = Cluster.uniform(
        "local",
        num_nodes,
        cpu_per_node=cpu_per_node,
        memory_per_node=memory_per_node,
        gpu_per_node=gpu_per_node,
    )
    return WorkflowOperator(
        clock,
        cluster,
        cache_manager=cache_manager,
        api_server=APIServer(),
        seed=seed,
        journal=journal,
        fast=fast,
    )


@dataclass
class SubmissionResult:
    """What a code-generating submitter returns."""

    engine: str
    payload: object
    record: Optional[WorkflowRecord] = None


class ArgoSubmitter:
    """Compile to an Argo manifest and execute on the simulated operator.

    Pass an existing ``operator`` to share a cluster across
    submissions; otherwise a fresh default environment is built.
    """

    def __init__(
        self,
        operator: Optional[WorkflowOperator] = None,
        run_to_completion: bool = True,
        *,
        config: Optional[EngineConfig] = None,
        journaled: Optional[bool] = None,
    ) -> None:
        config = _bridge_legacy("ArgoSubmitter", config, journaled=journaled)
        #: The validated knob bundle this submitter was built with.
        self.config = config
        if operator is None:
            operator = default_environment(
                journal=Journal() if config.journaled else None, fast=config.fast
            )
        elif config.journaled and operator.journal is None:
            raise ValueError(
                "journaled=True but the operator passed in has no journal; "
                "build it with WorkflowOperator(..., journal=Journal())"
            )
        self.operator = operator
        #: The durable event journal when journaled mode is on (else None).
        self.journal = self.operator.journal
        self.run_to_completion = run_to_completion
        self.backend = ArgoBackend()
        self.last_manifest: Optional[dict] = None

    def submit(self, ir: WorkflowIR) -> WorkflowRecord:
        manifest = self.backend.compile(ir)
        self.last_manifest = manifest
        record = self.operator.submit_manifest(manifest)
        if self.run_to_completion:
            self.operator.run_to_completion()
        return record


class LocalSubmitter(ArgoSubmitter):
    """Single-tenant convenience submitter (used by ``couler.run()``
    when no submitter is given)."""

    def __init__(
        self,
        seed: int = 0,
        *,
        config: Optional[EngineConfig] = None,
        journaled: Optional[bool] = None,
    ) -> None:
        config = _bridge_legacy("LocalSubmitter", config, journaled=journaled)
        super().__init__(
            operator=default_environment(
                seed=seed,
                journal=Journal() if config.journaled else None,
                fast=config.fast,
            ),
            config=config,
        )


def default_multicluster(
    seed: int = 0,
    *,
    fairness: str = "strict-priority",
    tenant_weights: Optional[dict] = None,
    preemption: bool = False,
    journal: Optional[Journal] = None,
    config: Optional[EngineConfig] = None,
) -> AdmissionPipeline:
    """A small heterogeneous fleet for admission-pipeline submissions.

    ``config=`` supersedes the individual kwargs (except ``journal``,
    which carries state, not configuration — callers who want a
    journaled pipeline from a config pass ``Journal()`` themselves or
    go through :class:`AdmissionSubmitter`).
    """
    gb = 2**30
    clusters = [
        Cluster.uniform(
            "gpu", 2, cpu_per_node=16.0, memory_per_node=64 * gb, gpu_per_node=2
        ),
        Cluster.uniform("cpu-a", 4, cpu_per_node=16.0, memory_per_node=64 * gb),
        Cluster.uniform("cpu-b", 4, cpu_per_node=16.0, memory_per_node=64 * gb),
    ]
    if config is not None:
        return AdmissionPipeline(
            clusters, seed=seed, journal=journal, **config.pipeline_kwargs()
        )
    return AdmissionPipeline(
        clusters,
        seed=seed,
        fairness=fairness,
        tenant_weights=tenant_weights,
        preemption=preemption,
        journal=journal,
    )


class AdmissionSubmitter:
    """Submit through the event-driven admission pipeline.

    The service-grade submission path: the workflow *arrives* at the
    pipeline (admission control, bounded queue, aged-priority
    placement) instead of being executed on a private single-tenant
    environment.  Pass an existing ``pipeline`` to share one fleet
    across submissions — quota contention and queueing then behave
    exactly as they would for concurrent tenants.
    """

    def __init__(
        self,
        pipeline: Optional[AdmissionPipeline] = None,
        user: str = "default",
        priority: int = 0,
        run_to_completion: bool = True,
        seed: int = 0,
        *,
        config: Optional[EngineConfig] = None,
        fairness: Optional[str] = None,
        slo_class: Optional[str] = None,
        journaled: Optional[bool] = None,
    ) -> None:
        config = _bridge_legacy(
            "AdmissionSubmitter",
            config,
            fairness=fairness,
            slo_class=slo_class,
            journaled=journaled,
        )
        #: The validated knob bundle this submitter was built with.
        self.config = config
        if pipeline is not None and config.fairness is not None:
            raise ValueError(
                "pass fairness= when the submitter builds its own pipeline, "
                "or configure it on the pipeline you pass in — not both"
            )
        if pipeline is not None and config.journaled and pipeline.journal is None:
            raise ValueError(
                "journaled=True but the pipeline passed in has no journal; "
                "build it with AdmissionPipeline(..., journal=Journal())"
            )
        self.pipeline = pipeline or default_multicluster(
            seed=seed,
            journal=Journal() if config.journaled else None,
            config=config,
        )
        #: Unified decision-log + step-event journal (None when off).
        self.journal = self.pipeline.journal
        self.user = user
        self.priority = priority
        #: SLO lane for every submission through this submitter
        #: (None = the pipeline's back-compat default lane).
        self.slo_class = config.slo_class
        self.run_to_completion = run_to_completion
        self.last_admission = None

    def submit(self, ir: WorkflowIR) -> WorkflowRecord:
        admission = self.pipeline.submit(
            ir.to_executable(),
            user=self.user,
            priority=self.priority,
            slo_class=self.slo_class,
        )
        self.last_admission = admission
        if self.run_to_completion:
            self.pipeline.run()
        if admission.admitted is False:
            raise AdmissionError(
                f"workflow {ir.name!r} rejected at admission: "
                f"{admission.reject_reason}"
            )
        if admission.record is None:
            # Still queued (caller drives the clock): hand back a live
            # pending record that fills in once placement happens.
            return WorkflowRecord(name=ir.name)
        return admission.record


@dataclass
class AirflowSubmitter:
    """Generate an Airflow DAG module from the IR.

    ``simulate=True`` additionally executes the IR on a local simulated
    engine so callers can preview runtime behaviour; the generated
    source is what a real deployment would ship to Airflow.
    """

    simulate: bool = False
    backend: AirflowBackend = field(default_factory=AirflowBackend)
    config: EngineConfig = field(default_factory=EngineConfig)

    def submit(self, ir: WorkflowIR) -> SubmissionResult:
        source = self.backend.compile(ir)
        record = None
        if self.simulate:
            operator = default_environment(fast=self.config.fast)
            record = operator.submit(ir.to_executable())
            operator.run_to_completion()
        return SubmissionResult(engine="airflow", payload=source, record=record)


@dataclass
class TektonSubmitter:
    """Generate Tekton Pipeline/PipelineRun manifests from the IR."""

    simulate: bool = False
    backend: TektonBackend = field(default_factory=TektonBackend)
    config: EngineConfig = field(default_factory=EngineConfig)

    def submit(self, ir: WorkflowIR) -> SubmissionResult:
        manifests = self.backend.compile(ir)
        record = None
        if self.simulate:
            operator = default_environment(fast=self.config.fast)
            record = operator.submit(ir.to_executable())
            operator.run_to_completion()
        return SubmissionResult(engine="tekton", payload=manifests, record=record)
