"""Automatic artifact caching (paper Section IV.A + Appendix B.C/D).

Public surface:

- :class:`ArtifactStore` — the Alluxio-style capacity-bounded store.
- :class:`ArtifactScorer` / :class:`ScoreWeights` — Eqs. 3–6.
- :class:`CoulerCachePolicy` and the No/ALL/FIFO/LRU baselines.
- :class:`CacheManager` — the runtime hook wired into the engine.
- :class:`Dataset` / :class:`CachingServer` — the Dataset CRD data-read
  cache from Appendix B.C (Fig. 17 experiments).
"""

from .artifact_store import (
    ArtifactStore,
    ArtifactTooLargeError,
    CacheEntry,
    CacheError,
    CacheStats,
    InsufficientSpaceError,
)
from .dataset_crd import CachingServer, Dataset, DatasetKind, SyncState
from .manager import CacheManager
from .policy import (
    CacheAllPolicy,
    CachePolicy,
    CoulerCachePolicy,
    FIFOCachePolicy,
    LRUCachePolicy,
    NoCachePolicy,
    POLICY_REGISTRY,
    make_policy,
)
from .score import ArtifactScorer, ScoreWeights, WorkflowGraphIndex

__all__ = [
    "ArtifactScorer",
    "ArtifactStore",
    "ArtifactTooLargeError",
    "CacheAllPolicy",
    "CacheEntry",
    "CacheError",
    "CacheManager",
    "CachePolicy",
    "CacheStats",
    "CachingServer",
    "CoulerCachePolicy",
    "Dataset",
    "DatasetKind",
    "FIFOCachePolicy",
    "InsufficientSpaceError",
    "LRUCachePolicy",
    "NoCachePolicy",
    "POLICY_REGISTRY",
    "ScoreWeights",
    "SyncState",
    "WorkflowGraphIndex",
    "make_policy",
]
