"""Automatic artifact caching (paper Section IV.A + Appendix B.C/D).

Public surface:

- :class:`ArtifactStore` — the Alluxio-style capacity-bounded store.
- :class:`ArtifactScorer` / :class:`IncrementalArtifactScorer` /
  :class:`ScoreWeights` — Eqs. 3–6 (from-scratch and memoized).
- :class:`CoulerCachePolicy` and the No/ALL/FIFO/LRU baselines, all
  speaking the :class:`CacheDecision` policy API.
- :class:`CacheManager` — the runtime hook wired into the engine.
- :class:`Dataset` / :class:`CachingServer` — the Dataset CRD data-read
  cache from Appendix B.C (Fig. 17 experiments).
"""

from .artifact_store import (
    ArtifactStore,
    ArtifactTooLargeError,
    CacheEntry,
    CacheError,
    CacheStats,
    InsufficientSpaceError,
)
from .dataset_crd import CachingServer, Dataset, DatasetKind, SyncState
from .manager import CacheManager
from .policy import (
    CacheAllPolicy,
    CacheDecision,
    CachePolicy,
    CoulerCachePolicy,
    FIFOCachePolicy,
    LRUCachePolicy,
    NoCachePolicy,
    POLICY_REGISTRY,
    make_policy,
)
from .score import (
    ArtifactScorer,
    IncrementalArtifactScorer,
    ScoreWeights,
    WorkflowGraphIndex,
)

__all__ = [
    "ArtifactScorer",
    "ArtifactStore",
    "ArtifactTooLargeError",
    "CacheAllPolicy",
    "CacheDecision",
    "CacheEntry",
    "CacheError",
    "CacheManager",
    "CachePolicy",
    "CacheStats",
    "CachingServer",
    "CoulerCachePolicy",
    "Dataset",
    "DatasetKind",
    "FIFOCachePolicy",
    "IncrementalArtifactScorer",
    "InsufficientSpaceError",
    "LRUCachePolicy",
    "NoCachePolicy",
    "POLICY_REGISTRY",
    "ScoreWeights",
    "SyncState",
    "WorkflowGraphIndex",
    "make_policy",
]
