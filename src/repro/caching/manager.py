"""Runtime cache manager — wires policy, store and scorer into the engine.

Implements :class:`repro.engine.cachehooks.CacheManagerProtocol`: the
operator calls :meth:`fetch` for every input artifact read (the manager
answers with the simulated read time and whether it was a cache hit)
and :meth:`on_artifact_produced` for every output (the policy decides
admission/eviction through the :class:`~repro.caching.policy.CacheDecision`
API).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from ..engine.cachehooks import BandwidthModel
from ..engine.spec import ArtifactSpec, ExecutableWorkflow
from ..obs.metrics import MetricsRegistry
from .artifact_store import ArtifactStore
from .policy import CacheDecision, CachePolicy, make_policy
from .score import (
    ArtifactScorer,
    IncrementalArtifactScorer,
    ScoreWeights,
    WorkflowGraphIndex,
)


class CacheManager:
    """The automatic caching optimizer attached to a running operator.

    All parameters are keyword-only (v1 facade convention).

    Parameters
    ----------
    policy:
        A :class:`CachePolicy` instance or a registered policy name
        (``"no"``, ``"all"``, ``"couler"``, ``"fifo"``, ``"lru"``).
    capacity_bytes:
        Store capacity; ``None`` means unbounded (for the ALL baseline).
    weights:
        Eq. 6 weights for the Couler policy (production default
        alpha=1.5, beta=1).
    policy_config:
        A :class:`~repro.control.policy.PolicyConfig` whose cache knobs
        (``score_alpha``, ``score_beta``, ``eviction_pressure``) derive
        the Eq. 6 weights — the adaptive controller's entry point into
        the cache.  Mutually exclusive with ``weights=`` (the controller
        owns the knobs or the caller does, never both);
        ``policy_config=PolicyConfig()`` is bit-identical to the
        default weights.
    bandwidth / distance:
        Storage-tier read model; ``distance`` scales remote reads by the
        cluster's distance to the storage cluster (Appendix B.A).
    metrics:
        Shared :class:`~repro.obs.metrics.MetricsRegistry`; pass the
        simulation's registry so cache counters land next to the
        engine's (a private one is created otherwise).
    scorer:
        ``"incremental"`` (default) memoizes L/F per uid and
        invalidates only dirty sets on graph/store changes;
        ``"naive"`` recomputes from scratch on every call (the
        reference implementation the ``scores`` verify oracle compares
        against); or pass a pre-built :class:`ArtifactScorer`.
    record_decisions:
        Keep a structured log of every admission decision in
        :attr:`decisions` — used by the verification oracles to compare
        policy behavior across scorer implementations.
    timer:
        Optional monotonic-clock callable enabling the
        ``cache_score_seconds`` latency histogram.  Off by default so
        metric snapshots stay deterministic under the replay oracles.
    """

    def __init__(
        self,
        *,
        policy: Union[CachePolicy, str] = "couler",
        capacity_bytes: Optional[int] = 30 * 2**30,
        weights: Optional[ScoreWeights] = None,
        policy_config: Optional[object] = None,
        bandwidth: Optional[BandwidthModel] = None,
        distance: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        scorer: Union[ArtifactScorer, str] = "incremental",
        record_decisions: bool = False,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        if policy_config is not None:
            from ..control.policy import PolicyConfig

            if not isinstance(policy_config, PolicyConfig):
                raise ValueError(
                    f"policy_config must be a PolicyConfig or None: "
                    f"{policy_config!r}"
                )
            if weights is not None:
                raise ValueError(
                    "pass policy_config= or weights=, not both — mixing "
                    "would hide which knob source won"
                )
            weights = policy_config.score_weights()
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.store = ArtifactStore(capacity_bytes, metrics=metrics)
        self.metrics = self.store.metrics
        self.index = WorkflowGraphIndex()
        score_weights = weights or ScoreWeights()
        if isinstance(scorer, ArtifactScorer):
            self.scorer = scorer
        elif scorer == "incremental":
            self.scorer = IncrementalArtifactScorer(
                index=self.index,
                weights=score_weights,
                metrics=self.metrics,
                timer=timer,
            )
        elif scorer == "naive":
            self.scorer = ArtifactScorer(
                index=self.index,
                weights=score_weights,
                metrics=self.metrics,
                timer=timer,
            )
        else:
            raise ValueError(
                f"unknown scorer {scorer!r}; pass 'incremental', 'naive' "
                "or an ArtifactScorer instance"
            )
        if isinstance(self.scorer, IncrementalArtifactScorer):
            self.scorer.bind_store(self.store)
        self.bandwidth = bandwidth or BandwidthModel()
        self.distance = distance
        self.record_decisions = record_decisions
        #: Structured admission log (populated when ``record_decisions``).
        self.decisions: List[dict] = []
        self.store.add_listener(self._forward_store_event)

    def _forward_store_event(self, event: str, uid: str) -> None:
        if event == "evict":
            self.policy.on_evict(uid)

    def _decide(self, artifact: ArtifactSpec, now: float, event: str) -> bool:
        decision = CacheDecision(
            artifact=artifact,
            store=self.store,
            scorer=self.scorer,
            now=now,
            metrics=self.metrics,
        )
        if event == "read":
            admitted = self.policy.on_external_read(decision)
        else:
            admitted = self.policy.decide(decision)
        if self.record_decisions:
            self.decisions.append(
                {
                    "event": event,
                    "uid": artifact.uid,
                    "admitted": bool(admitted),
                    "evicted": list(decision.evicted),
                    "score": None if decision.score is None else repr(decision.score),
                }
            )
        return admitted

    # ------------------------------------------------- CacheManagerProtocol

    def register_workflow(self, workflow: ExecutableWorkflow) -> None:
        self.index.register(workflow)

    def fetch(self, artifact: ArtifactSpec, now: float = 0.0) -> Tuple[float, bool]:
        if self.store.contains(artifact.uid):
            self.store.record_hit(artifact.uid, now=now)
            return self.bandwidth.local_seconds(artifact.size_bytes), True
        self.store.record_miss()
        # Read-through admission (Alluxio semantics): a remote read
        # leaves the artifact locally, subject to the policy's
        # on_external_read hook, so later readers of the same data hit.
        self._decide(artifact, now, "read")
        return (
            self.bandwidth.remote_seconds(artifact.size_bytes, self.distance),
            False,
        )

    def on_artifact_produced(self, artifact: ArtifactSpec, now: float) -> None:
        self._decide(artifact, now, "produce")

    def contains(self, uid: str) -> bool:
        """Is this artifact currently resident?  Used by the operator's
        cached-step-skip optimization (reuse of intermediate results)."""
        return self.store.contains(uid)

    def on_step_finished(self, node_key: str) -> None:
        """Engine callback: a step completed, so its reads are now
        *past* usage and no longer contribute to F(u)."""
        self.index.mark_done(node_key)

    # ----------------------------------------------------------- reporting

    def hit_ratio(self) -> float:
        return self.store.stats.hit_ratio

    def report(self) -> dict:
        """Summary used by the experiment drivers."""
        stats = self.store.stats
        return {
            "policy": self.policy.name,
            "capacity_bytes": self.store.capacity_bytes,
            "used_bytes": self.store.used_bytes,
            "peak_bytes": self.store.peak_bytes,
            "entries": len(self.store),
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_ratio": stats.hit_ratio,
            "evictions": stats.evictions,
            "insertions": stats.insertions,
            "rejected": stats.rejected,
        }
