"""Runtime cache manager — wires policy, store and scorer into the engine.

Implements :class:`repro.engine.cachehooks.CacheManagerProtocol`: the
operator calls :meth:`fetch` for every input artifact read (the manager
answers with the simulated read time and whether it was a cache hit)
and :meth:`on_artifact_produced` for every output (the policy decides
admission/eviction).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..engine.cachehooks import BandwidthModel
from ..engine.spec import ArtifactSpec, ExecutableWorkflow
from ..obs.metrics import MetricsRegistry
from .artifact_store import ArtifactStore
from .policy import CachePolicy, make_policy
from .score import ArtifactScorer, ScoreWeights, WorkflowGraphIndex


class CacheManager:
    """The automatic caching optimizer attached to a running operator.

    Parameters
    ----------
    policy:
        A :class:`CachePolicy` instance or a registered policy name
        (``"no"``, ``"all"``, ``"couler"``, ``"fifo"``, ``"lru"``).
    capacity_bytes:
        Store capacity; ``None`` means unbounded (for the ALL baseline).
    weights:
        Eq. 6 weights for the Couler policy (production default
        alpha=1.5, beta=1).
    bandwidth / distance:
        Storage-tier read model; ``distance`` scales remote reads by the
        cluster's distance to the storage cluster (Appendix B.A).
    metrics:
        Shared :class:`~repro.obs.metrics.MetricsRegistry`; pass the
        simulation's registry so cache counters land next to the
        engine's (a private one is created otherwise).
    """

    def __init__(
        self,
        policy: "CachePolicy | str" = "couler",
        capacity_bytes: Optional[int] = 30 * 2**30,
        weights: Optional[ScoreWeights] = None,
        bandwidth: Optional[BandwidthModel] = None,
        distance: float = 1.0,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.store = ArtifactStore(capacity_bytes, metrics=metrics)
        self.metrics = self.store.metrics
        self.index = WorkflowGraphIndex()
        self.scorer = ArtifactScorer(index=self.index, weights=weights or ScoreWeights())
        self.bandwidth = bandwidth or BandwidthModel()
        self.distance = distance

    # ------------------------------------------------- CacheManagerProtocol

    def register_workflow(self, workflow: ExecutableWorkflow) -> None:
        self.index.register(workflow)

    def fetch(self, artifact: ArtifactSpec, now: float = 0.0) -> Tuple[float, bool]:
        if self.store.contains(artifact.uid):
            self.store.record_hit(artifact.uid, now=now)
            return self.bandwidth.local_seconds(artifact.size_bytes), True
        self.store.record_miss()
        # Read-through admission (Alluxio semantics): a remote read
        # leaves the artifact locally, subject to the policy's verdict,
        # so later readers of the same data hit.
        self.policy.admit(artifact, self.store, self.scorer, now)
        return (
            self.bandwidth.remote_seconds(artifact.size_bytes, self.distance),
            False,
        )

    def on_artifact_produced(self, artifact: ArtifactSpec, now: float) -> None:
        self.policy.admit(artifact, self.store, self.scorer, now)

    def contains(self, uid: str) -> bool:
        """Is this artifact currently resident?  Used by the operator's
        cached-step-skip optimization (reuse of intermediate results)."""
        return self.store.contains(uid)

    def on_step_finished(self, node_key: str) -> None:
        """Engine callback: a step completed, so its reads are now
        *past* usage and no longer contribute to F(u)."""
        self.index.mark_done(node_key)

    # ----------------------------------------------------------- reporting

    def hit_ratio(self) -> float:
        return self.store.stats.hit_ratio

    def report(self) -> dict:
        """Summary used by the experiment drivers."""
        stats = self.store.stats
        return {
            "policy": self.policy.name,
            "capacity_bytes": self.store.capacity_bytes,
            "used_bytes": self.store.used_bytes,
            "peak_bytes": self.store.peak_bytes,
            "entries": len(self.store),
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_ratio": stats.hit_ratio,
            "evictions": stats.evictions,
            "insertions": stats.insertions,
            "rejected": stats.rejected,
        }
