"""Caching importance factor — Eqs. (3)–(6) of the paper.

For an artifact ``u`` produced by a workflow step, the *caching
importance factor* is

    I(u) = alpha * log(1 + L(u)) + beta * F(u)**2 - exp(-V(u))

with three determinants:

``L(u)`` (Eq. 3) — reconstruction cost over the predecessor subgraph
``G_p`` (the preceding ``n`` layers of jobs from u's producer, truncated
at any job whose artifact is already cached):
``L = sum_ij A_ij * (w_i + d_i * d_j)`` where ``A`` is the subgraph
adjacency matrix, ``w_i`` the resource consumption of job i, and ``d``
node degrees.

``F(u)`` (Eqs. 4–5) — reuse value over the successor subgraph ``G_s``:
``F = sum_i (r / kappa_ui) * (zeta_ui + 1)`` with ``kappa_ui`` the
distance from u's producer to job i, ``r`` a boolean marking whether a
reuse event occurs for u, and ``zeta = diag(d) - A`` (the graph
Laplacian).  The paper leaves ``zeta_ui``'s sign convention implicit;
``zeta`` entries off the diagonal are ``-A_ui``, which would zero out
direct successors, so we take the magnitude ``|zeta_ui|`` — direct
dependents weigh ``2/kappa`` and transitive ones ``1/kappa``.  This is
the one place the implementation interprets rather than transcribes.

``V(u)`` (cache cost) — u's memory consumption, normalized by a
configurable scale so ``exp(-V)`` spans a useful range.

Two scorers share those equations:

* :class:`ArtifactScorer` recomputes L/F/V from scratch on every call
  (the from-scratch reference the ``scores`` verify oracle trusts).
* :class:`IncrementalArtifactScorer` memoizes L and F per uid and
  invalidates only the *dirty set* — uids whose horizon-bounded
  G_p/G_s actually contains a changed node — on ``register`` /
  ``mark_done`` / cache-state changes.  Both walk the index's
  adjacency lists directly (no per-call ``networkx`` subgraph
  construction), so a single score is O(|G_p| + |G_s|) and a memo hit
  is O(1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx

from ..engine.spec import ArtifactSpec, ExecutableWorkflow
from ..obs.metrics import HOT_PATH_BUCKETS, MetricsRegistry


def _never_cached(_uid: str) -> bool:
    return False


@dataclass(frozen=True)
class ScoreWeights:
    """Weights of Eq. 6.  The paper's production choice is alpha=1.5, beta=1."""

    alpha: float = 1.5
    beta: float = 1.0
    #: Eviction pressure: multiplier on the ``exp(-V)`` cache-cost
    #: penalty.  1.0 is the paper's Eq. 6 exactly; the adaptive
    #: controller (:mod:`repro.control`) tunes it — >1 evicts large
    #: artifacts more aggressively, <1 retains them.
    cache_cost_weight: float = 1.0
    #: Byte scale for V(u); V is expressed in units of this many bytes.
    cache_cost_scale: float = float(2**30)
    #: Subgraph horizon n: how many layers of predecessors/successors
    #: are considered representative (paper property (a) of G_p).
    horizon: int = 3
    #: Ablation switches (DESIGN.md Section 5): drop individual terms.
    use_reconstruction: bool = True
    use_reuse: bool = True
    use_cache_cost: bool = True


class WorkflowGraphIndex:
    """A merged, queryable view of every registered workflow DAG.

    Nodes are ``"<workflow>/<step>"`` keys.  Edges come from explicit
    step dependencies and from artifact consumption (a step consuming an
    artifact produced elsewhere — including in another workflow — gets
    an edge from the producer).  The scorer walks this graph for the
    predecessor/successor subgraphs of Eqs. 3–4.

    Besides the ``networkx`` view (kept for visualization and external
    callers), the index maintains plain-dict adjacency lists
    (:attr:`succ` / :attr:`pred`) and per-node aggregates — the scorer's
    hot path walks these directly.  Mutations are *idempotent*
    (re-registering a workflow after an operator restart or a
    split+stitch resubmit never duplicates consumer or output entries)
    and are broadcast to registered listeners as precise change sets so
    incremental scorers can invalidate only what actually moved.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        #: adjacency lists (insertion-ordered, duplicate-free) — the
        #: scorer's walk substrate.
        self.succ: Dict[str, List[str]] = {}
        self.pred: Dict[str, List[str]] = {}
        #: artifact uid -> producing node key
        self.producer: Dict[str, str] = {}
        #: artifact uid -> consuming node keys
        self.consumers: Dict[str, List[str]] = {}
        #: artifact uid -> ArtifactSpec
        self.artifacts: Dict[str, ArtifactSpec] = {}
        #: node key -> resource consumption w_i (cpu-cores x seconds)
        self.work: Dict[str, float] = {}
        #: node key -> total degree in the merged graph (aggregate kept
        #: in step with edge insertions).
        self.degree: Dict[str, int] = {}
        #: node key -> output artifact uids
        self.node_outputs: Dict[str, List[str]] = {}
        #: node keys whose step already finished — the "past usage"
        #: side of the paper's past/future analysis: a consumer that has
        #: already run contributes no future reuse value.
        self.done: Set[str] = set()
        self._edges: Set[Tuple[str, str]] = set()
        self._listeners: List[object] = []

    # ------------------------------------------------------------ listeners

    def add_listener(self, listener: object) -> None:
        """Subscribe to change events.  Listeners may implement
        ``on_graph_changed(nodes, artifacts)`` and ``on_done(node)``."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def _notify_graph_changed(self, nodes: Set[str], artifacts: Set[str]) -> None:
        for listener in self._listeners:
            hook = getattr(listener, "on_graph_changed", None)
            if hook is not None:
                hook(nodes, artifacts)

    # ------------------------------------------------------------ mutations

    def _ensure_node(self, node: str, changed: Set[str]) -> None:
        if node not in self.succ:
            self.succ[node] = []
            self.pred[node] = []
            self.degree[node] = 0
            self.graph.add_node(node)
            changed.add(node)

    def _add_edge(self, src: str, dst: str, changed: Set[str]) -> None:
        self._ensure_node(src, changed)
        self._ensure_node(dst, changed)
        if (src, dst) in self._edges:
            return
        self._edges.add((src, dst))
        self.succ[src].append(dst)
        self.pred[dst].append(src)
        self.degree[src] += 1
        self.degree[dst] += 1
        self.graph.add_edge(src, dst)
        changed.add(src)
        changed.add(dst)

    def mark_done(self, node_key: str) -> None:
        if node_key in self.done:
            return
        self.done.add(node_key)
        for listener in self._listeners:
            hook = getattr(listener, "on_done", None)
            if hook is not None:
                hook(node_key)

    def register(self, workflow: ExecutableWorkflow) -> None:
        changed_nodes: Set[str] = set()
        changed_artifacts: Set[str] = set()
        prefix = workflow.name
        for step in workflow.steps.values():
            node = f"{prefix}/{step.name}"
            self._ensure_node(node, changed_nodes)
            work = max(step.requests.cpu, 1.0) * step.duration_s
            if self.work.get(node) != work:
                self.work[node] = work
                changed_nodes.add(node)
            outputs = self.node_outputs.setdefault(node, [])
            for artifact in step.outputs:
                if self.producer.get(artifact.uid) != node:
                    self.producer[artifact.uid] = node
                    changed_nodes.add(node)
                    changed_artifacts.add(artifact.uid)
                previous = self.artifacts.get(artifact.uid)
                if previous is None or previous.size_bytes != artifact.size_bytes:
                    changed_artifacts.add(artifact.uid)
                self.artifacts[artifact.uid] = artifact
                if artifact.uid not in outputs:
                    outputs.append(artifact.uid)
                    # node's output set feeds the G_p truncation
                    # predicate, so walks through it must re-run.
                    changed_nodes.add(node)
                    changed_artifacts.add(artifact.uid)
        for step in workflow.steps.values():
            node = f"{prefix}/{step.name}"
            for dep in step.dependencies:
                self._add_edge(f"{prefix}/{dep}", node, changed_nodes)
            for artifact in step.inputs:
                self.artifacts.setdefault(artifact.uid, artifact)
                consumers = self.consumers.setdefault(artifact.uid, [])
                if node not in consumers:
                    consumers.append(node)
                    changed_artifacts.add(artifact.uid)
                producer = self.producer.get(artifact.uid)
                if producer is not None and producer != node:
                    self._add_edge(producer, node, changed_nodes)
        if changed_nodes or changed_artifacts:
            self._notify_graph_changed(changed_nodes, changed_artifacts)

    def has_artifact(self, uid: str) -> bool:
        return uid in self.artifacts


@dataclass
class ArtifactScorer:
    """Computes L, F, V and I for artifacts over a graph index.

    This is the from-scratch reference: every call walks the index's
    adjacency lists anew.  ``metrics`` (optional) records score-compute
    counters; ``timer`` (optional, e.g. ``time.perf_counter``) adds a
    compute-latency histogram — left unset in simulations so metric
    snapshots stay deterministic.
    """

    index: WorkflowGraphIndex
    weights: ScoreWeights = field(default_factory=ScoreWeights)
    metrics: Optional[MetricsRegistry] = None
    timer: Optional[Callable[[], float]] = None

    def __post_init__(self) -> None:
        self._computes = (
            self.metrics.counter(
                "cache_score_computes_total",
                "From-scratch L/F determinant computations",
            )
            if self.metrics is not None
            else None
        )
        self._latency = (
            self.metrics.histogram(
                "cache_score_seconds",
                "Wall-clock latency of one determinant computation",
                buckets=HOT_PATH_BUCKETS,
            )
            if self.metrics is not None and self.timer is not None
            else None
        )

    # ------------------------------------------------------------- subgraphs

    def _walk(
        self,
        start: str,
        forward: bool,
        truncate: Optional[Callable[[str], bool]] = None,
    ) -> Tuple[Dict[str, int], Set[str]]:
        """Bounded BFS over the index adjacency lists.

        Returns ``(distances, examined)``: nodes within ``horizon`` hops
        with their distance, plus every node whose state the walk
        *consulted* — including truncated nodes that were excluded from
        the subgraph.  The examined set is exactly the support an
        incremental scorer must watch for invalidation: any change
        outside it cannot alter the walk's outcome.

        ``truncate(node)`` cuts the walk at that node: a predecessor
        whose artifact is already cached is *excluded* (and nothing
        beyond it explored), because rebuilding u never needs to re-run
        it — the paper's property (b): G_p is cut at jobs whose artifact
        is cached.
        """
        adjacency = self.index.succ if forward else self.index.pred
        if start not in adjacency:
            return {}, {start}
        distances = {start: 0}
        examined = {start}
        frontier = [start]
        for depth in range(1, self.weights.horizon + 1):
            if not frontier:
                break
            next_frontier: List[str] = []
            for node in frontier:
                for nbr in adjacency.get(node, ()):
                    if nbr in distances:
                        continue
                    examined.add(nbr)
                    if truncate is not None and truncate(nbr):
                        continue
                    distances[nbr] = depth
                    next_frontier.append(nbr)
            frontier = next_frontier
        return distances, examined

    def _pred_walk(
        self, uid: str, is_cached: Callable[[str], bool]
    ) -> Tuple[Optional[str], Dict[str, int], Set[str]]:
        producer = self.index.producer.get(uid)
        if producer is None:
            return None, {}, set()

        node_outputs = self.index.node_outputs

        def truncate(node: str) -> bool:
            return any(
                is_cached(out) for out in node_outputs.get(node, ()) if out != uid
            )

        distances, examined = self._walk(producer, forward=False, truncate=truncate)
        return producer, distances, examined

    def predecessor_subgraph(
        self, uid: str, is_cached: Callable[[str], bool]
    ) -> List[str]:
        """G_p for artifact ``uid``: bounded, truncated at cached outputs."""
        _, distances, _ = self._pred_walk(uid, is_cached)
        return sorted(distances)

    def successor_subgraph(self, uid: str) -> Dict[str, int]:
        """G_s for ``uid``: bounded forward BFS with distances kappa."""
        producer = self.index.producer.get(uid)
        if producer is None:
            # External artifact: successors are its direct consumers.
            return {node: 1 for node in self.index.consumers.get(uid, [])}
        distances, _ = self._walk(producer, forward=True)
        return distances

    # ------------------------------------------------- determinant kernels

    def _compute_L(
        self, uid: str, is_cached: Callable[[str], bool]
    ) -> Tuple[float, Set[str]]:
        """L(u) per Eq. 3, plus the walk's support set."""
        producer, distances, examined = self._pred_walk(uid, is_cached)
        if producer is None:
            return 0.0, examined
        if len(distances) < 2:
            # A source artifact (raw data / single producer) still costs
            # its producer's own work to rebuild.
            return self.index.work.get(producer, 0.0), examined
        succ = self.index.succ
        pred = self.index.pred
        work = self.index.work
        nodes = sorted(distances)
        degree = {
            node: sum(1 for nbr in succ.get(node, ()) if nbr in distances)
            + sum(1 for nbr in pred.get(node, ()) if nbr in distances)
            for node in nodes
        }
        total = 0.0
        for i in nodes:
            w_i = work.get(i, 0.0)
            d_i = degree[i]
            for j in succ.get(i, ()):
                if j in distances:
                    total += w_i + d_i * degree[j]
        # Include the producer's own work so L never underestimates the
        # cost of the final re-computation itself.
        total += work.get(producer, 0.0)
        return total, examined

    def _compute_F(self, uid: str) -> Tuple[float, Set[str]]:
        """F(u) per Eqs. 4–5, plus the walk's support set.

        Consumers whose step has already executed are excluded: the
        paper's cache value analysis spans "past usage, future usage,
        and the cost-effectiveness of caching", and an artifact whose
        readers have all run has no remaining reuse value.
        """
        index = self.index
        producer = index.producer.get(uid)
        all_consumers = index.consumers.get(uid, [])
        if producer is None:
            distances: Dict[str, int] = {node: 1 for node in all_consumers}
            examined: Set[str] = set(all_consumers)
        else:
            distances, examined = self._walk(producer, forward=True)
            # The done-status of every consumer feeds the reuse-event
            # flag r, so consumers belong to the support set even when
            # outside the bounded walk.
            examined.update(all_consumers)
        consumers = {c for c in all_consumers if c not in index.done}
        if not consumers:
            return 0.0, examined
        producer_succ = set(index.succ.get(producer, ())) if producer else set()
        total = 0.0
        for node, kappa in distances.items():
            if node == producer or kappa == 0 or node in index.done:
                continue
            # zeta = diag(d) - A; off-diagonal magnitude is the edge
            # weight between the producer and node (1 if adjacent).
            if producer is not None and node in producer_succ:
                zeta = 1.0
            elif producer is None and node in consumers:
                zeta = 1.0
            else:
                zeta = 0.0
            total += (1.0 / kappa) * (zeta + 1.0)
        return total, examined

    def _timed(self, kernel, *args) -> Tuple[float, Set[str]]:
        if self._computes is not None:
            self._computes.inc()
        if self._latency is None:
            return kernel(*args)
        started = self.timer()
        result = kernel(*args)
        self._latency.observe(self.timer() - started)
        return result

    # ----------------------------------------------------------- determinants

    def reconstruction_cost(
        self, uid: str, is_cached: Optional[Callable[[str], bool]] = None
    ) -> float:
        """L(u) per Eq. 3 over the truncated predecessor subgraph."""
        value, _ = self._timed(self._compute_L, uid, is_cached or _never_cached)
        return value

    def reuse_value(self, uid: str) -> float:
        """F(u) per Eqs. 4–5 over the *future* successor subgraph."""
        value, _ = self._timed(self._compute_F, uid)
        return value

    def cache_cost(self, uid: str) -> float:
        """V(u): memory consumption in units of ``cache_cost_scale``."""
        artifact = self.index.artifacts.get(uid)
        size = artifact.size_bytes if artifact else 0
        return size / self.weights.cache_cost_scale

    # -------------------------------------------------------------- Eq. (6)

    def importance(
        self, uid: str, is_cached: Optional[Callable[[str], bool]] = None
    ) -> float:
        """I(u) = alpha*log(1+L) + beta*F^2 - w*exp(-V)."""
        w = self.weights
        score = 0.0
        if w.use_reconstruction:
            score += w.alpha * math.log1p(self.reconstruction_cost(uid, is_cached))
        if w.use_reuse:
            score += w.beta * self.reuse_value(uid) ** 2
        if w.use_cache_cost:
            score -= w.cache_cost_weight * math.exp(-self.cache_cost(uid))
        return score

    def breakdown(
        self, uid: str, is_cached: Optional[Callable[[str], bool]] = None
    ) -> Dict[str, float]:
        """All four quantities at once (useful for the score table UI)."""
        return {
            "L": self.reconstruction_cost(uid, is_cached),
            "F": self.reuse_value(uid),
            "V": self.cache_cost(uid),
            "I": self.importance(uid, is_cached),
        }


@dataclass
class IncrementalArtifactScorer(ArtifactScorer):
    """Memoizing scorer: same equations, amortized O(1) per score.

    L(u) and F(u) are cached per uid together with the *support set*
    their walk examined.  A reverse dependency index (node -> dependent
    uids) turns every change event into a precise dirty set:

    * ``register`` — invalidates uids whose support contains a touched
      node, plus artifacts whose producer/consumers/size changed;
    * ``mark_done(node)`` — invalidates F for uids whose support
      contains the node;
    * cache-state changes (store put/evict) — invalidate L for uids
      whose support contains the toggled artifact's producer (the G_p
      truncation predicate changed there).

    Bind the scorer to the store whose residency defines the truncation
    predicate with :meth:`bind_store`; ``importance(uid)`` then scores
    against live cache state.  Passing any *other* predicate falls back
    to an untracked from-scratch computation, so correctness never
    depends on the caller.  Invalidation listeners (the eviction heap
    in :class:`~repro.caching.policy.CoulerCachePolicy`) receive each
    dirty set as it forms.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self._L_memo: Dict[str, float] = {}
        self._F_memo: Dict[str, float] = {}
        self._L_support: Dict[str, Set[str]] = {}
        self._F_support: Dict[str, Set[str]] = {}
        self._L_deps: Dict[str, Set[str]] = {}
        self._F_deps: Dict[str, Set[str]] = {}
        self._store = None
        self._invalidation_listeners: List[Callable[[Set[str]], None]] = []
        if self.metrics is not None:
            self._memo_hits = self.metrics.counter(
                "cache_score_memo_hits_total", "Scores served from the memo"
            )
            self._invalidated = self.metrics.counter(
                "cache_score_invalidations_total",
                "Memoized determinants dropped by dirty-set invalidation",
            )
        else:
            self._memo_hits = None
            self._invalidated = None
        self.index.add_listener(self)

    # ------------------------------------------------------------ binding

    @property
    def bound_store(self):
        return self._store

    def bind_store(self, store) -> None:
        """Tie the truncation predicate to ``store``'s live residency."""
        if self._store is store:
            return
        if self._store is not None:
            raise ValueError("scorer is already bound to a store")
        self._store = store
        store.add_listener(self._on_store_event)
        # Anything memoized before binding assumed an empty cache.
        if len(store):
            self._invalidate(uids=set(self._L_memo))

    def add_invalidation_listener(self, listener: Callable[[Set[str]], None]) -> None:
        if listener not in self._invalidation_listeners:
            self._invalidation_listeners.append(listener)

    # ------------------------------------------------------ change events

    def _on_store_event(self, event: str, uid: str) -> None:
        if event in ("put", "evict"):
            producer = self.index.producer.get(uid)
            if producer is not None:
                self._invalidate(l_nodes=(producer,))
        elif event == "clear":
            self._invalidate(uids=set(self._L_memo))

    def on_graph_changed(self, nodes: Set[str], artifacts: Set[str]) -> None:
        self._invalidate(l_nodes=nodes, f_nodes=nodes, uids=artifacts)

    def on_done(self, node: str) -> None:
        self._invalidate(f_nodes=(node,))

    # ------------------------------------------------------- invalidation

    def _drop(self, uid: str, memo, support, deps) -> bool:
        if uid not in memo:
            return False
        del memo[uid]
        for node in support.pop(uid, ()):
            dependents = deps.get(node)
            if dependents is not None:
                dependents.discard(uid)
        return True

    def _invalidate(self, l_nodes=(), f_nodes=(), uids=()) -> None:
        dirty: Set[str] = set()
        for node in l_nodes:
            for uid in list(self._L_deps.get(node, ())):
                if self._drop(uid, self._L_memo, self._L_support, self._L_deps):
                    dirty.add(uid)
        for node in f_nodes:
            for uid in list(self._F_deps.get(node, ())):
                if self._drop(uid, self._F_memo, self._F_support, self._F_deps):
                    dirty.add(uid)
        for uid in uids:
            if self._drop(uid, self._L_memo, self._L_support, self._L_deps):
                dirty.add(uid)
            if self._drop(uid, self._F_memo, self._F_support, self._F_deps):
                dirty.add(uid)
        if dirty:
            if self._invalidated is not None:
                self._invalidated.inc(len(dirty))
            for listener in self._invalidation_listeners:
                listener(set(dirty))

    # --------------------------------------------------- memoized scoring

    def _tracked_predicate(self) -> Callable[[str], bool]:
        return self._store.contains if self._store is not None else _never_cached

    def _tracks(self, is_cached: Optional[Callable[[str], bool]]) -> bool:
        if is_cached is None:
            return True
        if self._store is not None:
            return is_cached == self._store.contains
        return False

    def reconstruction_cost(
        self, uid: str, is_cached: Optional[Callable[[str], bool]] = None
    ) -> float:
        if not self._tracks(is_cached):
            return super().reconstruction_cost(uid, is_cached)
        cached = self._L_memo.get(uid)
        if cached is not None:
            if self._memo_hits is not None:
                self._memo_hits.inc()
            return cached
        value, examined = self._timed(
            self._compute_L, uid, self._tracked_predicate()
        )
        self._L_memo[uid] = value
        self._L_support[uid] = examined
        for node in examined:
            self._L_deps.setdefault(node, set()).add(uid)
        return value

    def reuse_value(self, uid: str) -> float:
        cached = self._F_memo.get(uid)
        if cached is not None:
            if self._memo_hits is not None:
                self._memo_hits.inc()
            return cached
        value, examined = self._timed(self._compute_F, uid)
        self._F_memo[uid] = value
        self._F_support[uid] = examined
        for node in examined:
            self._F_deps.setdefault(node, set()).add(uid)
        return value
