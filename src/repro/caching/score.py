"""Caching importance factor — Eqs. (3)–(6) of the paper.

For an artifact ``u`` produced by a workflow step, the *caching
importance factor* is

    I(u) = alpha * log(1 + L(u)) + beta * F(u)**2 - exp(-V(u))

with three determinants:

``L(u)`` (Eq. 3) — reconstruction cost over the predecessor subgraph
``G_p`` (the preceding ``n`` layers of jobs from u's producer, truncated
at any job whose artifact is already cached):
``L = sum_ij A_ij * (w_i + d_i * d_j)`` where ``A`` is the subgraph
adjacency matrix, ``w_i`` the resource consumption of job i, and ``d``
node degrees.

``F(u)`` (Eqs. 4–5) — reuse value over the successor subgraph ``G_s``:
``F = sum_i (r / kappa_ui) * (zeta_ui + 1)`` with ``kappa_ui`` the
distance from u's producer to job i, ``r`` a boolean marking whether a
reuse event occurs for u, and ``zeta = diag(d) - A`` (the graph
Laplacian).  The paper leaves ``zeta_ui``'s sign convention implicit;
``zeta`` entries off the diagonal are ``-A_ui``, which would zero out
direct successors, so we take the magnitude ``|zeta_ui|`` — direct
dependents weigh ``2/kappa`` and transitive ones ``1/kappa``.  This is
the one place the implementation interprets rather than transcribes.

``V(u)`` (cache cost) — u's memory consumption, normalized by a
configurable scale so ``exp(-V)`` spans a useful range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import networkx as nx

from ..engine.spec import ArtifactSpec, ExecutableWorkflow


@dataclass(frozen=True)
class ScoreWeights:
    """Weights of Eq. 6.  The paper's production choice is alpha=1.5, beta=1."""

    alpha: float = 1.5
    beta: float = 1.0
    #: Byte scale for V(u); V is expressed in units of this many bytes.
    cache_cost_scale: float = float(2**30)
    #: Subgraph horizon n: how many layers of predecessors/successors
    #: are considered representative (paper property (a) of G_p).
    horizon: int = 3
    #: Ablation switches (DESIGN.md Section 5): drop individual terms.
    use_reconstruction: bool = True
    use_reuse: bool = True
    use_cache_cost: bool = True


class WorkflowGraphIndex:
    """A merged, queryable view of every registered workflow DAG.

    Nodes are ``"<workflow>/<step>"`` keys.  Edges come from explicit
    step dependencies and from artifact consumption (a step consuming an
    artifact produced elsewhere — including in another workflow — gets
    an edge from the producer).  The scorer walks this graph for the
    predecessor/successor subgraphs of Eqs. 3–4.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        #: artifact uid -> producing node key
        self.producer: Dict[str, str] = {}
        #: artifact uid -> consuming node keys
        self.consumers: Dict[str, List[str]] = {}
        #: artifact uid -> ArtifactSpec
        self.artifacts: Dict[str, ArtifactSpec] = {}
        #: node key -> resource consumption w_i (cpu-cores x seconds)
        self.work: Dict[str, float] = {}
        #: node key -> output artifact uids
        self.node_outputs: Dict[str, List[str]] = {}
        #: node keys whose step already finished — the "past usage"
        #: side of the paper's past/future analysis: a consumer that has
        #: already run contributes no future reuse value.
        self.done: Set[str] = set()

    def mark_done(self, node_key: str) -> None:
        self.done.add(node_key)

    def register(self, workflow: ExecutableWorkflow) -> None:
        prefix = workflow.name
        for step in workflow.steps.values():
            node = f"{prefix}/{step.name}"
            self.graph.add_node(node)
            self.work[node] = max(step.requests.cpu, 1.0) * step.duration_s
            self.node_outputs.setdefault(node, [])
            for artifact in step.outputs:
                self.producer[artifact.uid] = node
                self.artifacts[artifact.uid] = artifact
                self.node_outputs[node].append(artifact.uid)
        for step in workflow.steps.values():
            node = f"{prefix}/{step.name}"
            for dep in step.dependencies:
                self.graph.add_edge(f"{prefix}/{dep}", node)
            for artifact in step.inputs:
                self.artifacts.setdefault(artifact.uid, artifact)
                self.consumers.setdefault(artifact.uid, []).append(node)
                producer = self.producer.get(artifact.uid)
                if producer is not None and producer != node:
                    self.graph.add_edge(producer, node)

    def has_artifact(self, uid: str) -> bool:
        return uid in self.artifacts


@dataclass
class ArtifactScorer:
    """Computes L, F, V and I for artifacts over a graph index."""

    index: WorkflowGraphIndex
    weights: ScoreWeights = field(default_factory=ScoreWeights)

    # ------------------------------------------------------------- subgraphs

    def _bounded_bfs(
        self,
        start: str,
        horizon: int,
        forward: bool,
        truncate: Optional[Callable[[str], bool]] = None,
    ) -> Dict[str, int]:
        """Nodes within ``horizon`` hops of ``start`` with their distance.

        ``truncate(node)`` cuts the walk at that node: a predecessor
        whose artifact is already cached is *excluded* (and nothing
        beyond it explored), because rebuilding u never needs to re-run
        it — the paper's property (b): G_p is cut at jobs whose artifact
        is cached.
        """
        graph = self.index.graph
        if start not in graph:
            return {}
        neighbors = graph.successors if forward else graph.predecessors
        distances = {start: 0}
        frontier = [start]
        depth = 0
        while frontier and depth < horizon:
            depth += 1
            next_frontier = []
            for node in frontier:
                for nbr in neighbors(node):
                    if nbr in distances:
                        continue
                    if truncate is not None and truncate(nbr):
                        continue
                    distances[nbr] = depth
                    next_frontier.append(nbr)
            frontier = next_frontier
        return distances

    def predecessor_subgraph(
        self, uid: str, is_cached: Callable[[str], bool]
    ) -> List[str]:
        """G_p for artifact ``uid``: bounded, truncated at cached outputs."""
        producer = self.index.producer.get(uid)
        if producer is None:
            return []

        def truncate(node: str) -> bool:
            return any(
                is_cached(out)
                for out in self.index.node_outputs.get(node, [])
                if out != uid
            )

        distances = self._bounded_bfs(
            producer, self.weights.horizon, forward=False, truncate=truncate
        )
        return sorted(distances)

    def successor_subgraph(self, uid: str) -> Dict[str, int]:
        """G_s for ``uid``: bounded forward BFS with distances kappa."""
        producer = self.index.producer.get(uid)
        if producer is None:
            # External artifact: successors are its direct consumers.
            return {node: 1 for node in self.index.consumers.get(uid, [])}
        return self._bounded_bfs(producer, self.weights.horizon, forward=True)

    # ----------------------------------------------------------- determinants

    def reconstruction_cost(self, uid: str, is_cached: Callable[[str], bool]) -> float:
        """L(u) per Eq. 3 over the truncated predecessor subgraph."""
        nodes = self.predecessor_subgraph(uid, is_cached)
        if len(nodes) < 2:
            # A source artifact (raw data / single producer) still costs
            # its producer's own work to rebuild.
            producer = self.index.producer.get(uid)
            return self.index.work.get(producer, 0.0) if producer else 0.0
        sub = self.index.graph.subgraph(nodes)
        degree = dict(sub.degree())
        total = 0.0
        for i, j in sub.edges():
            total += self.index.work.get(i, 0.0) + degree[i] * degree[j]
        # Include the producer's own work so L never underestimates the
        # cost of the final re-computation itself.
        producer = self.index.producer.get(uid)
        if producer is not None:
            total += self.index.work.get(producer, 0.0)
        return total

    def reuse_value(self, uid: str) -> float:
        """F(u) per Eqs. 4–5 over the *future* successor subgraph.

        Consumers whose step has already executed are excluded: the
        paper's cache value analysis spans "past usage, future usage,
        and the cost-effectiveness of caching", and an artifact whose
        readers have all run has no remaining reuse value.
        """
        distances = self.successor_subgraph(uid)
        consumers = {
            c for c in self.index.consumers.get(uid, []) if c not in self.index.done
        }
        r = 1.0 if consumers else 0.0
        if r == 0.0:
            return 0.0
        producer = self.index.producer.get(uid)
        nodes = sorted(distances)
        sub = self.index.graph.subgraph(nodes)
        total = 0.0
        for node, kappa in distances.items():
            if node == producer or kappa == 0 or node in self.index.done:
                continue
            # zeta = diag(d) - A; off-diagonal magnitude is the edge
            # weight between the producer and node (1 if adjacent).
            if producer is not None and sub.has_edge(producer, node):
                zeta = 1.0
            elif producer is None and node in consumers:
                zeta = 1.0
            else:
                zeta = 0.0
            total += (r / kappa) * (zeta + 1.0)
        return total

    def cache_cost(self, uid: str) -> float:
        """V(u): memory consumption in units of ``cache_cost_scale``."""
        artifact = self.index.artifacts.get(uid)
        size = artifact.size_bytes if artifact else 0
        return size / self.weights.cache_cost_scale

    # -------------------------------------------------------------- Eq. (6)

    def importance(
        self, uid: str, is_cached: Optional[Callable[[str], bool]] = None
    ) -> float:
        """I(u) = alpha*log(1+L) + beta*F^2 - exp(-V)."""
        if is_cached is None:
            is_cached = lambda _uid: False  # noqa: E731
        w = self.weights
        score = 0.0
        if w.use_reconstruction:
            score += w.alpha * math.log1p(self.reconstruction_cost(uid, is_cached))
        if w.use_reuse:
            score += w.beta * self.reuse_value(uid) ** 2
        if w.use_cache_cost:
            score -= math.exp(-self.cache_cost(uid))
        return score

    def breakdown(
        self, uid: str, is_cached: Optional[Callable[[str], bool]] = None
    ) -> Dict[str, float]:
        """All four quantities at once (useful for the score table UI)."""
        if is_cached is None:
            is_cached = lambda _uid: False  # noqa: E731
        reconstruction = self.reconstruction_cost(uid, is_cached)
        reuse = self.reuse_value(uid)
        cost = self.cache_cost(uid)
        return {
            "L": reconstruction,
            "F": reuse,
            "V": cost,
            "I": self.importance(uid, is_cached),
        }
