"""Cache admission/eviction policies, including Algorithm 2.

A :class:`CachePolicy` decides, when a new artifact is produced, whether
it enters the store and what (if anything) is evicted to make room.
:class:`CoulerCachePolicy` implements the paper's Algorithm 2: admit
while space remains; under pressure, compare caching importance factors
(Eq. 6) and evict the minimum-scored artifacts while the newcomer still
beats them; give up on the newcomer the moment it is itself the minimum.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..engine.spec import ArtifactSpec
from .artifact_store import ArtifactStore
from .score import ArtifactScorer


class CachePolicy(ABC):
    """Strategy object consulted on every artifact production."""

    name: str = "abstract"

    @abstractmethod
    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer],
        now: float,
    ) -> bool:
        """Try to cache ``artifact``; returns True if it was stored."""


class CoulerCachePolicy(CachePolicy):
    """Algorithm 2: importance-factor-driven dynamic caching.

    Lines 10–11 of the algorithm: while the store has room, every new
    artifact is cached.  Lines 16–31 (``NodeSelection``): under
    pressure, recompute I for the newcomer and all cached artifacts,
    then repeatedly evict the global minimum — unless the minimum *is*
    the newcomer, in which case it is rejected and the cache is left
    intact.  Scores of remaining items are recomputed after each
    removal, as the paper specifies.
    """

    name = "couler"

    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer],
        now: float,
    ) -> bool:
        if scorer is None:
            raise ValueError("CoulerCachePolicy requires an ArtifactScorer")
        if store.contains(artifact.uid):
            return True
        if not store.can_ever_fit(artifact.size_bytes):
            store.record_rejection()
            return False
        if store.fits(artifact.size_bytes):
            store.put(artifact.uid, artifact.size_bytes, artifact.kind, now)
            return True

        is_cached = store.contains
        new_score = scorer.importance(artifact.uid, is_cached)
        while not store.fits(artifact.size_bytes):
            cached_scores = {
                entry.uid: scorer.importance(entry.uid, is_cached)
                for entry in store.entries()
            }
            if not cached_scores:
                break
            min_uid = min(cached_scores, key=lambda uid: (cached_scores[uid], uid))
            if cached_scores[min_uid] >= new_score:
                # The newcomer is the weakest item; reject it (line 29).
                store.record_rejection()
                return False
            store.evict(min_uid)
            # Eviction changes G_p truncation for the survivors, so
            # scores are recomputed on the next loop iteration.
        if store.fits(artifact.size_bytes):
            store.put(artifact.uid, artifact.size_bytes, artifact.kind, now)
            return True
        store.record_rejection()
        return False


class NoCachePolicy(CachePolicy):
    """The "No" baseline: never cache anything."""

    name = "no"

    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer],
        now: float,
    ) -> bool:
        return False


class CacheAllPolicy(CachePolicy):
    """The "ALL" baseline: cache every artifact, evicting nothing.

    Meant to run against an unbounded store; with a bounded store it
    simply stops admitting once full (no eviction), which models a
    naive operator filling Alluxio to the brim.
    """

    name = "all"

    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer],
        now: float,
    ) -> bool:
        if store.contains(artifact.uid):
            return True
        if not store.can_ever_fit(artifact.size_bytes) or not store.fits(
            artifact.size_bytes
        ):
            store.record_rejection()
            return False
        store.put(artifact.uid, artifact.size_bytes, artifact.kind, now)
        return True


class FIFOCachePolicy(CachePolicy):
    """First-in-first-out eviction under pressure."""

    name = "fifo"

    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer],
        now: float,
    ) -> bool:
        if store.contains(artifact.uid):
            return True
        if not store.can_ever_fit(artifact.size_bytes):
            store.record_rejection()
            return False
        while not store.fits(artifact.size_bytes) and len(store):
            oldest = min(store.entries(), key=lambda e: e.insert_seq)
            store.evict(oldest.uid)
        store.put(artifact.uid, artifact.size_bytes, artifact.kind, now)
        return True


class LRUCachePolicy(CachePolicy):
    """Least-recently-used eviction under pressure."""

    name = "lru"

    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer],
        now: float,
    ) -> bool:
        if store.contains(artifact.uid):
            return True
        if not store.can_ever_fit(artifact.size_bytes):
            store.record_rejection()
            return False
        while not store.fits(artifact.size_bytes) and len(store):
            stalest = min(
                store.entries(), key=lambda e: (e.last_access, e.insert_seq)
            )
            store.evict(stalest.uid)
        store.put(artifact.uid, artifact.size_bytes, artifact.kind, now)
        return True


POLICY_REGISTRY = {
    "no": NoCachePolicy,
    "all": CacheAllPolicy,
    "couler": CoulerCachePolicy,
    "fifo": FIFOCachePolicy,
    "lru": LRUCachePolicy,
}


def make_policy(name: str) -> CachePolicy:
    """Instantiate a registered policy by its short name."""
    try:
        return POLICY_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; choose from {sorted(POLICY_REGISTRY)}"
        ) from None
