"""Cache admission/eviction policies, including Algorithm 2.

A :class:`CachePolicy` decides, when a new artifact is produced, whether
it enters the store and what (if anything) is evicted to make room.
The v1 policy API is a single method over a context object::

    class MyPolicy(CachePolicy):
        name = "mine"

        def decide(self, decision: CacheDecision) -> bool:
            ...

:class:`CacheDecision` carries the artifact, store, scorer, virtual
time and metrics registry, and collects the outcome (admitted flag,
evicted uids, the newcomer's last computed score) so callers stop
duck-typing positional tuples.  Policies may additionally override the
:meth:`CachePolicy.on_evict` / :meth:`CachePolicy.on_external_read`
hooks.  The legacy positional ``admit(artifact, store, scorer, now)``
signature keeps working in both directions — old callers are adapted
into a :class:`CacheDecision`, and old-style policy subclasses that
only override ``admit`` are bridged (with a one-time
``DeprecationWarning``) when invoked through ``decide``.

:class:`CoulerCachePolicy` implements the paper's Algorithm 2: admit
while space remains; under pressure, compare caching importance factors
(Eq. 6) and evict the minimum-scored artifacts while the newcomer still
beats them; give up on the newcomer the moment it is itself the minimum.
With an :class:`~repro.caching.score.IncrementalArtifactScorer` bound
to the store, the under-pressure loop runs over a lazy-invalidation
min-heap — each eviction costs O(dirty + log n) instead of a full
O(|store|) rescore.
"""

from __future__ import annotations

import heapq
import os
import sys
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..engine.spec import ArtifactSpec
from ..obs.metrics import MetricsRegistry
from .artifact_store import ArtifactStore
from .score import ArtifactScorer, IncrementalArtifactScorer


@dataclass
class CacheDecision:
    """Context (and outcome record) of one admission decision.

    Inputs are filled by the caller; ``admitted`` / ``evicted`` /
    ``score`` are written by the policy as the decision unfolds, so the
    cache manager's decision log and the verification oracles can
    replay exactly what happened.
    """

    artifact: ArtifactSpec
    store: ArtifactStore
    scorer: Optional[ArtifactScorer] = None
    now: float = 0.0
    metrics: Optional[MetricsRegistry] = None
    #: Outcome: whether the artifact ended up resident.
    admitted: Optional[bool] = None
    #: Outcome: uids this decision evicted, in eviction order.
    evicted: List[str] = field(default_factory=list)
    #: Outcome: the newcomer's most recent importance score (Couler
    #: policy only; recomputed after every eviction, since truncation
    #: of G_p changes it).
    score: Optional[float] = None

    def note_eviction(self, uid: str) -> None:
        self.evicted.append(uid)


def _caller_stacklevel() -> int:
    """Stacklevel of the first frame outside the caching package.

    The legacy-``admit`` DeprecationWarning fires inside
    :meth:`CachePolicy.decide`, but the useful location is the *user's*
    line — which may sit several frames up when the policy is driven
    through :class:`~repro.caching.manager.CacheManager` internals
    (``fetch`` → ``_decide`` → ``on_external_read`` → ``decide``).
    Walk outward past every frame that lives in this package and return
    the matching ``stacklevel`` for a ``warnings.warn`` issued in
    ``decide`` (counting ``decide`` itself as level 1).
    """
    package_dir = os.path.dirname(os.path.abspath(__file__))
    level = 2  # decide()'s caller
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - decide() called at top level
        return 2
    while frame is not None:
        frame_dir = os.path.dirname(os.path.abspath(frame.f_code.co_filename))
        if frame_dir != package_dir:
            return level
        frame = frame.f_back
        level += 1
    return level  # pragma: no cover - whole stack inside the package


class CachePolicy:
    """Strategy object consulted on every artifact production.

    Subclasses implement :meth:`decide`; overriding the legacy
    :meth:`admit` instead still works through a deprecation bridge.
    """

    name: str = "abstract"

    #: Legacy policy classes that have already been warned about.
    _legacy_warned: Set[type] = set()

    def decide(self, decision: CacheDecision) -> bool:
        """Try to cache ``decision.artifact``; True if it was stored."""
        cls = type(self)
        if cls.admit is not CachePolicy.admit:
            # Old-style subclass: only the positional admit() exists.
            if cls not in CachePolicy._legacy_warned:
                CachePolicy._legacy_warned.add(cls)
                warnings.warn(
                    f"{cls.__name__} overrides the legacy positional "
                    "admit(artifact, store, scorer, now) API; implement "
                    "decide(CacheDecision) instead",
                    DeprecationWarning,
                    stacklevel=_caller_stacklevel(),
                )
            admitted = self.admit(
                decision.artifact, decision.store, decision.scorer, decision.now
            )
            decision.admitted = admitted
            return admitted
        raise NotImplementedError(f"{cls.__name__} must implement decide()")

    def admit(
        self,
        artifact: ArtifactSpec,
        store: ArtifactStore,
        scorer: Optional[ArtifactScorer] = None,
        now: float = 0.0,
    ) -> bool:
        """Legacy positional entry point; adapts into :meth:`decide`."""
        return self.decide(
            CacheDecision(artifact=artifact, store=store, scorer=scorer, now=now)
        )

    # ---------------------------------------------------------------- hooks

    def on_evict(self, uid: str) -> None:
        """An artifact left the store (any cause).  Default: no-op."""

    def on_external_read(self, decision: CacheDecision) -> bool:
        """A read missed the cache and went to remote storage.

        The default implements read-through admission (Alluxio
        semantics): offer the artifact via :meth:`decide` so later
        readers of the same data hit.  Policies that want different
        read-path behavior override this instead of duck-typing the
        manager.
        """
        return self.decide(decision)


class CoulerCachePolicy(CachePolicy):
    """Algorithm 2: importance-factor-driven dynamic caching.

    Lines 10–11 of the algorithm: while the store has room, every new
    artifact is cached.  Lines 16–31 (``NodeSelection``): under
    pressure, compute I for the newcomer and all cached artifacts, then
    repeatedly evict the global minimum — unless the minimum *is* the
    newcomer, in which case it is rejected and the cache is left
    intact.  After each eviction the affected scores (including the
    newcomer's, whose G_p truncation just changed) are recomputed, as
    the paper specifies.

    Two executions of the same semantics:

    * with a bound :class:`IncrementalArtifactScorer`, a persistent
      min-heap ordered by ``(score, uid)`` is kept in lockstep with the
      store; eviction-time invalidations arrive as dirty sets and only
      those entries are rescored and re-pushed, so each loop iteration
      is O(dirty + log n);
    * with any other scorer, the classic full rescan recomputes every
      resident score per iteration (the from-scratch reference the
      ``scores`` verify oracle compares against).
    """

    name = "couler"

    def __init__(self) -> None:
        self._heap: List[Tuple[float, str, int]] = []
        self._entry_version: Dict[str, int] = {}
        self._version_counter = 0
        self._dirty: Set[str] = set()
        self._store: Optional[ArtifactStore] = None
        self._scorer: Optional[IncrementalArtifactScorer] = None

    # ------------------------------------------------------ heap plumbing

    def note_dirty(self, uids: Set[str]) -> None:
        """Invalidation callback from the incremental scorer."""
        self._dirty.update(uids)

    def _push(self, uid: str, score: float) -> None:
        self._version_counter += 1
        self._entry_version[uid] = self._version_counter
        heapq.heappush(self._heap, (score, uid, self._version_counter))

    def _on_store_event(self, event: str, uid: str) -> None:
        if self._store is None or self._scorer is None:
            return
        if event == "put":
            self._push(uid, self._scorer.importance(uid, self._store.contains))
        elif event == "evict":
            self._entry_version.pop(uid, None)
        elif event == "clear":
            self._heap = []
            self._entry_version = {}
            self._dirty = set()

    def _bind(self, store: ArtifactStore, scorer: IncrementalArtifactScorer) -> None:
        if self._store is store and self._scorer is scorer:
            return
        self._store = store
        self._scorer = scorer
        self._heap = []
        self._entry_version = {}
        self._dirty = set()
        scorer.add_invalidation_listener(self.note_dirty)
        store.add_listener(self._on_store_event)
        for entry in sorted(store.entries(), key=lambda e: e.uid):
            self._push(entry.uid, scorer.importance(entry.uid, store.contains))

    def _flush_dirty(self) -> None:
        """Re-push current scores for invalidated resident uids.

        Heap invariant: after a flush, every resident uid's
        latest-version entry carries its *current* score, so the first
        non-superseded pop is the true ``(score, uid)`` minimum.
        """
        if not self._dirty:
            return
        store, scorer = self._store, self._scorer
        for uid in sorted(self._dirty):
            if store.contains(uid):
                self._push(uid, scorer.importance(uid, store.contains))
        self._dirty.clear()

    def _pop_min(self) -> Optional[Tuple[float, str]]:
        while self._heap:
            score, uid, version = heapq.heappop(self._heap)
            if self._entry_version.get(uid) != version:
                continue  # superseded or evicted — lazily discarded
            return score, uid
        return None

    # ----------------------------------------------------------- decision

    def decide(self, decision: CacheDecision) -> bool:
        artifact, store, scorer = decision.artifact, decision.store, decision.scorer
        if scorer is None:
            raise ValueError("CoulerCachePolicy requires an ArtifactScorer")
        if store.contains(artifact.uid):
            decision.admitted = True
            return True
        if not store.can_ever_fit(artifact.size_bytes):
            store.record_rejection()
            decision.admitted = False
            return False
        incremental = (
            isinstance(scorer, IncrementalArtifactScorer)
            and scorer.bound_store is store
        )
        if incremental:
            admitted = self._decide_heap(decision)
        else:
            admitted = self._decide_rescan(decision)
        decision.admitted = admitted
        return admitted

    def _decide_heap(self, decision: CacheDecision) -> bool:
        artifact, store = decision.artifact, decision.store
        scorer: IncrementalArtifactScorer = decision.scorer
        self._bind(store, scorer)
        while not store.fits(artifact.size_bytes):
            self._flush_dirty()
            new_score = scorer.importance(artifact.uid, store.contains)
            decision.score = new_score
            top = self._pop_min()
            if top is None:
                break
            score, uid = top
            if score >= new_score:
                # The newcomer is the weakest item; reject it (line 29)
                # and put the popped minimum back.
                self._push(uid, score)
                store.record_rejection()
                return False
            store.evict(uid)
            decision.note_eviction(uid)
            # The store event invalidated the dirty set (G_p truncation
            # changed for survivors and newcomer alike); the next
            # iteration flushes it and rescores only those entries.
        if store.fits(artifact.size_bytes):
            store.put(artifact.uid, artifact.size_bytes, artifact.kind, decision.now)
            return True
        store.record_rejection()
        return False

    def _decide_rescan(self, decision: CacheDecision) -> bool:
        artifact, store, scorer = decision.artifact, decision.store, decision.scorer
        is_cached = store.contains
        while not store.fits(artifact.size_bytes):
            new_score = scorer.importance(artifact.uid, is_cached)
            decision.score = new_score
            cached_scores = {
                entry.uid: scorer.importance(entry.uid, is_cached)
                for entry in store.entries()
            }
            if not cached_scores:
                break
            min_uid = min(cached_scores, key=lambda uid: (cached_scores[uid], uid))
            if cached_scores[min_uid] >= new_score:
                # The newcomer is the weakest item; reject it (line 29).
                store.record_rejection()
                return False
            store.evict(min_uid)
            decision.note_eviction(min_uid)
            # Eviction changes G_p truncation for the survivors and the
            # newcomer, so every score is recomputed next iteration.
        if store.fits(artifact.size_bytes):
            store.put(artifact.uid, artifact.size_bytes, artifact.kind, decision.now)
            return True
        store.record_rejection()
        return False


class NoCachePolicy(CachePolicy):
    """The "No" baseline: never cache anything."""

    name = "no"

    def decide(self, decision: CacheDecision) -> bool:
        decision.admitted = False
        return False


class CacheAllPolicy(CachePolicy):
    """The "ALL" baseline: cache every artifact, evicting nothing.

    Meant to run against an unbounded store; with a bounded store it
    simply stops admitting once full (no eviction), which models a
    naive operator filling Alluxio to the brim.
    """

    name = "all"

    def decide(self, decision: CacheDecision) -> bool:
        artifact, store = decision.artifact, decision.store
        if store.contains(artifact.uid):
            decision.admitted = True
            return True
        if not store.can_ever_fit(artifact.size_bytes) or not store.fits(
            artifact.size_bytes
        ):
            store.record_rejection()
            decision.admitted = False
            return False
        store.put(artifact.uid, artifact.size_bytes, artifact.kind, decision.now)
        decision.admitted = True
        return True


class FIFOCachePolicy(CachePolicy):
    """First-in-first-out eviction under pressure."""

    name = "fifo"

    def decide(self, decision: CacheDecision) -> bool:
        artifact, store = decision.artifact, decision.store
        if store.contains(artifact.uid):
            decision.admitted = True
            return True
        if not store.can_ever_fit(artifact.size_bytes):
            store.record_rejection()
            decision.admitted = False
            return False
        while not store.fits(artifact.size_bytes) and len(store):
            oldest = min(store.entries(), key=lambda e: e.insert_seq)
            store.evict(oldest.uid)
            decision.note_eviction(oldest.uid)
        store.put(artifact.uid, artifact.size_bytes, artifact.kind, decision.now)
        decision.admitted = True
        return True


class LRUCachePolicy(CachePolicy):
    """Least-recently-used eviction under pressure."""

    name = "lru"

    def decide(self, decision: CacheDecision) -> bool:
        artifact, store = decision.artifact, decision.store
        if store.contains(artifact.uid):
            decision.admitted = True
            return True
        if not store.can_ever_fit(artifact.size_bytes):
            store.record_rejection()
            decision.admitted = False
            return False
        while not store.fits(artifact.size_bytes) and len(store):
            stalest = min(
                store.entries(), key=lambda e: (e.last_access, e.insert_seq)
            )
            store.evict(stalest.uid)
            decision.note_eviction(stalest.uid)
        store.put(artifact.uid, artifact.size_bytes, artifact.kind, decision.now)
        decision.admitted = True
        return True


POLICY_REGISTRY = {
    "no": NoCachePolicy,
    "all": CacheAllPolicy,
    "couler": CoulerCachePolicy,
    "fifo": FIFOCachePolicy,
    "lru": LRUCachePolicy,
}


def make_policy(name: str) -> CachePolicy:
    """Instantiate a registered policy by its short name."""
    try:
        return POLICY_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; choose from {sorted(POLICY_REGISTRY)}"
        ) from None
