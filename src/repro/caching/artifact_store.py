"""Capacity-bounded in-memory artifact store (the Alluxio stand-in).

The paper delegates intermediate artifact storage to a distributed
in-memory system (Apache Alluxio) with finite capacity; cache policies
decide what stays.  :class:`ArtifactStore` tracks entries, enforces the
byte capacity, and keeps the accounting (hits / misses / evictions /
bytes) that the evaluation figures summarize.

Accounting lives in a :class:`repro.obs.metrics.MetricsRegistry` — the
single source of truth shared with the engine when one registry is
wired through the whole simulation.  :class:`CacheStats` is a
delegating view over those counters, kept for the existing call sites
(``store.stats.hits`` etc. read, and may assign, exactly as before).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..obs.metrics import Counter, MetricsRegistry

#: Store event listener: called with ``(event, uid)`` where event is
#: ``"put"``, ``"evict"`` or ``"clear"`` (uid is ``""`` for clear).
StoreListener = Callable[[str, str], None]


class CacheError(RuntimeError):
    """Base class for artifact-store failures."""


class InsufficientSpaceError(CacheError):
    """Put attempted without enough free capacity."""


class ArtifactTooLargeError(CacheError):
    """Artifact is bigger than the whole store; it can never be cached."""


@dataclass
class CacheEntry:
    uid: str
    size_bytes: int
    kind: str = "data"
    cached_at: float = 0.0
    last_access: float = 0.0
    insert_seq: int = 0
    access_count: int = 0


def _counter_property(attr: str):
    """Property that reads a backing counter and accepts the legacy
    ``stats.field += n`` mutation by applying the delta."""

    def getter(self: "CacheStats") -> int:
        counter: Counter = getattr(self, attr)
        return int(counter.total())

    def setter(self: "CacheStats", value: float) -> None:
        counter: Counter = getattr(self, attr)
        delta = value - counter.total()
        counter.inc(delta)  # negative delta raises: counters are monotonic

    return property(getter, setter)


class CacheStats:
    """Cache accounting, delegating to a metrics registry.

    The fields read (and ``+=``-mutate) like the old plain-int
    dataclass, but every value lives in registry counters
    (``cache_hits_total``, ``cache_misses_total``, ...), so a metrics
    snapshot and the experiment reports can never disagree.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._hits = self.metrics.counter(
            "cache_hits_total", "Input reads served from the cache"
        )
        self._misses = self.metrics.counter(
            "cache_misses_total", "Input reads that went to remote storage"
        )
        self._evictions = self.metrics.counter(
            "cache_evictions_total", "Artifacts evicted to make room"
        )
        self._insertions = self.metrics.counter(
            "cache_insertions_total", "Artifacts admitted into the store"
        )
        self._rejected = self.metrics.counter(
            "cache_rejected_total", "Artifacts the policy declined to admit"
        )
        self._bytes_evicted = self.metrics.counter(
            "cache_bytes_evicted_total", "Bytes reclaimed by evictions"
        )

    hits = _counter_property("_hits")
    misses = _counter_property("_misses")
    evictions = _counter_property("_evictions")
    insertions = _counter_property("_insertions")
    rejected = _counter_property("_rejected")
    bytes_evicted = _counter_property("_bytes_evicted")

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # keeps debugging output informative
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, insertions={self.insertions}, "
            f"rejected={self.rejected}, bytes_evicted={self.bytes_evicted})"
        )


class ArtifactStore:
    """A byte-capacity-bounded artifact cache.

    ``capacity_bytes=None`` models unbounded storage — used by the
    Cache-ALL baseline, whose point in the paper's scatter plots is
    "fast but resource-hungry".  Pass a shared ``metrics`` registry to
    surface the store's counters and occupancy gauges alongside the
    engine's.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise CacheError(f"capacity must be >= 0: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[str, CacheEntry] = {}
        self._used = 0
        self._seq = 0
        self.metrics = metrics or MetricsRegistry()
        self.stats = CacheStats(self.metrics)
        self._used_gauge = self.metrics.gauge(
            "cache_used_bytes", "Bytes currently resident in the store"
        )
        self._entries_gauge = self.metrics.gauge(
            "cache_entries", "Artifacts currently resident in the store"
        )
        #: Peak bytes ever held — the "caching storage consumption"
        #: axis in Fig. 7's scatter plot.
        self.peak_bytes = 0
        self._listeners: List[StoreListener] = []

    def add_listener(self, listener: StoreListener) -> None:
        """Subscribe to residency changes (``put``/``evict``/``clear``).

        The incremental scorer uses these events to invalidate L(u)
        memos whose G_p truncation just changed; the Couler policy uses
        them to keep its eviction heap in lockstep with the store.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def _notify(self, event: str, uid: str) -> None:
        for listener in self._listeners:
            listener(event, uid)

    # --------------------------------------------------------------- queries

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> float:
        if self.capacity_bytes is None:
            return float("inf")
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, uid: str) -> bool:
        return uid in self._entries

    def entry(self, uid: str) -> Optional[CacheEntry]:
        return self._entries.get(uid)

    def entries(self) -> List[CacheEntry]:
        return list(self._entries.values())

    def uids(self) -> List[str]:
        return list(self._entries)

    # ------------------------------------------------------------- mutations

    def fits(self, size_bytes: int) -> bool:
        return size_bytes <= self.free_bytes

    def can_ever_fit(self, size_bytes: int) -> bool:
        return self.capacity_bytes is None or size_bytes <= self.capacity_bytes

    def _update_occupancy(self) -> None:
        self._used_gauge.set(self._used)
        self._entries_gauge.set(len(self._entries))

    def put(self, uid: str, size_bytes: int, kind: str = "data", now: float = 0.0) -> CacheEntry:
        """Insert an artifact; the caller must have made room first."""
        if uid in self._entries:
            entry = self._entries[uid]
            entry.last_access = now
            return entry
        if not self.can_ever_fit(size_bytes):
            raise ArtifactTooLargeError(
                f"{uid}: {size_bytes} bytes exceeds store capacity "
                f"{self.capacity_bytes}"
            )
        if not self.fits(size_bytes):
            raise InsufficientSpaceError(
                f"{uid}: needs {size_bytes} bytes, only {self.free_bytes} free"
            )
        self._seq += 1
        entry = CacheEntry(
            uid=uid,
            size_bytes=size_bytes,
            kind=kind,
            cached_at=now,
            last_access=now,
            insert_seq=self._seq,
        )
        self._entries[uid] = entry
        self._used += size_bytes
        self.peak_bytes = max(self.peak_bytes, self._used)
        self.stats.insertions += 1
        self._update_occupancy()
        self._notify("put", uid)
        return entry

    def evict(self, uid: str) -> CacheEntry:
        entry = self._entries.pop(uid, None)
        if entry is None:
            raise CacheError(f"evict of uncached artifact: {uid}")
        self._used -= entry.size_bytes
        self.stats.evictions += 1
        self.stats.bytes_evicted += entry.size_bytes
        self._update_occupancy()
        self._notify("evict", uid)
        return entry

    def record_hit(self, uid: str, now: float) -> None:
        entry = self._entries.get(uid)
        if entry is None:
            raise CacheError(f"hit recorded for uncached artifact: {uid}")
        entry.last_access = now
        entry.access_count += 1
        self.stats.hits += 1

    def record_miss(self) -> None:
        self.stats.misses += 1

    def record_rejection(self) -> None:
        """A policy declined to admit an artifact."""
        self.stats.rejected += 1

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0
        self._update_occupancy()
        self._notify("clear", "")

    # ------------------------------------------------------------ snapshots

    def to_snapshot(self) -> dict:
        """Serialize resident entries (not stats) for warm restarts.

        The production cache (Alluxio) outlives the Couler server; a
        restarted service re-attaches to the still-warm store.  This
        snapshot carries exactly the state that survives: what is
        resident and how recently it was used.
        """
        return {
            "capacity_bytes": self.capacity_bytes,
            "entries": [
                {
                    "uid": e.uid,
                    "size_bytes": e.size_bytes,
                    "kind": e.kind,
                    "cached_at": e.cached_at,
                    "last_access": e.last_access,
                    "access_count": e.access_count,
                }
                for e in sorted(self._entries.values(), key=lambda e: e.insert_seq)
            ],
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "ArtifactStore":
        """Rebuild a store from :meth:`to_snapshot` output."""
        store = cls(capacity_bytes=snapshot.get("capacity_bytes"))
        for entry in snapshot.get("entries", []):
            restored = store.put(
                entry["uid"],
                entry["size_bytes"],
                kind=entry.get("kind", "data"),
                now=entry.get("cached_at", 0.0),
            )
            restored.last_access = entry.get("last_access", 0.0)
            restored.access_count = entry.get("access_count", 0)
        # Insertions during restore are bookkeeping, not new cache
        # events: zero the counters in place (the registry's metric
        # objects stay valid) and refresh the occupancy gauges.
        store.metrics.reset()
        store._update_occupancy()
        store.peak_bytes = store.used_bytes
        return store
