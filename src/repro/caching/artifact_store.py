"""Capacity-bounded in-memory artifact store (the Alluxio stand-in).

The paper delegates intermediate artifact storage to a distributed
in-memory system (Apache Alluxio) with finite capacity; cache policies
decide what stays.  :class:`ArtifactStore` tracks entries, enforces the
byte capacity, and keeps the accounting (hits / misses / evictions /
bytes) that the evaluation figures summarize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class CacheError(RuntimeError):
    """Base class for artifact-store failures."""


class InsufficientSpaceError(CacheError):
    """Put attempted without enough free capacity."""


class ArtifactTooLargeError(CacheError):
    """Artifact is bigger than the whole store; it can never be cached."""


@dataclass
class CacheEntry:
    uid: str
    size_bytes: int
    kind: str = "data"
    cached_at: float = 0.0
    last_access: float = 0.0
    insert_seq: int = 0
    access_count: int = 0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    rejected: int = 0
    bytes_evicted: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactStore:
    """A byte-capacity-bounded artifact cache.

    ``capacity_bytes=None`` models unbounded storage — used by the
    Cache-ALL baseline, whose point in the paper's scatter plots is
    "fast but resource-hungry".
    """

    def __init__(self, capacity_bytes: Optional[int]) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise CacheError(f"capacity must be >= 0: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[str, CacheEntry] = {}
        self._used = 0
        self._seq = 0
        self.stats = CacheStats()
        #: Peak bytes ever held — the "caching storage consumption"
        #: axis in Fig. 7's scatter plot.
        self.peak_bytes = 0

    # --------------------------------------------------------------- queries

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> float:
        if self.capacity_bytes is None:
            return float("inf")
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, uid: str) -> bool:
        return uid in self._entries

    def entry(self, uid: str) -> Optional[CacheEntry]:
        return self._entries.get(uid)

    def entries(self) -> List[CacheEntry]:
        return list(self._entries.values())

    def uids(self) -> List[str]:
        return list(self._entries)

    # ------------------------------------------------------------- mutations

    def fits(self, size_bytes: int) -> bool:
        return size_bytes <= self.free_bytes

    def can_ever_fit(self, size_bytes: int) -> bool:
        return self.capacity_bytes is None or size_bytes <= self.capacity_bytes

    def put(self, uid: str, size_bytes: int, kind: str = "data", now: float = 0.0) -> CacheEntry:
        """Insert an artifact; the caller must have made room first."""
        if uid in self._entries:
            entry = self._entries[uid]
            entry.last_access = now
            return entry
        if not self.can_ever_fit(size_bytes):
            raise ArtifactTooLargeError(
                f"{uid}: {size_bytes} bytes exceeds store capacity "
                f"{self.capacity_bytes}"
            )
        if not self.fits(size_bytes):
            raise InsufficientSpaceError(
                f"{uid}: needs {size_bytes} bytes, only {self.free_bytes} free"
            )
        self._seq += 1
        entry = CacheEntry(
            uid=uid,
            size_bytes=size_bytes,
            kind=kind,
            cached_at=now,
            last_access=now,
            insert_seq=self._seq,
        )
        self._entries[uid] = entry
        self._used += size_bytes
        self.peak_bytes = max(self.peak_bytes, self._used)
        self.stats.insertions += 1
        return entry

    def evict(self, uid: str) -> CacheEntry:
        entry = self._entries.pop(uid, None)
        if entry is None:
            raise CacheError(f"evict of uncached artifact: {uid}")
        self._used -= entry.size_bytes
        self.stats.evictions += 1
        self.stats.bytes_evicted += entry.size_bytes
        return entry

    def record_hit(self, uid: str, now: float) -> None:
        entry = self._entries.get(uid)
        if entry is None:
            raise CacheError(f"hit recorded for uncached artifact: {uid}")
        entry.last_access = now
        entry.access_count += 1
        self.stats.hits += 1

    def record_miss(self) -> None:
        self.stats.misses += 1

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    # ------------------------------------------------------------ snapshots

    def to_snapshot(self) -> dict:
        """Serialize resident entries (not stats) for warm restarts.

        The production cache (Alluxio) outlives the Couler server; a
        restarted service re-attaches to the still-warm store.  This
        snapshot carries exactly the state that survives: what is
        resident and how recently it was used.
        """
        return {
            "capacity_bytes": self.capacity_bytes,
            "entries": [
                {
                    "uid": e.uid,
                    "size_bytes": e.size_bytes,
                    "kind": e.kind,
                    "cached_at": e.cached_at,
                    "last_access": e.last_access,
                    "access_count": e.access_count,
                }
                for e in sorted(self._entries.values(), key=lambda e: e.insert_seq)
            ],
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "ArtifactStore":
        """Rebuild a store from :meth:`to_snapshot` output."""
        store = cls(capacity_bytes=snapshot.get("capacity_bytes"))
        for entry in snapshot.get("entries", []):
            restored = store.put(
                entry["uid"],
                entry["size_bytes"],
                kind=entry.get("kind", "data"),
                now=entry.get("cached_at", 0.0),
            )
            restored.last_access = entry.get("last_access", 0.0)
            restored.access_count = entry.get("access_count", 0)
        # Insertions during restore are bookkeeping, not new cache events.
        store.stats = CacheStats()
        store.peak_bytes = store.used_bytes
        return store
