"""``Dataset`` CRD and the caching server (paper Appendix B.C).

Production ML jobs read training data from a remote storage cluster
(ODPS tables, OSS/NAS files); the workflow engine cannot see those reads
because they happen inside pods.  The paper introduces a ``Dataset``
custom resource describing a job's input data so that (1) the engine can
skip re-reads of already-synced data and (2) a *caching server* syncs
the data once from the storage cluster to the computation cluster,
after which all jobs read locally.

This module models both: :class:`Dataset` (the CRD), and
:class:`CachingServer` (the sync daemon + read-time model used by the
Fig. 17 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..engine.cachehooks import BandwidthModel
from ..k8s.objects import APIObject, ObjectMeta


class DatasetKind(str, Enum):
    ODPS_TABLE = "odps"
    OSS_FILES = "oss"
    NAS_FILES = "nas"


class SyncState(str, Enum):
    PENDING = "Pending"
    SYNCING = "Syncing"
    READY = "Ready"


@dataclass
class Dataset:
    """A declared input dataset (mirrors the paper's Code 8 schema)."""

    name: str
    kind: DatasetKind
    total_bytes: int
    num_files: int = 1
    project: str = "default_project"
    table: Optional[str] = None
    owner: str = "user"

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ValueError(f"dataset {self.name}: negative size")
        if self.num_files < 1:
            raise ValueError(f"dataset {self.name}: must contain >= 1 file")

    def to_crd(self) -> APIObject:
        """Render as a Kubernetes custom resource manifest."""
        spec = {
            self.kind.value: {
                "project": self.project,
                "table": self.table,
                "totalBytes": self.total_bytes,
                "numFiles": self.num_files,
            }
        }
        return APIObject(
            api_version="io.kubemaker.alipay.com/v1alpha1",
            kind="Dataset",
            metadata=ObjectMeta(name=self.name, labels={"owner": self.owner}),
            spec=spec,
        )


@dataclass
class _SyncRecord:
    dataset: Dataset
    state: SyncState = SyncState.PENDING
    ready_at: float = 0.0


@dataclass
class CachingServer:
    """Syncs datasets to local storage and models job read times.

    Read model: a remote read pays the remote bandwidth plus a per-file
    metadata round-trip (the dominant cost for the 10k-small-files
    workload); a local read pays local bandwidth plus a much smaller
    per-file cost.  ``jobs_sharing`` reads of a synced dataset pay the
    sync once — exactly the redundancy the paper measured (70–85% of
    inputs read repeatedly).
    """

    bandwidth: BandwidthModel = field(default_factory=BandwidthModel)
    #: Per-file metadata overhead (open + stat) in seconds.
    remote_per_file_s: float = 0.05
    local_per_file_s: float = 0.002
    storage_distance: float = 1.0
    _synced: Dict[str, _SyncRecord] = field(default_factory=dict)
    sync_count: int = 0

    def register(self, dataset: Dataset) -> None:
        if dataset.name not in self._synced:
            self._synced[dataset.name] = _SyncRecord(dataset=dataset)

    def is_ready(self, name: str) -> bool:
        record = self._synced.get(name)
        return record is not None and record.state == SyncState.READY

    def remote_read_seconds(self, dataset: Dataset) -> float:
        """Time for one job to read the dataset from the storage cluster."""
        transfer = self.bandwidth.remote_seconds(
            dataset.total_bytes, self.storage_distance
        )
        return transfer + self.remote_per_file_s * dataset.num_files

    def local_read_seconds(self, dataset: Dataset) -> float:
        """Time for one job to read the dataset from the local cache."""
        transfer = self.bandwidth.local_seconds(dataset.total_bytes)
        return transfer + self.local_per_file_s * dataset.num_files

    def sync(self, name: str, now: float = 0.0) -> float:
        """Sync a registered dataset; returns the sync duration.

        Idempotent: re-syncing a READY dataset is free, which is the
        whole point — different jobs no longer each pull the data.
        """
        record = self._synced.get(name)
        if record is None:
            raise KeyError(f"dataset {name!r} is not registered")
        if record.state == SyncState.READY:
            return 0.0
        duration = self.remote_read_seconds(record.dataset)
        record.state = SyncState.READY
        record.ready_at = now + duration
        self.sync_count += 1
        return duration

    def read_seconds(self, name: str, use_cache: bool, now: float = 0.0) -> float:
        """Total time for one job read, syncing first when caching is on."""
        record = self._synced.get(name)
        if record is None:
            raise KeyError(f"dataset {name!r} is not registered")
        if not use_cache:
            return self.remote_read_seconds(record.dataset)
        sync_time = self.sync(name, now)
        return sync_time + self.local_read_seconds(record.dataset)

    def throughput_bps(self, name: str, use_cache: bool) -> float:
        """Steady-state read throughput for a job, bytes/second."""
        record = self._synced.get(name)
        if record is None:
            raise KeyError(f"dataset {name!r} is not registered")
        dataset = record.dataset
        seconds = (
            self.local_read_seconds(dataset)
            if use_cache and self.is_ready(name)
            else self.remote_read_seconds(dataset)
        )
        return dataset.total_bytes / seconds if seconds else 0.0

    def multi_job_read_seconds(
        self, name: str, num_jobs: int, use_cache: bool
    ) -> List[float]:
        """Per-job read times when ``num_jobs`` jobs read the same data.

        Without cache every job pays the remote read.  With cache the
        first job pays sync + local read, the rest only local reads.
        """
        if num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        times = []
        for job in range(num_jobs):
            times.append(self.read_seconds(name, use_cache))
        return times
