"""The GUI canvas: declarative workflow construction (paper Appendix B.D).

"Users aim to identify the best model for predicting user churn.  Data
scientists initially define data splitting methods for training, select
various well-known models (e.g., logistic regression, random forest,
and XGBoost) for training the same data, and ultimately choose the best
model based on evaluation results.  End-users only need to configure
model-related parameters or data splitting methods.  The backend then
translates these actions into the workflow's IR."

A :class:`Canvas` is the serialized state a web GUI would hold: typed
nodes with configuration dicts and explicit wires.  ``to_ir()`` performs
the backend translation into the same IR every other frontend produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..ir.graph import WorkflowIR
from ..ir.nodes import ArtifactDecl, ArtifactStorage, IRNode, OpKind, SimHint
from ..k8s.resources import ResourceQuantity
from .model_zoo import ModelZoo

GB = 2**30


class CanvasError(ValueError):
    """Malformed canvas (bad wiring, unknown node kinds, etc.)."""


class NodeKind(str, Enum):
    DATA_SOURCE = "data_source"
    DATA_SPLIT = "data_split"
    MODEL = "model"
    EVALUATION = "evaluation"
    SELECTION = "selection"


@dataclass
class CanvasNode:
    """One block the user dropped on the canvas."""

    id: str
    kind: NodeKind
    config: Dict[str, object] = field(default_factory=dict)


@dataclass
class Canvas:
    """The GUI document: nodes + wires, translatable to IR."""

    name: str
    nodes: List[CanvasNode] = field(default_factory=list)
    wires: List[Tuple[str, str]] = field(default_factory=list)
    model_zoo: ModelZoo = field(default_factory=ModelZoo)

    # ------------------------------------------------------------- editing

    def add(self, node: CanvasNode) -> CanvasNode:
        if any(existing.id == node.id for existing in self.nodes):
            raise CanvasError(f"duplicate canvas node id {node.id!r}")
        self.nodes.append(node)
        return node

    def wire(self, source: str, target: str) -> None:
        ids = {node.id for node in self.nodes}
        if source not in ids or target not in ids:
            raise CanvasError(f"wire references unknown node: {source}->{target}")
        self.wires.append((source, target))

    def _node(self, node_id: str) -> CanvasNode:
        for node in self.nodes:
            if node.id == node_id:
                return node
        raise CanvasError(f"unknown node {node_id!r}")

    def _upstream(self, node_id: str) -> List[str]:
        return [s for s, t in self.wires if t == node_id]

    # ----------------------------------------------------------- validation

    def validate(self) -> None:
        if not self.nodes:
            raise CanvasError("canvas is empty")
        kinds = {node.id: node.kind for node in self.nodes}
        for node in self.nodes:
            upstream_kinds = {kinds[u] for u in self._upstream(node.id)}
            if node.kind == NodeKind.DATA_SOURCE and upstream_kinds:
                raise CanvasError(f"data source {node.id} cannot have inputs")
            if node.kind == NodeKind.DATA_SPLIT and upstream_kinds != {
                NodeKind.DATA_SOURCE
            }:
                raise CanvasError(f"data split {node.id} must consume a data source")
            if node.kind == NodeKind.MODEL and not (
                upstream_kinds <= {NodeKind.DATA_SPLIT, NodeKind.DATA_SOURCE}
                and upstream_kinds
            ):
                raise CanvasError(f"model {node.id} must consume data")
            if node.kind == NodeKind.EVALUATION and NodeKind.MODEL not in upstream_kinds:
                raise CanvasError(f"evaluation {node.id} must consume models")
            if node.kind == NodeKind.SELECTION and NodeKind.EVALUATION not in upstream_kinds:
                raise CanvasError(f"selection {node.id} must consume an evaluation")

    # ----------------------------------------------------------- translation

    def to_ir(self) -> WorkflowIR:
        """The backend translation: canvas actions -> workflow IR."""
        self.validate()
        ir = WorkflowIR(name=self.name)
        artifacts: Dict[str, ArtifactDecl] = {}

        for node in self.nodes:
            if node.kind == NodeKind.DATA_SOURCE:
                artifacts[node.id] = self._emit_data_source(ir, node)
        for node in self.nodes:
            if node.kind == NodeKind.DATA_SPLIT:
                artifacts[node.id] = self._emit_data_split(ir, node, artifacts)
        for node in self.nodes:
            if node.kind == NodeKind.MODEL:
                artifacts[node.id] = self._emit_model(ir, node, artifacts)
        for node in self.nodes:
            if node.kind == NodeKind.EVALUATION:
                artifacts[node.id] = self._emit_evaluation(ir, node, artifacts)
        for node in self.nodes:
            if node.kind == NodeKind.SELECTION:
                self._emit_selection(ir, node, artifacts)
        ir.finalize_artifacts()
        ir.validate()
        return ir

    # ------------------------------------------------------------ emitters

    def _emit_data_source(self, ir: WorkflowIR, node: CanvasNode) -> ArtifactDecl:
        table = str(node.config.get("table", node.id))
        size = int(node.config.get("size_bytes", GB))
        out = ArtifactDecl(
            name="rows",
            storage=ArtifactStorage.OSS,
            path=f"odps://{table}",
            size_bytes=size,
            uid=f"{self.name}/{node.id}/rows",
        )
        ir.add_node(
            IRNode(
                name=node.id,
                op=OpKind.CONTAINER,
                image="data-loader:v1",
                command=["python", "load.py"],
                args=[f"--table={table}"],
                outputs=[out],
                sim=SimHint(duration_s=120.0),
            )
        )
        return out

    def _emit_data_split(
        self, ir: WorkflowIR, node: CanvasNode, artifacts: Dict[str, ArtifactDecl]
    ) -> ArtifactDecl:
        fraction = float(node.config.get("train_fraction", 0.8))
        if not 0.0 < fraction < 1.0:
            raise CanvasError(f"data split {node.id}: train_fraction must be in (0,1)")
        upstream = self._upstream(node.id)[0]
        source_artifact = artifacts[upstream]
        out = ArtifactDecl(
            name="train-split",
            storage=ArtifactStorage.OSS,
            path=f"/data/{node.id}",
            size_bytes=int(source_artifact.size_bytes * fraction),
            uid=f"{self.name}/{node.id}/train-split",
        )
        ir.add_node(
            IRNode(
                name=node.id,
                op=OpKind.CONTAINER,
                image="data-splitter:v1",
                command=["python", "split.py"],
                args=[f"--train-fraction={fraction}"],
                inputs=[source_artifact],
                outputs=[out],
                sim=SimHint(duration_s=60.0),
            )
        )
        ir.add_edge(upstream, node.id)
        return out

    def _emit_model(
        self, ir: WorkflowIR, node: CanvasNode, artifacts: Dict[str, ArtifactDecl]
    ) -> ArtifactDecl:
        entry = self.model_zoo.get(str(node.config.get("model", node.id)))
        params = dict(entry.default_params)
        params.update(node.config.get("params", {}))
        upstream = self._upstream(node.id)[0]
        data = artifacts[upstream]
        out = ArtifactDecl(
            name="model",
            storage=ArtifactStorage.OSS,
            path=f"/models/{node.id}",
            size_bytes=entry.model_size_bytes,
            uid=f"{self.name}/{node.id}/model",
        )
        ir.add_node(
            IRNode(
                name=node.id,
                op=OpKind.CONTAINER,
                image=entry.image,
                command=["python", "train.py"],
                args=[f"--{k}={v}" for k, v in sorted(params.items())],
                resources=ResourceQuantity(
                    cpu=entry.cpu, memory=entry.memory_bytes, gpu=entry.gpu
                ),
                inputs=[data],
                outputs=[out],
                sim=SimHint(duration_s=entry.train_duration_s, uses_gpu=entry.gpu > 0),
            )
        )
        ir.add_edge(upstream, node.id)
        return out

    def _emit_evaluation(
        self, ir: WorkflowIR, node: CanvasNode, artifacts: Dict[str, ArtifactDecl]
    ) -> ArtifactDecl:
        upstream = self._upstream(node.id)
        models = [artifacts[u] for u in upstream]
        out = ArtifactDecl(
            name="metrics",
            storage=ArtifactStorage.PARAMETER,
            path=f"/metrics/{node.id}",
            size_bytes=4096,
            uid=f"{self.name}/{node.id}/metrics",
        )
        ir.add_node(
            IRNode(
                name=node.id,
                op=OpKind.CONTAINER,
                image="model-evaluation:v1",
                command=["python", "evaluate.py"],
                args=[f"--metric={node.config.get('metric', 'auc')}"],
                inputs=models,
                outputs=[out],
                sim=SimHint(duration_s=150.0),
            )
        )
        for u in upstream:
            ir.add_edge(u, node.id)
        return out

    def _emit_selection(
        self, ir: WorkflowIR, node: CanvasNode, artifacts: Dict[str, ArtifactDecl]
    ) -> None:
        upstream = self._upstream(node.id)
        ir.add_node(
            IRNode(
                name=node.id,
                op=OpKind.CONTAINER,
                image="model-selector:v1",
                command=["python", "select.py"],
                inputs=[artifacts[u] for u in upstream],
                sim=SimHint(duration_s=30.0),
            )
        )
        for u in upstream:
            ir.add_edge(u, node.id)


def churn_prediction_canvas(model_names: Optional[List[str]] = None) -> Canvas:
    """The paper's Fig. 9 example: churn prediction over three models."""
    models = model_names or ["logistic-regression", "random-forest", "xgboost"]
    canvas = Canvas(name="churn-prediction")
    canvas.add(
        CanvasNode(
            id="churn-table",
            kind=NodeKind.DATA_SOURCE,
            config={"table": "pai_telco_demo_data", "size_bytes": 2 * GB},
        )
    )
    canvas.add(
        CanvasNode(
            id="split",
            kind=NodeKind.DATA_SPLIT,
            config={"train_fraction": 0.8},
        )
    )
    canvas.wire("churn-table", "split")
    for name in models:
        node_id = f"train-{name}"
        canvas.add(CanvasNode(id=node_id, kind=NodeKind.MODEL, config={"model": name}))
        canvas.wire("split", node_id)
    canvas.add(
        CanvasNode(id="evaluate", kind=NodeKind.EVALUATION, config={"metric": "auc"})
    )
    for name in models:
        canvas.wire(f"train-{name}", "evaluate")
    canvas.add(CanvasNode(id="pick-best", kind=NodeKind.SELECTION))
    canvas.wire("evaluate", "pick-best")
    return canvas
