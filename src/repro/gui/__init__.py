"""The GUI frontend (paper Appendix B.D): declarative canvas + model zoo."""

from .canvas import (
    Canvas,
    CanvasError,
    CanvasNode,
    NodeKind,
    churn_prediction_canvas,
)
from .model_zoo import ModelZoo, ModelZooEntry, ModelZooError

__all__ = [
    "Canvas",
    "CanvasError",
    "CanvasNode",
    "ModelZoo",
    "ModelZooEntry",
    "ModelZooError",
    "NodeKind",
    "churn_prediction_canvas",
]
