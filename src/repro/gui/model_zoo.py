"""The model zoo behind the GUI (paper Appendix B.D).

"Machine learning algorithm developers can construct their own models
and share them with others on the same platform.  This collection of
well-known machine learning algorithms is referred to as the 'model
zoo'. ... the backend of the model zoo corresponds to the 'step zoo' of
Couler, as each model runs as one step in a workflow."

Entries declare how a model trains as a workflow step (image, default
hyperparameters, simulated duration/footprint); the canvas translator
instantiates them into IR nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class ModelZooError(KeyError):
    """Unknown or duplicate model zoo entry."""


@dataclass(frozen=True)
class ModelZooEntry:
    """One shareable model definition."""

    name: str
    family: str
    image: str
    default_params: Dict[str, object] = field(default_factory=dict)
    #: Simulation quantities for the training step.
    train_duration_s: float = 300.0
    model_size_bytes: int = 64 * 2**20
    cpu: float = 4.0
    memory_bytes: int = 8 * 2**30
    gpu: int = 0
    description: str = ""


_BUILTIN_ENTRIES = [
    ModelZooEntry(
        name="logistic-regression",
        family="linear",
        image="sklearn-trainer:v1",
        default_params={"penalty": "l2", "C": 1.0},
        train_duration_s=120.0,
        model_size_bytes=4 * 2**20,
        cpu=2.0,
        description="Linear baseline classifier.",
    ),
    ModelZooEntry(
        name="random-forest",
        family="tree",
        image="sklearn-trainer:v1",
        default_params={"n_estimators": 200, "max_depth": 12},
        train_duration_s=240.0,
        model_size_bytes=96 * 2**20,
        description="Bagged decision trees.",
    ),
    ModelZooEntry(
        name="xgboost",
        family="boosted-tree",
        image="xgboost-image",
        default_params={"objective": "binary:logistic", "num_boost_round": 10},
        train_duration_s=300.0,
        model_size_bytes=64 * 2**20,
        description="Gradient-boosted trees (paper Code 7).",
    ),
    ModelZooEntry(
        name="lightgbm",
        family="boosted-tree",
        image="lightgbm-image",
        default_params={"num_leaves": 63, "num_iterations": 200},
        train_duration_s=240.0,
        model_size_bytes=32 * 2**20,
        description="Histogram gradient boosting (paper Code 7).",
    ),
    ModelZooEntry(
        name="wide-deep",
        family="dnn",
        image="wide-deep-model:v1.0",
        default_params={"batch_size": 256, "epochs": 10},
        train_duration_s=600.0,
        model_size_bytes=256 * 2**20,
        gpu=1,
        description="Wide & Deep recommender (paper Appendix A.E).",
    ),
    ModelZooEntry(
        name="lstm",
        family="rnn",
        image="lstm-trainer:v1",
        default_params={"hidden": 128, "layers": 2},
        train_duration_s=500.0,
        model_size_bytes=128 * 2**20,
        gpu=1,
        description="Sequence model for time-series prediction.",
    ),
]


class ModelZoo:
    """Registry of shareable model definitions."""

    def __init__(self, include_builtins: bool = True) -> None:
        self._entries: Dict[str, ModelZooEntry] = {}
        if include_builtins:
            for entry in _BUILTIN_ENTRIES:
                self._entries[entry.name] = entry

    def register(self, entry: ModelZooEntry) -> None:
        """Share a new model on the platform."""
        if entry.name in self._entries:
            raise ModelZooError(f"model {entry.name!r} already registered")
        self._entries[entry.name] = entry

    def get(self, name: str) -> ModelZooEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ModelZooError(
                f"unknown model {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def by_family(self, family: str) -> List[ModelZooEntry]:
        return [e for e in self._entries.values() if e.family == family]
