"""Unified policy-knob surface for the adaptive controller (``PolicyConfig``).

The paper's headline numbers rest on fixed policy constants scattered
across four subsystems: the Algorithm 2 ScoreWeights ``alpha``/``beta``
and the eviction pressure on the ``exp(-V)`` cache-cost term
(:mod:`repro.caching.score`), the Algorithm 3 split budget ``C``
(:mod:`repro.parallelism.budget`), the admission aging rate
(:mod:`repro.engine.admission`) and the retry budgets
(:mod:`repro.engine.retry`).  :class:`PolicyConfig` gathers those knobs
into one frozen keyword-only dataclass — the same shape as
:class:`~repro.engine.config.EngineConfig` (PR 8): SpecError validation
naming the offending field, every default equal to the subsystem's
historical default so ``PolicyConfig()`` is bit-identical to passing
nothing at all, and legacy spellings bridged with a once-per-process
DeprecationWarning (see ``EngineConfig.aging_rate``).

The controller (:mod:`repro.control.controller`) searches over
``PolicyConfig`` candidates; everything downstream consumes the config
through the existing subsystem surfaces (``ScoreWeights``,
``BudgetModel``, ``RetryPolicy``, pipeline kwargs) — no side channels.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from ..engine.spec import SpecError


@dataclass(frozen=True, kw_only=True)
class PolicyConfig:
    """One validated bundle of adaptive policy knobs.

    Every field defaults to the subsystem's historical constant, so
    ``PolicyConfig()`` reproduces the static paper defaults exactly
    (proven bit-identical by the ``adaptive`` verify oracle).
    """

    #: Eq. 6 reconstruction-cost weight (paper production choice: 1.5).
    score_alpha: float = 1.5
    #: Eq. 6 reuse-value weight (paper production choice: 1.0).
    score_beta: float = 1.0
    #: Multiplier on the ``exp(-V)`` cache-cost penalty of Eq. 6 —
    #: >1 evicts large artifacts more aggressively, <1 retains them.
    eviction_pressure: float = 1.0
    #: Algorithm 3 split budget C in steps (``None`` = keep the
    #: caller's budget — contexts default differently, e.g. 200 for
    #: raw :class:`~repro.parallelism.budget.BudgetModel`, 6 for the
    #: corpus experiment).
    split_budget_steps: Optional[int] = None
    #: Effective-priority points per second of admission queue wait.
    aging_rate: float = 0.0
    #: Application-error retry budget per step.
    retry_limit: int = 3
    #: Infrastructure-error retry budget per step (not charged to
    #: ``retry_limit``; see :mod:`repro.engine.retry`).
    infra_retry_limit: int = 32

    def __post_init__(self) -> None:
        if self.score_alpha < 0:
            raise SpecError(
                f"PolicyConfig.score_alpha must be >= 0: {self.score_alpha}"
            )
        if self.score_beta < 0:
            raise SpecError(
                f"PolicyConfig.score_beta must be >= 0: {self.score_beta}"
            )
        if self.eviction_pressure < 0:
            raise SpecError(
                f"PolicyConfig.eviction_pressure must be >= 0: "
                f"{self.eviction_pressure}"
            )
        if self.split_budget_steps is not None and self.split_budget_steps < 1:
            raise SpecError(
                f"PolicyConfig.split_budget_steps must be >= 1 or None: "
                f"{self.split_budget_steps}"
            )
        if self.aging_rate < 0:
            raise SpecError(
                f"PolicyConfig.aging_rate must be >= 0: {self.aging_rate}"
            )
        if self.retry_limit < 0:
            raise SpecError(
                f"PolicyConfig.retry_limit must be >= 0: {self.retry_limit}"
            )
        if self.infra_retry_limit < 0:
            raise SpecError(
                f"PolicyConfig.infra_retry_limit must be >= 0: "
                f"{self.infra_retry_limit}"
            )

    # ------------------------------------------------------------- bridges

    def score_weights(self, base: Optional[object] = None):
        """The Eq. 6 :class:`~repro.caching.score.ScoreWeights` this
        policy selects, preserving non-knob fields of ``base`` (scale,
        horizon, ablation switches) when one is given."""
        from ..caching.score import ScoreWeights

        base = base if base is not None else ScoreWeights()
        return replace(
            base,
            alpha=self.score_alpha,
            beta=self.score_beta,
            cache_cost_weight=self.eviction_pressure,
        )

    def split_budget(self, default_max_steps: Optional[int] = None) -> Optional[int]:
        """Resolve the split budget: this policy's, else the caller's."""
        if self.split_budget_steps is not None:
            return self.split_budget_steps
        return default_max_steps

    def budget_model(self, default_max_steps: Optional[int] = None):
        """An Algorithm 3 :class:`~repro.parallelism.budget.BudgetModel`
        with this policy's step budget applied."""
        from ..parallelism.budget import BudgetModel

        steps = self.split_budget(default_max_steps)
        return BudgetModel() if steps is None else BudgetModel(max_steps=steps)

    def retry_policy(self):
        """A :class:`~repro.engine.retry.RetryPolicy` with this
        policy's budgets (backoff shape stays at the defaults)."""
        from ..engine.retry import RetryPolicy

        return RetryPolicy(
            limit=self.retry_limit, infra_limit=self.infra_retry_limit
        )

    # ------------------------------------------------------------- helpers

    def is_default(self) -> bool:
        """True when every knob is the static paper default."""
        return self == PolicyConfig()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable knob mapping (AdaptationLog records these)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PolicyConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(f"PolicyConfig.from_dict: unknown fields {unknown}")
        return cls(**payload)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Compact one-line summary (non-default fields only)."""
        default = PolicyConfig()
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return f"PolicyConfig({', '.join(parts)})" if parts else "PolicyConfig()"


#: The all-defaults policy — exactly the static paper constants.
DEFAULT_POLICY: PolicyConfig = PolicyConfig()

__all__ = ["PolicyConfig", "DEFAULT_POLICY"]
