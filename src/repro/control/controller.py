"""Adaptive policy controller: obs metrics -> knob search -> PolicyConfig.

Closes the loop the paper leaves open: the repro emits every signal
needed to judge a policy constant (cache hit counters, queue latency
histograms, pending-inclusive starvation gaps — all in the
:mod:`repro.obs` metrics registry), and the PR-9 scenario corpus is a
seeded, persona-shaped workload to judge it against.  The
:class:`Controller` searches over :class:`~repro.control.policy.PolicyConfig`
candidates with the Algorithm 4 successive-halving machinery
(:func:`repro.autotune.tuner.successive_halving` — the same
keep-the-best-half / refine-around-survivors loop ``AutoTuner`` uses),
evaluating each candidate by running the corpus through the full
caching → splitting → admission stack and reading the shared metrics
registry.

Everything is deterministic: candidate generation is seeded, the
corpus is seeded, the runs are virtual-time, and ties break stably —
so one seed always produces one :class:`AdaptationLog`, byte for byte
(the ``adaptive`` verify oracle pins this, and :meth:`Controller.replay`
re-derives a log to prove it).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..autotune.tuner import successive_halving
from ..k8s.cluster import Cluster
from ..obs.metrics import MetricsRegistry
from ..workloads.corpus import CorpusSpec, ScenarioCorpus, build_corpus
from .policy import PolicyConfig

GB = 2**30

#: Seeded knob grid the initial population samples from.  Values
#: bracket the paper defaults (half/double style) plus the aging rates
#: the dispatch experiments exercise.
CANDIDATE_GRID: Dict[str, tuple] = {
    "score_alpha": (0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    "score_beta": (0.25, 0.5, 1.0, 2.0),
    "eviction_pressure": (0.25, 0.5, 1.0, 2.0, 4.0),
    "aging_rate": (0.0, 0.01, 0.02, 0.05, 0.1),
    "split_budget_steps": (None, 4, 8, 10, 12),
}


def default_control_clusters() -> List[Cluster]:
    """A deliberately tight fleet for evaluation runs.

    The corpus' comfortable default fleet absorbs the arrival rate
    without queueing, which would blind the controller to the aging and
    fairness knobs; two small clusters (one holding the GPU pool) keep
    queue latency non-degenerate, mirroring the corpus benchmark.
    """
    return [
        Cluster.uniform(
            "ctl-c0", 2, cpu_per_node=8.0, memory_per_node=32 * GB,
            gpu_per_node=2,
        ),
        Cluster.uniform("ctl-c1", 2, cpu_per_node=8.0, memory_per_node=32 * GB),
    ]


def evaluate_policy(
    policy: Optional[PolicyConfig],
    corpus: ScenarioCorpus,
    *,
    clusters: Optional[List[Cluster]] = None,
    cache_gb: float = 1.0,
    split_max_steps: int = 6,
) -> Dict[str, float]:
    """Run the corpus under ``policy`` and read the obs registry back.

    One evaluation = one full stack run (caching + splitting +
    admission) over the shared corpus with a private
    :class:`MetricsRegistry`.  Returns the raw signals the objective
    scores: aggregate cache hit ratio (from the registry's
    ``cache_hits_total`` / ``cache_misses_total`` counters — the single
    accounting source), the batch persona's p99 queue latency, the
    pending-inclusive starvation gap, and the run makespan.
    """
    from ..experiments import sql_nl_pipeline

    registry = MetricsRegistry()
    result = sql_nl_pipeline.run(
        engine="fast",
        cache_gb=cache_gb,
        split_max_steps=split_max_steps,
        corpus=corpus,
        clusters=clusters if clusters is not None else default_control_clusters(),
        policy=policy,
        metrics=registry,
    )
    hits = registry.counter("cache_hits_total").total()
    misses = registry.counter("cache_misses_total").total()
    reads = hits + misses
    by_persona = {stats.persona: stats for stats in result.personas}
    batch = by_persona.get("batch")
    return {
        "hit_ratio": round(hits / reads if reads else 0.0, 6),
        "batch_queue_p99_s": round(
            batch.queue_p99_s if batch else 0.0, 6
        ),
        "starvation_gap_s": round(result.starvation_gap_s, 6),
        "makespan_s": round(result.makespan_s, 6),
    }


#: Objective weights: every term is a *relative improvement over the
#: static baseline*, so the scales are comparable.  Cache efficiency is
#: expressed as miss-ratio reduction (misses are what cost
#: recomputation) and weighted highest — it is the paper's core metric;
#: makespan gets a small weight as a guard against policies that trade
#: throughput for queue cosmetics.
OBJECTIVE_WEIGHTS: Dict[str, float] = {
    "miss_ratio": 1.5,
    "batch_queue_p99_s": 1.0,
    "starvation_gap_s": 0.5,
    "makespan_s": 0.25,
}


def objective(metrics: Dict[str, float], baseline: Dict[str, float]) -> float:
    """Scalar score of one evaluation, relative to the static baseline.

    Higher is better; the static defaults score exactly 0.0 (every
    relative improvement is zero), so a positive winner provably beat
    the paper's constants on this objective.  Terms whose baseline is
    zero are skipped — there is nothing left to improve.
    """
    score = 0.0
    base_miss = 1.0 - baseline["hit_ratio"]
    if base_miss > 0:
        score += (
            OBJECTIVE_WEIGHTS["miss_ratio"]
            * (base_miss - (1.0 - metrics["hit_ratio"]))
            / base_miss
        )
    for key in ("batch_queue_p99_s", "starvation_gap_s", "makespan_s"):
        base = baseline[key]
        if base > 0:
            score += OBJECTIVE_WEIGHTS[key] * (base - metrics[key]) / base
    return round(score, 9)


@dataclass
class AdaptationLog:
    """Replayable record of one controller tune.

    Serializes every decision the search made — the seed, the corpus
    digest, the static-baseline signals, each round's candidate
    evaluations and survivors, and the winner — as canonical JSON with
    a stable digest.  Two tunes from the same seed produce identical
    logs; :meth:`Controller.replay` proves it by re-deriving one.
    """

    seed: int
    corpus_digest: str
    baseline: Dict[str, float]
    rounds: List[dict] = field(default_factory=list)
    winner: Dict[str, object] = field(default_factory=dict)
    winner_score: float = 0.0
    winner_metrics: Dict[str, float] = field(default_factory=dict)

    def winner_policy(self) -> PolicyConfig:
        return PolicyConfig.from_dict(dict(self.winner))

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "corpus_digest": self.corpus_digest,
            "baseline": self.baseline,
            "rounds": self.rounds,
            "winner": self.winner,
            "winner_score": self.winner_score,
            "winner_metrics": self.winner_metrics,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AdaptationLog":
        payload = json.loads(text)
        return cls(
            seed=payload["seed"],
            corpus_digest=payload["corpus_digest"],
            baseline=payload["baseline"],
            rounds=payload["rounds"],
            winner=payload["winner"],
            winner_score=payload["winner_score"],
            winner_metrics=payload["winner_metrics"],
        )

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


@dataclass
class AdaptationResult:
    """What :meth:`Controller.tune` returns."""

    policy: PolicyConfig
    log: AdaptationLog

    @property
    def improved(self) -> bool:
        """True when the winner beat the static defaults."""
        return self.log.winner_score > 0.0


class Controller:
    """Deterministic metrics-driven policy tuner.

    Parameters
    ----------
    corpus:
        The scenario corpus to tune against; built from
        ``CorpusSpec(seed=seed, size=corpus_size)`` when omitted.
    seed:
        Seeds candidate sampling (and the default corpus).  Same seed,
        same :class:`AdaptationLog`, byte for byte.
    population:
        Initial candidate count (the static default is always candidate
        zero, so the winner can never score below the baseline).
    rounds:
        Successive-halving rounds; between rounds, survivors spawn
        half/double refinements of their non-default knobs (the
        ``AutoTuner.tune_iterative`` pattern).
    cache_gb / split_max_steps / clusters:
        The evaluation environment (tight by default, see
        :func:`default_control_clusters`).
    """

    def __init__(
        self,
        corpus: Optional[ScenarioCorpus] = None,
        *,
        seed: int = 0,
        corpus_size: int = 12,
        population: int = 6,
        rounds: int = 2,
        cache_gb: float = 1.0,
        split_max_steps: int = 6,
        clusters: Optional[List[Cluster]] = None,
    ) -> None:
        if population < 2:
            raise ValueError(f"population must be >= 2: {population}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1: {rounds}")
        self.seed = seed
        self.corpus = (
            corpus
            if corpus is not None
            else build_corpus(CorpusSpec(seed=seed, size=corpus_size))
        )
        self.population = population
        self.rounds = rounds
        self.cache_gb = cache_gb
        self.split_max_steps = split_max_steps
        self._clusters = clusters

    # ------------------------------------------------------- candidate space

    def seed_candidates(self) -> List[PolicyConfig]:
        """The seeded initial population (defaults first, always).

        After the defaults, one single-knob variant per grid entry (so
        round-0 scores attribute cleanly to one knob — refinement then
        composes knobs across rounds), then random multi-knob combos
        until ``population`` is reached.
        """
        rng = random.Random(self.seed)
        default = PolicyConfig()
        candidates = [default]
        for name, values in sorted(CANDIDATE_GRID.items()):
            if len(candidates) >= self.population:
                break
            others = [v for v in values if v != getattr(default, name)]
            candidate = replace(default, **{name: rng.choice(others)})
            if candidate not in candidates:
                candidates.append(candidate)
        attempts = 0
        while len(candidates) < self.population and attempts < 1000:
            attempts += 1
            knobs = {
                name: rng.choice(values)
                for name, values in sorted(CANDIDATE_GRID.items())
            }
            candidate = PolicyConfig(**knobs)
            if candidate not in candidates:
                candidates.append(candidate)
        return candidates

    @staticmethod
    def refine(candidate: PolicyConfig) -> List[PolicyConfig]:
        """Half/double neighbourhood of a survivor's customised knobs."""
        default = PolicyConfig()
        out: List[PolicyConfig] = []
        for factor in (0.5, 2.0):
            if candidate.score_alpha != default.score_alpha:
                out.append(
                    replace(candidate, score_alpha=candidate.score_alpha * factor)
                )
            if candidate.eviction_pressure != default.eviction_pressure:
                out.append(
                    replace(
                        candidate,
                        eviction_pressure=candidate.eviction_pressure * factor,
                    )
                )
            if candidate.aging_rate > 0:
                out.append(
                    replace(candidate, aging_rate=candidate.aging_rate * factor)
                )
        if candidate.aging_rate == 0:
            # Aging is the one knob whose default is a hard zero; the
            # neighbourhood has to introduce it explicitly (two rates,
            # since its useful range spans an order of magnitude).
            for rate in (0.01, 0.05):
                out.append(replace(candidate, aging_rate=rate))
        if candidate.split_budget_steps is not None:
            for delta in (-2, 2):
                steps = candidate.split_budget_steps + delta
                if steps >= 2:
                    out.append(replace(candidate, split_budget_steps=steps))
        return out

    # ---------------------------------------------------------------- search

    def evaluate(self, policy: Optional[PolicyConfig]) -> Dict[str, float]:
        return evaluate_policy(
            policy,
            self.corpus,
            clusters=self._clusters,
            cache_gb=self.cache_gb,
            split_max_steps=self.split_max_steps,
        )

    def tune(self) -> AdaptationResult:
        """Run the search; returns the winning policy and its log."""
        baseline = self.evaluate(None)
        evaluations: Dict[PolicyConfig, Dict[str, float]] = {}

        def score(candidate: PolicyConfig) -> float:
            metrics = self.evaluate(candidate)
            evaluations[candidate] = metrics
            return objective(metrics, baseline)

        ranked, history = successive_halving(
            self.seed_candidates(),
            score,
            rounds=self.rounds,
            refine=self.refine,
        )
        winner, winner_score = ranked[0]
        log = AdaptationLog(
            seed=self.seed,
            corpus_digest=self.corpus.digest(),
            baseline=baseline,
            rounds=[
                {
                    "round": record["round"],
                    "candidates": [
                        {
                            "policy": cand.to_dict(),
                            "score": objective(evaluations[cand], baseline),
                            "metrics": evaluations[cand],
                        }
                        for cand, _ in record["evaluated"]
                    ],
                    "survivors": [
                        cand.to_dict() for cand in record["survivors"]
                    ],
                }
                for record in history
            ],
            winner=winner.to_dict(),
            winner_score=winner_score,
            winner_metrics=evaluations[winner],
        )
        return AdaptationResult(policy=winner, log=log)

    def replay(self, log: AdaptationLog) -> bool:
        """Re-derive the log from its recorded seed; True if identical.

        The log carries everything needed to reproduce the tune (seed,
        corpus digest, round structure), so replay is simply a fresh
        deterministic tune compared byte-for-byte.
        """
        if log.corpus_digest != self.corpus.digest():
            return False
        rederived = self.tune()
        return rederived.log.digest() == log.digest()


__all__ = [
    "AdaptationLog",
    "AdaptationResult",
    "CANDIDATE_GRID",
    "Controller",
    "default_control_clusters",
    "evaluate_policy",
    "objective",
]
