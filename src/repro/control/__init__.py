"""Adaptive policy control: unified knob surface + metrics-driven tuner.

:class:`~repro.control.policy.PolicyConfig` gathers the policy
constants scattered across caching, splitting, admission and retry into
one frozen keyword-only bundle;
:class:`~repro.control.controller.Controller` tunes those knobs from
the :mod:`repro.obs` metrics registry over the seeded scenario corpus
and records every decision in a replayable
:class:`~repro.control.controller.AdaptationLog`.

The controller (and its experiment dependencies) import lazily so that
``engine.config`` — which accepts ``policy=PolicyConfig(...)`` — can
depend on this package without a cycle.
"""

from __future__ import annotations

from .policy import DEFAULT_POLICY, PolicyConfig

__all__ = [
    "AdaptationLog",
    "AdaptationResult",
    "Controller",
    "DEFAULT_POLICY",
    "PolicyConfig",
    "evaluate_policy",
]

_LAZY = ("AdaptationLog", "AdaptationResult", "Controller", "evaluate_policy")


def __getattr__(name: str):
    if name in _LAZY:
        from . import controller

        return getattr(controller, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
