"""Reproduction of "Couler: Unified Machine Learning Workflow
Optimization in Cloud" (ICDE 2024).

Subpackages
-----------
core
    The unified programming interface (the Couler DSL) and submitters.
ir
    The engine-agnostic workflow intermediate representation + passes.
backends
    Workflow generators: IR -> Argo / Airflow / Tekton formats.
k8s, engine
    The simulated cloud substrate: API server, etcd, cluster, and a
    discrete-event Argo-style workflow operator.
caching
    The automatic artifact-caching optimizer (Algorithm 2) and the
    Dataset-CRD data cache.
parallelism
    Big-workflow auto-parallelism (Algorithm 3).
autotune
    LLM-driven automatic hyperparameter tuning (Algorithm 4).
llm, nl2wf
    The simulated LLM substrate, the Code Lake, and the NL-to-code
    pipeline (Algorithm 1).
sqlflow
    The SQL frontend (SELECT ... TO TRAIN / TO PREDICT).
server
    The Couler server: workflow metadata persistence and the
    restart-from-failure service flow.
gui
    The declarative canvas/model-zoo frontend.
workloads, experiments
    Evaluation workload generators and one driver per paper
    table/figure.
"""

__version__ = "1.0.0"
__paper__ = (
    "Couler: Unified Machine Learning Workflow Optimization in Cloud, "
    "ICDE 2024"
)
