"""Hot-path profiling for the simulated engine (``repro.profile_run``).

This is the measurement half of the speed program: build a
deterministic synthetic fleet (:mod:`repro.workloads.fleetgen`), run it
through the admission pipeline under a chosen
:class:`~repro.engine.config.EngineConfig`, and report wall-clock cost
per workflow together with the cProfile hotspots and the engine's own
hot-path counters (``engine_waitq_scans_total`` etc.).  Compare
``EngineConfig(engine="fast")`` against ``engine="naive"`` at the same
size to see exactly which scans the incremental indexes eliminated.

Lives outside ``repro.engine`` on purpose: the engine packages are
wall-clock-free by lint (virtual time only), while a profiler's whole
job is to read the host clock.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .engine.config import DEFAULT_CONFIG, EngineConfig
from .workloads.fleetgen import build_fleet, build_pipeline, submit_fleet


@dataclass
class ProfileReport:
    """What one profiled fleet run measured."""

    num_workflows: int
    seed: int
    config: EngineConfig
    #: Host seconds for submit + run (excludes fleet construction).
    wall_seconds: float
    #: ``wall_seconds / num_workflows`` — the flatness metric.
    per_workflow_seconds: float
    #: Virtual makespan of the fleet.
    makespan: float
    placed: int
    rejected: int
    #: Engine hot-path counters (waitq scan kinds, scan steps, events).
    counters: Dict[str, float] = field(default_factory=dict)
    #: ``pstats``-formatted top functions by cumulative time ('' when
    #: profiling was disabled).
    hotspots: str = ""

    def describe(self) -> str:
        lines = [
            f"profile: {self.num_workflows} workflows, seed={self.seed}, "
            f"{self.config.describe()}",
            f"  wall: {self.wall_seconds:.3f}s total, "
            f"{self.per_workflow_seconds * 1e3:.3f}ms/workflow",
            f"  fleet: makespan={self.makespan:.1f}s virtual, "
            f"placed={self.placed}, rejected={self.rejected}",
        ]
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name}: {value:g}")
        if self.hotspots:
            lines.append("  hotspots (cumulative):")
            lines.extend(f"    {row}" for row in self.hotspots.splitlines())
        return "\n".join(lines)


def _hot_counters(pipeline) -> Dict[str, float]:
    """Flatten the registry's hot-path counters into ``name{labels}``."""
    counters: Dict[str, float] = {}
    for metric_name in (
        "engine_waitq_scans_total",
        "engine_waitq_scan_steps_total",
        "admission_events_total",
    ):
        metric = pipeline.metrics.get(metric_name)
        if metric is None or not hasattr(metric, "series"):
            continue
        for label_key, value in sorted(metric.series().items()):
            key = metric_name
            if label_key:
                inner = ",".join(f"{k}={v}" for k, v in label_key)
                key = f"{metric_name}{{{inner}}}"
            counters[key] = value
    return counters


def profile_run(
    num_workflows: int = 1000,
    *,
    seed: int = 0,
    config: Optional[EngineConfig] = None,
    top: int = 15,
    profile: bool = True,
) -> ProfileReport:
    """Run a synthetic fleet and measure per-workflow engine cost.

    ``profile=False`` skips cProfile (≈2× lower overhead) for pure
    timing sweeps — the scale benchmark uses that mode.
    """
    config = config if config is not None else DEFAULT_CONFIG
    spec = build_fleet(num_workflows, seed=seed)
    pipeline = build_pipeline(spec, config)

    profiler = cProfile.Profile() if profile else None
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    records = submit_fleet(pipeline, spec)
    pipeline.run()
    if profiler is not None:
        profiler.disable()
    wall = time.perf_counter() - start

    hotspots = ""
    if profiler is not None:
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        # Keep only the table rows; the pstats preamble repeats paths.
        rows = [
            line
            for line in buffer.getvalue().splitlines()
            if line.strip() and not line.startswith(("   Ordered", "   List"))
        ]
        hotspots = "\n".join(rows[: top + 6])

    placed = sum(1 for record in records if record.place_time is not None)
    rejected = sum(1 for record in records if record.admitted is False)
    return ProfileReport(
        num_workflows=num_workflows,
        seed=seed,
        config=config,
        wall_seconds=wall,
        per_workflow_seconds=wall / max(1, num_workflows),
        makespan=pipeline.clock.now,
        placed=placed,
        rejected=rejected,
        counters=_hot_counters(pipeline),
        hotspots=hotspots,
    )


__all__ = ["ProfileReport", "profile_run"]
