"""Per-token pricing for the cost analysis (Table III).

Prices are the 2023-era OpenAI list prices the paper's numbers imply:
``gpt-3.5-turbo`` at $0.0015/$0.002 per 1k prompt/completion tokens and
``gpt-4`` at $0.03/$0.06 — with which ~3.2k mostly-prompt tokens cost
about $0.005 and ~3.8k cost about $0.14, matching the paper's rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


class PricingError(KeyError):
    """Unknown model name in the price table."""


@dataclass(frozen=True)
class ModelPricing:
    """USD per 1000 tokens, split by prompt vs. completion."""

    model: str
    prompt_per_1k: float
    completion_per_1k: float

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.prompt_per_1k
            + completion_tokens * self.completion_per_1k
        ) / 1000.0


PRICE_TABLE: Dict[str, ModelPricing] = {
    "gpt-3.5-turbo": ModelPricing("gpt-3.5-turbo", 0.0015, 0.002),
    "gpt-4": ModelPricing("gpt-4", 0.03, 0.06),
}


def pricing_for(model: str) -> ModelPricing:
    try:
        return PRICE_TABLE[model]
    except KeyError:
        raise PricingError(
            f"no pricing for model {model!r}; known: {sorted(PRICE_TABLE)}"
        ) from None


@dataclass
class UsageMeter:
    """Accumulates token usage and dollar cost across LLM calls."""

    model: str
    prompt_tokens: int = 0
    completion_tokens: int = 0
    calls: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def cost_usd(self) -> float:
        return pricing_for(self.model).cost(self.prompt_tokens, self.completion_tokens)

    def add(self, prompt_tokens: int, completion_tokens: int) -> None:
        self.prompt_tokens += prompt_tokens
        self.completion_tokens += completion_tokens
        self.calls += 1

    def merge(self, other: "UsageMeter") -> None:
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.calls += other.calls
