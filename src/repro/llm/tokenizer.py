"""Approximate tokenizer for cost accounting (Table III).

Real deployments count BPE tokens; for cost analysis all that matters
is a stable, roughly proportional count.  This tokenizer splits on
words, numbers, punctuation and whitespace runs, then adds a fractional
surcharge for long words (BPE splits them), landing within a few
percent of tiktoken counts on code-and-prose mixtures.
"""

from __future__ import annotations

import math
import re
from typing import List

_TOKEN_RE = re.compile(r"[A-Za-z_]+|\d+|[^\sA-Za-z_\d]")

#: Average characters of a word one BPE token covers.
_BPE_WORD_SPAN = 6.0


def split_tokens(text: str) -> List[str]:
    """Lexical split used as the token-count basis."""
    return _TOKEN_RE.findall(text)


def count_tokens(text: str) -> int:
    """Approximate BPE token count of ``text``.

    Words longer than the typical BPE span count as multiple tokens.
    """
    if not text:
        return 0
    count = 0
    for token in split_tokens(text):
        if token[0].isalpha() or token[0] == "_":
            count += max(1, math.ceil(len(token) / _BPE_WORD_SPAN))
        else:
            count += 1
    return count
