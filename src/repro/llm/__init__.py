"""LLM substrate: tokenizer, pricing, Code Lake, and the simulated
GPT-3.5 / GPT-4 used throughout the NL-to-workflow pipeline.

The substitution rationale (real ChatGPT -> behavioural simulation with
calibrated quality profiles) is documented in DESIGN.md Section 2.
"""

from .codelake import CodeLake, CodeSnippet, TASK_TYPES, canonical_code, default_entries
from .pricing import ModelPricing, PRICE_TABLE, PricingError, UsageMeter, pricing_for
from .simulated import (
    GPT35_PROFILE,
    GPT4_PROFILE,
    LLMResponse,
    ModelProfile,
    PROFILES,
    SimulatedLLM,
    SubtaskSpec,
)
from .tokenizer import count_tokens, split_tokens

__all__ = [
    "CodeLake",
    "CodeSnippet",
    "GPT35_PROFILE",
    "GPT4_PROFILE",
    "LLMResponse",
    "ModelPricing",
    "ModelProfile",
    "PRICE_TABLE",
    "PROFILES",
    "PricingError",
    "SimulatedLLM",
    "SubtaskSpec",
    "TASK_TYPES",
    "UsageMeter",
    "canonical_code",
    "count_tokens",
    "default_entries",
    "pricing_for",
    "split_tokens",
]
