"""The Code Lake: a retrieval corpus of Couler snippets (paper Step 2).

"Considering that LLMs have limited knowledge about COULER, we construct
a Code Lake containing code for various functions.  We search for
relevant code from the Code Lake for each subtask and provide it to
LLMs for reference."

Entries are canonical, executable Couler snippets per predefined task
type, plus distractors.  Retrieval is TF-IDF cosine over the snippet's
title + description against the subtask text.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .tokenizer import split_tokens

#: The predefined task-module types of Step 1 (modular decomposition).
TASK_TYPES = (
    "data_loading",
    "data_preprocessing",
    "data_augmentation",
    "model_training",
    "model_evaluation",
    "model_comparison",
    "model_selection",
    "model_deployment",
    "hyperparameter_tuning",
    "report_generation",
)


@dataclass(frozen=True)
class CodeSnippet:
    """One Code Lake entry."""

    task_type: str
    title: str
    description: str
    code: str

    def document(self) -> str:
        return f"{self.title} {self.description} {self.task_type}"


# ---------------------------------------------------------------------------
# Canonical templates.  `{dataset}`, `{model}`, `{models}` are filled from
# the task parameters; every rendered snippet executes against
# `repro.core as couler` and chains implicitly.
# ---------------------------------------------------------------------------

_TEMPLATES: Dict[str, Tuple[str, str, str]] = {
    "data_loading": (
        "Load a dataset from remote storage",
        "read input data tables files import dataset loading ingest",
        '''\
def load_data():
    return couler.run_container(
        image="data-loader:v1",
        command=["python", "load.py"],
        args=["--dataset", "{dataset}"],
        step_name="load-data",
        output=couler.create_oss_artifact(
            path="/data/{dataset}", name="raw-data", size_bytes=512 * 2**20
        ),
    )

raw_data = load_data()
''',
    ),
    "data_preprocessing": (
        "Preprocess and clean raw data",
        "preprocess clean normalize transform feature engineering scaling",
        '''\
def preprocess(raw):
    return couler.run_container(
        image="data-preprocessor:v1",
        command=["python", "preprocess.py"],
        step_name="preprocess-data",
        input=raw,
        output=couler.create_oss_artifact(
            path="/data/{dataset}-clean", name="clean-data", size_bytes=256 * 2**20
        ),
    )

clean_data = preprocess(raw_data)
''',
    ),
    "data_augmentation": (
        "Augment the training data",
        "augmentation flips crops synthetic oversampling enrich data",
        '''\
def augment(data):
    return couler.run_container(
        image="data-augmentor:v1",
        command=["python", "augment.py"],
        step_name="augment-data",
        input=data,
        output=couler.create_oss_artifact(
            path="/data/{dataset}-aug", name="augmented-data", size_bytes=384 * 2**20
        ),
    )

augmented_data = augment(clean_data)
''',
    ),
    "model_training": (
        "Train candidate models on the prepared data",
        "train fit model learning epochs gpu training job",
        '''\
def train_model(model_name, data):
    return couler.run_container(
        image="training-image:v1",
        command=["python", "train.py"],
        args=["--model", model_name],
        step_name="train-" + model_name,
        input=data,
        output=couler.create_oss_artifact(
            path="/models/" + model_name, name="model", size_bytes=128 * 2**20
        ),
    )

trained_models = couler.map(
    lambda name: train_model(name, {data_var}), {models}
)
''',
    ),
    "model_evaluation": (
        "Validate each trained model on held-out data",
        "evaluate validation metrics accuracy test score model",
        '''\
def evaluate_model(model):
    return couler.run_container(
        image="model-evaluation:v1",
        command=["python", "evaluate.py"],
        args=[model],
        step_name="eval-" + model.step_name,
        input=model,
        output=couler.create_parameter_artifact(
            path="/metrics/" + model.step_name, name="metrics"
        ),
    )

eval_results = couler.map(lambda model: evaluate_model(model), trained_models)
''',
    ),
    "model_comparison": (
        "Compare evaluation metrics across models",
        "compare rank metrics models leaderboard comparison",
        '''\
def compare_models(results):
    return couler.run_container(
        image="model-comparison:v1",
        command=["python", "compare.py"],
        step_name="compare-models",
        input=results,
        output=couler.create_parameter_artifact(
            path="/metrics/ranking", name="ranking"
        ),
    )

ranking = compare_models(eval_results)
''',
    ),
    "model_selection": (
        "Select the best model from the comparison",
        "select best champion model pick winner selection",
        '''\
def select_best(ranking):
    return couler.run_container(
        image="model-selector:v1",
        command=["python", "select.py"],
        step_name="select-best-model",
        input=ranking,
        output=couler.create_oss_artifact(
            path="/models/best", name="best-model", size_bytes=128 * 2**20
        ),
    )

best_model = select_best({ranking_var})
''',
    ),
    "model_deployment": (
        "Deploy the selected model to serving",
        "deploy serving push production endpoint rollout",
        '''\
def deploy(model):
    return couler.run_container(
        image="model-deployer:v1",
        command=["python", "deploy.py"],
        step_name="deploy-model",
        input=model,
    )

deploy(best_model)
''',
    ),
    "hyperparameter_tuning": (
        "Sweep hyperparameters for the model",
        "hyperparameter tuning sweep search learning rate batch grid",
        '''\
def tune(batch_size, data):
    return couler.run_container(
        image="training-image:v1",
        command=["python", "train.py"],
        args=["--batch-size", str(batch_size)],
        step_name="tune-bs-" + str(batch_size),
        input=data,
        output=couler.create_oss_artifact(
            path="/models/bs-" + str(batch_size), name="model", size_bytes=64 * 2**20
        ),
    )

tuned_models = couler.map(lambda bs: tune(bs, {data_var}), [64, 128, 256])
''',
    ),
    "report_generation": (
        "Generate the final analysis report",
        "report summary pdf plot chart generate document",
        '''\
def generate_report():
    return couler.run_container(
        image="report-generator:v1",
        command=["python", "report.py"],
        step_name="generate-report",
        output=couler.create_parameter_artifact(
            path="/reports/final", name="report"
        ),
    )

report = generate_report()
''',
    ),
}

#: Distractor entries: plausible snippets that are NOT the canonical
#: implementation of any predefined task type (retrieval must rank the
#: canonical entry above these for the pipeline to benefit).
_DISTRACTORS = [
    CodeSnippet(
        task_type="misc",
        title="Flip a coin and branch",
        description="random coin conditional branch control flow heads tails",
        code='result = couler.run_script(image="python:alpine3.6", source="print(1)")\n',
    ),
    CodeSnippet(
        task_type="misc",
        title="Diamond DAG",
        description="diamond explicit dag four steps dependencies example",
        code='couler.dag([[lambda: couler.run_container(image="alpine", step_name="a")]])\n',
    ),
    CodeSnippet(
        task_type="misc",
        title="Recursive retry until success",
        description="retry loop recursive while condition exec",
        code='couler.exec_while(couler.equal("tails"), lambda: flip())\n',
    ),
]


def canonical_code(task_type: str, params: Optional[dict] = None) -> str:
    """The ground-truth Couler snippet for a task module."""
    if task_type not in _TEMPLATES:
        raise KeyError(f"no canonical template for task type {task_type!r}")
    params = dict(params or {})
    params.setdefault("dataset", "dataset")
    params.setdefault("models", ["model-a", "model-b"])
    params.setdefault("data_var", "clean_data")
    params.setdefault("ranking_var", "ranking")
    template = _TEMPLATES[task_type][2]
    return template.format(
        dataset=params["dataset"],
        models=params["models"],
        data_var=params["data_var"],
        ranking_var=params["ranking_var"],
    )


#: Task types whose canonical snippet is dataset-specific enough that a
#: per-dataset Code Lake entry sharpens retrieval (the corpus generator
#: expands the lake with these for every catalog dataset).
_DATASET_SPECIALIZED_TYPES = ("data_loading", "data_preprocessing", "data_augmentation")


def dataset_entries(dataset: str) -> List[CodeSnippet]:
    """Dataset-specialised Code Lake entries for one named dataset.

    The rendered code is the canonical template with the dataset baked
    in, and the searchable document carries the dataset name — so a
    subtask that mentions ``ads-logs`` retrieves the ``ads-logs`` loader
    ahead of the generic one.
    """
    entries = []
    for task_type in _DATASET_SPECIALIZED_TYPES:
        title, description, _code = _TEMPLATES[task_type]
        entries.append(
            CodeSnippet(
                task_type=task_type,
                title=f"{title} ({dataset})",
                description=f"{description} {dataset}",
                code=canonical_code(task_type, {"dataset": dataset}),
            )
        )
    return entries


def expand_code_lake(datasets: Sequence[str]) -> "CodeLake":
    """A Code Lake grown with per-dataset specialised entries.

    This is the "expanded Code Lake" the scenario corpus draws its
    NL-planned workflows from: the canonical entries and distractors
    stay, and every dataset in the catalog contributes specialised
    loading/preprocessing/augmentation snippets.
    """
    entries = default_entries()
    for dataset in sorted(set(datasets)):
        entries.extend(dataset_entries(dataset))
    return CodeLake(entries)


def default_entries() -> List[CodeSnippet]:
    entries = [
        CodeSnippet(
            task_type=task_type,
            title=title,
            description=description,
            code=_TEMPLATES[task_type][2],
        )
        for task_type, (title, description, _code) in _TEMPLATES.items()
    ]
    return entries + list(_DISTRACTORS)


class CodeLake:
    """TF-IDF retrieval over Code Lake entries."""

    def __init__(self, entries: Optional[Sequence[CodeSnippet]] = None) -> None:
        self.entries: List[CodeSnippet] = list(entries or default_entries())
        self._doc_terms: List[Counter] = []
        self._idf: Dict[str, float] = {}
        self._build()

    def _build(self) -> None:
        self._doc_terms = [
            Counter(t.lower() for t in split_tokens(e.document()))
            for e in self.entries
        ]
        num_docs = len(self._doc_terms)
        df: Counter = Counter()
        for terms in self._doc_terms:
            for term in terms:
                df[term] += 1
        self._idf = {
            term: math.log((1 + num_docs) / (1 + count)) + 1.0
            for term, count in df.items()
        }

    def add(self, snippet: CodeSnippet) -> None:
        self.entries.append(snippet)
        self._build()

    def _vector(self, terms: Counter) -> Dict[str, float]:
        return {
            term: freq * self._idf.get(term, 1.0) for term, freq in terms.items()
        }

    @staticmethod
    def _cosine(a: Dict[str, float], b: Dict[str, float]) -> float:
        if not a or not b:
            return 0.0
        dot = sum(weight * b.get(term, 0.0) for term, weight in a.items())
        norm_a = math.sqrt(sum(w * w for w in a.values()))
        norm_b = math.sqrt(sum(w * w for w in b.values()))
        return dot / (norm_a * norm_b) if norm_a and norm_b else 0.0

    def search(self, query: str, top_k: int = 1) -> List[Tuple[float, CodeSnippet]]:
        """Best-matching snippets for a subtask description."""
        query_vec = self._vector(Counter(t.lower() for t in split_tokens(query)))
        scored = [
            (self._cosine(query_vec, self._vector(doc)), entry)
            for doc, entry in zip(self._doc_terms, self.entries)
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1].title))
        return scored[:top_k]

    def best_reference(self, query: str) -> Optional[CodeSnippet]:
        results = self.search(query, top_k=1)
        if not results or results[0][0] <= 0.0:
            return None
        return results[0][1]
